"""ABL-FRAME: the frame selection technique (Section V-C2).

Paper design claim: state transitions pollute the cache "with memory
accesses from SGX and the OS"; vetting/remapping the victim's physical
frames steers the monitored sets into idle regions.  The ablation runs
the extraction with and without frame selection: without it, the fixed
OS working set keeps colliding with monitored lines and observations
become ambiguous.
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads import random_bytes

SECRET = random_bytes(500, seed=67)


def run_pair():
    with_fs = SgxBzip2Attack(SECRET, AttackConfig(use_frame_selection=True)).run()
    without_fs = SgxBzip2Attack(
        SECRET, AttackConfig(use_frame_selection=False)
    ).run()
    return with_fs, without_fs


def test_bench_ablation_frames(benchmark, experiment_report):
    with_fs, without_fs = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    experiment_report(
        "Ablation — frame selection (Section V-C2)",
        [
            (
                "bit accuracy",
                "frames >= no-frames",
                f"{with_fs.bit_accuracy * 100:.2f}% vs {without_fs.bit_accuracy * 100:.2f}%",
            ),
            (
                "ambiguous observations",
                "~0 vs many",
                f"{with_fs.observations_ambiguous} vs {without_fs.observations_ambiguous}",
            ),
            (
                "frame remaps paid",
                "bounded",
                f"{with_fs.frame_remaps} vs {without_fs.frame_remaps}",
            ),
        ],
    )

    assert with_fs.bit_accuracy >= without_fs.bit_accuracy
    assert with_fs.observations_ambiguous < without_fs.observations_ambiguous
    assert without_fs.frame_remaps == 0
    # The technique's cost is bounded: a few remaps per ftab page.
    assert with_fs.frame_remaps < 65 * 8
