"""FIG2: TaintChannel's report for the Zlib ``head[ins_h]`` gadget.

Paper (Fig. 2): the store to ``head[ins_h]`` dereferences an address
whose bits 1-8 are tainted by input byte i+2, bits 6-13 by byte i+1 and
bits 11-15 by byte i (after the 0x7fff mask and the *2 element scaling).
"""

from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.core.taintchannel import TaintChannel
from repro.workloads import lowercase_ascii

INPUT = lowercase_ascii(2000, seed=6)


def analyze():
    tc = TaintChannel()
    return tc, tc.analyze("zlib", lambda ctx: deflate_compress(INPUT, ctx))


def test_bench_fig2(benchmark, experiment_report):
    tc, result = benchmark.pedantic(analyze, rounds=1, iterations=1)
    gadget = result.gadget(SITE_HEAD)
    sample = next(a for a in gadget.accesses if a.kind == "write")
    tags = sorted(
        sample.addr_taint.tags(), key=lambda t: result.tags.info(t).index
    )
    assert len(tags) == 3
    lo = {t: min(sample.addr_taint.bits_of_tag(t)) for t in tags}
    hi = {t: max(sample.addr_taint.bits_of_tag(t)) for t in tags}

    experiment_report(
        "Fig. 2 — Zlib head[ins_h] taint layout",
        [
            ("byte i bits", "11-15", f"{lo[tags[0]]}-{hi[tags[0]]}"),
            ("byte i+1 bits", "6-13", f"{lo[tags[1]]}-{hi[tags[1]]}"),
            ("byte i+2 bits", "1-8", f"{lo[tags[2]]}-{hi[tags[2]]}"),
            ("gadget accesses", "1 per input position", str(gadget.count)),
        ],
    )
    print(tc.render(result, gadget, with_slice=True))

    assert (lo[tags[0]], hi[tags[0]]) == (11, 15)
    assert (lo[tags[1]], hi[tags[1]]) == (6, 13)
    assert (lo[tags[2]], hi[tags[2]]) == (1, 8)
