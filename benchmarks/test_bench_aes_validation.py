"""AES: TaintChannel rediscovers the Osvik et al. T-table gadget.

Paper (Section III-B): "we also verified that TaintChannel finds the
vulnerability [of] Osvik et al. in the software implementation of AES in
OpenSSL."  The first-round lookups ``Te[p_i ^ k_i]`` carry both
plaintext and key taint in their addresses.
"""

from repro.core.taintchannel import TaintChannel
from repro.crypto.aes import aes128_encrypt_block

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")


def analyze():
    tc = TaintChannel()
    return tc.analyze(
        "aes-ttable",
        lambda ctx: aes128_encrypt_block(KEY, PLAINTEXT, ctx),
    )


def test_bench_aes(benchmark, experiment_report):
    result = benchmark.pedantic(analyze, rounds=1, iterations=1)
    te_gadgets = [g for g in result.gadgets if g.array.startswith("Te")]
    first_round = [
        a for g in te_gadgets for a in g.accesses[:1]
    ]
    sources = set()
    for acc in first_round:
        sources |= {result.tags.info(t).source for t in acc.addr_taint.tags()}

    # Exploitation follow-through: recover the key's top nibbles from
    # the same channel (Osvik et al.'s first-round attack).
    import random

    from repro.crypto.aes_attack import (
        capture_round1_lines,
        recover_high_nibbles,
        recovered_key_mask,
    )

    rng = random.Random(99)
    plaintexts = [bytes(rng.randrange(256) for _ in range(16)) for _ in range(3)]
    observed = [capture_round1_lines(KEY, pt) for pt in plaintexts]
    partial, mask = recovered_key_mask(
        recover_high_nibbles(plaintexts, observed)
    )
    known_bits = sum(bin(m).count("1") for m in mask)
    recovered_ok = all(partial[p] == KEY[p] & mask[p] for p in range(16))

    experiment_report(
        "Section III-B — AES T-table validation",
        [
            ("Te gadgets found", "4 (Te0-Te3)", str(len(te_gadgets))),
            ("lookup addr taint", "plaintext ^ key", "+".join(sorted(sources))),
            ("pt bytes leaking", "16/16", f"{result.input_coverage() * 16:.0f}/16"),
            ("lookups per block", "144 (9 rounds x 16)", str(sum(g.count for g in te_gadgets))),
            ("key bits via round-1 lines", "64/128 (Osvik et al.)", f"{known_bits}/128, correct={recovered_ok}"),
        ],
    )

    assert len(te_gadgets) == 4
    assert sources == {"input", "key"}
    assert result.input_coverage() == 1.0
    assert known_bits == 64 and recovered_ok
