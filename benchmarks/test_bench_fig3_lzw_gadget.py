"""FIG3: the Ncompress taint-propagation chain.

Paper (Fig. 3): an input byte is read, copied, shifted left by 9 bits,
xor'ed with the dictionary entry, and used as an index scaled by 8 —
leaving bits 9-16 of the array index tainted by the input byte
(bits 12-19 of the dereferenced address).
"""

from repro.compression.lzw import SITE_PRIMARY, lzw_compress
from repro.core.taintchannel import TaintChannel
from repro.core.taintchannel.provenance import opcode_chain
from repro.workloads import english_like

INPUT = english_like(1500, seed=9)


def analyze():
    tc = TaintChannel()
    return tc, tc.analyze("ncompress", lambda ctx: lzw_compress(INPUT, ctx))


def test_bench_fig3(benchmark, experiment_report):
    tc, result = benchmark.pedantic(analyze, rounds=1, iterations=1)
    gadget = result.gadget(SITE_PRIMARY)
    sample = next(a for a in gadget.accesses if a.kind == "read")
    chain = opcode_chain(sample.addr_origin)

    # The freshest tag on the address is the current input byte c.
    newest = max(
        sample.addr_taint.tags(), key=lambda t: result.tags.info(t).index
    )
    bits = sample.addr_taint.bits_of_tag(newest)

    experiment_report(
        "Fig. 3 — Ncompress htab[hp] propagation",
        [
            ("chain contains shl", "yes (shl $9)", "yes" if "shl" in chain else "no"),
            ("chain contains xor", "yes (xor ent)", "yes" if "xor" in chain else "no"),
            ("c bits in index", "9-16", f"{min(bits) - 3}-{max(bits) - 3}"),
            ("index scaling", "x8 (8-byte entries)", f"x{sample.elem_size}"),
        ],
    )
    print(tc.render(result, gadget))

    assert "shl" in chain and "xor" in chain
    assert sample.elem_size == 8
    # Address bits = index bits + 3 (elem size 8).
    assert (min(bits), max(bits)) == (9 + 3, 16 + 3)
