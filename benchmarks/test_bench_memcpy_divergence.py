"""MEMCPY: the control-flow gadget in memcpy (Section III-B).

Paper: "there are multiple control flow paths within memcpy() based on
the size of the data being copied — if the size of the data is an exact
multiple of the size of an AVX register, it uses these registers ...
Otherwise, memcpy() copies as much as it can using the AVX registers,
and the rest byte by byte.  This can reveal information about the exact
size of data that is being copied."
"""

from repro.core.taintchannel import TaintChannel, avx_memcpy
from repro.core.taintchannel.controlflow import AVX_REGISTER_BYTES


def run_target(size):
    def target(ctx):
        src = ctx.array("src", 256, init=3)
        dst = ctx.array("dst", 256)
        avx_memcpy(ctx, dst, src, size)

    return target


def sweep():
    tc = TaintChannel()
    rows = []
    for a, b in [(64, 61), (96, 96), (32, 33), (128, 120)]:
        div = tc.diff(run_target(a), run_target(b))
        rows.append((a, b, div))
    return rows


def test_bench_memcpy(benchmark, experiment_report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for a, b, div in rows:
        same_residue = (a % AVX_REGISTER_BYTES == 0) == (b % AVX_REGISTER_BYTES == 0)
        expected = "no divergence" if (a == b or same_residue) else "divergence"
        got = "no divergence" if div is None else "divergence"
        lines.append((f"copy {a} vs {b} bytes", expected, got))
    experiment_report("Section III-B — memcpy AVX/tail control-flow gadget", lines)

    (a64, b61, d1), (a96, b96, d2), (a32, b33, d3), (a128, b120, d4) = rows
    assert d1 is not None and "byte_tail" in (str(d1.left) + str(d1.right))
    assert d2 is None  # identical sizes
    assert d3 is not None
    assert d4 is not None
