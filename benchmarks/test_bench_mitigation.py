"""MITIG: the Section VIII defence, implemented and costed.

The paper's mitigation discussion proposes constant-time compression;
this bench runs the full Section V attack against the oblivious-access
histogram and measures both the security win (recovery collapses to
noise) and the honest cost (orders of magnitude more memory traffic —
why such defences are not deployed and "disabling compression ... is
the only known complete defense").
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.mitigations import oblivious_histogram
from repro.workloads import random_bytes

SECRET = random_bytes(200, seed=44)


def run_pair():
    vulnerable = SgxBzip2Attack(SECRET, AttackConfig()).run()
    hardened = SgxBzip2Attack(
        SECRET, AttackConfig(), victim_histogram=oblivious_histogram
    ).run()
    return vulnerable, hardened


def test_bench_mitigation(benchmark, experiment_report):
    vulnerable, hardened = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    overhead = hardened.victim_accesses / vulnerable.victim_accesses

    experiment_report(
        "Section VIII — constant-access (oblivious) histogram",
        [
            (
                "byte accuracy, vulnerable",
                "> 99% (Section V-E)",
                f"{vulnerable.byte_accuracy * 100:.1f}%",
            ),
            (
                "byte accuracy, mitigated",
                "defence goal: ~chance",
                f"{hardened.byte_accuracy * 100:.1f}%",
            ),
            (
                "bit accuracy, mitigated",
                "~50-75% (guessing + bias)",
                f"{hardened.bit_accuracy * 100:.1f}%",
            ),
            (
                "victim memory-access overhead",
                "large (why it's not deployed)",
                f"{overhead:,.0f}x",
            ),
        ],
    )

    assert vulnerable.byte_accuracy > 0.95
    assert hardened.byte_accuracy < 0.10
    assert overhead > 100
