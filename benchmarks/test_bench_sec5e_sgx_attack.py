"""SEC5E: the end-to-end SGX attack evaluation (Section V-E).

Paper: "We leak 10KB of randomly generated data inside SGX ... The
attack always takes less than 30 seconds to run end-to-end and correctly
leaks over 99% of the data bits."  Random data is the hardest case (no
redundancy for content-level error correction).
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads import random_bytes

SECRET = random_bytes(10_000, seed=55)


def run_attack():
    return SgxBzip2Attack(SECRET, AttackConfig()).run()


def test_bench_sec5e(benchmark, experiment_report):
    outcome = benchmark.pedantic(run_attack, rounds=1, iterations=1)

    experiment_report(
        "Section V-E — SGX extraction of 10 KB random data",
        [
            ("data leaked", "10 KB random", f"{len(SECRET)} B random"),
            ("bit accuracy", "> 99%", f"{outcome.bit_accuracy * 100:.2f}%"),
            ("end-to-end time", "< 30 s", f"{outcome.elapsed_seconds:.1f} s"),
            ("page faults", "3 per byte (Fig. 5)", str(outcome.faults)),
            ("frame remaps", "n/a (technique used)", str(outcome.frame_remaps)),
            ("empty observations", "<= 1% effect", str(outcome.observations_empty)),
        ],
    )
    print(outcome.summary())

    assert outcome.bit_accuracy > 0.99
    assert outcome.elapsed_seconds < 30
    assert outcome.faults == 3 * len(SECRET)
