"""COMP: TaintChannel vs the approaches the paper argues against
(Section VII / Section III).

Three detectors on the same target (Bzip2's histogram-bearing block):

* TaintChannel — finds the gadget AND emits the exact input->pointer
  computation;
* trace correlation (Microwalk/DATA-style) — finds the leaky sites but
  yields no computation;
* symbolic execution — modelled by its state-fork cost: "65,536 forks of
  the memory for each pair of input bytes, which is infeasible".
"""

from repro.compression.bzip2 import SITE_FTAB, bzip2_compress
from repro.core.comparators import TraceCorrelator, estimate_symbolic_cost
from repro.core.taintchannel import TaintChannel
from repro.core.taintchannel.provenance import backward_slice
from repro.workloads import english_like

INPUT = english_like(300, seed=31)


def run_all():
    tc = TaintChannel(max_events=4_000_000)
    target = lambda data: (
        lambda ctx: bzip2_compress(data, ctx, block_size=len(data))
    )

    ctx = tc.trace(target(INPUT))
    taint_result = tc.analyze("bzip2", target(INPUT), ctx=ctx)
    symbolic = estimate_symbolic_cost(ctx)

    correlator = TraceCorrelator(runs=5, input_len=len(INPUT), seed=32)
    reports = correlator.analyze(target)
    return taint_result, reports, symbolic


def test_bench_comparators(benchmark, experiment_report):
    taint_result, reports, symbolic = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    gadget = taint_result.gadget(SITE_FTAB)
    chain_len = len(backward_slice(gadget.accesses[0].addr_origin))
    leaky = TraceCorrelator.leaky_sites(reports)

    experiment_report(
        "Section VII — detection approaches on the Bzip2 histogram",
        [
            (
                "TaintChannel: gadget found",
                "yes, with exact computation",
                f"yes, chain of {chain_len} ops",
            ),
            (
                "trace correlation: site flagged",
                "yes, but no computation",
                f"{'yes' if SITE_FTAB in leaky else 'no'}, score only",
            ),
            (
                "symbolic execution: forks/pair",
                "2^16 = 65,536 (infeasible)",
                f"2^{symbolic.log2_states_per_input_byte:.1f} per byte",
            ),
            (
                "symbolic execution: total states",
                "exponential",
                f"2^{symbolic.log2_states:.0f}",
            ),
        ],
    )

    assert gadget.count == len(INPUT)
    assert chain_len > 0
    assert SITE_FTAB in leaky
    assert 15.0 <= symbolic.log2_states_per_input_byte <= 17.0
