"""ABL-STEP: mprotect single-stepping vs timer interrupts (Section V-A).

Paper: "Previous methods rely on timer interrupts ... but we found these
interrupts to be unreliable.  Instead, we use a controlled-channel
attack" (contribution 4d).  Both steppers attack the same secret under
identical cache/noise conditions; the timer baseline loses iteration
alignment and the page leak, and its accuracy collapses accordingly.
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.core.zipchannel.timer_attack import TimerSgxBzip2Attack
from repro.workloads import random_bytes

SECRET = random_bytes(120, seed=71)


def run_pair():
    mprotect = SgxBzip2Attack(SECRET, AttackConfig()).run()
    timer = TimerSgxBzip2Attack(SECRET).run()
    return mprotect, timer


def test_bench_ablation_stepping(benchmark, experiment_report):
    mprotect, timer = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    experiment_report(
        "Ablation — single-stepping mechanism (Section V-A)",
        [
            (
                "bit accuracy",
                "mprotect >> timer",
                f"{mprotect.bit_accuracy * 100:.2f}% vs {timer.bit_accuracy * 100:.2f}%",
            ),
            (
                "byte accuracy",
                "mprotect >> timer",
                f"{mprotect.byte_accuracy * 100:.2f}% vs {timer.byte_accuracy * 100:.2f}%",
            ),
            (
                "lost (empty) observations",
                "0 vs many",
                f"{mprotect.observations_empty} vs {timer.observations_empty}",
            ),
            (
                "control events",
                "3 faults/byte vs jittered IRQs",
                f"{mprotect.faults} faults vs {timer.interrupts} interrupts",
            ),
        ],
    )
    print(timer.summary())

    assert mprotect.bit_accuracy > 0.99
    assert timer.bit_accuracy < 0.9
    assert mprotect.bit_accuracy - timer.bit_accuracy > 0.15
    assert timer.observations_empty > mprotect.observations_empty
