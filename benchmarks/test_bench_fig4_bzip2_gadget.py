"""FIG4: two consecutive ftab[j]++ accesses share an input byte.

Paper (Fig. 4): at iteration i, byte 1689 sits in bits 0-7 of the array
index; one iteration earlier (processed next, since the loop runs
backwards) the same byte sits in bits 8-15.  This redundancy is the
error-correction signal of Section V-D.
"""

from repro.compression.bzip2 import SITE_FTAB, bzip2_compress
from repro.core.taintchannel import TaintChannel
from repro.workloads import english_like

INPUT = english_like(1800, seed=12)


def analyze():
    tc = TaintChannel()
    return tc, tc.analyze(
        "bzip2",
        lambda ctx: bzip2_compress(INPUT, ctx, block_size=len(INPUT)),
    )


def test_bench_fig4(benchmark, experiment_report):
    tc, result = benchmark.pedantic(analyze, rounds=1, iterations=1)
    gadget = result.gadget(SITE_FTAB)

    # Find two consecutive accesses sharing a tag (byte k as low half,
    # then as high half).  Loop order is i = n-1 .. 0, and element size
    # 4 shifts index bits up by 2 in the address.
    first, second = gadget.accesses[10], gadget.accesses[11]
    shared = first.addr_taint.tags() & second.addr_taint.tags()
    assert len(shared) == 1
    (tag,) = shared
    # The loop runs i = n-1 .. 0: byte k is the *high* half of j at
    # iteration i=k, then the *low* half at iteration i=k-1.
    bits_as_high = first.addr_taint.bits_of_tag(tag)
    bits_as_low = second.addr_taint.bits_of_tag(tag)

    experiment_report(
        "Fig. 4 — Bzip2 ftab[j]++ consecutive-iteration redundancy",
        [
            ("byte k index bits, iter k", "8-15", f"{min(bits_as_high) - 2}-{max(bits_as_high) - 2}"),
            ("byte k index bits, iter k-1", "0-7", f"{min(bits_as_low) - 2}-{max(bits_as_low) - 2}"),
            ("accesses (one per byte)", str(len(INPUT)), str(gadget.count)),
            ("kind", "add $1, (rsi,rcx,4)", "/".join(sorted(gadget.kinds))),
        ],
    )
    print(tc.render(result, gadget, sample_index=10))

    assert (min(bits_as_high), max(bits_as_high)) == (10, 17)
    assert (min(bits_as_low), max(bits_as_low)) == (2, 9)
    assert gadget.count == len(INPUT)
