"""REPLAY: the capture-once/analyze-many payoff of `repro.traces`.

An analysis sweep over the FIG7 corpus (hyperparameters, classifier
seeds, ablations) re-runs the *analysis* N times but needs the victim
simulated only once.  This bench measures exactly that trade on the
brotli-style corpus: N live experiments (each re-capturing every
Flush+Reload trace) vs one capture into a trace store followed by N
replayed experiments — and asserts the replayed metrics are *identical*
to the live ones, so the speedup is free.
"""

import time

from repro.core.zipchannel.fingerprint import run_fingerprint_experiment
from repro.traces import (
    TraceStore,
    capture_fingerprint_traces,
    fingerprint_experiment_from_store,
)

CORPUS = "brotli"
TRACES_PER_FILE = 4
EPOCHS = 6
SEED = 77
N_ANALYSES = 10


def test_bench_trace_replay(benchmark, experiment_report, tmp_path):
    store = TraceStore(tmp_path / "fig7.trstore")

    t0 = time.perf_counter()
    live = [
        run_fingerprint_experiment(
            corpus=CORPUS, traces=TRACES_PER_FILE, epochs=EPOCHS, seed=SEED
        )
        for _ in range(N_ANALYSES)
    ]
    resimulate_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    capture_fingerprint_traces(
        store, "fig7", corpus=CORPUS, traces_per_file=TRACES_PER_FILE,
        seed=SEED,
    )
    capture_time = time.perf_counter() - t0

    def analyze_n_from_store():
        return [
            fingerprint_experiment_from_store(
                store, "fig7", epochs=EPOCHS, seed=SEED
            )
            for _ in range(N_ANALYSES)
        ]

    t0 = time.perf_counter()
    replayed = benchmark.pedantic(analyze_n_from_store, rounds=1, iterations=1)
    replay_time = time.perf_counter() - t0

    assert replayed == live  # replay fidelity: same metrics, exactly

    speedup = resimulate_time / replay_time
    benchmark.extra_info["resimulate_n_seconds"] = round(resimulate_time, 3)
    benchmark.extra_info["capture_once_seconds"] = round(capture_time, 3)
    benchmark.extra_info["replay_n_seconds"] = round(replay_time, 3)
    benchmark.extra_info["n_analyses"] = N_ANALYSES
    benchmark.extra_info["speedup"] = round(speedup, 2)
    experiment_report(
        f"Trace replay — analyze x{N_ANALYSES} on the Fig. 7 corpus",
        [
            ("re-simulate xN", "-", f"{resimulate_time:.2f}s"),
            ("capture once", "-", f"{capture_time:.2f}s"),
            ("replay xN", "-", f"{replay_time:.2f}s"),
            ("analysis speedup", ">=3x", f"{speedup:.1f}x"),
            ("metrics drift", "0", "0 (bit-exact)"),
        ],
    )

    # The store pays for itself even within a single sweep: one capture
    # plus N replays beats N live runs, and the analyses alone are >=3x
    # faster once traces are on disk.
    assert speedup >= 3.0
    assert capture_time + replay_time < resimulate_time
