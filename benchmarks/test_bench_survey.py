"""SURVEY: Section IV-E — every major compression algorithm leaks.

Paper claims, per implementation, for an attacker observing all memory
accesses at cache-line granularity:

* Zlib (LZ77): 2 bits of every byte directly (25 %); the full input when
  the top 3 bits are known a priori (lowercase ASCII), minus "minor
  losses".
* Ncompress (LZ78/LZW): the entire input, with an 8-way ambiguity in the
  first byte's low 3 bits.
* Bzip2 (BWT): the entire input, after resolving the off-by-one
  ambiguity via redundancy.
"""

from repro.compression.bzip2.blocksort import histogram
from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY, lzw_compress
from repro.exec import TracingContext
from repro.recovery import observed_lines, recover_lzw_input
from repro.recovery.bzip2_recover import (
    observations_from_lines,
    recover_bzip2_block,
)
from repro.recovery.zlib_recover import (
    accuracy,
    recover_direct_bits,
    recover_known_high_bits,
)
from repro.workloads import lowercase_ascii, random_bytes

N = 1200


def survey():
    results = {}

    # -- Zlib ------------------------------------------------------------
    data = lowercase_ascii(N, seed=21)
    ctx = TracingContext()
    deflate_compress(data, ctx=ctx)
    lines = observed_lines(ctx, SITE_HEAD, kind="write")
    base = ctx.arrays["head"].base
    direct = recover_direct_bits(lines, base, N)
    direct_bits = sum(bin(m).count("1") for m, _ in direct) / (8 * N)
    full = recover_known_high_bits(lines, base, N)
    results["zlib"] = (direct_bits, accuracy(full, data))

    # -- Brotli-like (second LZ77 implementation) ----------------------------
    from repro.compression.brotli_like import (
        SITE_BROTLI_HEAD,
        brotli_like_compress,
    )
    from repro.core.taintchannel import TaintChannel

    data = lowercase_ascii(400, seed=24)
    tc = TaintChannel()
    brotli_result = tc.analyze(
        "brotli", lambda ctx: brotli_like_compress(data, ctx)
    )
    gadget = brotli_result.gadget(SITE_BROTLI_HEAD)
    sample = gadget.accesses[0]
    smeared = all(
        len(sample.addr_taint.bits_of_tag(t)) > 10
        for t in sample.addr_taint.tags()
    )
    results["brotli"] = (brotli_result.input_coverage(), smeared)

    # -- Ncompress ---------------------------------------------------------
    data = random_bytes(N, seed=22)
    ctx = TracingContext()
    lzw_compress(data, ctx=ctx)
    probe_lines = [
        a.address >> 6
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]
    candidates = recover_lzw_input(probe_lines, ctx.arrays["htab"].base, N)
    results["ncompress"] = (data in candidates, len(candidates))

    # -- Bzip2 -------------------------------------------------------------
    data = random_bytes(N, seed=23)
    ctx = TracingContext()
    block = ctx.array("block", N)
    for i, v in enumerate(ctx.input_bytes(data)):
        block.set(i, v)
    histogram(ctx, block, N)
    from repro.compression.bzip2 import SITE_FTAB

    obs = observations_from_lines(observed_lines(ctx, SITE_FTAB), N)
    rec = recover_bzip2_block(obs, ctx.arrays["ftab"].base, N)
    results["bzip2"] = rec.bit_accuracy(data)
    return results


def test_bench_survey(benchmark, experiment_report):
    results = benchmark.pedantic(survey, rounds=1, iterations=1)
    zlib_direct, zlib_full = results["zlib"]
    brotli_coverage, brotli_smeared = results["brotli"]
    lzw_found, lzw_cands = results["ncompress"]
    bzip2_bits = results["bzip2"]

    experiment_report(
        "Section IV-E — survey: input recoverable via cache channel",
        [
            ("LZ77/Zlib direct bits", "25% of input", f"{zlib_direct * 100:.1f}%"),
            ("LZ77/Zlib lowercase", "~100% (minor losses)", f"{zlib_full * 100:.2f}%"),
            ("LZ77/Brotli gadget", "gadget present", f"coverage {brotli_coverage * 100:.0f}%, smeared={brotli_smeared}"),
            ("LZ78/Ncompress", "100% (8 first-byte cands)", f"found={lzw_found}, {lzw_cands} cands"),
            ("BWT/Bzip2 bits", "100%", f"{bzip2_bits * 100:.2f}%"),
        ],
    )

    assert abs(zlib_direct - 0.25) < 0.01
    assert zlib_full >= (N - 1) / N
    assert brotli_coverage == 1.0 and brotli_smeared
    assert lzw_found and lzw_cands <= 8
    assert bzip2_bits == 1.0
