"""FIG8: leaking how repetitive a file is (Section VI).

Paper: five 20,000-byte lipsum files where file *i* draws from the first
*i* paragraphs (truncated to 20 chars).  "The 1st file is correctly
classified 98% of the time, and the rest with accuracy between 32% and
52% ... the more repetitive the file is the more accurate the
classification is", against a 20% chance baseline.
"""

import numpy as np

from repro.classify import MLPClassifier, confusion_matrix, render_confusion, split_dataset
from repro.core.zipchannel.fingerprint import FingerprintChannel, build_dataset
from repro.workloads import repetitiveness_series

TRACES_PER_FILE = 60
EPOCHS = 80
# The five files differ only in repetitiveness; telling them apart needs
# duration-level features, which real-hardware noise blurs heavily.  The
# channel here carries matching noise (the default, milder setting would
# separate all five perfectly -- see EXPERIMENTS.md).
CHANNEL = FingerprintChannel(speed_jitter=0.5, p_false_negative=0.25)


def run_experiment():
    files = repetitiveness_series()
    x, y, timelines = build_dataset(
        files, traces_per_file=TRACES_PER_FILE, seed=88, channel=CHANNEL
    )
    (train, val, test) = split_dataset(x, y, seed=89)
    clf = MLPClassifier(x.shape[1], len(files), hidden=64, seed=90)
    clf.fit(*train, epochs=EPOCHS)
    matrix = confusion_matrix(test[1], clf.predict(test[0]), len(files))
    return timelines, clf.accuracy(*test), matrix


def test_bench_fig8(benchmark, experiment_report):
    timelines, test_acc, matrix = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    diag = np.diagonal(matrix)
    labels = [f"test_0000{i + 1}.txt" for i in range(5)]

    experiment_report(
        "Fig. 8 — classifying 5 files by repetitiveness",
        [
            ("chance baseline", "20%", "20%"),
            ("file 1 (most repetitive)", "98%", f"{diag[0] * 100:.0f}%"),
            ("files 2-5", "32-52%", f"{diag[1:].min() * 100:.0f}-{diag[1:].max() * 100:.0f}%"),
            ("overall", "above chance", f"{test_acc * 100:.1f}%"),
        ],
    )
    print(render_confusion(matrix, labels))

    assert diag[0] > 0.7  # the most repetitive file stands out
    assert test_acc > 0.4  # overall far above the 20% chance baseline
    # The paper's trend: the more repetitive, the more recognisable.
    assert diag[:2].mean() > diag[2:].mean()
