"""FIG7: fingerprinting the 21-file corpus (Section VI).

Paper: the classifier "achieves decent accuracy for most files, and
struggles to distinguish files that immediately go into fallbackSort()
without starting from mainSort()"; the one-byte file ``x`` classifies
correctly 20% of the time against a 4.76% chance baseline.
"""

import numpy as np

from repro.classify import MLPClassifier, confusion_matrix, render_confusion, split_dataset
from repro.core.zipchannel.fingerprint import build_dataset, victim_timeline
from repro.workloads import brotli_like_corpus

TRACES_PER_FILE = 50
EPOCHS = 80


def run_experiment():
    corpus = brotli_like_corpus()
    names = list(corpus)
    x, y, timelines = build_dataset(
        list(corpus.values()), traces_per_file=TRACES_PER_FILE, seed=77
    )
    (train, val, test) = split_dataset(x, y, seed=78)
    clf = MLPClassifier(x.shape[1], len(names), hidden=96, seed=79)
    clf.fit(*train, epochs=EPOCHS, x_val=val[0], y_val=val[1])
    matrix = confusion_matrix(test[1], clf.predict(test[0]), len(names))
    return names, timelines, clf.accuracy(*test), matrix


def test_bench_fig7(benchmark, experiment_report):
    names, timelines, test_acc, matrix = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    diag = np.diagonal(matrix)
    chance = 1 / len(names)

    # Group files by whether they ever run mainSort.
    fallback_only = [
        i for i, tl in enumerate(timelines)
        if not tl.intervals["mainSort"]
    ]
    tiny = [i for i in fallback_only if timelines[i].duration < 1000]
    main_users = [i for i in range(len(names)) if i not in fallback_only]

    experiment_report(
        "Fig. 7 — fingerprinting 21 corpus files",
        [
            ("chance baseline", "4.76%", f"{chance * 100:.2f}%"),
            ("overall test accuracy", '"decent"', f"{test_acc * 100:.1f}%"),
            ("mean acc, mainSort files", "high", f"{np.mean(diag[main_users]) * 100:.1f}%"),
            ("mean acc, tiny fallback-only", "low (confused)", f"{np.mean(diag[tiny]) * 100:.1f}%"),
            ("file 'x'", "20% (vs 4.76%)", f"{diag[names.index('x')] * 100:.0f}%"),
        ],
    )
    print(render_confusion(matrix, names))

    assert test_acc > 5 * chance  # far above chance overall
    assert np.mean(diag[main_users]) > 0.6
    # The paper's confusable group: tiny straight-to-fallback files do
    # markedly worse than the files that exercise mainSort.
    assert np.mean(diag[tiny]) < np.mean(diag[main_users])
