"""ABL-CAT: Intel CAT as an offensive technique (Section V-C1).

Paper design claim: partitioning the LLC ways "avoid[s] cache contention
from unrelated applications that can lead to false positives in the
cache timing attack".  The ablation runs the same SGX extraction with
and without the CAT partition under growing background contention; CAT
must hold accuracy and keep observations unambiguous.

Rewritten on the :mod:`repro.campaign` engine: the grid is a campaign
spec, the four attacks run through the fault-tolerant parallel runner
into a persistent store, and the same spec is raced with 1 vs 4 workers
— on a multi-core host the 4-worker run must finish in measurably less
wall time (on a single core the engine can only prove it completes with
identical results).
"""

import os

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore

NOISE_RATES = (8, 60)

SPEC = dict(
    name="ablation-cat",
    experiment="sgx_attack",
    grid={"noise": list(NOISE_RATES), "use_cat": [True, False]},
    fixed={"size": 500, "secret_seed": 66},
    trials=1,
    base_seed=66,
    max_retries=1,
)


def run_campaign(root, workers: int) -> dict:
    """Run the ablation grid through the campaign runner; return
    metrics per (noise, use_cat) cell plus the campaign wall time."""
    spec = CampaignSpec(**SPEC)
    store = ResultStore(root)
    result = CampaignRunner(spec, store, workers=workers).run()
    assert result.counts.get("ok") == spec.n_jobs(), result.summary()
    cells = {}
    for record in store.load_records().values():
        key = (record.params["noise"], record.params["use_cat"])
        cells[key] = record.metrics
    return {"cells": cells, "elapsed": result.elapsed_seconds}


def test_bench_ablation_cat(benchmark, experiment_report, tmp_path):
    serial = benchmark.pedantic(
        run_campaign, args=(tmp_path / "w1", 1), rounds=1, iterations=1
    )
    parallel = run_campaign(tmp_path / "w4", 4)
    cells = serial["cells"]

    rows = []
    for rate in NOISE_RATES:
        with_cat = cells[(rate, True)]
        without = cells[(rate, False)]
        rows.append(
            (
                f"noise={rate}: bit accuracy",
                "CAT >= no-CAT",
                f"{with_cat['bit_accuracy'] * 100:.2f}% vs "
                f"{without['bit_accuracy'] * 100:.2f}%",
            )
        )
        rows.append(
            (
                f"noise={rate}: ambiguous obs",
                "CAT ~0, no-CAT grows",
                f"{with_cat['observations_ambiguous']} vs "
                f"{without['observations_ambiguous']}",
            )
        )
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        available_cpus = os.cpu_count() or 1
    rows.append(
        (
            "campaign wall time, 1 vs 4 workers",
            "parallel wins given cores",
            f"{serial['elapsed']:.2f}s vs {parallel['elapsed']:.2f}s "
            f"({available_cpus} cpu)",
        )
    )
    experiment_report("Ablation — Intel CAT partitioning (Section V-C1)", rows)

    for rate in NOISE_RATES:
        with_cat = cells[(rate, True)]
        without = cells[(rate, False)]
        assert with_cat["bit_accuracy"] >= without["bit_accuracy"]
        assert (
            with_cat["observations_ambiguous"]
            <= without["observations_ambiguous"]
        )
    # Under heavy contention the gap is material.
    heavy = NOISE_RATES[-1]
    assert (
        cells[(heavy, False)]["observations_ambiguous"]
        - cells[(heavy, True)]["observations_ambiguous"]
        > 50
    )

    # Determinism across runner configurations: the derived seeds make
    # the parallel campaign bit-identical to the serial one.  Wall-clock
    # fields necessarily differ between runs, so compare everything else.
    def strip_timing(metrics: dict) -> dict:
        return {k: v for k, v in metrics.items() if k != "elapsed_seconds"}

    assert {k: strip_timing(v) for k, v in parallel["cells"].items()} == {
        k: strip_timing(v) for k, v in cells.items()
    }

    # The CPU-bound speedup claim only holds where there are CPUs to
    # use; available_cpus is affinity/cgroup aware, not the host total.
    if available_cpus >= 4:
        assert parallel["elapsed"] < serial["elapsed"]
