"""ABL-CAT: Intel CAT as an offensive technique (Section V-C1).

Paper design claim: partitioning the LLC ways "avoid[s] cache contention
from unrelated applications that can lead to false positives in the
cache timing attack".  The ablation runs the same SGX extraction with
and without the CAT partition under growing background contention; CAT
must hold accuracy and keep observations unambiguous.
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads import random_bytes

SECRET = random_bytes(500, seed=66)
NOISE_RATES = (8, 60)


def run_grid():
    out = {}
    for rate in NOISE_RATES:
        for use_cat in (True, False):
            cfg = AttackConfig(use_cat=use_cat, background_noise_rate=rate)
            out[(rate, use_cat)] = SgxBzip2Attack(SECRET, cfg).run()
    return out


def test_bench_ablation_cat(benchmark, experiment_report):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for rate in NOISE_RATES:
        with_cat = results[(rate, True)]
        without = results[(rate, False)]
        rows.append(
            (
                f"noise={rate}: bit accuracy",
                "CAT >= no-CAT",
                f"{with_cat.bit_accuracy * 100:.2f}% vs {without.bit_accuracy * 100:.2f}%",
            )
        )
        rows.append(
            (
                f"noise={rate}: ambiguous obs",
                "CAT ~0, no-CAT grows",
                f"{with_cat.observations_ambiguous} vs {without.observations_ambiguous}",
            )
        )
    experiment_report("Ablation — Intel CAT partitioning (Section V-C1)", rows)

    for rate in NOISE_RATES:
        with_cat = results[(rate, True)]
        without = results[(rate, False)]
        assert with_cat.bit_accuracy >= without.bit_accuracy
        assert with_cat.observations_ambiguous <= without.observations_ambiguous
    # Under heavy contention the gap is material.
    heavy = NOISE_RATES[-1]
    assert (
        results[(heavy, False)].observations_ambiguous
        - results[(heavy, True)].observations_ambiguous
        > 50
    )
