"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison; EXPERIMENTS.md records the
resulting numbers.
"""

import pytest


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table under a figure/table title."""
    width = max(len(r[0]) for r in rows)
    print(f"\n=== {title} ===")
    print(f"{'metric':<{width}}  {'paper':>22}  {'measured':>22}")
    for metric, paper, measured in rows:
        print(f"{metric:<{width}}  {paper:>22}  {measured:>22}")


@pytest.fixture
def experiment_report():
    return report
