"""Tests for the on-disk trace store: indexing, integrity, lifecycle."""

import numpy as np
import pytest

from repro.exec.events import MemoryAccess
from repro.taint.bittaint import BitTaint
from repro.traces import (
    FingerprintCapture,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    TraceFormatError,
    TraceStore,
    file_sha256,
)


def _records(n=20, base=1 << 44):
    return [
        MemoryAccess(seq=i + 1, kind="read", array="head", index=i,
                     elem_size=2, address=base + 2 * i,
                     addr_taint=BitTaint.byte(i), site="deflate_slow/head[ins_h]")
        for i in range(n)
    ]


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "corpus.trstore")


class TestLifecycle:
    def test_put_get_read(self, store):
        entry = store.put("t1", SPECIES_MEMORY, _records(),
                          meta={"target": "zlib", "size": 20})
        assert entry.n_records == 20
        assert store.get("t1").sha256 == entry.sha256
        assert store.get("t1").meta["target"] == "zlib"
        back = store.read("t1")
        assert [r.address for r in back] == [r.address for r in _records()]

    def test_get_missing_raises_keyerror(self, store):
        store.open()
        with pytest.raises(KeyError, match="nope"):
            store.get("nope")

    def test_overwrite_guard(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        with pytest.raises(FileExistsError, match="overwrite"):
            store.put("t1", SPECIES_MEMORY, _records())
        store.put("t1", SPECIES_MEMORY, _records(5), overwrite=True)
        assert store.get("t1").n_records == 5

    def test_delete(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        store.delete("t1")
        assert store.trace_ids() == []
        with pytest.raises(KeyError):
            store.delete("t1")

    def test_invalid_trace_id_rejected(self, store):
        with pytest.raises(ValueError, match="invalid trace id"):
            store.put("../escape", SPECIES_MEMORY, _records())
        with pytest.raises(ValueError, match="invalid trace id"):
            store.put("", SPECIES_MEMORY, _records())

    def test_open_missing_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStore(tmp_path / "absent.trstore").open(create=False)

    def test_aborted_writer_leaves_no_entry(self, store):
        with pytest.raises(RuntimeError, match="boom"):
            with store.create("t1", SPECIES_MEMORY) as writer:
                writer.append(_records(1)[0])
                raise RuntimeError("boom")
        assert store.trace_ids() == []
        assert not store.trace_path("t1").exists()

    def test_parallel_style_independent_writes(self, store):
        """Two captures of different ids never touch a shared file, so
        interleaved writers commit independently."""
        w1 = store.create("a", SPECIES_MEMORY)
        w2 = store.create("b", SPECIES_MEMORY)
        w1.extend(_records(3))
        w2.extend(_records(4))
        w2.close()
        w1.close()
        assert store.trace_ids() == ["a", "b"]
        assert store.get("a").n_records == 3
        assert store.get("b").n_records == 4


class TestListing:
    def test_list_filters(self, store):
        store.put("m1", SPECIES_MEMORY, _records(), meta={"target": "zlib"})
        store.put("m2", SPECIES_MEMORY, _records(), meta={"target": "lzw"})
        store.put(
            "f1",
            SPECIES_FINGERPRINT,
            [FingerprintCapture(0, 7, np.zeros((2, 10), dtype=np.int8))],
            meta={"corpus": "lipsum"},
        )
        assert {e.trace_id for e in store.list()} == {"m1", "m2", "f1"}
        assert [e.trace_id for e in store.list(species=SPECIES_MEMORY)] == ["m1", "m2"]
        assert [e.trace_id for e in store.list(target="lzw")] == ["m2"]
        assert store.list(target="bzip2") == []


class TestIntegrity:
    def test_verify_clean_store(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        reports = store.verify()
        assert [(r.trace_id, r.ok) for r in reports] == [("t1", True)]

    def test_verify_detects_flipped_byte(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        path = store.trace_path("t1")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 1
        path.write_bytes(bytes(blob))
        (report,) = store.verify("t1")
        assert not report.ok and "sha256 mismatch" in report.problem

    def test_verify_detects_missing_file(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        store.trace_path("t1").unlink()
        (report,) = store.verify("t1")
        assert not report.ok and "missing" in report.problem

    def test_verify_flags_orphan_trace(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        store.entry_path("t1").unlink()  # simulate a crashed capture
        reports = store.verify()
        assert any(not r.ok and "orphan" in r.problem for r in reports)

    def test_read_detects_corruption_inline(self, store):
        """Corruption surfaces on *read*, not only on verify."""
        store.put("t1", SPECIES_MEMORY, _records(200))
        path = store.trace_path("t1")
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError):
            store.read("t1")

    def test_species_mismatch_between_index_and_file(self, store):
        store.put("t1", SPECIES_MEMORY, _records())
        entry_path = store.entry_path("t1")
        entry_path.write_text(
            entry_path.read_text().replace('"memory"', '"fingerprint"')
        )
        with pytest.raises(TraceFormatError, match="species"):
            store.read("t1")

    def test_file_sha256_matches_hashlib(self, tmp_path):
        import hashlib

        path = tmp_path / "x.bin"
        payload = bytes(range(256)) * 100
        path.write_bytes(payload)
        assert file_sha256(path) == hashlib.sha256(payload).hexdigest()
