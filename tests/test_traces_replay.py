"""Replay fidelity: stored traces are interchangeable with live captures.

The acceptance contract of the trace layer is *exact* equality — the
Section IV recovery metrics and the Section VI classifier metrics
computed from stored traces match the live pipeline bit for bit under
the same seeds.
"""

import numpy as np
import pytest

from repro.campaign.experiments import get_experiment
from repro.core.zipchannel.fingerprint import (
    build_dataset,
    derive_capture_seed,
    run_fingerprint_experiment,
)
from repro.exec import TracingContext, TraceLimitExceeded
from repro.traces import (
    SPECIES_MEMORY,
    TraceStore,
    capture_fingerprint_traces,
    capture_memory_trace,
    capture_survey_traces,
    dataset_from_store,
    deserialize_records,
    fingerprint_experiment_from_store,
    recover_from_trace,
    replay_lines,
    serialize_records,
    survey_from_store,
)
from repro.workloads import repetitiveness_series

SIZE = 150
SEED = 5


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "replay.trstore")


class TestSurveyReplayFidelity:
    def test_stored_survey_matches_live_exactly(self, store):
        """SURVEY from the store == SURVEY re-simulated, same seeds."""
        capture_survey_traces(store, size=SIZE, seed=SEED)
        live = get_experiment("survey_recovery")({"size": SIZE}, SEED)
        replayed = survey_from_store(store, size=SIZE, sweep_seed=SEED)
        assert replayed == live

    def test_replay_lines_matches_observed_lines(self, store):
        from repro.compression import deflate_compress
        from repro.compression.lz77 import SITE_HEAD
        from repro.recovery import observed_lines
        from repro.workloads import lowercase_ascii

        data = lowercase_ascii(SIZE, seed=SEED)
        ctx = TracingContext()
        deflate_compress(data, ctx=ctx)
        live_lines = observed_lines(ctx, SITE_HEAD, kind="write")

        capture_memory_trace(store, "z", "zlib", SIZE, SEED)
        stored_lines = replay_lines(
            store.iter_records("z"), sites=(SITE_HEAD,), kind="write"
        )
        assert stored_lines == live_lines

    def test_recovery_metadata_is_self_contained(self, store):
        """A single stored trace carries everything its decoder needs."""
        capture_memory_trace(store, "b", "bzip2", SIZE, SEED)
        metrics = recover_from_trace(store, "b")
        assert metrics["target"] == "bzip2"
        assert metrics["bzip2_bit_accuracy"] == 1.0

    def test_recover_rejects_wrong_species(self, store):
        capture_fingerprint_traces(
            store, "fp", corpus="lipsum", traces_per_file=1, seed=0
        )
        with pytest.raises(ValueError, match="'memory'"):
            recover_from_trace(store, "fp")


class TestFingerprintReplayFidelity:
    TRACES = 3

    def test_stored_dataset_matches_live_exactly(self, store):
        capture_fingerprint_traces(
            store, "fp", corpus="lipsum", traces_per_file=self.TRACES, seed=SEED
        )
        x_live, y_live, _ = build_dataset(
            repetitiveness_series(), traces_per_file=self.TRACES, seed=SEED
        )
        x_rep, y_rep = dataset_from_store(store, "fp")
        assert np.array_equal(x_rep, x_live)
        assert np.array_equal(y_rep, y_live)

    def test_classifier_metrics_match_live_exactly(self, store):
        """FIG7-style metrics from the store == live run, same seeds."""
        capture_fingerprint_traces(
            store, "fp", corpus="lipsum", traces_per_file=self.TRACES, seed=SEED
        )
        live = run_fingerprint_experiment(
            corpus="lipsum", traces=self.TRACES, epochs=4, seed=SEED
        )
        replayed = fingerprint_experiment_from_store(
            store, "fp", epochs=4, seed=SEED
        )
        assert replayed == live

    def test_capture_seeds_recorded_per_record(self, store):
        capture_fingerprint_traces(
            store, "fp", corpus="lipsum", traces_per_file=2, seed=SEED
        )
        records = store.read("fp")
        expected = [
            derive_capture_seed(SEED, label, i)
            for label in range(5)
            for i in range(2)
        ]
        assert [r.capture_seed for r in records] == expected
        assert [r.label for r in records] == [l for l in range(5) for _ in range(2)]

    def test_capture_seed_derivation_is_order_free(self):
        """Each capture's seed depends only on its own coordinates."""
        assert derive_capture_seed(1, 3, 7) == derive_capture_seed(1, 3, 7)
        seeds = {
            derive_capture_seed(s, label, i)
            for s in (0, 1)
            for label in (0, 1, 2)
            for i in (0, 1)
        }
        assert len(seeds) == 12  # no collisions across coordinates


class TestTraceLimitBudget:
    def test_partial_trace_is_still_serializable(self):
        """Regression for the TraceLimitExceeded path: when a traced run
        blows its event budget, everything recorded up to the limit must
        still round-trip through the trace format (a crashed campaign
        job's partial capture is evidence, not garbage)."""
        from repro.compression import lzw_compress
        from repro.workloads import random_bytes

        ctx = TracingContext(max_events=500)
        with pytest.raises(TraceLimitExceeded, match="500"):
            lzw_compress(random_bytes(400, seed=3), ctx=ctx)

        partial = ctx.tainted_accesses()
        assert 0 < len(partial) <= 500
        assert len(ctx.events) == 500  # budget honoured exactly
        blob = serialize_records(SPECIES_MEMORY, partial)
        back = deserialize_records(blob)
        assert len(back) == len(partial)
        assert [r.address for r in back] == [r.address for r in partial]
        assert [bool(r.addr_taint) for r in back] == [True] * len(partial)

    def test_partial_trace_storable_and_verifiable(self, store, tmp_path):
        from repro.compression import lzw_compress
        from repro.workloads import random_bytes

        ctx = TracingContext(max_events=300)
        with pytest.raises(TraceLimitExceeded):
            lzw_compress(random_bytes(400, seed=3), ctx=ctx)
        entry = store.put(
            "partial", SPECIES_MEMORY, ctx.tainted_accesses(),
            meta={"truncated": True},
        )
        assert entry.n_records == len(ctx.tainted_accesses())
        (report,) = store.verify("partial")
        assert report.ok


class TestCampaignAdapters:
    def test_capture_then_analyze_sweeps(self, tmp_path):
        """The capture-once/analyze-many campaign flow: one experiment
        captures into a shared store, the analysis experiments consume
        it and reproduce the live metrics exactly."""
        store_dir = str(tmp_path / "campaign.trstore")
        capture = get_experiment("trace_capture")
        out = capture(
            {"store": store_dir, "kind": "survey", "size": SIZE,
             "sweep_seed": SEED},
            seed=12345,  # job seed differs; sweep_seed pins the ids
        )
        assert len(out["trace_ids"]) == 3 and out["n_records"] > 0

        analyze = get_experiment("survey_from_store")
        replayed = analyze(
            {"store": store_dir, "size": SIZE, "sweep_seed": SEED}, seed=999
        )
        live = get_experiment("survey_recovery")({"size": SIZE}, SEED)
        assert replayed == live

    def test_fingerprint_capture_then_analyze(self, tmp_path):
        store_dir = str(tmp_path / "fp.trstore")
        capture = get_experiment("trace_capture")
        capture(
            {"store": store_dir, "kind": "fingerprint", "corpus": "lipsum",
             "traces": 2, "sweep_seed": SEED},
            seed=1,
        )
        analyze = get_experiment("fingerprint_from_store")
        metrics = analyze(
            {"store": store_dir, "corpus": "lipsum", "traces": 2,
             "sweep_seed": SEED, "epochs": 2},
            seed=SEED,
        )
        live = run_fingerprint_experiment(
            corpus="lipsum", traces=2, epochs=2, seed=SEED
        )
        assert metrics == live


class TestTraceCli:
    def test_capture_list_verify_export(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "cli.trstore")
        assert main([
            "trace", "capture", "--store", store_dir,
            "--size", "80", "--seed", "3", "--targets", "zlib", "lzw",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("captured ") == 2

        assert main(["trace", "list", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "survey-zlib-n80-s3" in out and "memory" in out

        assert main(["trace", "verify", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2

        export_path = tmp_path / "dump.json"
        assert main([
            "trace", "export", "--store", store_dir,
            "--id", "survey-zlib-n80-s3", "--out", str(export_path),
        ]) == 0
        import json

        payload = json.loads(export_path.read_text())
        assert payload["entry"]["species"] == "memory"
        assert payload["records"][0]["tainted"] is True

    def test_verify_reports_corruption_with_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "cli.trstore"
        store = TraceStore(store_dir)
        store.put(
            "t1", SPECIES_MEMORY,
            [r for r in _tiny_records()],
        )
        path = store.trace_path("t1")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 1
        path.write_bytes(bytes(blob))
        assert main(["trace", "verify", "--store", str(store_dir)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_missing_store_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "list", "--store", str(tmp_path / "no")]) == 2
        capsys.readouterr()

    def test_fingerprint_capture_cli(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "fp.trstore")
        assert main([
            "trace", "capture", "--store", store_dir,
            "--species", "fingerprint", "--corpus", "lipsum",
            "--traces", "1", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "fingerprint-lipsum-t1-s2" in out


def _tiny_records():
    from repro.exec.events import MemoryAccess

    return [
        MemoryAccess(seq=i + 1, kind="read", array="a", index=i,
                     elem_size=1, address=(1 << 40) + i, site="s")
        for i in range(10)
    ]
