"""Tests for the Brotli-style LZ77 match finder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.brotli_like import (
    SITE_BROTLI_HEAD,
    brotli_like_compress,
)
from repro.compression.lz77 import deflate_compress, deflate_decompress
from repro.core.taintchannel import TaintChannel
from repro.exec import TracingContext
from repro.workloads import english_like


class TestRoundTrip:
    def test_empty(self):
        assert deflate_decompress(brotli_like_compress(b"")) == b""

    def test_short(self):
        assert deflate_decompress(brotli_like_compress(b"abc")) == b"abc"

    def test_text(self):
        data = english_like(6000, seed=4)
        assert deflate_decompress(brotli_like_compress(data)) == data

    def test_random(self):
        rng = random.Random(2)
        data = bytes(rng.randrange(256) for _ in range(4000))
        assert deflate_decompress(brotli_like_compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"over and over and over " * 300
        assert len(brotli_like_compress(data)) < len(data) // 2

    @given(st.binary(max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert deflate_decompress(brotli_like_compress(data)) == data


class TestGadget:
    def test_head_gadget_detected(self):
        tc = TaintChannel()
        data = english_like(400, seed=5)
        result = tc.analyze(
            "brotli", lambda ctx: brotli_like_compress(data, ctx)
        )
        gadget = result.gadget(SITE_BROTLI_HEAD)
        assert gadget.count >= len(data) - 3

    def test_full_input_coverage(self):
        tc = TaintChannel()
        data = english_like(300, seed=6)
        result = tc.analyze(
            "brotli", lambda ctx: brotli_like_compress(data, ctx)
        )
        assert result.input_coverage() == 1.0

    def test_multiplicative_hash_smears_taint(self):
        """Unlike Zlib's shift-xor (clean per-byte bit ranges, Fig. 2),
        the multiplicative mix smears each byte across the index."""
        ctx = TracingContext()
        brotli_like_compress(b"\x01\x02\x03\x04\x05\x06\x07\x08", ctx=ctx)
        acc = next(
            a for a in ctx.tainted_accesses() if a.site == SITE_BROTLI_HEAD
        )
        # Each contributing byte's taint spans (nearly) the whole index.
        for tag in acc.addr_taint.tags():
            bits = acc.addr_taint.bits_of_tag(tag)
            assert len(bits) > 10

    def test_different_hash_than_zlib(self):
        data = english_like(500, seed=7)
        assert brotli_like_compress(data) != deflate_compress(data)
