"""Edge-case coverage for reporting, metrics, and small utilities."""

import numpy as np
import pytest

from repro.classify.metrics import confusion_matrix, diagonal_accuracy
from repro.core.taintchannel import TaintChannel
from repro.core.taintchannel.gadgets import Gadget
from repro.core.taintchannel.report import render_access, render_gadget
from repro.exec import TracingContext
from repro.exec.events import MemoryAccess
from repro.taint import BitTaint
from repro.taint.tags import TagRegistry


class TestReportEdges:
    def test_empty_gadget_renders_summary_only(self):
        gadget = Gadget(site="s", array="a")
        registry = TagRegistry()
        assert "gadget" in render_gadget(gadget, registry)

    def test_untainted_access_renders_placeholder(self):
        registry = TagRegistry()
        access = MemoryAccess(seq=1, kind="read", array="a", index=0,
                              elem_size=4, address=0x1000)
        text = render_access(access, registry, with_slice=False)
        assert "untainted" in text

    def test_wide_taint_extends_ruler(self):
        registry = TagRegistry()
        tag = registry.new_tag("input", 0)
        access = MemoryAccess(
            seq=1,
            kind="read",
            array="a",
            index=0,
            elem_size=8,
            address=0x2000,
            addr_taint=BitTaint.of_bits(tag, [3, 21]),
        )
        text = render_access(access, registry, with_slice=False)
        assert "|21|" in text  # ruler covers the highest tainted bit

    def test_sample_index_clamped(self):
        tc = TaintChannel()
        from repro.compression.lzw import lzw_compress

        result = tc.analyze("lzw", lambda ctx: lzw_compress(b"ab", ctx))
        gadget = result.gadgets[0]
        # Way out of range: must clamp, not raise.
        assert render_gadget(gadget, result.tags, sample_index=10_000)

    def test_sample_index_negative_clamps_to_first(self):
        tc = TaintChannel()
        from repro.compression.lzw import lzw_compress

        result = tc.analyze("lzw", lambda ctx: lzw_compress(b"abcabc", ctx))
        gadget = result.gadgets[0]
        # A negative index must clamp to the first access, not wrap
        # around to a sample from the tail of the list.
        assert render_gadget(
            gadget, result.tags, sample_index=-5
        ) == render_gadget(gadget, result.tags, sample_index=0)

    def test_analyze_with_existing_trace(self):
        from repro.compression.lzw import lzw_compress

        tc = TaintChannel()
        ctx = tc.trace(lambda c: lzw_compress(b"abcabc", c))
        result = tc.analyze("lzw", lambda c: None, ctx=ctx)
        assert result.input_len == 6
        assert result.gadgets

    def test_gadget_data_flow_reaches_input_root(self):
        from repro.taint.value import InputRecord, Operand, OpRecord

        registry = TagRegistry()
        tag = registry.new_tag("input", 0)
        taint = BitTaint.of_bits(tag, [6, 7])
        root = InputRecord(seq=1, source="input", index=0, value=7, tag=tag)
        op = OpRecord(
            seq=2,
            op="shl",
            operands=(Operand(value=7, taint=taint, origin=root),),
            result_value=448,
            result_taint=taint,
        )
        access = MemoryAccess(
            seq=3, kind="read", array="t", index=448, elem_size=1,
            address=0x1000, addr_taint=taint, addr_origin=op,
        )
        assert Gadget(site="s", array="t", accesses=[access]).is_data_flow()

    def test_gadget_control_flow_dead_ends_in_compare(self):
        from repro.taint.value import CompareRecord, Operand, OpRecord

        registry = TagRegistry()
        tag = registry.new_tag("input", 0)
        taint = BitTaint.of_bits(tag, [6])
        # The index was picked by a tainted branch: the slice stops at
        # the CompareRecord and never reaches an InputRecord.
        branch = CompareRecord(
            seq=1,
            op="eq",
            operands=(Operand(value=7, taint=taint, origin=None),),
            outcome=True,
        )
        op = OpRecord(
            seq=2,
            op="add",
            operands=(Operand(value=1, taint=taint, origin=branch),),
            result_value=64,
            result_taint=taint,
        )
        access = MemoryAccess(
            seq=3, kind="read", array="t", index=64, elem_size=1,
            address=0x1000, addr_taint=taint, addr_origin=op,
        )
        gadget = Gadget(site="s", array="t", accesses=[access])
        assert not gadget.is_data_flow()

    def test_gadget_without_provenance_defaults_to_data_flow(self):
        # ADDRESS_ONLY traces record no addr_origin: keep the
        # historical data-flow default rather than calling them control
        # flow.
        registry = TagRegistry()
        tag = registry.new_tag("input", 0)
        access = MemoryAccess(
            seq=1, kind="read", array="a", index=0, elem_size=1,
            address=0, addr_taint=BitTaint.of_bits(tag, [6]),
        )
        assert Gadget(site="s", array="a").is_data_flow()
        assert Gadget(site="s", array="a", accesses=[access]).is_data_flow()


class TestMetricsEdges:
    def test_diagonal_accuracy(self):
        m = np.array([[0.9, 0.2], [0.1, 0.8]])
        assert list(diagonal_accuracy(m)) == [0.9, 0.8]

    def test_confusion_matrix_empty_class_column(self):
        cm = confusion_matrix(np.array([0, 0]), np.array([0, 0]), 3)
        assert cm[0, 0] == 1.0
        assert cm[:, 1].sum() == 0.0  # unchallenged class stays zero

    def test_pool_trace_truncates_remainder(self):
        from repro.core.zipchannel.fingerprint import pool_trace

        trace = np.zeros((2, 1005), dtype=np.int8)
        trace[1, 1004] = 1  # falls in the truncated tail
        pooled = pool_trace(trace, width=100)
        assert pooled.shape == (2, 100)
        assert pooled.sum() == 0


class TestWorkloadEdges:
    def test_lipsum_paragraph_deterministic(self):
        import random

        from repro.workloads.lipsum import lipsum_paragraph

        a = lipsum_paragraph(random.Random(1))
        b = lipsum_paragraph(random.Random(1))
        assert a == b
        assert a[0].isupper() and a.endswith(".")

    def test_english_like_exact_length(self):
        from repro.workloads import english_like

        for n in (0, 1, 7, 100):
            assert len(english_like(n, seed=1)) == n

    def test_random_bytes_seeded(self):
        from repro.workloads import random_bytes

        assert random_bytes(32, seed=5) == random_bytes(32, seed=5)
        assert random_bytes(32, seed=5) != random_bytes(32, seed=6)


class TestTagRegistryEdges:
    def test_same_byte_shares_tag(self):
        registry = TagRegistry()
        a = registry.new_tag("input", 3)
        b = registry.new_tag("input", 3)
        assert a == b
        assert len(registry) == 1

    def test_info_roundtrip(self):
        registry = TagRegistry()
        tag = registry.new_tag("key", 9)
        info = registry.info(tag)
        assert (info.source, info.index) == ("key", 9)
        assert str(info) == "key[9]"
