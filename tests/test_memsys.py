"""Unit tests for paging, permissions, faults and frame remapping."""

import pytest

from repro.memsys import (
    PAGE_SIZE,
    AddressSpace,
    PageFault,
    Permissions,
)


@pytest.fixture
def space():
    return AddressSpace(n_frames=64)


class TestMapping:
    def test_translate_roundtrip(self, space):
        space.map_range(0x10000, PAGE_SIZE)
        paddr = space.translate(0x10123, "read")
        assert paddr % PAGE_SIZE == 0x123

    def test_unmapped_faults(self, space):
        with pytest.raises(PageFault):
            space.translate(0xDEAD000, "read")

    def test_map_range_spans_pages(self, space):
        space.map_range(0x20000, 3 * PAGE_SIZE + 1)
        for off in range(0, 4 * PAGE_SIZE, PAGE_SIZE):
            space.translate(0x20000 + off, "write")

    def test_frames_are_distinct(self, space):
        space.map_range(0x0, 4 * PAGE_SIZE)
        frames = {space.frame_of(p * PAGE_SIZE) for p in range(4)}
        assert len(frames) == 4

    def test_frames_not_virtually_contiguous(self):
        space = AddressSpace(n_frames=4096)
        space.map_range(0x0, 16 * PAGE_SIZE)
        frames = [space.frame_of(p * PAGE_SIZE) for p in range(16)]
        deltas = {b - a for a, b in zip(frames, frames[1:])}
        assert deltas != {1}

    def test_out_of_frames(self):
        space = AddressSpace(n_frames=2)
        space.map_range(0, 2 * PAGE_SIZE)
        with pytest.raises(MemoryError):
            space.map_range(PAGE_SIZE * 10, PAGE_SIZE)


class TestPermissions:
    def test_write_fault_on_readonly(self, space):
        space.map_range(0x30000, PAGE_SIZE)
        space.mprotect(0x30000, PAGE_SIZE, Permissions.READ)
        space.translate(0x30000, "read")
        with pytest.raises(PageFault) as exc:
            space.translate(0x30040, "write")
        assert exc.value.kind == "write"

    def test_update_needs_write(self, space):
        space.map_range(0x30000, PAGE_SIZE)
        space.mprotect(0x30000, PAGE_SIZE, Permissions.READ)
        with pytest.raises(PageFault):
            space.translate(0x30000, "update")

    def test_none_blocks_reads(self, space):
        space.map_range(0x40000, PAGE_SIZE)
        space.mprotect(0x40000, PAGE_SIZE, Permissions.NONE)
        with pytest.raises(PageFault) as exc:
            space.translate(0x40008, "read")
        assert exc.value.kind == "read"

    def test_fault_address_masked_to_page(self, space):
        """SGX: fault addresses lose their low 12 bits (Section V-B)."""
        space.map_range(0x50000, PAGE_SIZE)
        space.mprotect(0x50000, PAGE_SIZE, Permissions.NONE)
        with pytest.raises(PageFault) as exc:
            space.translate(0x50ABC, "read")
        assert exc.value.page_vaddr == 0x50000

    def test_restore_clears_fault(self, space):
        space.map_range(0x60000, PAGE_SIZE)
        space.mprotect(0x60000, PAGE_SIZE, Permissions.NONE)
        space.mprotect(0x60000, PAGE_SIZE, Permissions.RW)
        space.translate(0x60000, "write")

    def test_mprotect_unmapped_rejected(self, space):
        with pytest.raises(ValueError):
            space.mprotect(0x999000, PAGE_SIZE, Permissions.READ)

    def test_fault_count(self, space):
        space.map_range(0x70000, PAGE_SIZE)
        space.mprotect(0x70000, PAGE_SIZE, Permissions.NONE)
        for _ in range(3):
            with pytest.raises(PageFault):
                space.translate(0x70000, "read")
        assert space.fault_count == 3


class TestRemap:
    def test_remap_changes_frame(self, space):
        space.map_range(0x80000, PAGE_SIZE)
        old = space.frame_of(0x80000)
        new = space.remap(0x80000)
        assert new != old
        assert space.frame_of(0x80000) == new

    def test_remap_recycles_fifo(self, space):
        """Consecutive remaps must explore fresh frames, not ping-pong."""
        space.map_range(0x80000, PAGE_SIZE)
        seen = {space.frame_of(0x80000)}
        for _ in range(10):
            seen.add(space.remap(0x80000))
        assert len(seen) == 11

    def test_remap_preserves_permissions(self, space):
        space.map_range(0x80000, PAGE_SIZE)
        space.mprotect(0x80000, PAGE_SIZE, Permissions.READ)
        space.remap(0x80000)
        with pytest.raises(PageFault):
            space.translate(0x80000, "write")

    def test_page_addresses(self, space):
        got = space.page_addresses(0x1800, 2 * PAGE_SIZE)
        assert got == [0x1000, 0x2000, 0x3000]
