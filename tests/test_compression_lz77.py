"""Tests for the zlib-style deflate implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lz77 import (
    HASH_MASK,
    H_SHIFT,
    MIN_MATCH,
    SITE_HEAD,
    deflate_compress,
    deflate_decompress,
)
from repro.exec import TracingContext


class TestRoundTrip:
    def test_empty(self):
        assert deflate_decompress(deflate_compress(b"")) == b""

    def test_single_byte(self):
        assert deflate_decompress(deflate_compress(b"Z")) == b"Z"

    def test_short_no_match(self):
        assert deflate_decompress(deflate_compress(b"abc")) == b"abc"

    def test_overlapping_match(self):
        data = b"a" * 300  # match with distance 1, length > distance
        assert deflate_decompress(deflate_compress(data)) == data

    def test_text(self):
        data = b"she sells sea shells by the sea shore " * 60
        assert deflate_decompress(deflate_compress(data)) == data

    def test_random(self):
        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(5000))
        assert deflate_decompress(deflate_compress(data)) == data

    def test_long_matches(self):
        data = (b"0123456789abcdef" * 40 + b"XYZ") * 10
        assert deflate_decompress(deflate_compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"hello world " * 400
        assert len(deflate_compress(data)) < len(data) // 2

    def test_binary_with_long_runs(self):
        data = b"\x00" * 1000 + bytes(range(256)) + b"\xff" * 1000
        assert deflate_decompress(deflate_compress(data)) == data

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert deflate_decompress(deflate_compress(data)) == data

    @given(st.text(alphabet="abc ", min_size=0, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_matchy(self, text):
        data = text.encode()
        assert deflate_decompress(deflate_compress(data)) == data


class TestFormat:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            deflate_decompress(b"XY\x00\x00\x00\x00")

    def test_corrupt_distance(self):
        blob = bytearray(deflate_compress(b"abcabcabc" * 10))
        # Smash the token stream: decoding should fail loudly, not hang.
        for i in range(6, len(blob)):
            blob[i] ^= 0xFF
        with pytest.raises((ValueError, EOFError)):
            deflate_decompress(bytes(blob))


class TestGadget:
    """head[ins_h] must carry the 3-byte sliding-xor taint of Fig. 2."""

    def test_insert_taint_layout(self):
        ctx = TracingContext()
        deflate_compress(b"\x01\x02\x03\x04\x05\x06", ctx=ctx)
        writes = [
            a
            for a in ctx.tainted_accesses()
            if a.site == SITE_HEAD and a.kind == "write"
        ]
        assert writes, "no head[ins_h] store recorded"
        acc = writes[0]  # insert at position 0 consumes bytes 0,1,2
        # Address = head + ins_h*2: byte i at addr bits 11-15, byte i+1
        # at 6-13, byte i+2 at 1-8 (Fig. 2).
        assert acc.addr_taint.bits_of_tag(0) == list(range(11, 16))
        assert acc.addr_taint.bits_of_tag(1) == list(range(6, 14))
        assert acc.addr_taint.bits_of_tag(2) == list(range(1, 9))

    def test_insert_address_formula(self):
        data = b"\x11\x22\x33\x44"
        ctx = TracingContext()
        deflate_compress(data, ctx=ctx)
        head = ctx.arrays["head"]
        writes = [
            a
            for a in ctx.tainted_accesses()
            if a.site == SITE_HEAD and a.kind == "write"
        ]
        ins_h = 0
        for c in data[:3]:
            ins_h = ((ins_h << H_SHIFT) ^ c) & HASH_MASK
        assert writes[0].address == head.base + ins_h * 2

    def test_every_position_inserted_once_in_order(self):
        data = b"abcabcabcabc" * 30  # exercises the match-skip insertion
        ctx = TracingContext()
        deflate_compress(data, ctx=ctx)
        writes = [
            a
            for a in ctx.tainted_accesses()
            if a.site == SITE_HEAD and a.kind == "write"
        ]
        assert len(writes) == len(data) - (MIN_MATCH - 1)
