"""The mitigation synthesis loop: plan, apply, verify.

Covers the planner's per-site policy, the wrapper tables' two load-
bearing invariants (values are preserved exactly; the per-access
touched-line multiset is input-independent), the end-to-end
``verify_mitigation`` loop on all three compressor targets, the
``leaked_input_bytes`` accounting fix (key taint must not count as
input leakage), and Hypothesis properties pinning that every patched
kernel's output is byte-identical to the vulnerable kernel's and
decodes with the stock decompressors.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.taintchannel.tool import TaintChannel, target_for
from repro.exec import NativeContext, TracingContext
from repro.exec.events import MemoryAccess
from repro.mitigations import (
    MaskedTable,
    MitigationPlan,
    PreloadedTable,
    build_kernel,
    build_plan,
    verify_mitigation,
)
from repro.mitigations.plan import (
    MITIGATION_GUARD,
    MITIGATION_MASK,
    MITIGATION_NONE,
    MITIGATION_OBLIVIOUS,
    MITIGATION_PRELOAD,
    plan_site,
)
from repro.workloads import random_bytes


def _scan(target: str, data: bytes):
    tc = TaintChannel()
    return tc.analyze(target, target_for(target, data))


class TestPlanner:
    def test_lzw_plan_is_oblivious_everywhere(self):
        result = _scan("lzw", random_bytes(120, seed=7))
        plan = build_plan(result)
        assert plan.target == "lzw"
        assert plan.sites  # the scan found gadgets to plan for
        for sp in plan.sites:
            assert sp.mitigation == MITIGATION_OBLIVIOUS
            assert sp.cover_lines == sp.table_lines
            assert sp.flow == "data"

    def test_zlib_plan_masks_the_tree_counters(self):
        result = _scan("zlib", random_bytes(120, seed=7))
        plan = build_plan(result)
        by_array = {sp.array: sp for sp in plan.sites}
        # dyn_ltree: one input byte indexes an aligned table -> few
        # tainted line bits -> masking beats the full scan.
        tree = by_array["dyn_ltree"]
        assert tree.mitigation == MITIGATION_MASK
        assert tree.params["mask_index_bits"]
        assert tree.cover_lines < tree.table_lines
        # head: the hash mixes several input bytes -> taint spans the
        # whole index -> full scan.
        assert by_array["head"].mitigation == MITIGATION_OBLIVIOUS

    def test_secret_spans_switch_match_finder_to_guard(self):
        result = _scan("zlib", random_bytes(120, seed=7))
        plan = build_plan(result, secret_spans=[(10, 30)])
        head = next(sp for sp in plan.sites if sp.array == "head")
        assert head.mitigation == MITIGATION_GUARD
        assert head.params["secret_spans"] == [[10, 30]]
        # Non-match-finder tables keep their covers.
        tree = next(sp for sp in plan.sites if sp.array == "dyn_ltree")
        assert tree.mitigation == MITIGATION_MASK

    def test_untainted_site_gets_none(self):
        result = _scan("lzw", random_bytes(60, seed=1))
        gadget = result.gadgets[0]
        for acc in gadget.accesses:
            acc.addr_taint = type(acc.addr_taint).empty()
        sp = plan_site(gadget, result)
        assert sp.mitigation == MITIGATION_NONE

    def test_read_only_site_gets_preload(self):
        result = _scan("lzw", random_bytes(60, seed=1))
        gadget = result.gadgets[0]
        gadget.accesses = [a for a in gadget.accesses if a.kind == "read"]
        gadget.kinds = {"read"}
        sp = plan_site(gadget, result)
        assert sp.mitigation == MITIGATION_PRELOAD

    def test_plan_json_roundtrip(self):
        result = _scan("zlib", random_bytes(100, seed=7))
        plan = build_plan(result)
        text = plan.to_json()
        back = MitigationPlan.from_json(text)
        assert back == plan
        # and the document is plain JSON all the way down
        json.loads(text)


class TestWrapperTables:
    """Value preservation + input-independent touched-line multisets."""

    def _lines_per_access(self, ctx, site):
        return [
            e.address >> 6
            for e in ctx.events
            if isinstance(e, MemoryAccess) and e.site == site
        ]

    def test_masked_table_preserves_values(self):
        ctx = TracingContext(record_untainted_accesses=True)
        arr = ctx.array("t", 256, elem_size=1)
        wrapped = MaskedTable(arr, mask_bits=[6, 7], site="m")
        for i in (0, 63, 64, 200, 255):
            wrapped.set(i, i % 251, site="m")
        for i in (0, 63, 64, 200, 255):
            assert wrapped.get(i, site="m") == i % 251

    def test_masked_table_line_multiset_is_index_independent(self):
        multisets = []
        for index in (0, 5, 77, 130, 255):
            ctx = TracingContext(record_untainted_accesses=True)
            arr = ctx.array("t", 256, elem_size=1)
            wrapped = MaskedTable(arr, mask_bits=[6, 7], site="m")
            wrapped.get(index, site="m")
            lines = self._lines_per_access(ctx, "m")
            base = min(lines)
            multisets.append(sorted(line - base for line in lines))
        assert all(m == multisets[0] for m in multisets)

    def test_preloaded_table_line_multiset_is_index_independent(self):
        multisets = []
        for index in (0, 9, 100, 255):
            ctx = TracingContext(record_untainted_accesses=True)
            arr = ctx.array("t", 256, elem_size=1)
            wrapped = PreloadedTable(arr, site="p")
            wrapped.get(index, site="p")
            lines = self._lines_per_access(ctx, "p")
            base = min(lines)
            multisets.append(sorted(line - base for line in lines))
        # every access touches every line exactly once
        assert all(m == multisets[0] for m in multisets)
        assert multisets[0] == [0, 1, 2, 3]

    def test_preloaded_table_preserves_values(self):
        ctx = TracingContext(record_untainted_accesses=True)
        arr = ctx.array("t", 128, elem_size=1)
        wrapped = PreloadedTable(arr, site="p")
        wrapped.set(3, 42, site="p")
        wrapped.add(3, 1, site="p")
        assert wrapped.get(3, site="p") == 43
        assert arr.get(3, site="raw") == 43


class TestLeakedInputBytes:
    def test_aes_scan_counts_only_input_tags(self):
        from repro.core.taintchannel.tool import run_gadget_scan

        data = bytes(range(32))  # 16 key bytes + 16 block bytes
        scan = run_gadget_scan("aes", data)
        result = _scan("aes", data)
        expected = {}
        saw_key_taint = False
        for g in result.gadgets:
            leaked = g.leaked_tags()
            expected[g.site] = sum(
                1 for t in leaked
                if result.tags.info(t).source == "input"
            )
            saw_key_taint = saw_key_taint or any(
                result.tags.info(t).source == "key" for t in leaked
            )
        # The AES gadgets leak *key* bytes through the channel; those
        # must not inflate the input-byte count.
        assert saw_key_taint
        for g in scan["gadgets"]:
            assert g["leaked_input_bytes"] == expected[g["site"]]
            assert g["leaked_input_bytes"] <= 16


class TestVerifyMitigation:
    @pytest.mark.parametrize(
        "target,size",
        [("zlib", 100), ("lzw", 80), ("bzip2", 60)],
    )
    def test_loop_closes_the_channel(self, target, size):
        report = verify_mitigation(target, size=size)
        assert report.plan.mitigated_sites()
        # the channel was open before...
        assert report.before.mi_bits_per_byte > 1.0
        # ...and is closed after (plug-in MI estimator bias keeps the
        # zlib estimate slightly above exact zero at this sample size)
        assert report.after.mi_bits_per_byte < 0.1
        assert report.after.byte_accuracy == 0.0
        assert not report.residual_sites
        assert not report.leftover_sites
        assert report.output_equal
        assert report.decodable
        assert report.access_overhead > 1.0
        assert "before" in report.summary() or report.summary()

    def test_guarded_zlib_passes_span_check(self):
        report = verify_mitigation(
            "zlib", size=80, secret_spans=[(10, 30)]
        )
        assert report.guarded
        assert report.guard_ok
        assert report.decodable


class TestMitigateCli:
    def test_report_json(self, capsys):
        from repro.cli import main

        assert main(
            ["mitigate", "report", "lzw", "--size", "60", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["after.mi_bits_per_byte"] < 0.1
        assert payload["output_equal"] == 1

    def test_survey_plan_roundtrips_through_apply(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        assert main(
            ["mitigate", "survey", "lzw", "--random", "80",
             "--out", str(plan_path)]
        ) == 0
        assert main(
            ["mitigate", "apply", "lzw", "--random", "80",
             "--plan", str(plan_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "byte-identical to vulnerable kernel: True" in out


class TestOutputProperties:
    """Hypothesis: patched kernels never change what gets emitted."""

    @pytest.fixture(scope="class")
    def kernels(self):
        built = {}
        for target, size in (("zlib", 100), ("lzw", 80), ("bzip2", 60)):
            result = _scan(target, random_bytes(size, seed=7))
            built[target] = build_kernel(target, build_plan(result))
        return built

    @settings(max_examples=12, deadline=None)
    @given(data=st.binary(min_size=0, max_size=64))
    def test_lzw_output_identical_and_decodable(self, kernels, data):
        from repro.compression.lzw import lzw_compress, lzw_decompress

        blob = kernels["lzw"].run_native(data)
        assert blob == lzw_compress(data, NativeContext())
        assert lzw_decompress(blob) == data

    @settings(max_examples=8, deadline=None)
    @given(data=st.binary(min_size=0, max_size=64))
    def test_zlib_output_identical_and_decodable(self, kernels, data):
        from repro.compression.lz77 import (
            deflate_compress,
            deflate_decompress,
        )

        blob = kernels["zlib"].run_native(data)
        assert blob == deflate_compress(data, NativeContext())
        assert deflate_decompress(blob) == data

    @settings(max_examples=6, deadline=None)
    @given(data=st.binary(min_size=1, max_size=48))
    def test_bzip2_output_identical_and_decodable(self, kernels, data):
        from repro.compression.bzip2 import bzip2_compress, bzip2_decompress

        blob = kernels["bzip2"].run_native(data)
        assert blob == bzip2_compress(data, NativeContext())
        assert bzip2_decompress(blob) == data

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_lzw_step_multisets_input_independent(self, kernels, seed):
        """At the mitigated sites, the touched-line multiset of every
        logical step is one fixed set: the whole covered table."""
        from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY

        kernel = kernels["lzw"]
        data = random_bytes(40, seed=seed)
        ctx = TracingContext(record_untainted_accesses=True)
        kernel.run(data, ctx)
        wrapper = kernel.wrappers[SITE_PRIMARY]
        n_lines = len(wrapper._line_starts)
        lines = [
            e.address >> 6
            for e in ctx.events
            if isinstance(e, MemoryAccess)
            and e.site in (SITE_PRIMARY, SITE_SECONDARY)
            and e.kind == "read"
        ]
        assert lines and len(lines) % n_lines == 0
        base = min(lines)
        expected = sorted(range(n_lines))
        for step in range(0, len(lines), n_lines):
            burst = sorted(line - base for line in lines[step:step + n_lines])
            assert burst == expected
