"""The leakage drift gate: directions, tolerances, and the committed
baseline.

Two acceptance criteria live here: ``repro diag compare`` passes
against the committed ``benchmarks/diag_baseline.json`` as-is, and
fails (exit 1) when a regression is injected by bumping the cache
noise σ.
"""

import json
from pathlib import Path

import pytest

from repro.diag.drift import (
    ABS_EPSILON,
    DEFAULT_PARAMS,
    DIAG_SCHEMA,
    baseline_payload,
    collect_diag_metrics,
    compare_diag,
    load_baseline,
    metric_direction,
    save_baseline,
)

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "diag_baseline.json"

SMALL = dict(size=40, samples=200, n_targets=2, step_n=16)


class TestDirections:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("zlib.bit_accuracy", "higher"),
            ("lzw.mi_bits_per_byte", "higher"),
            ("bzip2.recovered_fraction", "higher"),
            ("timing.margin_sigma", "higher"),
            ("timing.misclassified_rate", "lower"),
            ("eviction.congruent_fraction", "higher"),
            ("single_step.page_accuracy", "higher"),
            ("timing.hit_mean", "info"),
            ("lzw.n_candidates", "info"),
        ],
    )
    def test_suffix_mapping(self, name, expected):
        assert metric_direction(name) == expected


class TestCompareLogic:
    def _baseline(self, metrics):
        return baseline_payload(metrics, params={})

    def test_identical_metrics_pass(self):
        base = self._baseline({"a.bit_accuracy": 0.9, "t.hit_mean": 40.0})
        cmp = compare_diag({"a.bit_accuracy": 0.9, "t.hit_mean": 40.0}, base)
        assert cmp.ok
        assert cmp.regressions == []
        assert "PASS: 0 regressions" in cmp.summary()

    def test_higher_metric_drop_beyond_tolerance_fails(self):
        base = self._baseline({"a.bit_accuracy": 0.9})
        assert compare_diag({"a.bit_accuracy": 0.86}, base).ok  # within 5%
        cmp = compare_diag({"a.bit_accuracy": 0.80}, base)
        assert not cmp.ok
        assert cmp.regressions[0].name == "a.bit_accuracy"
        assert "FAIL: 1 regression " in cmp.summary()

    def test_lower_metric_rise_beyond_tolerance_fails(self):
        base = self._baseline({"timing.misclassified_rate": 0.10})
        assert compare_diag({"timing.misclassified_rate": 0.104}, base).ok
        assert not compare_diag(
            {"timing.misclassified_rate": 0.20}, base
        ).ok

    def test_zero_baseline_gets_absolute_slack(self):
        # a 0.0 lower-is-better baseline must not fail on any epsilon
        base = self._baseline({"timing.misclassified_rate": 0.0})
        ok_rate = ABS_EPSILON * 0.9
        assert compare_diag({"timing.misclassified_rate": ok_rate}, base).ok
        assert not compare_diag(
            {"timing.misclassified_rate": ABS_EPSILON * 3}, base
        ).ok

    def test_info_metrics_never_gate(self):
        base = self._baseline({"timing.hit_mean": 40.0})
        assert compare_diag({"timing.hit_mean": 400.0}, base).ok

    def test_missing_metric_fails_and_new_metric_informs(self):
        base = self._baseline({"a.bit_accuracy": 0.9})
        cmp = compare_diag({"b.bit_accuracy": 0.9}, base)
        assert not cmp.ok
        rows = {row.name: row for row in cmp.rows}
        assert rows["a.bit_accuracy"].note == "missing"
        assert rows["b.bit_accuracy"].note == "new"
        assert rows["b.bit_accuracy"].ok

    def test_accepts_payload_or_flat_dict_as_current(self):
        metrics = {"a.bit_accuracy": 0.9}
        base = self._baseline(metrics)
        assert compare_diag(baseline_payload(metrics), base).ok
        assert compare_diag(metrics, base).ok


class TestBaselineIO:
    def test_roundtrip(self, tmp_path):
        payload = baseline_payload({"a.bit_accuracy": 0.5}, params=SMALL)
        path = tmp_path / "base.json"
        save_baseline(str(path), payload)
        loaded = load_baseline(str(path))
        assert loaded == payload
        assert loaded["schema"] == DIAG_SCHEMA
        assert loaded["directions"]["a.bit_accuracy"] == "higher"

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro-perf/1"}))
        with pytest.raises(ValueError, match="repro-diag/1"):
            load_baseline(str(path))


class TestCollectAndGate:
    def test_collection_is_deterministic(self):
        assert collect_diag_metrics(**SMALL) == collect_diag_metrics(**SMALL)

    def test_collection_covers_gadgets_and_probes(self):
        metrics = collect_diag_metrics(**SMALL)
        for prefix in ("zlib.", "lzw.", "bzip2.", "timing.", "eviction.",
                       "single_step."):
            assert any(k.startswith(prefix) for k in metrics), prefix

    def test_gate_passes_on_self(self):
        metrics = collect_diag_metrics(**SMALL)
        assert compare_diag(metrics, baseline_payload(metrics)).ok

    def test_noise_injection_regresses_the_gate(self):
        base = baseline_payload(collect_diag_metrics(**SMALL))
        injected = collect_diag_metrics(noise_sigma=30.0, **SMALL)
        cmp = compare_diag(injected, base)
        assert not cmp.ok
        assert any(
            row.name == "timing.margin_sigma" for row in cmp.regressions
        )

    def test_committed_baseline_compares_clean(self):
        """The repo's own baseline must pass with the recorded params."""
        baseline = load_baseline(str(BASELINE))
        assert baseline["params"] == DEFAULT_PARAMS
        params = baseline["params"]
        current = collect_diag_metrics(
            size=params["size"],
            seed=params["seed"],
            samples=params["samples"],
            n_targets=params["n_targets"],
            step_n=params["step_n"],
        )
        cmp = compare_diag(current, baseline)
        assert cmp.ok, cmp.summary()


class TestCLI:
    def _collect(self, tmp_path, *extra):
        from repro import cli

        out = tmp_path / "base.json"
        args = [
            "diag", "collect", "--out", str(out),
            "--size", str(SMALL["size"]),
            "--samples", str(SMALL["samples"]),
            "--targets", str(SMALL["n_targets"]),
            "--step-n", str(SMALL["step_n"]),
        ]
        assert cli.main(args + list(extra)) == 0
        return out

    def test_collect_then_compare_passes(self, tmp_path, capsys):
        from repro import cli

        out = self._collect(tmp_path)
        assert cli.main(["diag", "compare", "--baseline", str(out)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        from repro import cli

        out = self._collect(tmp_path)
        rc = cli.main(
            ["diag", "compare", "--baseline", str(out),
             "--noise-sigma", "30"]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        from repro import cli

        rc = cli.main(
            ["diag", "compare", "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 2
        assert "no baseline" in capsys.readouterr().err

    def test_compare_accepts_a_current_metrics_file(self, tmp_path):
        from repro import cli

        out = self._collect(tmp_path)
        current = tmp_path / "current.json"
        current.write_text(json.dumps(collect_diag_metrics(**SMALL)))
        assert cli.main(
            ["diag", "compare", str(current), "--baseline", str(out)]
        ) == 0

    def test_diag_report_without_store_runs_live(self, capsys):
        from repro import cli

        assert cli.main(["diag", "report", "--size", "40"]) == 0
        out = capsys.readouterr().out
        for target in ("## zlib", "## lzw", "## bzip2"):
            assert target in out

    def test_diag_report_missing_store_exits_two(self, tmp_path, capsys):
        from repro import cli

        rc = cli.main(
            ["diag", "report", "--store", str(tmp_path / "none.trstore")]
        )
        assert rc == 2
        assert "no trace store" in capsys.readouterr().err
