"""Tests for the ncompress-style LZW implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lzw import (
    HSHIFT,
    MAGIC,
    SITE_PRIMARY,
    lzw_compress,
    lzw_decompress,
)
from repro.exec import TracingContext


class TestRoundTrip:
    def test_empty(self):
        assert lzw_decompress(lzw_compress(b"")) == b""

    def test_single_byte(self):
        assert lzw_decompress(lzw_compress(b"A")) == b"A"

    def test_two_bytes(self):
        assert lzw_decompress(lzw_compress(b"AB")) == b"AB"

    def test_kwkwk_case(self):
        # "aaa..." triggers the classic code == free_ent special case.
        data = b"a" * 50
        assert lzw_decompress(lzw_compress(data)) == data

    def test_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 40
        assert lzw_decompress(lzw_compress(data)) == data

    def test_all_byte_values(self):
        data = bytes(range(256)) * 4
        assert lzw_decompress(lzw_compress(data)) == data

    def test_random_data_crossing_width_boundaries(self):
        # Enough distinct pairs to push code width past 9 and 10 bits.
        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(3000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_large_random(self):
        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(20000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"abcabcabc" * 500
        assert len(lzw_compress(data)) < len(data) // 2

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lzw_decompress(lzw_compress(data)) == data

    @given(st.text(alphabet="ab", min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_low_entropy(self, text):
        data = text.encode()
        assert lzw_decompress(lzw_compress(data)) == data


class TestFormat:
    def test_magic(self):
        assert lzw_compress(b"x").startswith(MAGIC)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            lzw_decompress(b"XX\x90abc")

    def test_bad_maxbits_rejected(self):
        with pytest.raises(ValueError):
            lzw_decompress(MAGIC + bytes([0x80 | 5]) + b"\x00")


class TestBlockMode:
    """compress's block mode: CLEAR resets the dictionary when full."""

    def _roundtrip(self, data, **kwargs):
        return lzw_decompress(lzw_compress(data, **kwargs))

    def test_small_maxbits_roundtrip(self):
        import random

        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(6000))
        assert self._roundtrip(data, max_bits=12) == data

    def test_block_mode_emits_clear_and_roundtrips(self):
        import random

        rng = random.Random(4)
        # max_bits=10: table (1024 codes) fills quickly, forcing clears.
        data = bytes(rng.randrange(256) for _ in range(8000))
        frozen = lzw_compress(data, max_bits=10, block_mode=False)
        cleared = lzw_compress(data, max_bits=10, block_mode=True)
        assert lzw_decompress(frozen) == data
        assert lzw_decompress(cleared) == data
        assert frozen != cleared  # clears actually happened

    def test_block_mode_helps_on_shifting_statistics(self):
        # Phase change after the table froze: clearing re-learns.
        data = b"abcd" * 3000 + b"wxyz" * 3000
        frozen = lzw_compress(data, max_bits=10, block_mode=False)
        cleared = lzw_compress(data, max_bits=10, block_mode=True)
        assert lzw_decompress(cleared) == data
        assert len(cleared) <= len(frozen)

    def test_header_flag_encodes_mode(self):
        from repro.compression.lzw import BLOCK_MODE_FLAG

        assert lzw_compress(b"x", block_mode=True)[2] & BLOCK_MODE_FLAG
        assert not lzw_compress(b"x", block_mode=False)[2] & BLOCK_MODE_FLAG

    def test_invalid_max_bits_rejected(self):
        with pytest.raises(ValueError):
            lzw_compress(b"x", max_bits=8)
        with pytest.raises(ValueError):
            lzw_compress(b"x", max_bits=17)

    def test_text_block_mode_roundtrip(self):
        from repro.workloads import english_like

        data = english_like(30000, seed=9)
        assert self._roundtrip(data, max_bits=11, block_mode=True) == data


class TestGadget:
    """The htab probe must leak the current byte in hp bits 9-16."""

    def test_primary_probe_taints_bits_9_16(self):
        ctx = TracingContext()
        lzw_compress(b"\x00\x20", ctx=ctx)  # paper's example byte 0x20
        probes = [
            a for a in ctx.tainted_accesses() if a.site == SITE_PRIMARY
        ]
        assert probes, "no htab probe recorded"
        acc = probes[0]
        # Address taint = hp taint shifted by 3 (elem size 8).  Byte #1
        # (value 0x20, tag 1) sits at hp bits 9-16 -> addr bits 12-19.
        bits = acc.addr_taint.bits_of_tag(1)
        assert bits == list(range(9 + 3, 17 + 3))

    def test_probe_address_formula(self):
        ctx = TracingContext()
        data = b"\x05\x20"
        lzw_compress(data, ctx=ctx)
        (acc,) = [
            a
            for a in ctx.tainted_accesses()
            if a.site == SITE_PRIMARY and a.kind == "read"
        ]
        htab = ctx.arrays["htab"]
        hp = (data[1] << HSHIFT) ^ data[0]
        assert acc.address == htab.base + hp * 8

    def test_one_primary_probe_per_input_byte(self):
        ctx = TracingContext()
        data = b"abcdefgh"
        lzw_compress(data, ctx=ctx)
        probes = [a for a in ctx.tainted_accesses() if a.site == SITE_PRIMARY]
        reads = [a for a in probes if a.kind == "read"]
        assert len(reads) == len(data) - 1
