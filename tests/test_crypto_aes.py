"""AES-128 correctness and taint behaviour."""

from repro.crypto.aes import SBOX, aes128_encrypt_block
from repro.exec import NativeContext, TracingContext


class TestKnownAnswers:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ct = aes128_encrypt_block(key, pt)
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        ct = aes128_encrypt_block(key, pt)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_deterministic_across_contexts(self):
        key = b"0123456789abcdef"
        pt = b"fedcba9876543210"
        assert aes128_encrypt_block(key, pt, NativeContext()) == (
            aes128_encrypt_block(key, pt, TracingContext())
        )

    def test_bad_lengths_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            aes128_encrypt_block(b"short", b"x" * 16)
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"x" * 16, b"short")


class TestTaintBehaviour:
    def test_te_lookups_have_tainted_addresses(self):
        ctx = TracingContext()
        aes128_encrypt_block(b"k" * 16, b"p" * 16, ctx=ctx)
        te_accesses = [
            a for a in ctx.tainted_accesses() if a.array.startswith("Te")
        ]
        assert len(te_accesses) == 9 * 16  # 9 rounds, 16 lookups each

    def test_first_round_lookup_tainted_by_plaintext_and_key(self):
        ctx = TracingContext()
        aes128_encrypt_block(b"k" * 16, b"p" * 16, ctx=ctx)
        first = [a for a in ctx.tainted_accesses() if a.array == "Te0"][0]
        sources = {
            ctx.tags.info(t).source for t in first.addr_taint.tags()
        }
        assert sources == {"input", "key"}
