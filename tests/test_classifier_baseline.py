"""Tests for the nearest-centroid baseline classifier."""

import numpy as np
import pytest

from repro.classify import MLPClassifier, NearestCentroidClassifier


class TestNearestCentroid:
    def test_separable_blobs(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(0, 0.2, (40, 6)), rng.normal(3, 0.2, (40, 6))]
        ).astype(np.float32)
        y = np.array([0] * 40 + [1] * 40)
        clf = NearestCentroidClassifier().fit(x, y)
        assert clf.accuracy(x, y) == 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NearestCentroidClassifier().predict(np.zeros((1, 3)))

    def test_noncontiguous_labels(self):
        x = np.array([[0.0], [0.1], [5.0], [5.1]], dtype=np.float32)
        y = np.array([3, 3, 7, 7])
        clf = NearestCentroidClassifier().fit(x, y)
        assert list(clf.predict(np.array([[0.05], [5.05]]))) == [3, 7]

    def test_mlp_at_least_matches_baseline_on_traces(self):
        """On fingerprint traces the DNN should not lose to class means."""
        import random

        from repro.core.zipchannel.fingerprint import build_dataset
        from repro.workloads import english_like

        files = [b"x" * 30, english_like(5000, seed=1), english_like(15000, seed=2)]
        x_train, y_train, _ = build_dataset(files, traces_per_file=15, seed=3)
        x_test, y_test, _ = build_dataset(files, traces_per_file=8, seed=4)

        centroid = NearestCentroidClassifier().fit(x_train, y_train)
        mlp = MLPClassifier(x_train.shape[1], 3, hidden=32, seed=5)
        mlp.fit(x_train, y_train, epochs=150)
        # Both must separate these trivially-different files; the DNN is
        # not required to beat the baseline on a toy dataset, but it may
        # not collapse.
        assert centroid.accuracy(x_test, y_test) > 0.9
        assert mlp.accuracy(x_test, y_test) > 0.8


class TestFitSilence:
    """fit() must never print: campaign workers and the CLI parse
    stdout.  Progress goes through the repro.obs logger instead."""

    def _toy(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(0, 0.2, (20, 4)), rng.normal(3, 0.2, (20, 4))]
        ).astype(np.float32)
        y = np.array([0] * 20 + [1] * 20)
        return x, y

    def test_fit_is_silent_by_default(self, capsys):
        x, y = self._toy()
        clf = MLPClassifier(4, 2, hidden=8, seed=1)
        clf.fit(x, y, epochs=3, x_val=x, y_val=y, verbose=True)
        assert capsys.readouterr().out == ""

    def test_verbose_fit_routes_through_obs(self, capsys):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            x, y = self._toy()
            clf = MLPClassifier(4, 2, hidden=8, seed=1)
            clf.fit(x, y, epochs=3, x_val=x, y_val=y, verbose=True)
            assert capsys.readouterr().out == ""  # still no stdout
            logs = [
                e
                for e in obs.recent()
                if e["kind"] == "log"
                and e["fields"].get("logger") == "classify.mlp"
            ]
            assert len(logs) == 3  # one per epoch
            assert "val_accuracy" in logs[0]["fields"]
        finally:
            obs.reset()
