"""ClusterScheduler semantics with in-process fake workers.

The scheduler core is synchronous and clock-injected, so the full
failure matrix — lease expiry, duplicate completion, worker disconnect,
scheduler restart + resume — runs without sockets, subprocesses, or
sleeps.  The fake worker below does exactly what the real
:class:`repro.cluster.worker.ClusterWorker` does per lease: run the
payload with :func:`run_attempt`, write terminal records to its own
shard, report the outcome.
"""

import pytest

from repro import obs
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    metrics_digest,
    register_experiment,
)
from repro.campaign.executor import run_attempt
from repro.campaign.spec import FaultInjection
from repro.campaign.store import JobRecord, SpecMismatchError
from repro.cluster import ClusterScheduler
from repro.obs import tracectx
from repro.obs.report import trace_summary
from repro.cluster.scheduler import (
    SCHEDULER_SHARD,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_RUNNING,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@register_experiment("cluster_echo")
def _echo(params: dict, seed: int) -> dict:
    return {"value": params.get("x", 0) * 7, "seed_mod": seed % 101}


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def work_once(scheduler: ClusterScheduler, worker_id: str):
    """One lease -> execute -> record -> report cycle, exactly as the
    real worker performs it (including adopting the job message's trace
    context for the attempt).  Returns the job message, or None."""
    message = scheduler.request_lease(worker_id)
    if message is None:
        return None
    payload = message["payload"]
    with tracectx.adopted(message.get("trace")):
        outcome = run_attempt(payload)
        if outcome.ok or message["final"]:
            shard = ResultStore(message["store_root"]).shard_store(worker_id)
            shard.root.mkdir(parents=True, exist_ok=True)
            shard.append(
                JobRecord(
                    job_id=message["job_id"],
                    experiment=payload["experiment"],
                    params=payload["params"],
                    trial=message["trial"],
                    seed=payload["seed"],
                    status=outcome.status,
                    attempts=payload["attempt"] + 1,
                    duration_seconds=outcome.duration,
                    metrics=outcome.metrics,
                    error=outcome.error,
                    timeout_enforced=outcome.timeout_enforced,
                )
            )
    scheduler.handle_result(
        worker_id,
        {
            "campaign_id": message["campaign_id"],
            "lease_id": message["lease_id"],
            "job_id": message["job_id"],
            "status": outcome.status,
            "duration": outcome.duration,
            "error": outcome.error,
        },
    )
    return message


def drain(scheduler, workers=("wA", "wB"), clock=None, max_steps=500):
    """Drive fake workers until every campaign finalizes."""
    for _ in range(max_steps):
        if not scheduler.active():
            return
        progressed = False
        for worker_id in workers:  # no any(): every worker gets a turn
            if work_once(scheduler, worker_id) is not None:
                progressed = True
        if not progressed:
            if clock is None:
                pytest.fail("no progress and no clock to advance")
            clock.advance(1.0)
            scheduler.tick()
    pytest.fail(f"campaigns never drained in {max_steps} steps")


def drill_spec(name="drill", trials=2):
    return CampaignSpec(
        name=name,
        experiment="cluster_echo",
        grid={"x": [1, 2, 3, 4]},
        trials=trials,
        max_retries=2,
        retry_backoff=0.0,
        inject_failures=FaultInjection(count=2, attempts=1),
    )


class TestFullFlow:
    def test_cluster_digest_equals_single_host(self, tmp_path):
        """The determinism contract: same spec + seed => identical
        metrics digest on the local pool and on N cluster workers."""
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.submit(drill_spec(), tmp_path / "cluster")
        drain(scheduler, clock=clock)

        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_DONE
        assert exec_.counts == {"ok": 8}
        assert exec_.retries == 2  # the two injected first-attempt failures

        cluster_store = ResultStore(tmp_path / "cluster")
        records = cluster_store.load_records()
        assert len(records) == 8
        assert all(record.ok for record in records.values())
        manifest = cluster_store.load_manifest()
        assert manifest["outcomes"] == {"ok": 8, "skipped": 0}

        single_store = ResultStore(tmp_path / "single")
        result = CampaignRunner(drill_spec(), single_store).run()
        assert result.counts == {"ok": 8}
        assert metrics_digest(records) == metrics_digest(
            single_store.load_records()
        )

    def test_results_spread_across_worker_shards(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.submit(drill_spec(), tmp_path / "c")
        drain(scheduler, clock=clock)
        shard_names = [
            shard.root.name
            for shard in ResultStore(tmp_path / "c").shard_stores()
        ]
        assert shard_names == ["shard-wA", "shard-wB"]
        # Shards persist post-merge as the audit trail; main log wins.
        assert len(ResultStore(tmp_path / "c").load_records()) == 8


class TestLeaseExpiry:
    def test_expiry_of_final_attempt_writes_crashed_record(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(lease_seconds=30.0, clock=clock)
        spec = CampaignSpec(
            name="dead",
            experiment="cluster_echo",
            grid={"x": [1]},
            max_retries=0,
        )
        scheduler.submit(spec, tmp_path / "dead")
        assert scheduler.request_lease("ghost") is not None
        clock.advance(31.0)
        scheduler.tick()

        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_DONE
        assert exec_.counts == {"crashed": 1}
        (record,) = ResultStore(tmp_path / "dead").load_records().values()
        assert record.status == "crashed"
        assert record.attempts == 1
        assert "lease expired" in record.error
        assert "ghost" in record.error
        # The terminal record came from the scheduler's own shard.
        shard = ResultStore(tmp_path / "dead").shard_store(SCHEDULER_SHARD)
        assert len(shard.load_records()) == 1

    def test_expiry_with_retries_left_requeues_with_attempt_charged(
        self, tmp_path
    ):
        clock = FakeClock()
        scheduler = ClusterScheduler(lease_seconds=30.0, clock=clock)
        spec = CampaignSpec(
            name="requeue",
            experiment="cluster_echo",
            grid={"x": [1]},
            max_retries=1,
            retry_backoff=0.0,
        )
        scheduler.submit(spec, tmp_path / "requeue")
        assert scheduler.request_lease("ghost") is not None
        clock.advance(31.0)
        scheduler.tick()
        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_RUNNING
        assert exec_.retries == 1

        message = work_once(scheduler, "wB")  # the requeued attempt
        assert message["payload"]["attempt"] == 1
        assert message["final"] is True
        assert exec_.state == STATE_DONE
        assert exec_.counts == {"ok": 1}
        (record,) = ResultStore(tmp_path / "requeue").load_records().values()
        assert record.ok and record.attempts == 2

    def test_heartbeat_keeps_the_lease_alive(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(lease_seconds=30.0, clock=clock)
        spec = CampaignSpec(
            name="hb", experiment="cluster_echo", grid={"x": [1]}
        )
        scheduler.submit(spec, tmp_path / "hb")
        scheduler.register_worker("slow", pid=1)
        assert scheduler.request_lease("slow") is not None
        for _ in range(4):
            clock.advance(20.0)
            scheduler.heartbeat("slow")
            scheduler.tick()
        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_RUNNING  # 80s elapsed, lease still live
        assert exec_.queue.leased_count == 1


class TestDuplicateCompletion:
    def test_late_result_after_reschedule_is_idempotent(self, tmp_path):
        """Worker A goes dark mid-job and its completion lands *after*
        the lease expired and the job was rescheduled: counted zero
        times, and merge keeps exactly one record."""
        clock = FakeClock()
        scheduler = ClusterScheduler(lease_seconds=30.0, clock=clock)
        spec = CampaignSpec(
            name="dup",
            experiment="cluster_echo",
            grid={"x": [1]},
            max_retries=1,
            retry_backoff=0.0,
        )
        scheduler.submit(spec, tmp_path / "dup")
        slow = scheduler.request_lease("wA")  # goes dark mid-job
        clock.advance(31.0)
        scheduler.tick()  # lease expired, job requeued (attempt 1)
        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_RUNNING

        # A wakes up and its completion lands while the job sits
        # requeued: the lease is gone, so the result is stale — a
        # no-op, even though A wrote its shard record before reporting.
        payload = slow["payload"]
        outcome = run_attempt(payload)
        shard = ResultStore(slow["store_root"]).shard_store("wA")
        shard.root.mkdir(parents=True, exist_ok=True)
        shard.append(
            JobRecord(
                job_id=slow["job_id"],
                experiment=payload["experiment"],
                params=payload["params"],
                trial=slow["trial"],
                seed=payload["seed"],
                status=outcome.status,
                attempts=1,
                duration_seconds=outcome.duration,
                metrics=outcome.metrics,
            )
        )
        scheduler.handle_result(
            "wA",
            {
                "campaign_id": slow["campaign_id"],
                "lease_id": slow["lease_id"],
                "job_id": slow["job_id"],
                "status": outcome.status,
                "duration": outcome.duration,
                "error": None,
            },
        )
        assert exec_.counts == {}  # not counted
        assert exec_.state == STATE_RUNNING

        fast = work_once(scheduler, "wB")  # the rescheduled attempt
        assert fast["job_id"] == slow["job_id"]
        assert fast["payload"]["attempt"] == 1
        assert exec_.state == STATE_DONE
        assert exec_.counts == {"ok": 1}
        records = ResultStore(tmp_path / "dup").load_records()
        assert len(records) == 1  # the duplicate deduped away
        assert records[slow["job_id"]].attempts == 2  # later chain won


class TestDisconnect:
    def test_disconnect_charges_leases_immediately(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(lease_seconds=1e9, clock=clock)
        spec = CampaignSpec(
            name="gone",
            experiment="cluster_echo",
            grid={"x": [1]},
            max_retries=0,
        )
        scheduler.submit(spec, tmp_path / "gone")
        scheduler.register_worker("doomed", pid=7)
        assert scheduler.request_lease("doomed") is not None
        scheduler.disconnect_worker("doomed")  # no clock advance needed
        (exec_,) = scheduler.campaigns.values()
        assert exec_.state == STATE_DONE
        assert exec_.counts == {"crashed": 1}
        (record,) = ResultStore(tmp_path / "gone").load_records().values()
        assert "disconnected" in record.error
        assert not scheduler.workers["doomed"].connected

    def test_double_disconnect_is_a_noop(self, tmp_path):
        scheduler = ClusterScheduler(clock=FakeClock())
        scheduler.register_worker("w", pid=1)
        scheduler.disconnect_worker("w")
        scheduler.disconnect_worker("w")  # no raise, no double-charge
        scheduler.disconnect_worker("never-registered")


class TestCancel:
    def test_cancel_drops_pending_and_finalizes(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        spec = CampaignSpec(
            name="cx", experiment="cluster_echo", grid={"x": [1, 2, 3, 4]}
        )
        campaign_id = scheduler.submit(spec, tmp_path / "cx")
        work_once(scheduler, "w")
        assert scheduler.cancel(campaign_id) is True
        exec_ = scheduler.campaigns[campaign_id]
        assert exec_.state == STATE_CANCELLED
        assert exec_.counts == {"ok": 1, "cancelled": 3}
        assert scheduler.request_lease("w") is None
        manifest = ResultStore(tmp_path / "cx").load_manifest()
        assert manifest["outcomes"]["cancelled"] == 3
        # Cancelling again (or a bogus id) reports failure, not a crash.
        assert scheduler.cancel(campaign_id) is False
        assert scheduler.cancel("nope") is False


class TestMultiCampaign:
    def test_fifo_across_campaigns_one_fleet(self, tmp_path):
        """A second submission queues behind the first and drains
        through the same workers — the serve-mode contract."""
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        spec_a = CampaignSpec(
            name="first", experiment="cluster_echo", grid={"x": [1, 2]}
        )
        spec_b = CampaignSpec(
            name="second", experiment="cluster_echo", grid={"x": [3, 4]}
        )
        id_a = scheduler.submit(spec_a, tmp_path / "a")
        id_b = scheduler.submit(spec_b, tmp_path / "b")
        served = [work_once(scheduler, "w")["campaign_id"] for _ in range(4)]
        assert served == [id_a, id_a, id_b, id_b]  # strict FIFO
        assert scheduler.campaigns[id_a].state == STATE_DONE
        assert scheduler.campaigns[id_b].state == STATE_DONE
        status = scheduler.status_payload()
        assert [c["campaign_id"] for c in status["campaigns"]] == [id_a, id_b]
        assert all(c["state"] == "done" for c in status["campaigns"])


class TestSpecMismatch:
    def test_submit_against_foreign_directory_names_both_hashes(
        self, tmp_path
    ):
        scheduler = ClusterScheduler(clock=FakeClock())
        original = CampaignSpec(
            name="mine", experiment="cluster_echo", grid={"x": [1]}
        )
        scheduler.submit(original, tmp_path / "c")
        other = CampaignSpec(
            name="mine", experiment="cluster_echo", grid={"x": [9]}
        )
        with pytest.raises(SpecMismatchError) as excinfo:
            scheduler.submit(other, tmp_path / "c", resume=True)
        message = str(excinfo.value)
        assert original.spec_hash() in message
        assert other.spec_hash() in message


class TestRestartResume:
    def test_new_scheduler_resumes_from_unmerged_shards(self, tmp_path):
        """Scheduler dies mid-campaign (records still sitting in worker
        shards, nothing merged): a fresh scheduler resuming the same
        spec skips them, finishes the rest, and the merged result is
        digest-identical to a single-host run."""
        spec = drill_spec(name="restart")
        clock1 = FakeClock()
        first = ClusterScheduler(clock=clock1)
        first.submit(spec, tmp_path / "c")
        for _ in range(3):
            assert work_once(first, "wA") is not None
        (exec1,) = first.campaigns.values()
        assert exec1.state == STATE_RUNNING  # abandoned mid-run
        assert not (tmp_path / "c" / "results.jsonl").exists()  # unmerged

        clock2 = FakeClock()
        second = ClusterScheduler(clock=clock2)
        second.submit(spec, tmp_path / "c", resume=True)
        (exec2,) = second.campaigns.values()
        done_before = len(
            ResultStore(tmp_path / "c").completed_ids(include_shards=True)
        )
        assert exec2.skipped == done_before > 0
        drain(second, clock=clock2)
        assert exec2.state == STATE_DONE
        assert exec2.counts.get("ok", 0) + exec2.skipped == 8

        records = ResultStore(tmp_path / "c").load_records()
        assert len(records) == 8
        single = ResultStore(tmp_path / "single")
        CampaignRunner(drill_spec(name="restart"), single).run()
        assert metrics_digest(records) == metrics_digest(
            single.load_records()
        )


class TestStatusPayload:
    def test_workers_and_campaigns_reported(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.register_worker("w1", pid=11)
        spec = CampaignSpec(
            name="s", experiment="cluster_echo", grid={"x": [1, 2]}
        )
        scheduler.submit(spec, tmp_path / "s")
        work_once(scheduler, "w1")
        payload = scheduler.status_payload()
        (campaign,) = payload["campaigns"]
        assert campaign["state"] == STATE_RUNNING
        assert campaign["done"] == 1
        assert campaign["pending"] == 1
        (worker,) = payload["workers"]
        assert worker == {
            "worker_id": "w1",
            "pid": 11,
            "connected": True,
            "jobs_done": 1,
            "last_seen_seconds_ago": 0.0,
        }


class TestTelemetryAndTrace:
    """The scheduler's queue telemetry and the cross-process trace tree
    (here cross-*context*: the fake workers adopt the wire trace the
    way real workers do, so the stitching logic is fully exercised)."""

    def _run_drill(self, tmp_path, sink=None):
        if sink is None:
            obs.enable()
        else:
            obs.enable(sink_path=str(sink))
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.submit(drill_spec(), tmp_path / "c")
        drain(scheduler, clock=clock)
        obs.flush()
        return scheduler

    def test_lease_wait_histogram_counts_every_lease(self, tmp_path):
        self._run_drill(tmp_path)
        hist = obs.histograms_snapshot()["cluster.lease_wait_seconds"]
        # 8 jobs + 2 injected-failure retries = 10 leases granted
        assert hist["count"] == 10
        assert hist["min"] >= 0.0

    def test_queue_depth_observed_at_submit_and_each_lease(self, tmp_path):
        self._run_drill(tmp_path)
        hist = obs.histograms_snapshot()["cluster.queue_depth"]
        assert hist["count"] == 11  # 1 submit snapshot + 10 leases
        assert hist["max"] == 8.0  # the full grid at submit

    def test_retry_backoff_observed_per_retry(self, tmp_path):
        self._run_drill(tmp_path)
        hist = obs.histograms_snapshot()["cluster.backoff_seconds"]
        assert hist["count"] == 2  # the two injected failures
        assert hist["total"] == 0.0  # drill_spec uses retry_backoff=0.0

    def test_telemetry_silent_while_disabled(self, tmp_path):
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.submit(drill_spec(), tmp_path / "c")
        drain(scheduler, clock=clock)
        assert obs.histograms_snapshot() == {}
        (exec_,) = scheduler.campaigns.values()
        assert exec_.trace_id == ""  # no trace machinery engaged

    def test_campaign_trace_stitches_with_zero_orphans(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        self._run_drill(tmp_path, sink=sink)
        events = obs.load_events(str(sink))
        summary = trace_summary(events)
        assert summary["root"]["name"] == "cluster.campaign"
        assert summary["n_orphans"] == 0
        assert len(summary["trace_ids"]) == 1
        # every job attempt and the shard merge joined the same tree
        assert summary["compute_seconds"] > 0.0
        assert summary["merge_seconds"] > 0.0
        job_spans = [
            e for e in events
            if e.get("kind") == "span" and e.get("name") == "campaign.job"
        ]
        # injected failures raise before the job span opens, so only
        # the 8 successful attempts produce spans
        assert len(job_spans) == 8
        root_id = summary["root"]["id"]
        assert all(s["parent"] == root_id for s in job_spans)
        assert all(
            s.get("trace") == summary["trace_ids"][0] for s in job_spans
        )

    def test_scheduler_joins_an_inherited_process_trace(self, tmp_path):
        obs.enable()
        tracectx.set_trace("feedbeefcafe0123")
        clock = FakeClock()
        scheduler = ClusterScheduler(clock=clock)
        scheduler.submit(drill_spec(), tmp_path / "c")
        (exec_,) = scheduler.campaigns.values()
        assert exec_.trace_id == "feedbeefcafe0123"
