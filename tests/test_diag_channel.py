"""Channel-health probes: determinism, margin behaviour, fidelity.

These probes feed the drift gate, so the load-bearing property is
that each one is a pure function of its seed arguments — asserted by
running everything twice — and that the numbers move the right way
when the channel is degraded (σ bump shrinks the margin).
"""

import math

import pytest

from repro.cache.model import CacheConfig
from repro.diag.channel import (
    channel_health,
    eviction_quality,
    fingerprint_confusion,
    render_channel_health,
    render_timing_margins,
    single_step_fidelity,
    timing_margins,
)

SAMPLES = 400


class TestTimingMargins:
    def test_deterministic_given_config(self):
        a = timing_margins(samples=SAMPLES)
        b = timing_margins(samples=SAMPLES)
        assert a == b

    def test_default_channel_is_cleanly_separated(self):
        report = timing_margins(samples=SAMPLES)
        assert report["hit_mean"] < report["threshold"] < report["miss_mean"]
        assert report["misclassified_rate"] == 0.0
        assert report["margin_sigma"] > 5.0
        assert sum(report["histogram"]["hits"]) == SAMPLES
        assert sum(report["histogram"]["misses"]) == SAMPLES

    def test_noise_bump_shrinks_the_margin(self):
        clean = timing_margins(samples=SAMPLES)
        noisy = timing_margins(
            config=CacheConfig(noise_sigma=30.0), samples=SAMPLES
        )
        assert noisy["margin_sigma"] < clean["margin_sigma"]
        assert noisy["empirical_separation"] < clean["empirical_separation"]
        assert noisy["misclassified_rate"] >= clean["misclassified_rate"]

    def test_noiseless_margin_is_infinite(self):
        report = timing_margins(
            config=CacheConfig(noise_sigma=0.0), samples=50
        )
        assert math.isinf(report["margin_sigma"])
        assert report["misclassified_rate"] == 0.0

    def test_render_mentions_margin_and_bins(self):
        text = render_timing_margins(timing_margins(samples=SAMPLES))
        assert "decision margin" in text
        assert "hits   |" in text
        assert "misses |" in text


class TestEvictionQuality:
    def test_builder_matches_ground_truth_on_clean_cache(self):
        report = eviction_quality(n_targets=3)
        assert report["found_fraction"] == 1.0
        assert report["minimal_fraction"] == 1.0
        assert report["verified_fraction"] == 1.0
        assert report["congruent_fraction"] == 1.0
        assert report["mean_set_size"] == report["ways"]
        assert report["mean_tests"] > 0

    def test_deterministic_given_seed(self):
        assert eviction_quality(n_targets=2, seed=9) == eviction_quality(
            n_targets=2, seed=9
        )


class TestSingleStepFidelity:
    def test_every_position_steps_once_with_the_right_page(self):
        report = single_step_fidelity(n=24, seed=3)
        assert report["steps"] == 24
        assert report["step_fidelity"] == 1.0
        assert report["ftab_faults"] == 24
        assert report["ftab_fault_fidelity"] == 1.0
        assert report["page_accuracy"] == 1.0
        assert report["probe_points"] == 24

    def test_deterministic_given_seed(self):
        assert single_step_fidelity(n=16, seed=5) == single_step_fidelity(
            n=16, seed=5
        )


class TestFingerprintConfusion:
    def test_small_round_beats_chance(self):
        report = fingerprint_confusion()
        assert report["test_accuracy"] > report["chance"]
        assert 0.0 <= report["diagonal_accuracy"] <= 1.0
        assert len(report["matrix"]) == report["n_files"]
        assert "file_0" in report["rendered"]


class TestChannelHealth:
    def test_bundles_all_probes(self):
        report = channel_health(samples=SAMPLES, n_targets=2, step_n=16)
        assert set(report) == {"timing", "eviction", "single_step"}
        assert report["timing"]["samples"] == SAMPLES

    def test_noise_sigma_override_reaches_the_probes(self):
        report = channel_health(
            samples=SAMPLES, n_targets=2, step_n=16, noise_sigma=30.0
        )
        assert report["timing"]["noise_sigma"] == 30.0
        assert report["timing"]["margin_sigma"] == pytest.approx(
            (report["timing"]["threshold"] - report["timing"]["hit_mean"])
            / 30.0,
            rel=0.5,
        )

    def test_render_covers_every_section(self):
        report = channel_health(samples=SAMPLES, n_targets=2, step_n=16)
        text = render_channel_health(report)
        for heading in ("## timing", "## eviction sets", "## single-step"):
            assert heading in text
