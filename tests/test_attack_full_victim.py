"""Integration: the attack against the *full* mainSort victim.

The Section V evaluation steps the histogram loop while the enclave runs
real compression around it.  Here the victim executes the complete
``main_sort`` (histogram, cumulative counts, bucket sort) on the enclave
memory system with the stepper armed throughout: stepping must stay
transparent (the sort result is correct) and the recovery unaffected.
"""

import pytest

from repro.compression.bzip2.blocksort import main_sort
from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads import english_like, random_bytes


class FullSortAttack(SgxBzip2Attack):
    """Same attack, but the victim runs all of mainSort."""

    def __init__(self, secret: bytes, config=None):
        super().__init__(secret, config, victim_histogram=self._full_victim)
        self.sorted_order = None

    def _full_victim(self, ctx, block, nblock, ftab=None, quadrant=None):
        self.sorted_order = main_sort(
            ctx,
            block,
            nblock,
            budget=300 * nblock,
            ftab=ftab,
            quadrant=quadrant,
        )


class TestFullVictim:
    def test_extraction_from_full_main_sort(self):
        secret = english_like(150, seed=5)
        attack = FullSortAttack(secret)
        outcome = attack.run()
        assert outcome.bit_accuracy > 0.99

    def test_sort_result_unperturbed_by_attack(self):
        secret = english_like(120, seed=6)
        attack = FullSortAttack(secret)
        attack.run()
        expected = sorted(
            range(len(secret)), key=lambda i: secret[i:] + secret[:i]
        )
        to_rot = lambda i: secret[i:] + secret[:i]
        assert [to_rot(i) for i in attack.sorted_order] == [
            to_rot(i) for i in expected
        ]

    def test_random_data_through_full_victim(self):
        secret = random_bytes(200, seed=7)
        outcome = FullSortAttack(secret).run()
        assert outcome.byte_accuracy > 0.98

    def test_fault_count_matches_histogram_only(self):
        """Only the histogram's three-array pattern faults; the rest of
        mainSort runs at full speed (snapshot-based sorting)."""
        secret = random_bytes(90, seed=8)
        outcome = FullSortAttack(secret).run()
        assert outcome.faults == 3 * len(secret)
