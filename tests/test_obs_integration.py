"""Observability end-to-end: real campaigns, real attacks, real sinks.

Two acceptance criteria from the tentpole are pinned here:

* with observability **enabled**, a real campaign run leaves a JSONL
  sink from which ``obs report`` renders non-empty counter and span
  output (asserted, not eyeballed);
* with observability enabled or disabled, experiment **metrics are
  byte-identical** — instrumentation never touches a simulated cache or
  noise RNG stream, so every pinned metrics digest holds.
"""

import json

import pytest

from repro import obs
from repro.campaign import CampaignRunner, CampaignSpec, InProcessExecutor, ResultStore
from repro.perf.harness import metrics_digest


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def _run_campaign(tmp_path, name="obs-int"):
    spec = CampaignSpec(
        name=name,
        experiment="lzw_recovery",
        grid={"size": [30, 40]},
        trials=1,
    )
    store = ResultStore(tmp_path / name)
    runner = CampaignRunner(
        spec, store, executor_factory=InProcessExecutor
    )
    return runner.run(), store


class TestCampaignSink:
    def test_campaign_run_fills_the_sink(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        obs.enable(sink_path=str(sink))
        result, _ = _run_campaign(tmp_path)
        obs.disable()
        assert result.counts == {"ok": 2}

        events = obs.load_events(str(sink))
        merged = obs.merge_events(events)
        assert merged["counters"]["campaign.ok"] == 2
        assert merged["counters"]["campaign.attempts"] == 2
        span_names = set(merged["spans"])
        assert "campaign.run" in span_names
        assert "campaign.job" in span_names
        assert merged["spans"]["campaign.job"]["count"] == 2
        assert merged["histograms"]["campaign.job_seconds"]["count"] == 2
        assert merged["histograms"]["store.append_seconds"]["count"] == 2

    def test_obs_report_renders_nonempty_output(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        obs.enable(sink_path=str(sink))
        _run_campaign(tmp_path)
        obs.disable()

        text = obs.render_report(obs.load_events(str(sink)))
        assert "## counters" in text
        assert "campaign.ok" in text
        assert "## spans" in text
        assert "campaign.job" in text

    def test_obs_cli_report_from_campaign_run(self, tmp_path, capsys):
        """The CLI acceptance path: campaign run --obs, then obs report."""
        from repro import cli

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "obs-cli",
                    "experiment": "lzw_recovery",
                    "grid": {"size": [30]},
                }
            )
        )
        sink = tmp_path / "obs.jsonl"
        rc = cli.main(
            [
                "campaign", "run", str(spec_path),
                "--out", str(tmp_path / "run"),
                "--quiet",
                "--obs", str(sink),
            ]
        )
        assert rc == 0
        obs.reset()  # the CLI enabled obs in-process; stop recording

        capsys.readouterr()
        assert cli.main(["obs", "report", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "campaign.ok" in out
        assert "campaign.run" in out

    def test_missing_sink_is_a_clean_error(self, tmp_path, capsys):
        from repro import cli

        assert cli.main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no obs sink" in capsys.readouterr().err


class TestNonPerturbation:
    """Enabling observability must not change any experiment metric."""

    def _digests(self, fn):
        obs.reset()
        off = metrics_digest(fn())
        obs.enable()
        on = metrics_digest(fn())
        obs.reset()
        return off, on

    def test_sgx_attack_metrics_identical(self):
        from repro.core.zipchannel.sgx_attack import run_extraction_experiment

        off, on = self._digests(
            lambda: run_extraction_experiment(size=60, seed=3)
        )
        assert off == on

    def test_taintchannel_metrics_identical(self):
        from repro.core.taintchannel.tool import run_gadget_scan
        from repro.workloads import random_bytes

        data = random_bytes(120, seed=5)
        off, on = self._digests(lambda: run_gadget_scan("lzw", data))
        assert off == on

    def test_diag_metrics_identical(self):
        """The diag probes publish through obs but never read from it:
        the drift-gate metrics must not move when a sink is recording."""
        from repro.diag import collect_diag_metrics

        off, on = self._digests(
            lambda: collect_diag_metrics(
                size=40, samples=200, n_targets=2, step_n=16
            )
        )
        assert off == on

    def test_leakage_metering_identical(self):
        from repro.diag import measure_gadget_live

        off, on = self._digests(
            lambda: measure_gadget_live("lzw", 40, 7).metric_dict()
        )
        assert off == on

    def test_campaign_records_identical(self, tmp_path):
        _, store_off = _run_campaign(tmp_path, name="digest-off")
        obs.enable(sink_path=str(tmp_path / "obs.jsonl"))
        _, store_on = _run_campaign(tmp_path, name="digest-on")
        obs.disable()
        metrics_off = {
            k: r.metrics for k, r in store_off.load_records().items()
        }
        metrics_on = {
            k: r.metrics for k, r in store_on.load_records().items()
        }
        assert metrics_off == metrics_on
    def test_metrics_identical_with_tracing_active(self):
        """A live trace context (trace id + remote parent + recording
        sink) must leave experiment metrics byte-identical: trace ids
        come from OS entropy, never an experiment RNG stream."""
        from repro.core.taintchannel.tool import run_gadget_scan
        from repro.obs import tracectx
        from repro.workloads import random_bytes

        data = random_bytes(120, seed=5)
        obs.reset()
        off = metrics_digest(run_gadget_scan("lzw", data))
        obs.enable()
        tracectx.begin_trace()
        with obs.span("campaign.job"):
            on = metrics_digest(run_gadget_scan("lzw", data))
        obs.reset()
        assert off == on

    def test_trace_env_adoption_never_touches_rng_streams(
        self, monkeypatch
    ):
        """REPRO_OBS_TRACE is how pool workers inherit the campaign
        trace; parsing it must not consume from random/numpy, or every
        worker's noise stream would shift by one draw."""
        import random

        from repro.obs.core import _activate_from_env

        random.seed(123)
        before = random.getstate()
        monkeypatch.setenv(obs.ENV_TRACE, "feedbeefcafe0123:41-7")
        _activate_from_env()
        assert random.getstate() == before
        numpy = pytest.importorskip("numpy")
        numpy.random.seed(123)
        np_before = numpy.random.get_state()[1].tobytes()
        _activate_from_env()
        assert numpy.random.get_state()[1].tobytes() == np_before

    def test_campaign_records_identical_under_inherited_trace(
        self, tmp_path, monkeypatch
    ):
        _, store_off = _run_campaign(tmp_path, name="trace-off")
        monkeypatch.setenv(obs.ENV_TRACE, "feedbeefcafe0123:")
        from repro.obs.core import _activate_from_env

        _activate_from_env()
        obs.enable(sink_path=str(tmp_path / "obs.jsonl"))
        _, store_on = _run_campaign(tmp_path, name="trace-on")
        obs.reset()
        metrics_off = {
            k: r.metrics for k, r in store_off.load_records().items()
        }
        metrics_on = {
            k: r.metrics for k, r in store_on.load_records().items()
        }
        assert metrics_off == metrics_on
