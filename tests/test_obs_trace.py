"""Causal tracing: trace context, cross-process stitching, sink
rotation, and the Chrome Trace / critical-path exports.

The contract under test: a campaign gets one ``trace_id``; spans in
every participating process join that trace (root spans adopt the
remote parent, nested spans keep their local parent); the context
travels via ``REPRO_OBS_TRACE`` for pool workers and never touches an
RNG stream; rotated sinks still reconstruct the full tree; and the
merged events export losslessly to the Trace Event Format.
"""

import json
import random

import pytest

from repro import obs
from repro.obs import tracectx
from repro.obs.core import _activate_from_env
from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    event_pid,
    render_chrome_trace,
)
from repro.obs.report import (
    logical_sink,
    render_trace,
    stitch_spans,
    trace_summary,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestTraceContext:
    def test_new_trace_id_is_short_hex_and_unique(self):
        ids = {tracectx.new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)  # hex or raise

    def test_trace_id_generation_never_touches_random(self):
        random.seed(7)
        before = random.getstate()
        tracectx.new_trace_id()
        tracectx.begin_trace()
        tracectx.env_value()
        assert random.getstate() == before
        numpy = pytest.importorskip("numpy")
        numpy.random.seed(7)
        np_before = numpy.random.get_state()[1].tobytes()
        tracectx.new_trace_id()
        assert numpy.random.get_state()[1].tobytes() == np_before

    def test_begin_trace_installs_then_reuses(self):
        first = tracectx.begin_trace()
        assert tracectx.current_trace_id() == first
        assert tracectx.begin_trace() == first

    def test_set_and_clear(self):
        tracectx.set_trace("cafe", parent="1-1")
        assert tracectx.current_trace_id() == "cafe"
        assert tracectx.current_parent() == "1-1"
        tracectx.clear_trace()
        assert tracectx.current_trace_id() is None
        assert tracectx.current_parent() is None

    def test_current_parent_prefers_open_span(self):
        obs.enable()
        tracectx.set_trace("cafe", parent="remote-parent")
        with obs.span("outer") as outer:
            assert tracectx.current_parent() == outer.span_id

    def test_wire_context_shapes(self):
        assert tracectx.wire_context() is None
        assert tracectx.wire_context(trace_id="t") == {"trace": "t"}
        assert tracectx.wire_context(trace_id="t", parent="p") == {
            "trace": "t",
            "parent": "p",
        }

    def test_env_value_round_trips_through_activation(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, tracectx.env_value("abcd", "9-3"))
        _activate_from_env()
        assert tracectx.current_trace_id() == "abcd"
        assert tracectx.current_parent() == "9-3"

    def test_export_to_env_writes_and_clears(self):
        environ = {}
        assert tracectx.export_to_env(
            trace_id="abcd", parent="9-3", environ=environ
        )
        assert environ[obs.ENV_TRACE] == "abcd:9-3"
        assert not tracectx.export_to_env(environ=environ)

    def test_adopted_restores_prior_context(self):
        tracectx.set_trace("outer-trace", parent="outer-parent")
        with tracectx.adopted({"trace": "inner", "parent": "p"}):
            assert tracectx.current_trace_id() == "inner"
            assert tracectx.current_parent() == "p"
        assert tracectx.current_trace_id() == "outer-trace"
        assert tracectx.current_parent() == "outer-parent"

    def test_adopted_none_is_a_noop(self):
        tracectx.set_trace("keep")
        with tracectx.adopted(None):
            assert tracectx.current_trace_id() == "keep"
        assert tracectx.current_trace_id() == "keep"


class TestTraceStampedSpans:
    def test_spans_carry_trace_only_when_set(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        obs.enable(sink_path=str(sink))
        with obs.span("untraced"):
            pass
        tracectx.set_trace("cafe")
        with obs.span("traced"):
            pass
        obs.flush()
        spans = {
            e["name"]: e
            for e in obs.load_events(str(sink))
            if e["kind"] == "span"
        }
        assert "trace" not in spans["untraced"]
        assert spans["traced"]["trace"] == "cafe"

    def test_root_span_adopts_remote_parent_nested_keeps_local(self):
        obs.enable()
        tracectx.set_trace("cafe", parent="0-99")
        with obs.span("root") as root:
            assert root.parent_id == "0-99"
            with obs.span("child") as child:
                assert child.parent_id == root.span_id

    def test_emit_span_event_defaults_to_state_trace(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        obs.enable(sink_path=str(sink))
        tracectx.set_trace("cafe")
        sid = obs.emit_span_event("cluster.campaign", ts=1.0, dur=2.0)
        assert sid
        obs.flush()
        (event,) = [
            e for e in obs.load_events(str(sink)) if e["kind"] == "span"
        ]
        assert event["id"] == sid
        assert event["trace"] == "cafe"
        assert event["dur"] == 2.0

    def test_new_span_id_reserves_without_opening(self):
        obs.enable()
        reserved = obs.new_span_id()
        assert reserved
        with obs.span("later") as span:
            # the reservation did not land on the stack
            assert span.parent_id is None
            assert span.span_id != reserved

    def test_disabled_trace_helpers_are_inert(self):
        assert obs.new_span_id() == ""
        assert obs.emit_span_event("x", ts=0.0, dur=0.0) is None


class TestEnvActivation:
    def test_max_bytes_env_installs_rotation_cap(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_SINK, "1")
        monkeypatch.setenv(obs.ENV_MAX_BYTES, "4096")
        _activate_from_env()
        from repro.obs.core import STATE

        assert STATE.max_sink_bytes == 4096

    def test_garbage_max_bytes_is_ignored(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_SINK, "1")
        monkeypatch.setenv(obs.ENV_MAX_BYTES, "lots")
        _activate_from_env()
        from repro.obs.core import STATE

        assert STATE.max_sink_bytes is None

    def test_trace_env_installs_without_sink(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_SINK, raising=False)
        monkeypatch.setenv(obs.ENV_TRACE, "feed:")
        _activate_from_env()
        assert not obs.enabled()
        assert tracectx.current_trace_id() == "feed"
        assert tracectx.current_parent() is None

    def test_trace_env_never_touches_random(self, monkeypatch):
        random.seed(11)
        before = random.getstate()
        monkeypatch.setenv(obs.ENV_TRACE, "feed:1-2")
        _activate_from_env()
        assert random.getstate() == before


class TestSinkRotation:
    def _fill(self, sink, cap, n=200):
        obs.enable(sink_path=str(sink), max_sink_bytes=cap)
        log = obs.get_logger("rot")
        for i in range(n):
            log.info("event", seq=i)
        obs.flush()

    def test_rotation_caps_live_file_and_keeps_one_generation(
        self, tmp_path
    ):
        sink = tmp_path / "s.jsonl"
        self._fill(sink, cap=2048)
        rotated = tmp_path / "s.jsonl.1"
        assert rotated.exists()
        assert sink.stat().st_size <= 2048
        assert rotated.stat().st_size <= 2048

    def test_rotated_lines_stay_whole(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        self._fill(sink, cap=1024)
        for path in (sink, tmp_path / "s.jsonl.1"):
            for line in path.read_text().splitlines():
                json.loads(line)

    def test_load_events_multi_recovers_both_generations(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        self._fill(sink, cap=2048, n=120)
        events = obs.load_events_multi([str(sink)])
        seqs = [
            e["fields"]["seq"]
            for e in events
            if e["kind"] == "log" and e["msg"] == "event"
        ]
        # the oldest events fell off (only one rotated generation is
        # kept) but the surviving stream is contiguous through the end
        assert seqs == list(range(min(seqs), 120))
        assert len(seqs) > 120 * len(str(sink)) // (2 * 2048)

    def test_counters_not_double_counted_across_generations(
        self, tmp_path
    ):
        sink = tmp_path / "s.jsonl"
        obs.enable(sink_path=str(sink), max_sink_bytes=600)
        for _ in range(10):
            obs.counter_add("rot.jobs")
            obs.flush()  # each flush writes a cumulative snapshot
        events = obs.load_events_multi([str(sink)])
        assert {logical_sink(e["_src"]) for e in events} == {str(sink)}
        from repro.obs.report import merge_events

        merged = merge_events(events)
        # cumulative snapshots from both generations merge to the last
        # value per process, not the sum of snapshots
        assert merged["counters"]["rot.jobs"] == 10


class TestChromeExport:
    def _span(self, **over):
        base = {
            "kind": "span", "name": "campaign.job", "id": "41-2",
            "parent": "41-1", "ts": 10.0, "dur": 0.5,
            "status": "ok", "trace": "cafe", "fields": {"attempt": 0},
        }
        base.update(over)
        return base

    def test_event_pid_from_span_id_and_explicit_field(self):
        assert event_pid(self._span()) == 41
        assert event_pid({"kind": "log", "pid": 7}) == 7
        assert event_pid({"kind": "span", "id": "legacy"}) == 0

    def test_span_becomes_complete_event_in_microseconds(self):
        (out,) = chrome_trace_events([self._span()])
        assert out["ph"] == "X"
        assert out["ts"] == pytest.approx(10.0 * 1e6)
        assert out["dur"] == pytest.approx(0.5 * 1e6)
        assert out["pid"] == 41 and out["tid"] == 41
        assert out["args"]["trace"] == "cafe"
        assert out["args"]["parent"] == "41-1"
        assert out["args"]["attempt"] == 0

    def test_log_becomes_instant_and_metrics_become_counters(self):
        events = [
            {"kind": "log", "pid": 3, "ts": 1.0, "level": "warning",
             "msg": "slow disk", "fields": {"device": "sda"}},
            {"kind": "metrics", "pid": 3, "ts": 2.0,
             "name": "campaign.job",
             "values": {"bit_accuracy": 0.9, "exact_found": True,
                        "label": "zlib"}},
        ]
        out = chrome_trace_events(events)
        instant = next(e for e in out if e["ph"] == "i")
        assert instant["cat"] == "log.warning"
        counters = [e for e in out if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {
            "campaign.job.bit_accuracy", "campaign.job.exact_found",
        }  # non-numeric values are dropped, bools cast

    def test_counter_snapshots_are_skipped_and_output_sorted(self):
        events = [
            self._span(ts=5.0),
            {"kind": "counters", "pid": 1, "ts": 1.0,
             "counters": {"jobs": 3}, "histograms": {}},
            {"kind": "log", "pid": 1, "ts": 2.0, "msg": "x"},
        ]
        out = chrome_trace_events(events)
        assert [e["ph"] for e in out] == ["i", "X"]

    def test_document_and_render_parse_back(self, tmp_path):
        doc = chrome_trace_document(
            chrome_trace_events([self._span()]), origin="s.jsonl"
        )
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["origin"] == "s.jsonl"
        parsed = json.loads(render_chrome_trace([self._span()]))
        assert len(parsed["traceEvents"]) == 1

    def test_profiler_events_pair_up_on_virtual_clock(self):
        from repro.exec.context import Profiler

        prof = Profiler()
        prof.mark("compress", "enter")
        prof.tick(100)
        prof.mark("fill_window", "enter")
        prof.tick(40)
        prof.mark("fill_window", "exit")
        prof.tick(10)
        prof.mark("compress", "exit")
        out = prof.chrome_trace_events(pid=5)
        assert [e["ph"] for e in out] == ["B", "B", "E", "E"]
        assert [e.get("name") for e in out] == [
            "compress", "fill_window", "fill_window", "compress",
        ]
        assert out[-1]["ts"] == 150.0
        assert all(e["pid"] == 5 for e in out)

    def test_unmatched_enter_is_closed_at_now(self):
        from repro.exec.context import Profiler

        prof = Profiler()
        prof.mark("compress", "enter")
        prof.tick(30)
        out = prof.chrome_trace_events()
        assert [e["ph"] for e in out] == ["B", "E"]
        assert out[-1]["ts"] == 30.0


class TestTraceSummary:
    def _campaign_events(self):
        # A miniature 2-worker cluster campaign: scheduler root span,
        # two worker job spans stitched via the wire trace context, a
        # merge span, plus the scheduler's queue telemetry snapshot.
        return [
            {"kind": "span", "id": "1-1", "parent": None,
             "name": "cluster.campaign", "dur": 10.0, "ts": 0.0,
             "trace": "cafe"},
            {"kind": "span", "id": "41-1", "parent": "1-1",
             "name": "campaign.job", "dur": 4.0, "ts": 1.0,
             "trace": "cafe"},
            {"kind": "span", "id": "42-1", "parent": "1-1",
             "name": "campaign.job", "dur": 3.0, "ts": 1.5,
             "trace": "cafe"},
            {"kind": "span", "id": "1-2", "parent": "1-1",
             "name": "store.merge", "dur": 0.5, "ts": 9.0,
             "trace": "cafe"},
            {"kind": "counters", "pid": 1, "ts": 10.0, "counters": {},
             "histograms": {
                 "cluster.lease_wait_seconds":
                     {"count": 2, "total": 1.2, "min": 0.4, "max": 0.8},
                 "cluster.backoff_seconds":
                     {"count": 1, "total": 2.0, "min": 2.0, "max": 2.0},
             }},
        ]

    def test_attribution_adds_up(self):
        summary = trace_summary(self._campaign_events())
        assert summary["trace_ids"] == ["cafe"]
        assert summary["root"]["name"] == "cluster.campaign"
        assert summary["wall_seconds"] == 10.0
        assert summary["queue_wait_seconds"] == pytest.approx(1.2)
        assert summary["compute_seconds"] == pytest.approx(7.0)
        assert summary["retry_backoff_seconds"] == pytest.approx(2.0)
        assert summary["merge_seconds"] == pytest.approx(0.5)
        assert summary["n_spans"] == 4
        assert summary["n_roots"] == 1
        assert summary["n_orphans"] == 0

    def test_cluster_root_preferred_over_local_run(self):
        events = self._campaign_events() + [
            {"kind": "span", "id": "9-1", "parent": None,
             "name": "campaign.run", "dur": 99.0, "ts": 0.0},
        ]
        summary = trace_summary(events)
        assert summary["root"]["name"] == "cluster.campaign"

    def test_stitch_reports_orphans(self):
        events = self._campaign_events()
        events[1] = dict(events[1], parent="ghost")
        stitched = stitch_spans(events)
        assert [e["id"] for e in stitched["orphans"]] == ["41-1"]
        assert trace_summary(events)["n_orphans"] == 1

    def test_render_trace_shows_tree_and_critical_path(self):
        text = render_trace(self._campaign_events())
        assert "trace: cafe" in text
        assert "## span tree" in text
        assert "## critical path" in text
        assert "cluster.campaign" in text
        # children indent beneath the scheduler root
        assert "\n  campaign.job" in text
        assert "queue-wait" in text
        assert "shard merge" in text
        # compute share: 7.0 of 10.0 wall
        assert "70.0%" in text

    def test_render_trace_without_spans_degrades(self):
        text = render_trace(
            [{"kind": "log", "pid": 1, "ts": 1.0, "msg": "x"}]
        )
        assert "no spans" in text
