"""Tests for deflate's entropy-coding stage and its frequency gadget."""

import random

import pytest

from repro.compression.lz77 import (
    SITE_FREQ,
    SITE_HEAD,
    deflate_compress,
    deflate_decompress,
)
from repro.core.taintchannel import TaintChannel
from repro.exec import TracingContext
from repro.workloads import english_like, random_bytes


class TestEntropyCoding:
    def test_text_uses_dynamic_code_and_shrinks(self):
        data = english_like(8000, seed=20)
        blob = deflate_compress(data)
        assert deflate_decompress(blob) == data
        # Skewed literal statistics: well under 8 bits/byte overall.
        assert len(blob) < len(data) * 0.8

    def test_random_data_falls_back_to_fixed(self):
        # Uniform literals: a dynamic table cannot pay for itself, and
        # output stays near 9 bits per literal.
        data = random_bytes(2000, seed=21)
        blob = deflate_compress(data)
        assert deflate_decompress(blob) == data
        assert len(blob) < len(data) * 9 / 8 + 64

    def test_single_byte_values(self):
        for data in (b"", b"A", b"AB", b"\x00" * 5):
            assert deflate_decompress(deflate_compress(data)) == data

    def test_skewed_vs_uniform_sizes(self):
        skewed = b"aaaaabbbbbcccccaaaaa" * 200  # few literals, many matches
        uniform = random_bytes(len(skewed), seed=22)
        assert len(deflate_compress(skewed)) < len(deflate_compress(uniform))


class TestFrequencyGadget:
    """zlib's _tr_tally increments dyn_ltree[c].Freq — a second
    input-dependent access in the same compressor."""

    def test_freq_gadget_detected(self):
        tc = TaintChannel()
        data = english_like(300, seed=23)
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        gadget = result.gadget(SITE_FREQ)
        assert gadget.array == "dyn_ltree"
        assert gadget.kinds == {"update"}

    def test_freq_gadget_taint_is_positional(self):
        ctx = TracingContext()
        deflate_compress(b"\x00\x01\x02\x03", ctx=ctx)
        accesses = [a for a in ctx.tainted_accesses() if a.site == SITE_FREQ]
        assert accesses
        # Index = the literal byte itself; elem size 4 shifts bits by 2.
        acc = accesses[0]
        bits = acc.addr_taint.tainted_bits()
        assert bits == list(range(2, 10))

    def test_two_gadgets_in_one_compressor(self):
        tc = TaintChannel()
        data = english_like(200, seed=24)
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        sites = {g.site for g in result.gadgets}
        assert SITE_HEAD in sites and SITE_FREQ in sites

    def test_literal_bytes_leak_via_freq_table(self):
        """Each literal's top 4 bits are visible (16 4-byte counters per
        line), independently of the hash gadget."""
        data = b"independent confirmation channel"
        ctx = TracingContext()
        deflate_compress(data, ctx=ctx)
        freq_base = ctx.arrays["dyn_ltree"].base
        assert freq_base % 64 == 0
        observed = [
            ((a.address - freq_base) >> 6)
            for a in ctx.tainted_accesses()
            if a.site == SITE_FREQ and a.index < 256
        ]
        literal_highs = [b >> 4 for b in data]
        # Every literal emitted appears with its top nibble exposed.
        assert set(observed) <= set(range(16))
        assert set(observed) == set(literal_highs)
