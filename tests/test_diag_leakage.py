"""Leakage metering: per-gadget MI, per-bit maps, live == stored.

The tentpole acceptance criterion pinned here: for every gadget,
metering a live run and metering the stored trace of the *same* run
produce bit-identical :meth:`GadgetLeakage.to_dict` payloads — the two
paths share one scoring core, and these tests keep it that way.
"""

import math

import pytest

from repro.diag.leakage import (
    GADGET_TARGETS,
    leakage_from_lines,
    measure_gadget_from_store,
    measure_gadget_live,
    plugin_mutual_information,
    render_heatmap,
    render_leakage,
    render_survey_leakage,
    survey_leakage,
    survey_leakage_from_store,
)
from repro.traces.capture import capture_survey_traces
from repro.traces.store import TraceStore

SIZE = 60
SEED = 7


@pytest.fixture(scope="module")
def survey_store(tmp_path_factory):
    """One captured survey sweep shared by the whole module."""
    root = tmp_path_factory.mktemp("diag") / "survey.trstore"
    store = TraceStore(root)
    capture_survey_traces(store, size=SIZE, seed=SEED)
    return store


class TestPluginMI:
    def test_identity_equals_entropy(self):
        xs = [0, 0, 1, 1, 2, 2, 2, 3]
        h = plugin_mutual_information(xs, xs)
        # H = -(sum p log p) over {2/8, 2/8, 3/8, 1/8}
        expected = -sum(
            p * math.log2(p) for p in (0.25, 0.25, 0.375, 0.125)
        )
        assert h == pytest.approx(expected)

    def test_independent_symbols_give_zero(self):
        xs = [0, 0, 1, 1]
        ys = [0, 1, 0, 1]
        assert plugin_mutual_information(xs, ys) == pytest.approx(0.0)

    def test_constant_either_side_gives_zero(self):
        assert plugin_mutual_information([5, 5, 5], [1, 2, 3]) == 0.0
        assert plugin_mutual_information([1, 2, 3], [5, 5, 5]) == 0.0

    def test_empty_and_mismatched_inputs(self):
        assert plugin_mutual_information([], []) == 0.0
        assert plugin_mutual_information([1, 2], [1]) == 0.0

    def test_never_negative(self):
        xs = [0, 1, 0, 1, 1, 0]
        ys = [1, 1, 0, 0, 1, 0]
        assert plugin_mutual_information(xs, ys) >= 0.0


class TestLiveStoredAgreement:
    """The bit-exact contract between the two metering paths."""

    @pytest.mark.parametrize("target", GADGET_TARGETS)
    def test_live_and_stored_payloads_identical(self, target, survey_store):
        input_seed = SEED + 1 if target == "bzip2" else SEED
        live = measure_gadget_live(target, SIZE, input_seed)
        stored = measure_gadget_from_store(
            survey_store, f"survey-{target}-n{SIZE}-s{SEED}"
        )
        assert live.to_dict() == stored.to_dict()

    def test_survey_helpers_agree_across_all_gadgets(self, survey_store):
        live = survey_leakage(SIZE, SEED)
        stored = survey_leakage_from_store(survey_store, SIZE, SEED)
        assert set(live) == set(GADGET_TARGETS)
        for target in GADGET_TARGETS:
            assert live[target].to_dict() == stored[target].to_dict()

    def test_non_memory_trace_is_rejected(self, tmp_path):
        from repro.traces.capture import capture_fingerprint_traces

        store = TraceStore(tmp_path / "fp.trstore")
        entry = capture_fingerprint_traces(
            store, "fp", corpus="lipsum", traces_per_file=1, seed=1
        )
        with pytest.raises(ValueError, match="memory"):
            measure_gadget_from_store(store, entry.trace_id)


class TestLeakageNumbers:
    @pytest.fixture(scope="class")
    def diags(self):
        return survey_leakage(SIZE, SEED)

    @pytest.mark.parametrize("target", GADGET_TARGETS)
    def test_accuracies_bounded_and_consistent(self, target, diags):
        d = diags[target]
        assert 0.0 <= d.byte_accuracy <= d.recovered_fraction <= 1.0
        assert 0.0 <= d.bit_accuracy <= 1.0
        assert len(d.per_bit_accuracy) == 8
        assert d.bit_accuracy == pytest.approx(
            sum(d.per_bit_accuracy) / 8.0
        )
        # bit_matrix shape and agreement with the per-bit summary
        assert len(d.bit_matrix) == 8
        assert all(len(row) == SIZE for row in d.bit_matrix)
        for b in range(8):
            assert d.per_bit_accuracy[b] == pytest.approx(
                sum(d.bit_matrix[b]) / SIZE
            )

    @pytest.mark.parametrize("target", GADGET_TARGETS)
    def test_mi_is_bounded_by_input_entropy(self, target, diags):
        d = diags[target]
        assert 0.0 <= d.mi_bits_per_byte <= d.input_entropy_bits + 1e-9
        assert d.bits_per_observation == pytest.approx(
            d.mi_bits_per_byte * SIZE / d.n_observations
        )

    def test_gadgets_leak_most_of_the_input(self, diags):
        # The noiseless simulated channel recovers (nearly) everything:
        # zlib misses only the first position, lzw's first-byte low
        # bits are ambiguous, bzip2 is exact.
        assert diags["zlib"].byte_accuracy >= 0.95
        assert diags["lzw"].bit_accuracy >= 0.95
        assert diags["bzip2"].byte_accuracy == 1.0
        assert diags["lzw"].extras["exact_found"] is True
        assert diags["bzip2"].extras["ambiguous_positions"] == 0

    def test_metric_dict_flattens_with_prefix(self, diags):
        m = diags["lzw"].metric_dict(prefix="lzw.")
        assert m["lzw.bit_accuracy"] == diags["lzw"].bit_accuracy
        assert m["lzw.bit_accuracy_min"] == min(
            diags["lzw"].per_bit_accuracy
        )
        assert m["lzw.exact_found"] == 1  # bool flattened to int
        assert all(isinstance(v, (int, float)) for v in m.values())

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            measure_gadget_live("gzip", 10, 0)
        with pytest.raises(ValueError, match="unknown gadget"):
            leakage_from_lines("gzip", [], {}, 10, "random", 0)


class TestRendering:
    @pytest.fixture(scope="class")
    def diag(self):
        return measure_gadget_live("zlib", SIZE, SEED)

    def test_heatmap_has_eight_bit_rows(self, diag):
        text = render_heatmap(diag)
        for b in range(8):
            assert f"bit {b} |" in text
        assert f"position 0 .. {SIZE - 1}" in text

    def test_heatmap_narrow_input_uses_one_column_per_byte(self, diag):
        text = render_heatmap(diag, columns=SIZE * 3)
        # columns clamp to n, so each row body is exactly n cells
        row = next(l for l in text.splitlines() if l.startswith("bit 7"))
        body = row.split("|")[1]
        assert len(body) == SIZE

    def test_empty_input_renders_placeholder(self):
        diag = leakage_from_lines("zlib", [], {"head": 0}, 0, "random", 0)
        assert render_heatmap(diag) == "(empty input)"

    def test_leakage_block_mentions_the_key_numbers(self, diag):
        text = render_leakage(diag)
        assert "## zlib" in text
        assert "mutual information" in text
        assert "bits/observation" in text

    def test_survey_report_orders_all_gadgets(self):
        diags = survey_leakage(40, 3)
        text = render_survey_leakage(diags)
        positions = [text.index(f"## {t}") for t in GADGET_TARGETS]
        assert positions == sorted(positions)
