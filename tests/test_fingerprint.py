"""Tests for the fingerprinting channel, classifier, and workloads."""

import random

import numpy as np
import pytest

from repro.classify import (
    MLPClassifier,
    confusion_matrix,
    render_confusion,
    split_dataset,
)
from repro.core.zipchannel.fingerprint import (
    N_SAMPLES,
    TENSOR_WIDTH,
    FingerprintChannel,
    build_dataset,
    capture_trace,
    pool_trace,
    victim_timeline,
)
from repro.workloads import (
    brotli_like_corpus,
    english_like,
    repetitiveness_series,
)


class TestVictimTimeline:
    def test_short_file_is_fallback_only(self):
        tl = victim_timeline(b"short input")
        assert tl.paths == ["fallbackSort"]
        assert tl.intervals["mainSort"] == []
        assert len(tl.intervals["fallbackSort"]) == 1

    def test_long_text_uses_main_sort(self):
        tl = victim_timeline(english_like(24000, seed=8))
        assert tl.paths[0] == "mainSort"
        assert tl.intervals["mainSort"]

    def test_repetitive_file_shows_both(self):
        tl = victim_timeline(b"abcabc" * 4000)
        assert "mainSort+fallbackSort" in tl.paths
        assert tl.intervals["mainSort"] and tl.intervals["fallbackSort"]

    def test_timeline_deterministic(self):
        data = english_like(5000, seed=2)
        a, b = victim_timeline(data), victim_timeline(data)
        assert a.intervals == b.intervals and a.duration == b.duration


class TestChannel:
    def _timeline(self):
        return victim_timeline(english_like(12000, seed=4))

    def test_trace_shape(self):
        tl = self._timeline()
        trace = FingerprintChannel().capture(tl, random.Random(0))
        assert trace.shape == (2, N_SAMPLES)
        assert set(np.unique(trace)) <= {0, 1}

    def test_noise_free_trace_marks_intervals(self):
        tl = self._timeline()
        chan = FingerprintChannel(p_false_negative=0.0, p_false_positive=0.0)
        trace = chan.capture(tl, random.Random(1))
        assert trace[0].sum() > 0  # mainSort row active
        assert trace[1].sum() > 0  # short-tail fallbackSort too

    def test_traces_differ_by_noise(self):
        tl = self._timeline()
        chan = FingerprintChannel()
        rng = random.Random(5)
        t1, t2 = chan.capture(tl, rng), chan.capture(tl, rng)
        assert (t1 != t2).any()

    def test_pooling_shape_and_monotonicity(self):
        trace = np.zeros((2, N_SAMPLES), dtype=np.int8)
        trace[0, 55] = 1
        pooled = pool_trace(trace)
        assert pooled.shape == (2, TENSOR_WIDTH)
        assert pooled[0, 5] == 1 and pooled.sum() == 1

    def test_capture_trace_flattens(self):
        tl = self._timeline()
        vec = capture_trace(tl, random.Random(3))
        assert vec.shape == (2 * TENSOR_WIDTH,)

    def test_build_dataset_shapes(self):
        files = [b"a" * 30, english_like(3000, seed=1)]
        x, y, timelines = build_dataset(files, traces_per_file=4, seed=0)
        assert x.shape == (8, 2 * TENSOR_WIDTH)
        assert list(y) == [0, 0, 0, 0, 1, 1, 1, 1]
        assert len(timelines) == 2


class TestClassifier:
    def test_learns_separable_blobs(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(0, 0.3, (60, 10))
        x1 = rng.normal(2, 0.3, (60, 10))
        x = np.vstack([x0, x1]).astype(np.float32)
        y = np.array([0] * 60 + [1] * 60)
        clf = MLPClassifier(10, 2, hidden=16, seed=1)
        clf.fit(x, y, epochs=40)
        assert clf.accuracy(x, y) > 0.95

    def test_loss_decreases(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (100, 8)).astype(np.float32)
        y = (x[:, 0] > 0).astype(int)
        clf = MLPClassifier(8, 2, seed=2)
        history = clf.fit(x, y, epochs=25)
        assert history[-1] < history[0]

    def test_predict_proba_normalised(self):
        clf = MLPClassifier(4, 3, seed=0)
        probs = clf.predict_proba(np.zeros((5, 4), dtype=np.float32))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_split_dataset_partitions(self):
        x = np.arange(200).reshape(100, 2).astype(np.float32)
        y = np.arange(100)
        (tr, va, te) = split_dataset(x, y, seed=0)
        total = len(tr[0]) + len(va[0]) + len(te[0])
        assert total == 100
        all_ids = np.concatenate([tr[1], va[1], te[1]])
        assert sorted(all_ids) == list(range(100))

    def test_confusion_matrix_columns_normalised(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        cm = confusion_matrix(y_true, y_pred, 3)
        assert np.allclose(cm.sum(axis=0), [1, 1, 1])
        assert cm[1, 1] == 1.0

    def test_render_confusion_smoke(self):
        cm = np.eye(3)
        text = render_confusion(cm, ["alpha", "beta", "gamma"])
        assert "alpha" in text and "1.00" in text


class TestWorkloads:
    def test_corpus_has_21_files(self):
        corpus = brotli_like_corpus()
        assert len(corpus) == 21
        assert corpus["x"] == b"x"

    def test_corpus_deterministic(self):
        assert brotli_like_corpus() == brotli_like_corpus()

    def test_corpus_spans_regimes(self):
        corpus = brotli_like_corpus()
        sizes = [len(v) for v in corpus.values()]
        assert min(sizes) == 1
        assert max(sizes) > 20000

    def test_repetitiveness_series_shape(self):
        files = repetitiveness_series()
        assert len(files) == 5
        assert all(len(f) == 20000 for f in files)

    def test_series_repetitiveness_decreases(self):
        """File 1 uses one 20-byte unit; file i uses i distinct units."""
        files = repetitiveness_series()
        distinct = [len({f[k : k + 20] for k in range(0, 20000, 20)}) for f in files]
        assert distinct[0] == 1
        assert distinct == sorted(distinct)


class TestEndToEndFingerprinting:
    def test_two_very_different_files_classify_perfectly(self):
        files = [b"x", english_like(15000, seed=3)]
        x_train, y_train, _ = build_dataset(files, traces_per_file=20, seed=1)
        # Seed chosen for a clean noise draw: the channel's false-positive
        # noise can occasionally make a one-byte file's trace resemble a
        # long run (the paper's Fig. 7 confusable regime).
        x_test, y_test, _ = build_dataset(files, traces_per_file=10, seed=8)
        clf = MLPClassifier(x_train.shape[1], 2, hidden=16, seed=0)
        clf.fit(x_train, y_train, epochs=60)
        assert clf.accuracy(x_test, y_test) == 1.0

    def test_straight_to_fallback_files_are_confusable(self):
        """The paper's observation: tiny files that skip mainSort are
        hard to tell apart."""
        files = [b"x", b"y", b"z"]
        x_train, y_train, _ = build_dataset(files, traces_per_file=12, seed=2)
        x_test, y_test, _ = build_dataset(files, traces_per_file=12, seed=3)
        clf = MLPClassifier(x_train.shape[1], 3, hidden=16, seed=0)
        clf.fit(x_train, y_train, epochs=20)
        # Held-out traces of identical-profile files: near chance (1/3).
        assert clf.accuracy(x_test, y_test) < 0.7
