"""LeaseQueue semantics: leases, heartbeats, expiry, backoff.

The queue's clock is injected, so every timing path — lease expiry,
heartbeat extension, retry-backoff holds — is exercised by advancing a
fake clock, never by sleeping.
"""

from repro.campaign import CampaignSpec
from repro.cluster import LeaseQueue, QueuedJob


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_queue(n=3, **kwargs):
    spec = CampaignSpec(
        name="q", experiment="test_echo", grid={"x": list(range(n))}
    )
    jobs = [
        QueuedJob(job=job, position=position)
        for position, job in enumerate(spec.jobs())
    ]
    clock = kwargs.pop("clock", FakeClock())
    queue = LeaseQueue(jobs=jobs, clock=clock, **kwargs)
    return queue, jobs, clock


class TestLeasing:
    def test_jobs_hand_out_in_expansion_order(self):
        queue, jobs, _ = make_queue(n=3)
        leased = [queue.lease("w").queued.job.job_id for _ in range(3)]
        assert leased == [q.job.job_id for q in jobs]
        assert queue.lease("w") is None  # nothing left

    def test_work_stealing_any_worker_takes_next(self):
        queue, jobs, _ = make_queue(n=2)
        first = queue.lease("w1")
        second = queue.lease("w2")
        assert first.queued.job.job_id == jobs[0].job.job_id
        assert second.queued.job.job_id == jobs[1].job.job_id
        assert queue.pending_count == 0
        assert queue.leased_count == 2

    def test_lease_ids_are_unique_per_checkout(self):
        queue, _, clock = make_queue(n=1, max_retries=1)
        first = queue.lease("w")
        queued = queue.resolve(first.queued.job.job_id, "w")
        queue.retry(queued)
        second = queue.lease("w")
        assert first.lease_id != second.lease_id


class TestExpiry:
    def test_live_lease_does_not_expire(self):
        queue, _, clock = make_queue(n=1, lease_seconds=30.0)
        queue.lease("w")
        clock.advance(29.0)
        assert queue.expire() == []

    def test_overdue_lease_is_expired_and_removed(self):
        queue, _, clock = make_queue(n=1, lease_seconds=30.0)
        lease = queue.lease("w")
        clock.advance(31.0)
        assert queue.expire() == [lease]
        assert queue.leased_count == 0
        assert queue.expire() == []  # already collected

    def test_heartbeat_extends_every_lease_of_the_worker(self):
        queue, _, clock = make_queue(n=2, lease_seconds=30.0)
        queue.lease("w")
        queue.lease("w")
        clock.advance(20.0)
        assert queue.heartbeat("w") == 2
        clock.advance(20.0)  # 40s after issue, 20s after heartbeat
        assert queue.expire() == []

    def test_heartbeat_from_stranger_extends_nothing(self):
        queue, _, _ = make_queue(n=1)
        queue.lease("w")
        assert queue.heartbeat("other") == 0


class TestResolve:
    def test_resolve_returns_queued_exactly_once(self):
        queue, jobs, _ = make_queue(n=1)
        lease = queue.lease("w")
        job_id = lease.queued.job.job_id
        assert queue.resolve(job_id, "w") is lease.queued
        # A duplicate completion is stale — idempotent no-op.
        assert queue.resolve(job_id, "w") is None

    def test_resolve_by_wrong_worker_is_stale(self):
        queue, _, _ = make_queue(n=1)
        lease = queue.lease("w1")
        assert queue.resolve(lease.queued.job.job_id, "w2") is None
        # The real holder can still resolve.
        assert queue.resolve(lease.queued.job.job_id, "w1") is not None

    def test_release_worker_returns_only_their_leases(self):
        queue, _, _ = make_queue(n=3)
        queue.lease("dead")
        kept = queue.lease("alive")
        queue.lease("dead")
        released = queue.release_worker("dead")
        assert len(released) == 2
        assert all(lease.worker_id == "dead" for lease in released)
        assert queue.leased_count == 1
        assert queue.resolve(kept.queued.job.job_id, "alive") is not None


class TestRetryBackoff:
    def test_backoff_matches_runner_semantics(self):
        """delay = retry_backoff * 2**attempt, then attempt += 1 —
        byte-for-byte the single-host runner's accounting."""
        queue, _, clock = make_queue(n=1, max_retries=3, retry_backoff=0.1)
        queued = queue.resolve(queue.lease("w").queued.job.job_id, "w")
        assert queue.retry(queued) == 0.1  # attempt 0 -> 0.1 * 2**0
        assert queued.attempt == 1
        clock.advance(1.0)
        queued = queue.resolve(queue.lease("w").queued.job.job_id, "w")
        assert queue.retry(queued) == 0.2  # attempt 1 -> 0.1 * 2**1
        assert queued.attempt == 2

    def test_backoff_hold_gates_the_lease(self):
        queue, _, clock = make_queue(n=1, max_retries=1, retry_backoff=5.0)
        queued = queue.resolve(queue.lease("w").queued.job.job_id, "w")
        queue.retry(queued)
        assert queue.lease("w") is None  # held back
        assert 0.0 < queue.next_eligible_in() <= 5.0
        clock.advance(5.0)
        assert queue.next_eligible_in() == 0.0
        assert queue.lease("w") is not None

    def test_is_final_attempt_tracks_max_retries(self):
        queue, _, _ = make_queue(n=1, max_retries=2)
        queued = queue.lease("w").queued
        assert not queue.is_final_attempt(queued)  # attempt 0 of 0..2
        queued.attempt = 2
        assert queue.is_final_attempt(queued)


class TestBookkeeping:
    def test_drained_requires_no_pending_and_no_leases(self):
        queue, _, _ = make_queue(n=1)
        assert not queue.drained()
        lease = queue.lease("w")
        assert not queue.drained()  # leased still counts as in flight
        queue.resolve(lease.queued.job.job_id, "w")
        queue.mark_done(lease.queued.job.job_id)
        assert queue.drained()
        assert queue.done_count == 1

    def test_clear_pending_leaves_live_leases(self):
        queue, _, _ = make_queue(n=3)
        queue.lease("w")
        assert queue.clear_pending() == 2
        assert queue.pending_count == 0
        assert queue.leased_count == 1

    def test_next_eligible_in_none_when_empty(self):
        queue, _, _ = make_queue(n=1)
        queue.lease("w")
        assert queue.next_eligible_in() is None
