"""The paper's Section I claim, measured: the fine-grained cache channel
carries more information than whole-execution timing (prior work's
channel, e.g. Schwarzl et al.)."""

import random

import numpy as np

from repro.classify import NearestCentroidClassifier
from repro.core.zipchannel.fingerprint import (
    FingerprintChannel,
    capture_trace,
    duration_only_feature,
    victim_timeline,
)
from repro.workloads import english_like


def build_both_datasets(files, traces_per_file, seed, channel):
    rng = random.Random(seed)
    timelines = [victim_timeline(f) for f in files]
    x_trace, x_time, y = [], [], []
    for label, tl in enumerate(timelines):
        for _ in range(traces_per_file):
            x_trace.append(capture_trace(tl, rng, channel))
            x_time.append(duration_only_feature(tl, rng, channel))
            y.append(label)
    return (
        np.array(x_trace, dtype=np.float32),
        np.array(x_time, dtype=np.float32),
        np.array(y),
    )


class TestChannelVsTiming:
    def test_trace_channel_beats_timing_on_equal_duration_files(self):
        """Two files engineered to take similar total time but different
        mainSort/fallbackSort structure: timing alone confuses them, the
        two-line cache trace separates them."""
        # ~equal durations, different control flow: a sub-block text file
        # (pure fallbackSort) vs a larger block that stays in mainSort.
        a = english_like(8800, seed=4)  # fallbackSort, ~166k ticks
        b = english_like(11000, seed=10)  # mainSort path
        tl_a, tl_b = victim_timeline(a), victim_timeline(b)
        ratio = max(tl_a.duration, tl_b.duration) / min(
            tl_a.duration, tl_b.duration
        )
        assert ratio < 1.35, "test premise: durations must be close"

        channel = FingerprintChannel(speed_jitter=0.3)
        x_trace, x_time, y = build_both_datasets(
            [a, b], traces_per_file=30, seed=1, channel=channel
        )
        xt2, xm2, y2 = build_both_datasets(
            [a, b], traces_per_file=15, seed=2, channel=channel
        )

        trace_clf = NearestCentroidClassifier().fit(x_trace, y)
        time_clf = NearestCentroidClassifier().fit(x_time, y)
        trace_acc = trace_clf.accuracy(xt2, y2)
        time_acc = time_clf.accuracy(xm2, y2)

        assert trace_acc > time_acc + 0.15
        assert trace_acc > 0.9

    def test_timing_still_separates_very_different_durations(self):
        """Sanity: the baseline is not a strawman — it works when
        durations differ a lot."""
        a, b = b"x" * 20, english_like(20000, seed=3)
        channel = FingerprintChannel(speed_jitter=0.1)
        _, x_time, y = build_both_datasets(
            [a, b], traces_per_file=12, seed=4, channel=channel
        )
        clf = NearestCentroidClassifier().fit(x_time, y)
        assert clf.accuracy(x_time, y) == 1.0
