"""Record algebra under sharding: dedupe, merge, digest.

The cluster's determinism rests on three pure-function properties,
pinned here with Hypothesis: :func:`dedupe_records` is
order-independent (any permutation of the same records picks the same
winners), shard-merge equals the single-store view no matter how the
records were scattered across shards, and :func:`metrics_digest`
covers exactly the reproducible fields (never wall-clock ones).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.store import (
    JobRecord,
    ResultStore,
    SpecMismatchError,
    dedupe_records,
    metrics_digest,
)


def record_strategy():
    return st.builds(
        JobRecord,
        job_id=st.sampled_from(["j1", "j2", "j3", "j4"]),
        experiment=st.just("exp"),
        params=st.fixed_dictionaries({"x": st.integers(0, 3)}),
        trial=st.integers(0, 2),
        seed=st.integers(0, 999),
        status=st.sampled_from(["ok", "failed", "timeout", "crashed"]),
        attempts=st.integers(1, 3),
        duration_seconds=st.floats(0.0, 10.0, allow_nan=False),
        metrics=st.one_of(
            st.none(), st.fixed_dictionaries({"v": st.integers(0, 9)})
        ),
        error=st.one_of(st.none(), st.just("boom")),
        finished_at=st.floats(0.0, 100.0, allow_nan=False),
        timeout_enforced=st.one_of(st.none(), st.booleans()),
    )


def as_dicts(records: dict) -> dict:
    return {job_id: r.to_dict() for job_id, r in records.items()}


class TestDedupeProperties:
    @given(records=st.lists(record_strategy(), max_size=12), rand=st.randoms())
    def test_order_independent(self, records, rand):
        shuffled = list(records)
        rand.shuffle(shuffled)
        assert as_dicts(dedupe_records(shuffled)) == as_dicts(
            dedupe_records(records)
        )

    @given(records=st.lists(record_strategy(), max_size=10))
    def test_idempotent_under_duplication(self, records):
        assert as_dicts(dedupe_records(records + records)) == as_dicts(
            dedupe_records(records)
        )

    @given(records=st.lists(record_strategy(), min_size=1, max_size=10))
    def test_ok_always_beats_failures(self, records):
        winners = dedupe_records(records)
        for job_id, winner in winners.items():
            has_ok = any(
                r.status == "ok" for r in records if r.job_id == job_id
            )
            assert winner.ok == has_ok

    @settings(max_examples=25)  # each example writes real files
    @given(
        records=st.lists(record_strategy(), max_size=8),
        shard_of=st.lists(st.integers(0, 2), min_size=8, max_size=8),
    )
    def test_shard_merge_equals_single_store(self, tmp_path_factory, records, shard_of):
        """Scatter the records across 3 worker shards arbitrarily;
        after merge the main store equals the single-store view: within
        one shard the last append per job id wins (the append-only
        log's contract), and dedupe arbitrates across shards."""
        root = tmp_path_factory.mktemp("merge")
        store = ResultStore(root)
        per_shard: dict[int, dict[str, JobRecord]] = {}
        for record, shard_index in zip(records, shard_of):
            shard = store.shard_store(f"w{shard_index}")
            shard.root.mkdir(parents=True, exist_ok=True)
            shard.append(record)
            per_shard.setdefault(shard_index, {})[record.job_id] = record
        expected = dedupe_records(
            record
            for survivors in per_shard.values()
            for record in survivors.values()
        )
        store.merge_shards()
        assert as_dicts(store.load_records()) == as_dicts(expected)
        # A second merge finds nothing new to write.
        assert store.merge_shards() == 0


class TestDigest:
    def make(self, **overrides):
        base = dict(
            job_id="j1",
            experiment="exp",
            params={"x": 1},
            trial=0,
            seed=42,
            status="ok",
            attempts=1,
            duration_seconds=0.5,
            metrics={"v": 7},
            error=None,
            finished_at=123.0,
            timeout_enforced=None,
        )
        base.update(overrides)
        return JobRecord(**base)

    def test_wall_clock_fields_do_not_perturb_the_digest(self):
        """attempts / duration / finished_at / error / timeout_enforced
        vary per execution host; the digest must not see them."""
        a = self.make()
        b = self.make(
            attempts=3,
            duration_seconds=9.9,
            finished_at=999.0,
            timeout_enforced=True,
        )
        assert metrics_digest([a]) == metrics_digest([b])

    def test_reproducible_fields_do_perturb_the_digest(self):
        a = self.make()
        assert metrics_digest([a]) != metrics_digest(
            [self.make(metrics={"v": 8})]
        )
        assert metrics_digest([a]) != metrics_digest(
            [self.make(status="failed", metrics=None)]
        )
        assert metrics_digest([a]) != metrics_digest([self.make(seed=43)])

    def test_record_order_does_not_matter(self):
        a = self.make(job_id="a")
        b = self.make(job_id="b")
        assert metrics_digest([a, b]) == metrics_digest([b, a])
        assert metrics_digest({"a": a, "b": b}) == metrics_digest([b, a])

    @given(records=st.lists(record_strategy(), max_size=10), rand=st.randoms())
    def test_digest_is_permutation_invariant(self, records, rand):
        deduped = list(dedupe_records(records).values())
        shuffled = list(deduped)
        rand.shuffle(shuffled)
        assert metrics_digest(deduped) == metrics_digest(shuffled)


class TestSpecMismatch:
    def spec(self, xs):
        from repro.campaign import CampaignSpec

        return CampaignSpec(name="m", experiment="exp", grid={"x": xs})

    def test_resume_mismatch_names_both_hashes(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        original = self.spec([1, 2])
        store.open_campaign(original)
        offered = self.spec([1, 2, 3])
        try:
            store.open_campaign(offered, resume=True)
        except SpecMismatchError as exc:
            assert exc.stored_hash == original.spec_hash()
            assert exc.offered_hash == offered.spec_hash()
            assert original.spec_hash() in str(exc)
            assert offered.spec_hash() in str(exc)
            assert "fresh directory" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("mismatched resume was accepted")

    def test_load_spec_rejects_tampered_manifest(self, tmp_path):
        import json

        store = ResultStore(tmp_path / "c")
        store.open_campaign(self.spec([1]))
        manifest = store.load_manifest()
        manifest["spec"]["grid"]["x"] = [9]  # hand-edited spec
        store.manifest_path.write_text(json.dumps(manifest))
        try:
            store.load_spec()
        except SpecMismatchError as exc:
            assert manifest["spec_hash"] in str(exc)
        else:  # pragma: no cover
            raise AssertionError("tampered manifest loaded silently")

    def test_matching_spec_resumes_fine(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.open_campaign(self.spec([1]))
        store.open_campaign(self.spec([1]), resume=True)  # no raise
        assert store.load_spec().spec_hash() == self.spec([1]).spec_hash()
