"""Differential equivalence tests for the performance work.

Every optimisation in the hot layers (taint algebra, cache model,
instrumentation tiers) claims to be *observably identical* to the
straightforward code it replaced.  These tests check that claim against
independent in-test reference implementations, driven by Hypothesis:

* ``BitTaint`` (interned tag sets + run compression) vs a plain
  dict-of-frozensets reference with the original propagation rules.
* ``Cache`` (flat arrays, batched noise variates, silent accesses) vs a
  per-set-list reference that draws ``rng.gauss`` per timed access.
* ``TracingContext`` FULL vs ADDRESS_ONLY tiers: identical memory-access
  streams, byte-identical ZTRC serialisation, identical recovery
  metrics.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.model import LINE_SIZE, Cache, CacheConfig
from repro.exec import InstrumentationTier, TracingContext
from repro.taint.bittaint import BitTaint


# ----------------------------------------------------------------------
# BitTaint vs dict reference
# ----------------------------------------------------------------------
class RefTaint:
    """The original dict-per-bit taint algebra, kept as an oracle."""

    def __init__(self, bits=None):
        self.bits = bits or {}

    @classmethod
    def byte(cls, tag, lo_bit=0):
        tags = frozenset((tag,))
        return cls({bit: tags for bit in range(lo_bit, lo_bit + 8)})

    def union(self, other):
        bits = dict(self.bits)
        for bit, tags in other.bits.items():
            mine = bits.get(bit)
            bits[bit] = tags if mine is None else mine | tags
        return RefTaint(bits)

    def shifted(self, amount):
        return RefTaint(
            {
                bit + amount: tags
                for bit, tags in self.bits.items()
                if bit + amount >= 0
            }
        )

    def masked(self, mask):
        return RefTaint(
            {bit: tags for bit, tags in self.bits.items() if (mask >> bit) & 1}
        )

    def truncated(self, width):
        return RefTaint(
            {bit: tags for bit, tags in self.bits.items() if bit < width}
        )

    def smeared(self, width):
        if not self.bits:
            return self
        all_tags = frozenset().union(*self.bits.values())
        return RefTaint(
            {bit: all_tags for bit in range(min(self.bits), width)}
        )

    def carry_extended(self, width):
        if not self.bits:
            return self
        bits = {}
        running = set()
        for bit in range(min(self.bits), width):
            running |= self.bits.get(bit, frozenset())
            if running:
                bits[bit] = frozenset(running)
        return RefTaint(bits)

    def sign_extended(self, from_width, to_width):
        sign = self.bits.get(from_width - 1)
        if sign is None or to_width <= from_width:
            return self.truncated(to_width)
        bits = {b: t for b, t in self.bits.items() if b < from_width}
        for bit in range(from_width, to_width):
            bits[bit] = sign
        return RefTaint(bits)


def observable(t):
    """Representation-independent view of a taint: sorted (bit, tags)."""
    if isinstance(t, RefTaint):
        return sorted(t.bits.items())
    return list(t)


# One step of the differential walk: (method, args) applied to both.
_taint_ops = st.one_of(
    st.tuples(st.just("shifted"), st.integers(-20, 20)),
    st.tuples(st.just("masked"), st.integers(0, (1 << 24) - 1)),
    st.tuples(st.just("truncated"), st.integers(0, 32)),
    st.tuples(st.just("smeared"), st.integers(1, 32)),
    st.tuples(st.just("carry_extended"), st.integers(1, 32)),
    st.tuples(
        st.just("sign_extended"), st.integers(1, 16), st.integers(1, 32)
    ),
    st.tuples(
        st.just("union_byte"), st.integers(0, 5), st.integers(0, 16)
    ),
)


@given(
    tag=st.integers(0, 5),
    lo=st.integers(0, 8),
    ops=st.lists(_taint_ops, max_size=12),
)
@settings(max_examples=300, deadline=None)
def test_bittaint_matches_dict_reference(tag, lo, ops):
    fast = BitTaint.byte(tag, lo)
    ref = RefTaint.byte(tag, lo)
    assert observable(fast) == observable(ref)
    for op in ops:
        name, args = op[0], op[1:]
        if name == "union_byte":
            other_tag, other_lo = args
            fast = fast.union(BitTaint.byte(other_tag, other_lo))
            ref = ref.union(RefTaint.byte(other_tag, other_lo))
        elif name == "sign_extended":
            fast = fast.sign_extended(*args)
            ref = ref.sign_extended(*args)
        else:
            fast = getattr(fast, name)(*args)
            ref = getattr(ref, name)(*args)
        assert observable(fast) == observable(ref), name
        # Derived views must agree with the per-bit map.
        assert fast.tainted_bits() == [b for b, _ in observable(ref)]
        assert fast.is_empty() == (not ref.bits)
        all_tags = frozenset().union(frozenset(), *ref.bits.values())
        assert fast.tags() == all_tags


@given(tag=st.integers(0, 3), lo=st.integers(0, 8))
@settings(max_examples=50, deadline=None)
def test_run_and_dict_backed_equal_and_hash_alike(tag, lo):
    run_backed = BitTaint.byte(tag, lo)
    dict_backed = BitTaint(
        {bit: frozenset((tag,)) for bit in range(lo, lo + 8)}
    )
    assert run_backed == dict_backed
    assert hash(run_backed) == hash(dict_backed)
    assert observable(run_backed) == observable(dict_backed)
    # And after an op that forces the run out of shape:
    assert run_backed.masked(0b1010101010101010) == dict_backed.masked(
        0b1010101010101010
    )


# ----------------------------------------------------------------------
# Cache vs reference model
# ----------------------------------------------------------------------
class RefCache:
    """Straightforward per-set-list cache with the same contract.

    Draws latency noise with ``rng.gauss`` per *timed* access (the
    optimized model batches the identical Box-Muller recurrence), uses
    plain lists per set, recomputes the slice hash per access, and
    implements PLRU victim selection by walking the tree with a list of
    allowed ways.
    """

    def __init__(self, config):
        self.config = config
        self.rng = random.Random(config.seed)
        self.stamp = 0
        n_sets = config.n_slices * config.sets_per_slice
        self.tags = [[-1] * config.ways for _ in range(n_sets)]
        self.stamps = [[0] * config.ways for _ in range(n_sets)]
        self.plru_bits = [[0] * (config.ways - 1) for _ in range(n_sets)]
        self.cos_masks = {0: tuple(range(config.ways))}
        self.hits = self.misses = self.evictions = self.flushes = 0

    # -- mapping (independent implementation) --------------------------
    def _slice_of(self, paddr):
        if self.config.n_slices == 1:
            return 0
        from repro.cache.model import _SLICE_MASKS

        bits = (self.config.n_slices - 1).bit_length()
        out = 0
        for k in range(bits):
            out |= (bin(paddr & _SLICE_MASKS[k]).count("1") & 1) << k
        return out % self.config.n_slices

    def _set_index(self, paddr):
        sl = self._slice_of(paddr)
        st_ = (paddr >> 6) & (self.config.sets_per_slice - 1)
        return sl * self.config.sets_per_slice + st_

    # -- PLRU (list-walk implementation) --------------------------------
    def _plru_touch(self, idx, way):
        bits = self.plru_bits[idx]
        node, lo, hi = 0, 0, self.config.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1
                node, hi = 2 * node + 1, mid
            else:
                bits[node] = 0
                node, lo = 2 * node + 2, mid

    def _plru_victim(self, idx, allowed):
        bits = self.plru_bits[idx]
        node, lo, hi = 0, 0, self.config.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            left_ok = any(lo <= w < mid for w in allowed)
            right_ok = any(mid <= w < hi for w in allowed)
            go_right = bits[node] == 1
            if go_right and not right_ok:
                go_right = False
            elif not go_right and not left_ok:
                go_right = True
            if go_right:
                node, lo = 2 * node + 2, mid
            else:
                node, hi = 2 * node + 1, mid
        return lo

    # -- accesses -------------------------------------------------------
    def _touch_line(self, paddr, cos):
        """(hit, evicted) state transition shared by all access kinds."""
        tag = paddr >> 6
        idx = self._set_index(paddr)
        self.stamp += 1
        tags = self.tags[idx]
        plru = self.config.replacement == "plru"
        if tag in tags:
            way = tags.index(tag)
            self.stamps[idx][way] = self.stamp
            if plru:
                self._plru_touch(idx, way)
            self.hits += 1
            return True, None
        self.misses += 1
        allowed = self.cos_masks.get(cos) or self.cos_masks[0]
        victim = None
        for w in allowed:
            if tags[w] == -1:
                victim = w
                break
        evicted = None
        if victim is None:
            if plru:
                victim = self._plru_victim(idx, allowed)
            else:
                victim = min(allowed, key=lambda w: self.stamps[idx][w])
            evicted = tags[victim] << 6
            self.evictions += 1
        tags[victim] = tag
        self.stamps[idx][victim] = self.stamp
        if plru:
            self._plru_touch(idx, victim)
        return False, evicted

    def access(self, paddr, cos=0):
        hit, evicted = self._touch_line(paddr, cos)
        base = (
            self.config.hit_latency if hit else self.config.miss_latency
        )
        lat = self.rng.gauss(base, self.config.noise_sigma)
        return hit, max(lat, 1.0), evicted

    def access_silent(self, paddr, cos=0):
        self._touch_line(paddr, cos)

    def flush(self, paddr):
        tag = paddr >> 6
        idx = self._set_index(paddr)
        if tag in self.tags[idx]:
            self.tags[idx][self.tags[idx].index(tag)] = -1
        self.flushes += 1


_cache_step = st.tuples(
    st.sampled_from(["access", "timed", "silent", "flush"]),
    st.integers(0, 95),  # line index; small range forces conflicts
    st.sampled_from([0, 1]),  # class of service
)


@pytest.mark.parametrize("replacement", ["lru", "plru"])
@given(steps=st.lists(_cache_step, min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_cache_matches_reference_model(replacement, steps):
    cfg = CacheConfig(
        n_slices=2,
        sets_per_slice=16,
        ways=4,
        seed=99,
        replacement=replacement,
    )
    fast = Cache(cfg)
    ref = RefCache(cfg)
    fast.cos_masks[1] = ref.cos_masks[1] = (0, 1)
    for kind, line, cos in steps:
        paddr = line * LINE_SIZE
        if kind == "access":
            got = fast.access(paddr, cos)
            hit, lat, evicted = ref.access(paddr, cos)
            assert (got.hit, got.latency, got.evicted) == (hit, lat, evicted)
        elif kind == "timed":
            assert fast.access_timed(paddr, cos) == ref.access(paddr, cos)[1]
        elif kind == "silent":
            fast.access_silent(paddr, cos)
            ref.access_silent(paddr, cos)
        else:
            fast.flush(paddr)
            ref.flush(paddr)
    assert fast.stats == {
        "hits": ref.hits,
        "misses": ref.misses,
        "evictions": ref.evictions,
        "flushes": ref.flushes,
    }
    for line in range(96):
        assert fast.contains(line * LINE_SIZE) == (
            (line) in ref.tags[ref._set_index(line * LINE_SIZE)]
        )


# ----------------------------------------------------------------------
# FULL vs ADDRESS_ONLY tiers
# ----------------------------------------------------------------------
def _run_target(target, data, tier):
    ctx = TracingContext(tier=tier)
    if target == "zlib":
        from repro.compression import deflate_compress

        deflate_compress(data, ctx=ctx)
    elif target == "lzw":
        from repro.compression import lzw_compress

        lzw_compress(data, ctx=ctx)
    else:
        from repro.compression.bzip2.blocksort import histogram

        block = ctx.array("block", len(data))
        for i, v in enumerate(ctx.input_bytes(data)):
            block.set(i, v)
        histogram(ctx, block, len(data))
    return ctx


@pytest.mark.parametrize("target", ["zlib", "lzw", "bzip2"])
@given(data=st.binary(min_size=30, max_size=120))
@settings(max_examples=8, deadline=None)
def test_address_only_tier_trace_is_byte_identical(target, data):
    from repro.traces.format import SPECIES_MEMORY, serialize_records

    full = _run_target(target, data, InstrumentationTier.FULL)
    addr = _run_target(target, data, InstrumentationTier.ADDRESS_ONLY)

    fa = full.memory_accesses()
    aa = addr.memory_accesses()
    assert [(a.seq, a.address, a.kind, a.site) for a in fa] == [
        (a.seq, a.address, a.kind, a.site) for a in aa
    ]
    assert serialize_records(SPECIES_MEMORY, fa) == serialize_records(
        SPECIES_MEMORY, aa
    )
    # The lower tier really did skip the data-flow records...
    from repro.taint.value import CompareRecord, OpRecord

    assert not any(isinstance(e, (OpRecord, CompareRecord)) for e in addr.events)
    assert any(isinstance(e, (OpRecord, CompareRecord)) for e in full.events)


def test_survey_metrics_identical_across_tiers(monkeypatch):
    """survey_recovery (which now runs ADDRESS_ONLY) must report the
    same metrics as a forced-FULL run."""
    from repro.campaign.experiments import get_experiment
    from repro.exec import context as context_mod

    fn = get_experiment("survey_recovery")
    fast = fn({"size": 150}, 7)

    real_init = context_mod.TracingContext.__init__

    def full_init(self, *args, **kwargs):
        kwargs["tier"] = InstrumentationTier.FULL
        real_init(self, *args, **kwargs)

    monkeypatch.setattr(context_mod.TracingContext, "__init__", full_init)
    slow = fn({"size": 150}, 7)
    assert fast == slow


def test_profile_only_records_functions_only():
    from repro.compression import lzw_compress

    ctx = TracingContext(tier=InstrumentationTier.PROFILE_ONLY)
    lzw_compress(b"abcabcabcXYZ" * 4, ctx=ctx)
    assert ctx.memory_accesses() == []
    assert ctx.function_events()  # enter/exit markers survive
    assert ctx.plain_accesses > 0
