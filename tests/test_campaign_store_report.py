"""Result store persistence, aggregation, reporting, and the CLI."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    InProcessExecutor,
    ResultStore,
    aggregate_records,
    render_report,
)
from repro.campaign.store import JobRecord
from repro.cli import main


def record(job_id="j1", params=None, status="ok", metrics=None, trial=0):
    return JobRecord(
        job_id=job_id,
        experiment="e",
        params=params or {"x": 1},
        trial=trial,
        seed=7,
        status=status,
        attempts=1,
        duration_seconds=0.5,
        metrics=metrics,
        error=None if status == "ok" else "boom",
    )


class TestStore:
    def test_manifest_fields(self, tmp_path):
        spec = CampaignSpec(name="m", experiment="test_echo", grid={"x": [1]})
        store = ResultStore(tmp_path / "c")
        manifest = store.open_campaign(spec)
        assert manifest["spec_hash"] == spec.spec_hash()
        assert manifest["n_jobs"] == 1
        assert "started_at" in manifest and "git_revision" in manifest
        assert store.load_spec().to_dict() == spec.to_dict()

    def test_append_and_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.root.mkdir(parents=True)
        r = record(metrics={"a": 1.5})
        store.append(r)
        loaded = store.load_records()["j1"]
        assert loaded.to_dict() == r.to_dict()

    def test_last_record_per_job_wins(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.root.mkdir(parents=True)
        store.append(record(status="failed"))
        store.append(record(status="ok", metrics={"a": 1}))
        assert store.load_records()["j1"].ok

    def test_torn_final_line_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.root.mkdir(parents=True)
        store.append(record(job_id="good", metrics={"a": 1}))
        with open(store.results_path, "a") as handle:
            handle.write('{"job_id": "torn", "exp')  # process died mid-write
        records = store.load_records()
        assert set(records) == {"good"}

    def test_finalize_stamps_outcomes(self, tmp_path):
        spec = CampaignSpec(name="m", experiment="test_echo", grid={"x": [1]})
        store = ResultStore(tmp_path / "c")
        store.open_campaign(spec)
        store.finalize({"ok": 1})
        manifest = store.load_manifest()
        assert manifest["outcomes"] == {"ok": 1}
        assert manifest["finished_at"] >= manifest["started_at"]


class TestAggregation:
    def test_cells_pool_trials(self):
        records = [
            record(job_id="a", trial=0, metrics={"v": 1.0}),
            record(job_id="b", trial=1, metrics={"v": 3.0}),
            record(job_id="c", params={"x": 2}, metrics={"v": 9.0}),
        ]
        cells = aggregate_records(records)
        assert len(cells) == 2
        first = next(c for c in cells if c.params == {"x": 1})
        assert first.n_ok == 2
        assert first.mean("v") == 2.0
        assert first.ci95("v") > 0.0

    def test_failures_counted_not_averaged(self):
        records = [
            record(job_id="a", metrics={"v": 2.0}),
            record(job_id="b", status="failed"),
            record(job_id="c", status="timeout"),
        ]
        (cell,) = aggregate_records(records)
        assert cell.n_ok == 1 and cell.n_failed == 2
        assert cell.mean("v") == 2.0  # failures don't drag the mean

    def test_bool_metrics_become_rates(self):
        records = [
            record(job_id="a", metrics={"hit": True}),
            record(job_id="b", metrics={"hit": False}),
        ]
        (cell,) = aggregate_records(records)
        assert cell.mean("hit") == 0.5

    def test_single_trial_has_zero_ci(self):
        (cell,) = aggregate_records([record(metrics={"v": 4.0})])
        assert cell.ci95("v") == 0.0


class TestReport:
    def run_campaign(self, tmp_path):
        spec = CampaignSpec(
            name="rep",
            experiment="test_echo",
            grid={"x": [1, 2]},
            trials=2,
            base_seed=3,
        )
        store = ResultStore(tmp_path / "rep")
        CampaignRunner(
            spec, store, executor_factory=InProcessExecutor
        ).run()
        return store

    def test_report_contains_cells_and_counts(self, tmp_path):
        import tests.test_campaign_runner  # registers test_echo

        store = self.run_campaign(tmp_path)
        text = render_report(store)
        assert "# Campaign — rep" in text
        assert "`test_echo`" in text
        assert "4 recorded (4 ok, 0 failed)" in text
        assert "| x | jobs ok" in text
        assert "value" in text

    def test_report_lists_failures(self):
        from repro.campaign.report import render_failures

        text = render_failures([record(status="failed")])
        assert "boom" in text and "failed" in text


class TestCampaignCli:
    def write_spec(self, tmp_path, **overrides):
        spec = {
            "name": "cli",
            "experiment": "lzw_recovery",
            "grid": {"size": [30, 40]},
            "trials": 1,
            "base_seed": 1,
            "max_retries": 1,
            "retry_backoff": 0.0,
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_run_resume_report(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "run", str(spec_path), "--out", str(out),
                     "--quiet"]) == 0
        assert (out / "manifest.json").exists()
        assert len((out / "results.jsonl").read_text().splitlines()) == 2
        capsys.readouterr()

        assert main(["campaign", "resume", str(out), "--quiet"]) == 0
        text = capsys.readouterr().out
        assert "2 skipped" in text

        assert main(["campaign", "report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "# Campaign — cli" in text
        assert "exact_found" in text

    def test_partial_failure_exits_3(self, tmp_path, capsys):
        spec_path = self.write_spec(
            tmp_path,
            inject_failures={"count": 1, "attempts": 5, "mode": "exception"},
        )
        out = tmp_path / "out"
        assert main(["campaign", "run", str(spec_path), "--out", str(out),
                     "--quiet"]) == 3
        capsys.readouterr()

    def test_all_failed_exits_1(self, tmp_path, capsys):
        spec_path = self.write_spec(
            tmp_path,
            inject_failures={"count": 2, "attempts": 5, "mode": "exception"},
        )
        out = tmp_path / "out"
        assert main(["campaign", "run", str(spec_path), "--out", str(out),
                     "--quiet"]) == 1
        capsys.readouterr()

    def test_report_missing_dir_errors(self, tmp_path, capsys):
        assert main(["campaign", "report", str(tmp_path / "nope")]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    def test_list_experiments(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "lzw_recovery" in out and "sgx_attack" in out


class TestAesTargetGuard:
    def test_empty_input_rejected_with_clear_error(self, capsys):
        assert main(["taintchannel", "aes", "--random", "0"]) == 2
        err = capsys.readouterr().err
        assert "non-empty input" in err

    def test_target_for_raises_for_empty_data(self):
        from repro.core.taintchannel import target_for

        with pytest.raises(ValueError, match="non-empty input"):
            target_for("aes", b"")
