"""Integration tests for the end-to-end SGX extraction attack."""

import pytest

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads.generators import lowercase_ascii, random_bytes


class TestAttackEndToEnd:
    def test_random_data_extraction(self):
        secret = random_bytes(256, seed=42)
        outcome = SgxBzip2Attack(secret).run()
        assert outcome.bit_accuracy > 0.99
        assert outcome.faults == 3 * len(secret)

    def test_text_extraction(self):
        secret = lowercase_ascii(300, seed=1)
        outcome = SgxBzip2Attack(secret).run()
        assert outcome.bit_accuracy > 0.99

    def test_recovered_bytes_match(self):
        secret = random_bytes(200, seed=7)
        outcome = SgxBzip2Attack(secret).run()
        matches = sum(
            1 for got, want in zip(outcome.recovered.values, secret) if got == want
        )
        assert matches >= 0.98 * len(secret)

    def test_summary_smoke(self):
        outcome = SgxBzip2Attack(random_bytes(64, seed=0)).run()
        text = outcome.summary()
        assert "bit accuracy" in text and "faults" in text

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SgxBzip2Attack(b"")

    def test_attack_does_not_corrupt_victim(self):
        """Single-stepping must be transparent: the histogram the victim
        computes is identical to an unattacked run."""
        secret = random_bytes(150, seed=3)
        attack = SgxBzip2Attack(secret)
        attack.run()
        counts = attack.ftab.snapshot()
        assert sum(counts) == len(secret)
        n = len(secret)
        for i in range(n):
            j = (secret[i] << 8) | secret[(i + 1) % n]
            assert counts[j] >= 1


class TestAblations:
    """The paper's accuracy techniques must each earn their keep."""

    def test_frame_selection_reduces_ambiguity(self):
        secret = random_bytes(300, seed=9)
        with_fs = SgxBzip2Attack(secret, AttackConfig()).run()
        without_fs = SgxBzip2Attack(
            secret, AttackConfig(use_frame_selection=False)
        ).run()
        assert (
            without_fs.observations_ambiguous > with_fs.observations_ambiguous
        )
        assert with_fs.bit_accuracy >= without_fs.bit_accuracy

    def test_cat_removes_background_false_positives(self):
        secret = random_bytes(250, seed=11)
        noisy = dict(background_noise_rate=40)
        with_cat = SgxBzip2Attack(
            secret, AttackConfig(use_cat=True, **noisy)
        ).run()
        without_cat = SgxBzip2Attack(
            secret, AttackConfig(use_cat=False, **noisy)
        ).run()
        assert with_cat.observations_ambiguous < without_cat.observations_ambiguous
        assert with_cat.bit_accuracy >= without_cat.bit_accuracy

    def test_error_correction_survives_heavy_noise(self):
        secret = random_bytes(300, seed=13)
        outcome = SgxBzip2Attack(
            secret,
            AttackConfig(
                use_cat=False,
                use_frame_selection=False,
                background_noise_rate=30,
            ),
        ).run()
        # Even the stripped-down attack stays far above chance (50% bits).
        assert outcome.bit_accuracy > 0.9
