"""Unit and property tests for bit-level I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import (
    LSBBitReader,
    LSBBitWriter,
    MSBBitReader,
    MSBBitWriter,
)

fields = st.lists(
    st.integers(min_value=1, max_value=24).flatmap(
        lambda n: st.tuples(st.integers(0, (1 << n) - 1), st.just(n))
    ),
    min_size=0,
    max_size=50,
)


class TestLSB:
    def test_single_byte(self):
        w = LSBBitWriter()
        w.write(0xAB, 8)
        assert w.getvalue() == b"\xab"

    def test_low_bits_first(self):
        w = LSBBitWriter()
        w.write(0b1, 1)
        w.write(0b0, 1)
        w.write(0b111111, 6)
        assert w.getvalue() == bytes([0b11111101])

    def test_partial_final_byte(self):
        w = LSBBitWriter()
        w.write(0b101, 3)
        assert w.getvalue() == bytes([0b00000101])

    def test_value_masked_to_width(self):
        w = LSBBitWriter()
        w.write(0x1FF, 8)
        assert w.getvalue() == b"\xff"

    def test_reader_eof(self):
        r = LSBBitReader(b"\x00")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    @given(fields)
    def test_roundtrip(self, items):
        w = LSBBitWriter()
        for value, n in items:
            w.write(value, n)
        r = LSBBitReader(w.getvalue())
        for value, n in items:
            assert r.read(n) == value


class TestMSB:
    def test_high_bits_first(self):
        w = MSBBitWriter()
        w.write(0b1, 1)
        w.write(0b0, 1)
        w.write(0b111111, 6)
        assert w.getvalue() == bytes([0b10111111])

    def test_partial_final_byte_padded_low(self):
        w = MSBBitWriter()
        w.write(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])

    def test_reader_bits_left(self):
        r = MSBBitReader(b"\xff\x00")
        r.read(5)
        assert r.bits_left() == 11

    def test_read_bit(self):
        r = MSBBitReader(b"\x80")
        assert r.read_bit() == 1
        assert r.read_bit() == 0

    @given(fields)
    def test_roundtrip(self, items):
        w = MSBBitWriter()
        for value, n in items:
            w.write(value, n)
        r = MSBBitReader(w.getvalue())
        for value, n in items:
            assert r.read(n) == value
