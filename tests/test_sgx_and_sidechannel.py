"""Tests for the enclave harness and the attack primitives."""

import pytest

from repro.cache import Cache, CacheConfig, CatController, OsPollution
from repro.memsys import AddressSpace, PageFault, Permissions
from repro.sgx import Enclave, EnclaveKilled
from repro.sidechannel import (
    AttackerMemory,
    FlushReload,
    FrameSelector,
    PrimeProbe,
    SingleStepper,
)


def make_enclave(**kwargs):
    space = AddressSpace()
    cache = Cache(CacheConfig(noise_sigma=0.0))
    return space, cache, Enclave(space, cache, **kwargs)


class TestEnclave:
    def test_array_access_touches_cache(self):
        _, cache, enclave = make_enclave()
        arr = enclave.array("a", 16, elem_size=4)
        arr.set(3, 7)
        assert arr.get(3) == 7
        assert cache.stats["hits"] + cache.stats["misses"] == 2

    def test_unhandled_fault_kills(self):
        space, _, enclave = make_enclave()
        arr = enclave.array("a", 16)
        space.mprotect(arr.base, 16, Permissions.NONE)
        with pytest.raises(EnclaveKilled):
            arr.get(0)

    def test_fault_handler_resolves_and_access_completes(self):
        space, _, enclave = make_enclave()
        arr = enclave.array("a", 16)
        space.mprotect(arr.base, 16, Permissions.READ)
        seen = []

        def handler(fault: PageFault) -> None:
            seen.append((fault.page_vaddr, fault.kind))
            space.mprotect(arr.base, 16, Permissions.RW)

        enclave.fault_handler = handler
        arr.set(2, 9)
        assert arr.get(2) == 9
        assert seen == [(arr.base & ~0xFFF, "write")]

    def test_nonprogressing_handler_detected(self):
        space, _, enclave = make_enclave()
        arr = enclave.array("a", 16)
        space.mprotect(arr.base, 16, Permissions.NONE)
        enclave.fault_handler = lambda fault: None
        with pytest.raises(EnclaveKilled):
            arr.get(0)

    def test_env_hook_called_per_access(self):
        hits = []
        space = AddressSpace()
        cache = Cache(CacheConfig(noise_sigma=0.0))
        enclave = Enclave(
            space, cache, env_hook=lambda paddr, kind: hits.append(kind)
        )
        arr = enclave.array("a", 8)
        arr.set(0, 1)
        arr.get(0)
        arr.add(0, 1)
        assert hits == ["write", "read", "update"]

    def test_arrays_page_aligned_with_misalign(self):
        _, _, enclave = make_enclave()
        a = enclave.array("a", 100, elem_size=4, misalign=48)
        assert a.base % 4096 == 48


class TestPrimeProbe:
    def test_attacker_memory_covers_all_locations(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        mem = AttackerMemory(cache, n_lines=1 << 17)
        assert mem.coverage() == cache.config.n_slices * cache.config.sets_per_slice

    def test_insufficient_lines_rejected(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        mem = AttackerMemory(cache, n_lines=64)
        loc = cache.location(0x4_0000_0000)
        with pytest.raises(ValueError):
            mem.lines_for(loc, 100)

    def test_detects_single_victim_access_with_cat(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        CatController(cache).partition_for_attack()
        mem = AttackerMemory(cache)
        pp = PrimeProbe(cache, mem, cos=0, ways=1)
        victim_addr = 0x1234000
        locations = [cache.location(victim_addr + k * 64) for k in range(64)]
        pp.prime(locations)
        cache.access(victim_addr + 17 * 64, cos=0)  # the secret access
        active = pp.probe(locations)
        assert active == {locations[17]}

    def test_no_access_no_detection(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        CatController(cache).partition_for_attack()
        pp = PrimeProbe(cache, AttackerMemory(cache), ways=1)
        locations = [cache.location(0x4000 + k * 64) for k in range(32)]
        pp.prime(locations)
        assert pp.probe(locations) == set()

    def test_full_associativity_priming_detects_without_cat(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        mem = AttackerMemory(cache)
        pp = PrimeProbe(cache, mem, ways=cache.config.ways)
        victim_addr = 0x5678000
        loc = cache.location(victim_addr)
        pp.prime([loc])
        cache.access(victim_addr, cos=0)
        assert pp.probe([loc]) == {loc}


class TestFlushReload:
    def test_reload_hit_after_victim_touch(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        fr = FlushReload(cache)
        line = 0x7000
        cache.access(line)
        fr.flush(line)
        cache.access(line)  # the victim executes the monitored code
        assert fr.reload(line) is True

    def test_reload_miss_when_untouched(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        fr = FlushReload(cache)
        line = 0x7000
        fr.flush(line)
        assert fr.reload(line) is False

    def test_sample_reflushes(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        fr = FlushReload(cache)
        lines = [0x8000, 0x9000]
        cache.access(lines[0])
        hits = fr.sample(lines)
        assert hits == [True, False]
        # After sampling, both lines are flushed again.
        assert fr.sample(lines) == [False, False]


class TestSingleStepper:
    def _setup(self):
        space, cache, enclave = make_enclave()
        quadrant = enclave.array("quadrant", 32, elem_size=2)
        block = enclave.array("block", 32, elem_size=1)
        block.load(list(range(32)))
        ftab = enclave.array("ftab", 65537, elem_size=4, misalign=48)
        return space, enclave, quadrant, block, ftab

    def test_stepping_order_and_callbacks(self):
        space, enclave, quadrant, block, ftab = self._setup()
        events = []
        stepper = SingleStepper(
            space,
            quadrant,
            block,
            ftab,
            before_ftab_access=lambda page: events.append("ftab"),
            probe_point=lambda: events.append("probe"),
        )
        enclave.fault_handler = stepper.handle_fault
        stepper.arm()
        from repro.compression.bzip2.blocksort import histogram

        histogram(enclave, block, 32, ftab=ftab, quadrant=quadrant)
        stepper.disarm()
        # Per iteration: one ftab callback; a probe before each
        # subsequent iteration's ftab prime.
        assert events.count("ftab") == 32
        assert events.count("probe") == 32  # no probe before first iter,
        # and no probe after the last one (caller's job) -- but one probe
        # per quadrant fault = 32 (first has no page recorded).
        assert stepper.steps == 32

    def test_histogram_result_correct_under_stepping(self):
        space, enclave, quadrant, block, ftab = self._setup()
        stepper = SingleStepper(space, quadrant, block, ftab)
        enclave.fault_handler = stepper.handle_fault
        stepper.arm()
        from repro.compression.bzip2.blocksort import histogram

        histogram(enclave, block, 32, ftab=ftab, quadrant=quadrant)
        stepper.disarm()
        counts = ftab.snapshot()
        assert sum(counts) == 32

    def test_unexpected_fault_rejected(self):
        space, enclave, quadrant, block, ftab = self._setup()
        stepper = SingleStepper(space, quadrant, block, ftab)
        other = enclave.array("other", 8)
        space.mprotect(other.base, 8, Permissions.NONE)
        with pytest.raises(RuntimeError, match="unexpected fault"):
            stepper.handle_fault(PageFault(other.base, "read"))


class TestFrameSelector:
    def _make(self, enabled=True, pollution_lines=48):
        space = AddressSpace()
        cache = Cache(CacheConfig(noise_sigma=0.0))
        CatController(cache).partition_for_attack()
        pollution = OsPollution(cache, n_lines=pollution_lines, cos=0)
        pp = PrimeProbe(cache, AttackerMemory(cache), cos=0, ways=1)
        space.map_range(0xA0000, 4096)
        selector = FrameSelector(
            space, cache, pp, transition=pollution.fault_entry, enabled=enabled
        )
        return space, cache, pollution, selector

    def test_vetted_frame_is_quiet(self):
        space, cache, pollution, selector = self._make()
        vetted = selector.vet(0xA0000)
        assert vetted.noisy == set()
        assert set(vetted.locations).isdisjoint(pollution.polluted_locations())

    def test_vet_is_cached(self):
        _, _, _, selector = self._make()
        first = selector.vet(0xA0000)
        assert selector.vet(0xA0000) is first

    def test_disabled_selector_accepts_frame_as_is(self):
        space, _, _, selector = self._make(enabled=False)
        before = space.frame_of(0xA0000)
        vetted = selector.vet(0xA0000)
        assert vetted.frame == before
        assert vetted.remaps == 0

    def test_locations_follow_remap(self):
        space, cache, _, selector = self._make()
        locs_before = selector.page_locations(0xA0000)
        space.remap(0xA0000)
        locs_after = selector.page_locations(0xA0000)
        assert locs_before != locs_after
