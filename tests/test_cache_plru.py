"""Tests for the tree-PLRU replacement policy."""

import pytest

from repro.cache import Cache, CacheConfig, CatController
from repro.cache.model import PlruTree


def same_set_addresses(cache: Cache, count: int, start: int = 0) -> list[int]:
    """Addresses all mapping to one (slice, set)."""
    target = cache.location(start)
    out = [start]
    addr = start
    while len(out) < count:
        addr += 64 * cache.config.sets_per_slice
        if cache.location(addr) == target:
            out.append(addr)
    return out


class TestPlruTree:
    def test_untouched_tree_victims_way_zero(self):
        tree = PlruTree(8)
        assert tree.victim(range(8)) == 0

    def test_touch_steers_victim_away(self):
        tree = PlruTree(8)
        tree.touch(0)
        assert tree.victim(range(8)) != 0

    def test_round_robin_touch_cycles_victims(self):
        tree = PlruTree(4)
        victims = []
        for _ in range(4):
            v = tree.victim(range(4))
            victims.append(v)
            tree.touch(v)
        assert sorted(victims) == [0, 1, 2, 3]

    def test_victim_respects_allowed_mask(self):
        tree = PlruTree(8)
        for way in range(8):
            tree.touch(way)
        assert tree.victim({5}) == 5
        assert tree.victim({2, 3}) in {2, 3}

    def test_single_way_tree(self):
        assert PlruTree(1).victim({0}) == 0

    def test_recently_touched_way_never_immediate_victim(self):
        tree = PlruTree(16)
        for way in (3, 7, 11, 3, 15):
            tree.touch(way)
            assert tree.victim(range(16)) != way


class TestPlruCache:
    def _cache(self) -> Cache:
        return Cache(CacheConfig(noise_sigma=0.0, replacement="plru"))

    def test_validates_config(self):
        with pytest.raises(ValueError):
            CacheConfig(replacement="random")
        with pytest.raises(ValueError):
            CacheConfig(replacement="plru", ways=12)

    def test_working_set_of_ways_size_stays_resident(self):
        cache = self._cache()
        addrs = same_set_addresses(cache, cache.config.ways)
        for a in addrs:
            cache.access(a)
        assert all(cache.contains(a) for a in addrs)

    def test_overflow_evicts_exactly_one(self):
        cache = self._cache()
        addrs = same_set_addresses(cache, cache.config.ways + 1)
        for a in addrs[:-1]:
            cache.access(a)
        result = cache.access(addrs[-1])
        assert not result.hit
        assert result.evicted in addrs[:-1]
        resident = sum(1 for a in addrs if cache.contains(a))
        assert resident == cache.config.ways

    def test_victim_not_most_recently_used(self):
        cache = self._cache()
        addrs = same_set_addresses(cache, cache.config.ways + 1)
        for a in addrs[:-1]:
            cache.access(a)
        mru = addrs[-2]
        result = cache.access(addrs[-1])
        assert result.evicted != mru

    def test_cat_partition_under_plru(self):
        cache = self._cache()
        CatController(cache).partition_for_attack()
        protected = same_set_addresses(cache, 1)[0]
        cache.access(protected, cos=0)
        for a in same_set_addresses(cache, 30, start=1 << 22):
            if cache.location(a) == cache.location(protected):
                cache.access(a, cos=1)
        assert cache.contains(protected)

    def test_prime_probe_detection_under_plru(self):
        """Full-associativity Prime+Probe still detects one victim access."""
        from repro.sidechannel import AttackerMemory, PrimeProbe

        cache = self._cache()
        mem = AttackerMemory(cache)
        pp = PrimeProbe(cache, mem, ways=cache.config.ways)
        victim_addr = 0x7777000
        loc = cache.location(victim_addr)
        pp.prime([loc])
        cache.access(victim_addr, cos=0)
        assert loc in pp.probe([loc])

    def test_sgx_attack_works_under_plru(self):
        from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
        from repro.workloads import random_bytes

        config = AttackConfig(
            cache=CacheConfig(replacement="plru"),
        )
        outcome = SgxBzip2Attack(random_bytes(120, seed=2), config).run()
        assert outcome.bit_accuracy > 0.99
