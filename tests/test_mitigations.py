"""Tests for the Section VIII mitigations: correctness, the
constant-access property, and defeat of the end-to-end attack."""

import pytest

from repro.compression.bzip2.blocksort import histogram
from repro.compression.lzw import lzw_compress, lzw_decompress
from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.exec import NativeContext, TracingContext
from repro.mitigations import (
    ObliviousTable,
    oblivious_histogram,
    oblivious_lzw_compress,
)
from repro.mitigations.oblivious import SITE_OBLIVIOUS_FTAB, SITE_OBLIVIOUS_HTAB
from repro.workloads import random_bytes


class TestObliviousTable:
    def _table(self, length=100, elem_size=8, init=0):
        ctx = NativeContext()
        arr = ctx.array("t", length, elem_size=elem_size, init=init)
        return arr, ObliviousTable(arr)

    def test_get_set_roundtrip(self):
        arr, ob = self._table()
        ob.set(37, 1234)
        assert ob.get(37) == 1234
        assert arr.get(37) == 1234

    def test_set_preserves_other_entries(self):
        arr, ob = self._table(init=5)
        ob.set(10, 99)
        snapshot = arr.snapshot()
        assert snapshot[10] == 99
        assert all(v == 5 for i, v in enumerate(snapshot) if i != 10)

    def test_add(self):
        arr, ob = self._table(init=1)
        ob.add(3, 41)
        assert arr.get(3) == 42
        assert arr.get(4) == 1

    def test_access_count_is_input_independent(self):
        """Same number of touches regardless of which index is used."""
        counts = []
        for index in (0, 50, 99):
            ctx = TracingContext()
            arr = ctx.array("t", 100, elem_size=8)
            before = ctx.plain_accesses
            ObliviousTable(arr).get(index)
            counts.append(ctx.plain_accesses - before)
        assert len(set(counts)) == 1

    def test_line_trace_is_index_independent(self):
        """The cache-line sequence must not depend on the index; observe
        the real channel by running on the enclave memory system."""

        def lines_for(index):
            from repro.cache import Cache, CacheConfig
            from repro.memsys import AddressSpace
            from repro.sgx import Enclave

            touched: list[int] = []
            enclave = Enclave(
                AddressSpace(seed=5),
                Cache(CacheConfig()),
                env_hook=lambda paddr, kind: touched.append(paddr >> 6),
            )
            arr = enclave.array("t", 256, elem_size=8)
            ObliviousTable(arr).get(index)
            return touched

        assert lines_for(3) == lines_for(250)


class TestObliviousHistogram:
    def test_same_counts_as_vulnerable_version(self):
        data = random_bytes(120, seed=1)
        ctx_a, ctx_b = NativeContext(), NativeContext()
        block_a = ctx_a.array("block", len(data))
        block_b = ctx_b.array("block", len(data))
        block_a.load(list(data))
        block_b.load(list(data))
        plain = histogram(ctx_a, block_a, len(data)).snapshot()
        hardened = oblivious_histogram(ctx_b, block_b, len(data)).snapshot()
        assert plain == hardened

    def test_ftab_line_trace_is_input_independent(self):
        """The full victim line sequence is identical across inputs."""

        def all_lines(data):
            from repro.cache import Cache, CacheConfig
            from repro.memsys import AddressSpace
            from repro.sgx import Enclave

            touched: list[int] = []
            enclave = Enclave(
                AddressSpace(seed=7),
                Cache(CacheConfig()),
                env_hook=lambda paddr, kind: touched.append(paddr >> 6),
            )
            block = enclave.array("block", len(data))
            block.load(list(data))
            oblivious_histogram(enclave, block, len(data))
            return touched

        lines_a = all_lines(b"\x00\x11\x22\x33")
        lines_b = all_lines(b"\xff\xee\xdd\xcc")
        assert lines_a and lines_a == lines_b

    def test_vulnerable_histogram_trace_is_input_dependent(self):
        """Control: the Listing 3 loop's line trace differs by input."""

        def all_lines(data):
            from repro.cache import Cache, CacheConfig
            from repro.memsys import AddressSpace
            from repro.sgx import Enclave

            touched: list[int] = []
            enclave = Enclave(
                AddressSpace(seed=7),
                Cache(CacheConfig()),
                env_hook=lambda paddr, kind: touched.append(paddr >> 6),
            )
            block = enclave.array("block", len(data))
            block.load(list(data))
            histogram(enclave, block, len(data))
            return touched

        assert all_lines(b"\x00\x11\x22\x33") != all_lines(b"\xff\xee\xdd\xcc")


class TestObliviousLzw:
    def test_roundtrip_with_standard_decompressor(self):
        data = b"the oblivious compressor emits ordinary lzw streams"
        assert lzw_decompress(oblivious_lzw_compress(data)) == data

    def test_roundtrip_repetitive(self):
        data = b"abcabc" * 30
        assert lzw_decompress(oblivious_lzw_compress(data)) == data

    def test_empty(self):
        assert lzw_decompress(oblivious_lzw_compress(b"")) == b""

    def test_htab_line_trace_is_input_independent(self):
        """The full victim cache-line sequence (the real channel) must be
        identical for different same-length inputs."""

        def all_lines(data):
            from repro.cache import Cache, CacheConfig
            from repro.memsys import AddressSpace
            from repro.sgx import Enclave

            touched: list[int] = []
            enclave = Enclave(
                AddressSpace(seed=6),
                Cache(CacheConfig()),
                env_hook=lambda paddr, kind: touched.append(paddr >> 6),
            )
            oblivious_lzw_compress(data, ctx=enclave, hash_bits=8)
            return touched

        assert all_lines(b"ab") == all_lines(b"zq")

    def test_vulnerable_lzw_trace_is_input_dependent(self):
        """Control: the unmitigated compressor's line trace differs."""

        def all_lines(data):
            from repro.cache import Cache, CacheConfig
            from repro.memsys import AddressSpace
            from repro.sgx import Enclave

            touched: list[int] = []
            enclave = Enclave(
                AddressSpace(seed=6),
                Cache(CacheConfig()),
                env_hook=lambda paddr, kind: touched.append(paddr >> 6),
            )
            lzw_compress(data, ctx=enclave)
            return touched

        assert all_lines(b"ab") != all_lines(b"zq")

    def test_output_differs_from_fast_path_only_in_timing(self):
        # Same dictionary decisions -> same compressed bytes as the
        # unmitigated compressor when no hash collisions differ.
        data = b"to be or not to be"
        assert lzw_decompress(oblivious_lzw_compress(data)) == (
            lzw_decompress(lzw_compress(data))
        )


class TestAttackVsMitigation:
    def test_oblivious_victim_defeats_extraction(self):
        secret = random_bytes(120, seed=31)
        vulnerable = SgxBzip2Attack(secret, AttackConfig()).run()
        hardened = SgxBzip2Attack(
            secret, AttackConfig(), victim_histogram=oblivious_histogram
        ).run()
        assert vulnerable.byte_accuracy > 0.95
        assert hardened.byte_accuracy < 0.10
        assert hardened.bit_accuracy < 0.80

    def test_mitigation_cost_is_visible(self):
        secret = random_bytes(60, seed=32)
        vulnerable = SgxBzip2Attack(secret, AttackConfig()).run()
        hardened = SgxBzip2Attack(
            secret, AttackConfig(), victim_histogram=oblivious_histogram
        ).run()
        # The oblivious scan costs orders of magnitude more accesses.
        assert hardened.victim_accesses > 100 * vulnerable.victim_accesses
