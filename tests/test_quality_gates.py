"""Repository-wide quality gates: documentation coverage, determinism,
and large-input behaviour."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        missing = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            for attr_name, attr in vars(module).items():
                if attr_name.startswith("_"):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue  # re-exports are documented at their home
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if not (attr.__doc__ or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_modules_all_import(self):
        for name in PUBLIC_MODULES:
            importlib.import_module(name)


class TestDeterminism:
    def test_sgx_attack_is_reproducible(self):
        from repro.core.zipchannel import SgxBzip2Attack
        from repro.workloads import random_bytes

        secret = random_bytes(80, seed=61)
        a = SgxBzip2Attack(secret).run()
        b = SgxBzip2Attack(secret).run()
        assert a.recovered.values == b.recovered.values
        assert a.faults == b.faults
        assert a.frame_remaps == b.frame_remaps

    def test_compressors_are_deterministic(self):
        from repro.compression import (
            bzip2_compress,
            deflate_compress,
            lzw_compress,
        )
        from repro.workloads import english_like

        data = english_like(2500, seed=62)
        for compress in (deflate_compress, lzw_compress, bzip2_compress):
            assert compress(data) == compress(data)

    def test_workloads_are_deterministic(self):
        from repro.workloads import brotli_like_corpus, repetitiveness_series

        assert repetitiveness_series() == repetitiveness_series()
        assert brotli_like_corpus() == brotli_like_corpus()


class TestLargeInputs:
    def test_deflate_beyond_window_size(self):
        """Inputs larger than the 32 KiB window exercise the prev-table
        aliasing path; correctness must hold (matches are verified by
        byte comparison before emission, as in zlib)."""
        from repro.compression.lz77 import (
            WSIZE,
            deflate_compress,
            deflate_decompress,
        )
        from repro.workloads import english_like

        data = english_like(2 * WSIZE + 1234, seed=63)
        assert deflate_decompress(deflate_compress(data)) == data

    def test_lzw_table_freeze_beyond_max_codes(self):
        """Inputs producing > 2^16 dictionary entries freeze the table;
        the stream must still round-trip."""
        from repro.compression.lzw import lzw_compress, lzw_decompress
        from repro.workloads import random_bytes

        data = random_bytes(90_000, seed=64)
        assert lzw_decompress(lzw_compress(data)) == data

    def test_bzip2_many_blocks(self):
        from repro.compression.bzip2 import bzip2_compress, bzip2_decompress
        from repro.workloads import english_like

        data = english_like(45_000, seed=65)
        assert bzip2_decompress(bzip2_compress(data)) == data
