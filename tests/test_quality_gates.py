"""Repository-wide quality gates: documentation coverage, determinism,
lint hygiene, and large-input behaviour."""

import ast
import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        missing = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            for attr_name, attr in vars(module).items():
                if attr_name.startswith("_"):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue  # re-exports are documented at their home
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if not (attr.__doc__ or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_modules_all_import(self):
        for name in PUBLIC_MODULES:
            importlib.import_module(name)


SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

# CLI entry points own stdout; everything else must stay silent (the
# same exemption as pyproject's ruff T201 per-file-ignores).
CLI_FILES = {"cli.py", "__main__.py"}


def _is_main_guard(test: ast.expr) -> bool:
    """``if __name__ == "__main__":`` — the one place library modules
    may print."""
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value == "__main__"
    )


class TestLintGates:
    """AST mirrors of the CI ruff rules (T201, E722, B006), so the
    gates hold even where ruff is not installed."""

    def _sources(self):
        for path in sorted(SRC_ROOT.rglob("*.py")):
            yield path, ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )

    def test_no_print_in_library_code(self):
        """``print()`` belongs to the CLI entry points; library code
        routes diagnostics through repro.obs (ruff T201)."""
        offenders = []
        for path, tree in self._sources():
            if path.name in CLI_FILES:
                continue
            guarded = set()
            for node in ast.walk(tree):
                if isinstance(node, ast.If) and _is_main_guard(node.test):
                    guarded.update(id(sub) for sub in ast.walk(node))
            for node in ast.walk(tree):
                if id(node) in guarded:
                    continue
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    offenders.append(
                        f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
                    )
        assert not offenders, f"print() in library code: {offenders}"

    def test_no_bare_except(self):
        """Bare ``except:`` swallows KeyboardInterrupt/SystemExit —
        always name the exception (ruff E722)."""
        offenders = [
            f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
            for path, tree in self._sources()
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]
        assert not offenders, f"bare except: {offenders}"

    def test_no_mutable_default_arguments(self):
        """Mutable defaults are shared across calls (ruff B006)."""
        offenders = []
        for path, tree in self._sources():
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                        offenders.append(
                            f"{path.relative_to(SRC_ROOT)}:{default.lineno} "
                            f"({node.name})"
                        )
        assert not offenders, f"mutable default arguments: {offenders}"


class TestDeterminism:
    def test_sgx_attack_is_reproducible(self):
        from repro.core.zipchannel import SgxBzip2Attack
        from repro.workloads import random_bytes

        secret = random_bytes(80, seed=61)
        a = SgxBzip2Attack(secret).run()
        b = SgxBzip2Attack(secret).run()
        assert a.recovered.values == b.recovered.values
        assert a.faults == b.faults
        assert a.frame_remaps == b.frame_remaps

    def test_compressors_are_deterministic(self):
        from repro.compression import (
            bzip2_compress,
            deflate_compress,
            lzw_compress,
        )
        from repro.workloads import english_like

        data = english_like(2500, seed=62)
        for compress in (deflate_compress, lzw_compress, bzip2_compress):
            assert compress(data) == compress(data)

    def test_workloads_are_deterministic(self):
        from repro.workloads import brotli_like_corpus, repetitiveness_series

        assert repetitiveness_series() == repetitiveness_series()
        assert brotli_like_corpus() == brotli_like_corpus()


class TestLargeInputs:
    def test_deflate_beyond_window_size(self):
        """Inputs larger than the 32 KiB window exercise the prev-table
        aliasing path; correctness must hold (matches are verified by
        byte comparison before emission, as in zlib)."""
        from repro.compression.lz77 import (
            WSIZE,
            deflate_compress,
            deflate_decompress,
        )
        from repro.workloads import english_like

        data = english_like(2 * WSIZE + 1234, seed=63)
        assert deflate_decompress(deflate_compress(data)) == data

    def test_lzw_table_freeze_beyond_max_codes(self):
        """Inputs producing > 2^16 dictionary entries freeze the table;
        the stream must still round-trip."""
        from repro.compression.lzw import lzw_compress, lzw_decompress
        from repro.workloads import random_bytes

        data = random_bytes(90_000, seed=64)
        assert lzw_decompress(lzw_compress(data)) == data

    def test_bzip2_many_blocks(self):
        from repro.compression.bzip2 import bzip2_compress, bzip2_decompress
        from repro.workloads import english_like

        data = english_like(45_000, seed=65)
        assert bzip2_decompress(bzip2_compress(data)) == data
