"""Multi-sink observability: globs, merged reads, live following.

A sharded cluster campaign writes one obs sink per worker shard; `obs
report`/`obs watch` must read them as one stream.  The invariant under
test: counter snapshots are cumulative per *process*, so the merge
keys last-snapshot-per-``(sink, pid)`` and then sums — two shard sinks
whose workers happen to share a pid namespace still aggregate
correctly, while single-sink reads keep the historical per-pid merge.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    MultiSinkFollower,
    SinkFollower,
    WatchState,
    expand_sinks,
    load_events,
    load_events_multi,
    make_follower,
    merge_events,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def write_sink(path, events):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def counters_event(pid, value, ts=0.0):
    return {
        "kind": "counters",
        "pid": pid,
        "ts": ts,
        "counters": {"campaign.ok": value},
        "histograms": {},
    }


class TestExpandSinks:
    def test_plain_paths_pass_through_sorted_deduped(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert expand_sinks([b, a, b]) == [a, b]

    def test_glob_expands_to_matches(self, tmp_path):
        for name in ("shard-w0", "shard-w1"):
            write_sink(tmp_path / name / "obs.jsonl", [])
        paths = expand_sinks(str(tmp_path / "shard-*" / "obs.jsonl"))
        assert [p.split("/")[-2] for p in paths] == ["shard-w0", "shard-w1"]

    def test_single_string_is_not_iterated_charwise(self, tmp_path):
        assert expand_sinks(str(tmp_path / "x.jsonl")) == [
            str(tmp_path / "x.jsonl")
        ]


class TestLoadEventsMulti:
    def test_no_match_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no obs sink matches"):
            load_events_multi(str(tmp_path / "shard-*" / "obs.jsonl"))

    def test_single_concrete_path_behaves_like_load_events(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        write_sink(sink, [counters_event(1, 3)])
        events = load_events_multi(str(sink))
        assert events == load_events(str(sink))
        assert "_src" not in events[0]  # historical single-sink shape

    def test_multi_sink_tags_source_and_sorts_by_ts(self, tmp_path):
        write_sink(
            tmp_path / "shard-w0" / "obs.jsonl",
            [{"kind": "log", "msg": "late", "ts": 5.0}],
        )
        write_sink(
            tmp_path / "shard-w1" / "obs.jsonl",
            [{"kind": "log", "msg": "early", "ts": 1.0}],
        )
        events = load_events_multi(str(tmp_path / "shard-*" / "obs.jsonl"))
        assert [e["msg"] for e in events] == ["early", "late"]
        assert events[0]["_src"].endswith("shard-w1/obs.jsonl")
        assert events[1]["_src"].endswith("shard-w0/obs.jsonl")


class TestMergeAcrossSinks:
    def test_colliding_pids_across_sinks_sum(self, tmp_path):
        """Two shard sinks, same pid 7 in each (containers, separate
        hosts): the merge must sum them, not let one shadow the other."""
        write_sink(
            tmp_path / "shard-w0" / "obs.jsonl",
            [counters_event(7, 2), counters_event(7, 3)],  # cumulative
        )
        write_sink(
            tmp_path / "shard-w1" / "obs.jsonl",
            [counters_event(7, 4)],
        )
        events = load_events_multi(str(tmp_path / "shard-*" / "obs.jsonl"))
        merged = merge_events(events)
        assert merged["counters"]["campaign.ok"] == 7  # 3 (last of w0) + 4

    def test_single_sink_same_pid_keeps_last_snapshot_only(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        write_sink(sink, [counters_event(7, 2), counters_event(7, 3)])
        merged = merge_events(load_events_multi(str(sink)))
        assert merged["counters"]["campaign.ok"] == 3  # not 5

    def test_watch_state_applies_the_same_keying(self):
        state = WatchState()
        state.ingest(
            [
                {**counters_event(7, 3), "_src": "shard-w0/obs.jsonl"},
                {**counters_event(7, 4), "_src": "shard-w1/obs.jsonl"},
            ]
        )
        assert state.counters() == {"campaign.ok": 7}
        # Without _src (single-sink watch) the pid key still dedupes.
        state2 = WatchState()
        state2.ingest([counters_event(7, 2), counters_event(7, 3)])
        assert state2.counters() == {"campaign.ok": 3}


class TestMakeFollower:
    def test_plain_path_gets_the_incremental_follower(self, tmp_path):
        assert isinstance(
            make_follower(str(tmp_path / "obs.jsonl")), SinkFollower
        )

    def test_glob_or_list_gets_the_multi_follower(self, tmp_path):
        assert isinstance(
            make_follower(str(tmp_path / "shard-*" / "obs.jsonl")),
            MultiSinkFollower,
        )
        assert isinstance(
            make_follower([str(tmp_path / "a"), str(tmp_path / "b")]),
            MultiSinkFollower,
        )


class TestMultiSinkFollower:
    def test_late_appearing_shard_is_picked_up(self, tmp_path):
        """A worker that registers mid-campaign creates its shard sink
        after the watch started; the next poll must include it."""
        pattern = str(tmp_path / "shard-*" / "obs.jsonl")
        write_sink(
            tmp_path / "shard-w0" / "obs.jsonl",
            [{"kind": "log", "msg": "w0", "ts": 1.0}],
        )
        follower = MultiSinkFollower(pattern)
        assert [e["msg"] for e in follower.poll()] == ["w0"]
        write_sink(
            tmp_path / "shard-w1" / "obs.jsonl",
            [{"kind": "log", "msg": "w1", "ts": 2.0}],
        )
        events = follower.poll()
        assert [e["msg"] for e in events] == ["w1"]
        assert events[0]["_src"].endswith("shard-w1/obs.jsonl")
        assert follower.poll() == []  # each event delivered once

    def test_corrupt_counts_sum_across_sinks(self, tmp_path):
        pattern = str(tmp_path / "s*.jsonl")
        (tmp_path / "s1.jsonl").write_text("{broken\n")
        (tmp_path / "s2.jsonl").write_text("{also broken\n")
        follower = MultiSinkFollower(pattern)
        assert follower.poll() == []
        assert follower.corrupt == 2
