"""Batched cache API ≡ scalar loop, access for access.

``access_many`` / ``access_many_timed`` / ``access_many_silent`` promise
the *identical* state mutations, RNG consumption, and latencies a scalar
loop over the same addresses would produce.  The Hypothesis program here
interleaves scalar and batch calls on one cache while a reference cache
replays everything scalar-wise, then demands bit-equal latencies,
identical line/stamp/PLRU state, and an identical noise-stream
continuation afterwards.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BackgroundNoise, Cache, CacheConfig, OsPollution
from repro.cache.model import LINE_SIZE


def _addr(i: int) -> int:
    return 0x1_0000_0000 + i * LINE_SIZE


def configs() -> st.SearchStrategy[CacheConfig]:
    return st.builds(
        CacheConfig,
        n_slices=st.sampled_from([1, 2, 4]),
        sets_per_slice=st.sampled_from([4, 8]),
        ways=st.sampled_from([1, 2, 4]),
        noise_sigma=st.sampled_from([0.0, 6.0]),
        seed=st.integers(min_value=0, max_value=1 << 16),
        replacement=st.sampled_from(["lru", "plru"]),
    )


def programs() -> st.SearchStrategy[list]:
    # A small line pool keeps set contention (hits, evictions) frequent.
    addrs = st.lists(
        st.integers(min_value=0, max_value=40), min_size=0, max_size=12
    )
    op = st.tuples(
        st.sampled_from(["access", "timed", "silent", "many", "many_timed",
                         "many_silent"]),
        addrs,
        st.sampled_from([0, 1]),
    )
    return st.lists(op, min_size=1, max_size=12)


def _run_scalar(cache: Cache, op: str, paddrs: list, cos: int) -> list:
    if op in ("access", "many"):
        return [
            (r.hit, r.latency, r.evicted)
            for r in (cache.access(p, cos=cos) for p in paddrs)
        ]
    if op in ("timed", "many_timed"):
        return [cache.access_timed(p, cos=cos) for p in paddrs]
    for p in paddrs:
        cache.access_silent(p, cos=cos)
    return []


def _run_batch(cache: Cache, op: str, paddrs: list, cos: int) -> list:
    if op == "many":
        r = cache.access_many(paddrs, cos=cos)
        assert r.n_hits == int(np.count_nonzero(r.hits))
        return [
            (bool(h), float(lat), ev)
            for h, lat, ev in zip(r.hits, r.latencies, r.evicted)
        ]
    if op == "many_timed":
        return [float(lat) for lat in cache.access_many_timed(paddrs, cos=cos)]
    if op == "many_silent":
        cache.access_many_silent(paddrs, cos=cos)
        return []
    return _run_scalar(cache, op, paddrs, cos)


def _assert_same_state(batch: Cache, ref: Cache) -> None:
    assert batch._tags == ref._tags
    assert batch._stamps == ref._stamps
    assert batch._stamp == ref._stamp
    assert batch.stats == ref.stats
    assert set(batch._plru) == set(ref._plru)
    for base, tree in batch._plru.items():
        assert tree.bits == ref._plru[base].bits


class TestBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(config=configs(), program=programs())
    def test_interleaved_program_matches_scalar_loop(self, config, program):
        batch = Cache(config)
        ref = Cache(config)
        for op, lines, cos in program:
            paddrs = [_addr(i) for i in lines]
            got = _run_batch(batch, op, paddrs, cos)
            want = _run_scalar(ref, op, paddrs, cos)
            assert got == want  # latencies bit-equal, hits/evictions too
        _assert_same_state(batch, ref)
        # The noise stream must have advanced identically: the next
        # scalar draws on both caches are from the same subsequence.
        tail = [batch.access_timed(_addr(i)) for i in range(8)]
        assert tail == [ref.access_timed(_addr(i)) for i in range(8)]

    @settings(max_examples=20, deadline=None)
    @given(
        config=configs(),
        lines=st.lists(st.integers(min_value=0, max_value=40), max_size=30),
    )
    def test_access_many_on_one_call(self, config, lines):
        paddrs = [_addr(i) for i in lines]
        batch, ref = Cache(config), Cache(config)
        result = batch.access_many(paddrs, cos=1)
        expected = [ref.access(p, cos=1) for p in paddrs]
        assert result.hits.tolist() == [r.hit for r in expected]
        assert result.latencies.tolist() == [r.latency for r in expected]
        assert result.evicted == [r.evicted for r in expected]
        _assert_same_state(batch, ref)


class TestNoiseAdoption:
    def test_background_noise_step_matches_scalar_replay(self):
        import random

        config = CacheConfig(n_slices=2, sets_per_slice=8, ways=2, seed=5)
        cache, ref = Cache(config), Cache(config)
        noise = BackgroundNoise(cache, rate=50, seed=99)
        for _ in range(4):
            noise.step()
        # Scalar replay of the identical RNG stream.
        rng = random.Random(99)
        for _ in range(4):
            addrs = [
                0x2_0000_0000 + rng.randrange(1 << 16) * LINE_SIZE
                for _ in range(50)
            ]
            for a in addrs:
                ref.access_silent(a, cos=1)
        _assert_same_state(cache, ref)

    def test_os_pollution_fault_matches_scalar_replay(self):
        config = CacheConfig(n_slices=1, sets_per_slice=8, ways=2, seed=5)
        cache, ref = Cache(config), Cache(config)
        pollution = OsPollution(cache, n_lines=24, seed=3)
        pollution.fault_entry()
        for a in OsPollution(ref, n_lines=24, seed=3)._addrs:
            ref.access_silent(a, cos=0)
        _assert_same_state(cache, ref)
