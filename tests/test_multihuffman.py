"""Tests for bzip2's multi-table Huffman coding with selectors."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression.bzip2.multihuffman import (
    GROUP_SIZE,
    _mtf_decode_selectors,
    _mtf_encode_selectors,
    choose_n_groups,
    decode_stream,
    encode_stream,
    fit_tables,
    read_lengths_delta,
    write_lengths_delta,
)
from repro.compression.bzip2.pipeline import bzip2_compress, bzip2_decompress


def make_stream(n: int, alpha: int, seed: int, eob: int) -> list[int]:
    """A symbol stream with locality (phases prefer symbol subsets),
    which is what multi-table coding exists to exploit."""
    rng = random.Random(seed)
    out = []
    while len(out) < n - 1:
        subset = rng.sample(range(eob), k=max(2, alpha // 3))
        for _ in range(min(120, n - 1 - len(out))):
            out.append(rng.choice(subset))
    out.append(eob)
    return out


class TestGroupHeuristic:
    @pytest.mark.parametrize(
        "n,expected", [(10, 2), (300, 3), (800, 4), (2000, 5), (9000, 6)]
    )
    def test_thresholds(self, n, expected):
        assert choose_n_groups(n) == expected


class TestLengthDelta:
    @given(st.lists(st.integers(1, 20), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, lengths):
        out = MSBBitWriter()
        write_lengths_delta(out, lengths)
        got = read_lengths_delta(MSBBitReader(out.getvalue()), len(lengths))
        assert got == lengths


class TestSelectorMtf:
    @given(st.lists(st.integers(0, 5), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, selectors):
        coded = _mtf_encode_selectors(selectors, 6)
        assert _mtf_decode_selectors(coded, 6) == selectors


class TestFitTables:
    def test_selector_per_group(self):
        eob = 9
        symbols = make_stream(500, 10, seed=1, eob=eob)
        tables, selectors = fit_tables(symbols, 10, 3)
        assert len(selectors) == -(-len(symbols) // GROUP_SIZE)
        assert all(0 <= s < 3 for s in selectors)
        assert len(tables) == 3

    def test_every_symbol_encodable_by_every_table(self):
        eob = 7
        symbols = make_stream(300, 8, seed=2, eob=eob)
        tables, _ = fit_tables(symbols, 8, 2)
        for lengths in tables:
            assert all(l > 0 for l in lengths)

    def test_locality_makes_tables_differ(self):
        eob = 19
        symbols = make_stream(3000, 20, seed=3, eob=eob)
        tables, selectors = fit_tables(symbols, 20, 6)
        assert len({tuple(t) for t in tables}) > 1
        assert len(set(selectors)) > 1


class TestStreamRoundTrip:
    @pytest.mark.parametrize("n,alpha", [(60, 5), (400, 12), (3000, 30)])
    def test_roundtrip(self, n, alpha):
        eob = alpha - 1
        symbols = make_stream(n, alpha, seed=n, eob=eob)
        out = MSBBitWriter()
        encode_stream(out, symbols, alpha)
        got = decode_stream(MSBBitReader(out.getvalue()), alpha, eob)
        assert got == symbols

    @given(st.integers(2, 25), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, alpha, seed):
        eob = alpha - 1
        rng = random.Random(seed)
        symbols = [rng.randrange(eob) for _ in range(rng.randrange(1, 200))]
        symbols.append(eob)
        out = MSBBitWriter()
        encode_stream(out, symbols, alpha)
        got = decode_stream(MSBBitReader(out.getvalue()), alpha, eob)
        assert got == symbols


class TestPipelineIntegration:
    def test_both_schemes_roundtrip(self):
        data = b"switching tables between symbol groups " * 120
        for multi in (True, False):
            blob = bzip2_compress(data, multi_huffman=multi)
            assert bzip2_decompress(blob) == data

    def test_multi_table_helps_on_phased_symbol_stream(self):
        # A symbol stream whose statistics shift between groups: six
        # switched tables beat one global table.  (Measured at the
        # coding layer: the BWT upstream would reshuffle input-level
        # phases, which is why the comparison is done here.)
        from repro.compression.bzip2.huffman import HuffmanTable

        alpha = 30
        eob = alpha - 1
        symbols = make_stream(6000, alpha, seed=8, eob=eob)

        multi_out = MSBBitWriter()
        encode_stream(multi_out, symbols, alpha)
        multi_bits = len(multi_out.getvalue())

        freqs = [0] * alpha
        for s in symbols:
            freqs[s] += 1
        table = HuffmanTable.from_freqs(freqs)
        single_out = MSBBitWriter()
        table.write_lengths(single_out)
        for s in symbols:
            table.encode(single_out, s)
        single_bits = len(single_out.getvalue())

        assert multi_bits < single_bits

    def test_scheme_flag_is_self_describing(self):
        data = b"no external knowledge needed to decode"
        mixed = [
            bzip2_compress(data, multi_huffman=True),
            bzip2_compress(data, multi_huffman=False),
        ]
        assert all(bzip2_decompress(b) == data for b in mixed)
        assert mixed[0] != mixed[1]
