"""Tests for timing-only eviction-set construction."""

import pytest

from repro.cache import Cache, CacheConfig
from repro.sidechannel import EvictionSetBuilder, EvictionSetError


@pytest.fixture
def cache():
    return Cache(CacheConfig(noise_sigma=0.0))


class TestOracle:
    def test_congruent_lines_evict(self, cache):
        builder = EvictionSetBuilder(cache)
        target = 0x1234040
        pool = builder._congruent_pool(target)
        assert builder.evicts(target, pool)

    def test_disjoint_lines_do_not_evict(self, cache):
        builder = EvictionSetBuilder(cache)
        target = 0x1234040
        # Lines with a different set index never touch the target's set.
        other = [a + 64 for a in builder._congruent_pool(target)[:64]]
        assert not builder.evicts(target, other)

    def test_pool_lines_share_set_index(self, cache):
        builder = EvictionSetBuilder(cache)
        target = 0x1234040
        for addr in builder._congruent_pool(target):
            assert cache.set_of(addr) == cache.set_of(target)


class TestReduction:
    def test_finds_minimal_set(self, cache):
        builder = EvictionSetBuilder(cache)
        target = 0xDEAD040
        found = builder.find(target)
        assert len(found) == cache.config.ways
        assert builder.evicts(target, found)

    def test_found_lines_share_slice_and_set(self, cache):
        """Cross-check against the model's ground-truth mapping, which
        the builder itself never consulted."""
        builder = EvictionSetBuilder(cache)
        target = 0xBEEF9C0
        found = builder.find(target)
        assert {cache.location(a) for a in found} == {cache.location(target)}

    def test_works_for_multiple_targets(self, cache):
        builder = EvictionSetBuilder(cache)
        for target in (0x100040, 0x2FEDC80, 0x7654000):
            found = builder.find(target)
            assert len(found) == cache.config.ways
            assert {cache.location(a) for a in found} == {
                cache.location(target)
            }

    def test_too_small_pool_raises(self, cache):
        builder = EvictionSetBuilder(cache, pool_lines=256)
        with pytest.raises(EvictionSetError):
            builder.find(0x9990040)

    def test_test_count_is_reasonable(self, cache):
        """Group testing needs O(ways^2) oracle calls, not O(pool)."""
        builder = EvictionSetBuilder(cache)
        builder.find(0x5550040)
        assert builder.tests_performed < 200

    def test_smaller_cache_geometry(self):
        cache = Cache(
            CacheConfig(
                n_slices=2, sets_per_slice=64, ways=4, noise_sigma=0.0
            )
        )
        builder = EvictionSetBuilder(cache, pool_lines=1 << 12)
        target = 0x8080
        found = builder.find(target)
        assert len(found) == 4
        assert {cache.location(a) for a in found} == {cache.location(target)}
