"""Tests for the TaintChannel tool: gadget discovery on all the paper's
targets, provenance slices, report rendering, control-flow diffing."""

import pytest

from repro.compression.bzip2 import SITE_FTAB, bzip2_compress
from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.compression.lzw import SITE_PRIMARY, lzw_compress
from repro.core.taintchannel import TaintChannel, avx_memcpy
from repro.core.taintchannel.provenance import (
    backward_slice,
    input_roots,
    opcode_chain,
)
from repro.crypto.aes import aes128_encrypt_block
from repro.exec import NativeContext, TracingContext


@pytest.fixture(scope="module")
def tc():
    return TaintChannel()


class TestGadgetDiscovery:
    def test_zlib_gadget_found(self, tc):
        data = b"some moderately interesting text for zlib to chew on."
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        gadget = result.gadget(SITE_HEAD)
        assert gadget.count >= len(data) - 2
        assert gadget.array == "head"

    def test_zlib_leaks_entire_input(self, tc):
        data = b"lowercase ascii text stays in a narrow byte range ok"
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        # every byte's taint reaches head[ins_h] above the line offset
        assert result.gadget(SITE_HEAD).leaked_tags() >= frozenset(
            range(len(data))
        )

    def test_lzw_gadget_found(self, tc):
        data = b"TOBEORNOTTOBEORTOBEORNOT"
        result = tc.analyze("ncompress", lambda ctx: lzw_compress(data, ctx))
        gadget = result.gadget(SITE_PRIMARY)
        assert gadget.count >= len(data) - 1

    def test_lzw_coverage_near_total(self, tc):
        data = b"abcdabcdabcdzzzzqqqq"
        result = tc.analyze("ncompress", lambda ctx: lzw_compress(data, ctx))
        assert result.input_coverage() > 0.9

    def test_bzip2_ftab_gadget_found(self, tc):
        # The ftab histogram runs in mainSort, i.e. on *full* blocks;
        # shrink the block size so a small input exercises it.
        data = b"bzip2 histogram leaks byte pairs via ftab accesses!"
        result = tc.analyze(
            "bzip2",
            lambda ctx: bzip2_compress(data, ctx, block_size=len(data)),
        )
        gadget = result.gadget(SITE_FTAB)
        assert gadget.count >= len(data)
        assert gadget.kinds == {"update"}

    def test_bzip2_leaks_entire_input(self, tc):
        data = b"every byte appears in two consecutive ftab indices"
        result = tc.analyze(
            "bzip2",
            lambda ctx: bzip2_compress(data, ctx, block_size=len(data)),
        )
        assert result.input_coverage() == 1.0

    def test_bzip2_short_block_has_no_ftab_gadget(self, tc):
        # Short blocks go straight to fallbackSort: no histogram runs.
        data = b"tiny"
        result = tc.analyze("bzip2", lambda ctx: bzip2_compress(data, ctx))
        with pytest.raises(KeyError):
            result.gadget(SITE_FTAB)

    def test_aes_te_gadget_found(self, tc):
        result = tc.analyze(
            "openssl-aes",
            lambda ctx: aes128_encrypt_block(b"k" * 16, b"p" * 16, ctx),
        )
        te_gadgets = [g for g in result.gadgets if g.array.startswith("Te")]
        assert len(te_gadgets) == 4
        assert result.input_coverage() == 1.0  # all 16 pt bytes leak

    def test_summary_mentions_gadgets(self, tc):
        data = b"hello hello hello"
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        text = result.summary()
        assert SITE_HEAD in text
        assert "input coverage" in text

    def test_gadget_lookup_missing_raises(self, tc):
        result = tc.analyze("nothing", lambda ctx: None)
        with pytest.raises(KeyError):
            result.gadget("no/such/site")


class TestProvenance:
    def test_slice_roots_are_input_bytes(self, tc):
        data = b"\x01\x02\x03\x04\x05"
        ctx = tc.trace(lambda c: lzw_compress(data, c))
        probe = [
            a for a in ctx.tainted_accesses() if a.site == SITE_PRIMARY
        ][0]
        roots = input_roots(probe.addr_origin)
        assert roots and all(r.source == "input" for r in roots)

    def test_lzw_chain_shape(self, tc):
        """The chain must show the Listing 2 computation: shl 9, xor."""
        data = b"\x07\x20"
        ctx = tc.trace(lambda c: lzw_compress(data, c))
        probe = [
            a for a in ctx.tainted_accesses() if a.site == SITE_PRIMARY
        ][0]
        chain = opcode_chain(probe.addr_origin)
        assert "shl" in chain and "xor" in chain

    def test_zlib_chain_shape(self, tc):
        """UPDATE_HASH: shl 5, xor, and-mask must all appear."""
        data = b"abcdef"
        ctx = tc.trace(lambda c: deflate_compress(data, c))
        acc = [a for a in ctx.tainted_accesses() if a.site == SITE_HEAD][0]
        chain = opcode_chain(acc.addr_origin)
        assert {"shl", "xor", "and"} <= set(chain)

    def test_slice_is_seq_ordered(self, tc):
        data = b"xyzw"
        ctx = tc.trace(lambda c: deflate_compress(data, c))
        acc = ctx.tainted_accesses()[0]
        seqs = [r.seq for r in backward_slice(acc.addr_origin)]
        assert seqs == sorted(seqs)

    def test_empty_slice_for_untainted(self):
        assert backward_slice(None) == []


class TestReports:
    def test_render_contains_bit_rows(self, tc):
        data = b"abcdefgh"
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        text = tc.render(result, result.gadget(SITE_HEAD))
        assert "Taint-dependent memory access" in text
        assert "|15|14|13|12|11|10| 9| 8| 7| 6| 5| 4| 3| 2| 1| 0|" in text
        assert " x|" in text

    def test_render_includes_computation(self, tc):
        data = b"abcd"
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        text = tc.render(result, result.gadget(SITE_HEAD))
        assert "computation (input -> pointer)" in text
        assert "read input[" in text

    def test_render_without_slice(self, tc):
        data = b"abcd"
        result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
        text = tc.render(result, result.gadget(SITE_HEAD), with_slice=False)
        assert "computation" not in text


class TestControlFlowDiscovery:
    def test_bzip2_sort_divergence_discovered(self, tc):
        """Different inputs take mainSort vs fallbackSort (Section VI)."""
        import random

        rng = random.Random(0)
        words = [b"alpha", b"beta", b"gamma", b"delta", b"epsilon", b"zeta"]
        text = bytearray()
        while len(text) < 11000:
            text += rng.choice(words) + b" "
        full_block = bytes(text[:10500])  # first block full -> mainSort
        short = b"tiny file"  # -> fallbackSort

        div = tc.diff(
            lambda ctx: bzip2_compress(full_block, ctx),
            lambda ctx: bzip2_compress(short, ctx),
        )
        assert div is not None
        assert "mainSort" in str(div.left) or "fallbackSort" in str(div.right)

    def test_identical_inputs_no_divergence(self, tc):
        data = b"same input both times"
        div = tc.diff(
            lambda ctx: lzw_compress(data, ctx),
            lambda ctx: lzw_compress(data, ctx),
        )
        assert div is None

    def test_memcpy_size_divergence(self, tc):
        """Section III-B: memcpy's path reveals size mod AVX width."""

        def run(size):
            def target(ctx):
                src = ctx.array("src", 64, init=7)
                dst = ctx.array("dst", 64)
                avx_memcpy(ctx, dst, src, size)

            return target

        div = tc.diff(run(64), run(61))  # multiple of 32 vs not
        assert div is not None
        assert "byte_tail" in (str(div.left) + str(div.right))

    def test_memcpy_same_residue_no_divergence(self, tc):
        def run(size):
            def target(ctx):
                src = ctx.array("src", 96, init=1)
                dst = ctx.array("dst", 96)
                avx_memcpy(ctx, dst, src, size)

            return target

        # 32 vs 64: both pure AVX path... different chunk counts produce
        # different tick totals but identical function marker sequences.
        assert tc.diff(run(32), run(64)) is None

    def test_memcpy_copies_correctly(self):
        ctx = NativeContext()
        src = ctx.array("src", 70)
        for i in range(70):
            src.set(i, i)
        dst = ctx.array("dst", 70)
        avx_memcpy(ctx, dst, src, 70)
        assert dst.snapshot() == src.snapshot()


class TestEventBudget:
    def test_budget_applies_to_analysis(self):
        tc = TaintChannel(max_events=500)
        data = b"abcdefgh" * 200
        from repro.exec.events import TraceLimitExceeded

        with pytest.raises(TraceLimitExceeded):
            tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))


class TestDemo:
    """The module demo returns its report; printing is only for
    ``python -m repro.core.taintchannel.tool`` itself."""

    def test_demo_returns_report_without_stdout(self, capsys):
        from repro.core.taintchannel.tool import demo

        text = demo(data=b"abcdefgh" * 30, target="lzw")
        assert isinstance(text, str)
        assert "gadget" in text.lower() or "accesses" in text.lower()
        assert capsys.readouterr().out == ""

    def test_analyze_emits_no_stdout(self, capsys):
        from repro.core.taintchannel.tool import TaintChannel, target_for

        data = b"abcdefgh" * 30
        tc = TaintChannel()
        tc.analyze("lzw", target_for("lzw", data))
        assert capsys.readouterr().out == ""
