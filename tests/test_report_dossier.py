"""The campaign dossier (``repro report``) and its CLI surfaces.

``build_dossier`` merges four already-tested views — campaign records,
the diag.json timeseries, the obs sink summary, and the stitched trace
— into one static markdown artifact.  These tests pin the section
contract, the graceful degradation when a view's inputs are missing,
and the CLI wiring for ``repro report``, ``obs report --trace``,
``obs export --format chrome-trace``, and ``perf profile --sites``.
"""

import json

import pytest

from repro import cli, obs
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    InProcessExecutor,
    ResultStore,
    build_dossier,
    discover_sinks,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def run_campaign(tmp_path, name="dossier", with_sink=False):
    spec = CampaignSpec(
        name=name,
        experiment="lzw_recovery",
        grid={"size": [30, 40]},
        trials=1,
    )
    store = ResultStore(tmp_path / name)
    if with_sink:
        obs.enable(sink_path=str(store.root / "obs.jsonl"))
    result = CampaignRunner(
        spec, store, executor_factory=InProcessExecutor
    ).run()
    if with_sink:
        obs.flush()
        obs.reset()
    return result, store


class TestDiscoverSinks:
    def test_finds_root_and_shard_sinks(self, tmp_path):
        root = tmp_path / "c"
        (root / "shard-w0").mkdir(parents=True)
        (root / "obs.jsonl").write_text("")
        (root / "shard-w0" / "obs.jsonl").write_text("")
        found = discover_sinks(root)
        assert [p.endswith("obs.jsonl") for p in found] == [True, True]

    def test_empty_campaign_dir_finds_nothing(self, tmp_path):
        assert discover_sinks(tmp_path) == []


class TestBuildDossier:
    def test_all_four_sections_from_a_real_run(self, tmp_path):
        _, store = run_campaign(tmp_path, with_sink=True)
        text = build_dossier(store)
        assert text.startswith("# Campaign — dossier")
        assert "## Results by cell" in text
        assert "## Diagnostics timeseries" in text
        assert "## Observability" in text
        assert "## Trace" in text
        assert "campaign.ok" in text
        assert "campaign.run" in text  # the local runner's root span
        assert "## critical path" in text

    def test_diag_is_derived_when_missing(self, tmp_path):
        _, store = run_campaign(tmp_path)
        (store.root / "diag.json").unlink()  # e.g. an older-format run
        text = build_dossier(store)
        # derived on the fly from the records
        assert "## Diagnostics timeseries" in text
        assert "| metric " in text

    def test_degrades_without_any_sink(self, tmp_path):
        _, store = run_campaign(tmp_path)
        text = build_dossier(store)
        assert "## Observability" in text
        assert "no obs sink" in text

    def test_explicit_sinks_override_discovery(self, tmp_path):
        _, store = run_campaign(tmp_path, with_sink=True)
        elsewhere = tmp_path / "elsewhere.jsonl"
        elsewhere.write_text(
            json.dumps(
                {"kind": "counters", "pid": 9, "ts": 1.0,
                 "counters": {"only.here": 3}, "histograms": {}}
            )
            + "\n"
        )
        text = build_dossier(store, sinks=[str(elsewhere)])
        assert "only.here" in text
        assert "campaign.ok" not in text


class TestReportCli:
    def test_report_writes_dossier_file(self, tmp_path, capsys):
        _, store = run_campaign(tmp_path, with_sink=True)
        out = tmp_path / "dossier.md"
        rc = cli.main(
            ["report", str(store.root), "--out", str(out)]
        )
        assert rc == 0
        text = out.read_text()
        assert "## Observability" in text
        assert "## Trace" in text

    def test_report_prints_to_stdout_by_default(self, tmp_path, capsys):
        _, store = run_campaign(tmp_path)
        assert cli.main(["report", str(store.root)]) == 0
        assert "## Results by cell" in capsys.readouterr().out

    def test_missing_campaign_dir_is_usage_error(self, tmp_path, capsys):
        assert cli.main(["report", str(tmp_path / "nope")]) == 2
        assert "no campaign" in capsys.readouterr().err

    def test_obs_report_trace_flag(self, tmp_path, capsys):
        _, store = run_campaign(tmp_path, with_sink=True)
        sink = store.root / "obs.jsonl"
        assert cli.main(["obs", "report", str(sink), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "## span tree" in out
        assert "## critical path" in out

    def test_obs_export_chrome_trace_round_trips(self, tmp_path, capsys):
        _, store = run_campaign(tmp_path, with_sink=True)
        sink = store.root / "obs.jsonl"
        out = tmp_path / "trace.json"
        rc = cli.main(
            ["obs", "export", str(sink),
             "--format", "chrome-trace", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "campaign.run" in names
        assert "campaign.job" in names

    def test_obs_export_default_format_unchanged(self, tmp_path, capsys):
        _, store = run_campaign(tmp_path, with_sink=True)
        sink = store.root / "obs.jsonl"
        assert cli.main(["obs", "export", str(sink)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "counters" in doc  # the merged-summary export


class TestPerfProfileSites:
    def test_sites_table_renders(self, capsys):
        rc = cli.main(
            ["perf", "profile", "--sites", "lzw", "--size", "120"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "site access profile of target 'lzw'" in out
        assert "compress/htab[hp]" in out
        assert "tainted" in out

    def test_site_rows_share_sums_to_one(self):
        from repro.perf import site_access_profile
        from repro.workloads import random_bytes

        rows = site_access_profile("lzw", random_bytes(100, seed=3))
        assert rows
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        assert all(r["accesses"] > 0 for r in rows)
        # gadget reports key on the same site ids: every row is a site
        assert all("/" in r["site"] for r in rows)
