"""Live sink following and the watch dashboard.

The follower's contract: only complete JSONL lines are delivered, a
torn tail is buffered until its newline arrives, garbage is counted
not raised, and a recreated sink restarts the offset.  The watch is a
pure renderer over :class:`WatchState`, so everything is assertable
without a terminal; the one integration test drives a real campaign
subprocess and polls with a deadline (no fixed sleeps).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.watch import (
    SinkFollower,
    WatchState,
    render_watch,
    sparkline,
    watch_loop,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def _line(payload: dict) -> str:
    return json.dumps(payload) + "\n"


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▄▄▄"

    def test_monotone_series_rises(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert text[0] == "▁"
        assert text[-1] == "█"

    def test_window_keeps_the_tail(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestSinkFollower:
    def test_missing_file_polls_empty(self, tmp_path):
        follower = SinkFollower(tmp_path / "nope.jsonl")
        assert follower.poll() == []

    def test_delivers_each_event_once(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        sink.write_text(_line({"kind": "log", "msg": "a"}))
        follower = SinkFollower(sink)
        assert [e["msg"] for e in follower.poll()] == ["a"]
        assert follower.poll() == []
        with open(sink, "a") as fh:
            fh.write(_line({"kind": "log", "msg": "b"}))
        assert [e["msg"] for e in follower.poll()] == ["b"]

    def test_partial_line_is_buffered_until_complete(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        full = _line({"kind": "log", "msg": "torn"})
        sink.write_text(full[:10])  # mid-write
        follower = SinkFollower(sink)
        assert follower.poll() == []
        with open(sink, "a") as fh:
            fh.write(full[10:])
        assert [e["msg"] for e in follower.poll()] == ["torn"]
        assert follower.corrupt == 0

    def test_corrupt_complete_lines_are_counted_and_skipped(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        sink.write_text(
            "{not json}\n"
            + _line({"kind": "log", "msg": "ok"})
            + _line([1, 2, 3])  # valid JSON, wrong shape
        )
        follower = SinkFollower(sink)
        events = follower.poll()
        assert [e["msg"] for e in events] == ["ok"]
        assert follower.corrupt == 2

    def test_truncated_sink_restarts_from_zero(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        sink.write_text(_line({"kind": "log", "msg": "a much longer first line"}))
        follower = SinkFollower(sink)
        follower.poll()
        sink.write_text(_line({"kind": "log", "msg": "new"}))
        assert [e["msg"] for e in follower.poll()] == ["new"]

    def test_rotation_delivers_every_event_exactly_once(self, tmp_path):
        # The size-cap rotation (sink -> sink.1) must look to a live
        # follower like a seamless stream: the rotated file's unread
        # tail is drained before the fresh file is read from zero.
        sink = tmp_path / "s.jsonl"
        sink.write_text(_line({"kind": "log", "msg": "a"}))
        follower = SinkFollower(sink)
        assert [e["msg"] for e in follower.poll()] == ["a"]
        # more lines land, then the writer rotates before the next poll
        with open(sink, "a") as fh:
            fh.write(_line({"kind": "log", "msg": "b"}))
        os.replace(sink, str(sink) + ".1")
        sink.write_text(_line({"kind": "log", "msg": "c"}))
        assert [e["msg"] for e in follower.poll()] == ["b", "c"]
        assert follower.poll() == []

    def test_rotation_with_fully_read_generation(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        sink.write_text(_line({"kind": "log", "msg": "a"}))
        follower = SinkFollower(sink)
        follower.poll()
        os.replace(sink, str(sink) + ".1")
        sink.write_text(_line({"kind": "log", "msg": "fresh"}))
        assert [e["msg"] for e in follower.poll()] == ["fresh"]

    def test_multi_follower_skips_rotated_twin(self, tmp_path):
        # Following 's.jsonl*' must not deliver the rotated generation
        # twice: the base follower already drains 's.jsonl.1'.
        from repro.obs.watch import MultiSinkFollower

        sink = tmp_path / "s.jsonl"
        (tmp_path / "s.jsonl.1").write_text(
            _line({"kind": "log", "msg": "old"})
        )
        sink.write_text(_line({"kind": "log", "msg": "new"}))
        follower = MultiSinkFollower([str(tmp_path / "s.jsonl*")])
        events = follower.poll()
        msgs = sorted(e["msg"] for e in events)
        assert msgs == ["new", "old"]
        # both generations carry the logical sink as their source
        assert {e["_src"] for e in events} == {str(sink)}
        assert follower.poll() == []


class TestWatchState:
    def test_counters_merge_last_snapshot_per_pid(self):
        state = WatchState()
        state.ingest(
            [
                {"kind": "counters", "pid": 1,
                 "counters": {"campaign.ok": 1}, "histograms": {}},
                {"kind": "counters", "pid": 1,
                 "counters": {"campaign.ok": 3}, "histograms": {}},
                {"kind": "counters", "pid": 2,
                 "counters": {"campaign.ok": 2}, "histograms": {}},
            ]
        )
        assert state.counters() == {"campaign.ok": 5}
        assert state.pids == {1, 2}

    def test_histograms_fold_across_pids(self):
        state = WatchState()
        payload = {"count": 2, "total": 4.0, "min": 1.0, "max": 3.0}
        state.ingest(
            [
                {"kind": "counters", "pid": 1, "counters": {},
                 "histograms": {"h": dict(payload)}},
                {"kind": "counters", "pid": 2, "counters": {},
                 "histograms": {"h": dict(payload)}},
            ]
        )
        merged = state.histograms()["h"]
        assert merged.count == 4
        assert merged.mean == 2.0

    def test_metrics_build_rolling_series(self):
        state = WatchState(rolling_window=3)
        for i in range(5):
            state.ingest(
                [{"kind": "metrics", "name": "campaign.job",
                  "values": {"bit_accuracy": i / 10}}]
            )
        series = state.series["campaign.job.bit_accuracy"]
        assert list(series) == [0.2, 0.3, 0.4]  # window of 3

    def test_campaign_start_log_sets_totals(self):
        state = WatchState()
        state.ingest(
            [{"kind": "log", "level": "info", "msg": "campaign started",
              "fields": {"campaign": "sweep", "jobs": 12}}]
        )
        assert state.total_jobs == 12
        assert state.campaign == "sweep"

    def test_job_progress_derives_retries(self):
        state = WatchState()
        state.ingest(
            [{"kind": "counters", "pid": 1, "histograms": {},
              "counters": {"campaign.ok": 3, "campaign.failed": 1,
                           "campaign.attempts": 6}}]
        )
        progress = state.job_progress()
        assert progress == {
            "done": 3, "failed": 1, "retried": 2,
            "attempts": 6, "total": None,
        }

    def test_warnings_dedupe_by_key_across_pids(self):
        state = WatchState()
        warn = {"kind": "log", "level": "warning", "msg": "slow disk",
                "fields": {"warn_key": "disk"}}
        state.ingest([
            {**warn, "pid": 1}, {**warn, "pid": 2}, {**warn, "pid": 1},
        ])
        (row,) = state.warnings.values()
        assert row["count"] == 3
        assert row["pids"] == {1, 2}


class TestRenderWatch:
    def test_renders_every_populated_section(self):
        state = WatchState()
        state.ingest(
            [
                {"kind": "log", "level": "info", "msg": "campaign started",
                 "ts": 1.0, "pid": 1,
                 "fields": {"campaign": "demo", "jobs": 2}},
                {"kind": "metrics", "name": "campaign.job", "ts": 2.0,
                 "pid": 1, "values": {"bit_accuracy": 0.97}},
                {"kind": "counters", "pid": 1, "ts": 3.0,
                 "counters": {"campaign.ok": 2, "campaign.attempts": 2},
                 "histograms": {"campaign.job_seconds":
                                {"count": 2, "total": 1.0,
                                 "min": 0.4, "max": 0.6}}},
                {"kind": "log", "level": "warning", "msg": "retried job",
                 "ts": 4.0, "pid": 1, "fields": {"warn_key": "retry"}},
            ]
        )
        text = render_watch(state, sink="s.jsonl")
        assert "repro obs watch — s.jsonl" in text
        assert "jobs [demo]: 2/2 done  0 failed  0 retried" in text
        assert "## rolling metrics" in text
        assert "campaign.job.bit_accuracy" in text
        assert "## counters" in text
        assert "## histograms" in text
        assert "[x1, 1 pid] retried job" in text

    def test_empty_state_renders_header_only(self):
        text = render_watch(WatchState())
        assert "events 0" in text
        assert "##" not in text

    def test_watch_loop_once_renders_one_frame(self, tmp_path):
        sink = tmp_path / "s.jsonl"
        sink.write_text(_line({"kind": "log", "msg": "x", "pid": 9}))
        frames = []
        state = watch_loop(str(sink), emit=frames.append, once=True)
        assert len(frames) == 1
        assert state.n_events == 1
        assert "\x1b" not in frames[0]  # --once never clears the screen


class TestWatchIntegration:
    def test_watch_sees_a_live_campaign_through_to_done(self, tmp_path):
        """Poll a real `campaign run --obs` subprocess with a deadline
        and assert the dashboard reaches <total>/<total> done."""
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "watch-int",
                    "experiment": "gadget_leakage",
                    "grid": {"target": ["zlib", "lzw"], "size": [40]},
                }
            )
        )
        sink = tmp_path / "obs.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                str(spec), "--out", str(tmp_path / "run"),
                "--obs", str(sink), "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        follower = SinkFollower(sink)
        state = WatchState()
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                state.ingest(follower.poll())
                progress = state.job_progress()
                if (
                    state.total_jobs is not None
                    and progress["done"] >= state.total_jobs
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail(
                    f"watch never saw completion; stderr: "
                    f"{proc.communicate()[1]!r}"
                )
        finally:
            proc.wait(timeout=60)

        assert state.total_jobs == 2
        assert state.campaign == "watch-int"
        text = render_watch(state, sink=str(sink))
        assert "jobs [watch-int]: 2/2 done" in text
        assert "campaign.job.bit_accuracy" in text
        assert follower.corrupt == 0
