"""End-to-end cluster runs with real worker subprocesses.

Two drills, both deadline-polled (no fixed sleeps):

* the one-shot ``run_cluster`` path with a worker SIGKILLed mid-run —
  every job must still complete and the merged store must be
  digest-identical to a single-host run of the same spec;
* service mode — a ``cluster serve`` scheduler accepting a second
  campaign while the first drains through the same worker fleet, with
  ``cluster status`` reflecting both.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    metrics_digest,
)
from repro.campaign.spec import FaultInjection
from repro.cluster import run_cluster

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(autouse=True)
def worker_pythonpath(monkeypatch):
    """Worker subprocesses import repro via PYTHONPATH."""
    monkeypatch.setenv("PYTHONPATH", str(REPO / "src"))


def drill_spec(name="int-drill"):
    # Importable by worker subprocesses, fast, with injected failures
    # so the retry plane is exercised too.
    return CampaignSpec(
        name=name,
        experiment="lzw_recovery",
        grid={"size": [30, 40, 50]},
        trials=2,
        max_retries=2,
        retry_backoff=0.0,
        inject_failures=FaultInjection(count=2, attempts=1),
    )


class TestKillDrill:
    def test_two_workers_one_killed_digest_matches_single_host(
        self, tmp_path
    ):
        """The acceptance drill: 2 workers, w0 SIGKILLed mid-run; all
        jobs complete and the metrics digest equals the single-host
        run's — crash recovery must not change a single metric byte."""
        result = run_cluster(
            drill_spec(),
            tmp_path / "cluster",
            workers=2,
            lease_seconds=10.0,
            heartbeat_seconds=0.3,
            drill_kill_worker=2,
            deadline_seconds=120.0,
        )
        assert result["state"] == "done"
        assert result["counts"]["ok"] == 6
        assert result["counts"].get("crashed", 0) == 0
        assert result["counts"].get("failed", 0) == 0

        cluster_store = ResultStore(tmp_path / "cluster")
        records = cluster_store.load_records()
        assert len(records) == 6
        assert all(record.ok for record in records.values())
        # The kill and the injected failures left retry fingerprints in
        # the wall-clock fields only.
        assert max(record.attempts for record in records.values()) >= 2

        single_store = ResultStore(tmp_path / "single")
        single = CampaignRunner(drill_spec(), single_store).run()
        assert single.counts == {"ok": 6}
        assert metrics_digest(records) == metrics_digest(
            single_store.load_records()
        )


def popen_repro(*argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *argv],
        env=env,
        text=True,
        **kwargs,
    )


def run_repro(*argv, timeout=60):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestServiceMode:
    def test_serve_accepts_second_campaign_while_first_drains(
        self, tmp_path
    ):
        spec_paths = []
        for index in (1, 2):
            spec = dict(
                name=f"svc{index}",
                experiment="lzw_recovery",
                grid={"size": [30, 40]},
                trials=2,
            )
            path = tmp_path / f"spec{index}.json"
            path.write_text(json.dumps(spec))
            spec_paths.append(path)

        serve = popen_repro(
            "cluster", "serve", "--listen", "tcp:127.0.0.1:0",
            "--heartbeat-seconds", "0.3", "--lease-seconds", "10",
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        workers = []
        try:
            line = serve.stdout.readline()
            assert "serving on " in line, line
            endpoint = line.strip().rsplit("serving on ", 1)[1]

            workers = [
                popen_repro(
                    "cluster", "worker", "--connect", endpoint,
                    "--worker-id", f"svc-w{i}", "--quiet",
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                for i in range(2)
            ]

            # Submit both campaigns back to back: the second queues
            # while the first is still draining through the fleet.
            for index, path in enumerate(spec_paths, start=1):
                proc = run_repro(
                    "cluster", "submit", str(path),
                    "--connect", endpoint,
                    "--out", str(tmp_path / f"out{index}"),
                )
                assert proc.returncode == 0, proc.stderr
                assert f"svc{index}" in proc.stdout

            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                proc = run_repro(
                    "cluster", "status", "--connect", endpoint, "--json"
                )
                assert proc.returncode == 0, proc.stderr
                status = json.loads(proc.stdout)
                names = [c["name"] for c in status["campaigns"]]
                assert names == ["svc1", "svc2"]  # both visible at once
                if all(
                    c["state"] == "done" for c in status["campaigns"]
                ):
                    break
                time.sleep(0.2)
            else:
                pytest.fail(f"campaigns never drained: {status}")

            assert status["campaigns"][0]["counts"] == {"ok": 4}
            assert status["campaigns"][1]["counts"] == {"ok": 4}
            connected = [
                w for w in status["workers"] if w["connected"]
            ]
            assert len(connected) == 2

            proc = run_repro("cluster", "shutdown", "--connect", endpoint)
            assert proc.returncode == 0, proc.stderr
            assert serve.wait(timeout=30) == 0
            for worker in workers:
                assert worker.wait(timeout=30) == 0
        finally:
            for proc in [serve, *workers]:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

        for index in (1, 2):
            store = ResultStore(tmp_path / f"out{index}")
            records = store.load_records()
            assert len(records) == 4
            assert all(record.ok for record in records.values())
            assert store.load_manifest()["outcomes"]["ok"] == 4


class TestTraceDrill:
    def test_kill_drill_yields_one_connected_trace_tree(self, tmp_path):
        """The tracing acceptance drill: 2 real workers sharing one obs
        sink, one SIGKILLed mid-run — scheduler, workers, and shard
        store must still stitch into a single trace tree rooted at the
        scheduler's campaign span, with zero orphans, and the merged
        events must export to valid Chrome Trace JSON."""
        from repro.obs.export import event_pid, render_chrome_trace
        from repro.obs.report import trace_summary

        sink = tmp_path / "obs.jsonl"
        obs.enable(sink_path=str(sink))
        result = run_cluster(
            drill_spec(name="trace-drill"),
            tmp_path / "cluster",
            workers=2,
            lease_seconds=10.0,
            heartbeat_seconds=0.3,
            drill_kill_worker=2,
            deadline_seconds=120.0,
            obs_sink=str(sink),
        )
        obs.flush()
        obs.reset()
        assert result["state"] == "done"
        assert result["counts"]["ok"] == 6

        events = obs.load_events_multi([str(sink)])
        summary = trace_summary(events)
        assert summary["root"]["name"] == "cluster.campaign"
        assert summary["n_orphans"] == 0
        assert len(summary["trace_ids"]) == 1
        assert summary["merge_seconds"] > 0.0

        job_spans = [
            e for e in events
            if e.get("kind") == "span" and e.get("name") == "campaign.job"
        ]
        assert job_spans
        # every job span parents directly to the scheduler's campaign
        # span, even though it was emitted in another process
        assert {s["parent"] for s in job_spans} == {summary["root"]["id"]}
        assert {s.get("trace") for s in job_spans} == {
            summary["trace_ids"][0]
        }
        # worker spans carry worker pids, distinct from the scheduler's
        scheduler_pid = event_pid(
            next(e for e in events if e.get("name") == "cluster.campaign")
        )
        assert all(event_pid(s) != scheduler_pid for s in job_spans)

        doc = json.loads(render_chrome_trace(events, origin=str(sink)))
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"cluster.campaign", "campaign.job", "store.merge"} <= names
