"""Unit tests for the bit-level taint set algebra."""

import pytest

from repro.taint.bittaint import BitTaint


class TestConstruction:
    def test_empty_is_falsy(self):
        assert not BitTaint.empty()
        assert BitTaint.empty().is_empty()

    def test_byte_covers_eight_bits(self):
        t = BitTaint.byte(7)
        assert t.tainted_bits() == list(range(8))
        assert t.tags() == {7}

    def test_byte_with_offset(self):
        t = BitTaint.byte(3, lo_bit=8)
        assert t.tainted_bits() == list(range(8, 16))

    def test_of_bits(self):
        t = BitTaint.of_bits(5, [0, 2, 4])
        assert t.bits_of_tag(5) == [0, 2, 4]


class TestPropagation:
    def test_union_merges_per_bit(self):
        a = BitTaint.of_bits(1, [0, 1])
        b = BitTaint.of_bits(2, [1, 2])
        u = a.union(b)
        assert u.at(0) == {1}
        assert u.at(1) == {1, 2}
        assert u.at(2) == {2}

    def test_union_with_empty_is_identity(self):
        a = BitTaint.byte(1)
        assert a.union(BitTaint.empty()) == a
        assert BitTaint.empty().union(a) == a

    def test_shift_left(self):
        t = BitTaint.byte(0).shifted(5)
        assert t.tainted_bits() == list(range(5, 13))

    def test_shift_right_drops_low_bits(self):
        t = BitTaint.byte(0).shifted(-3)
        assert t.tainted_bits() == list(range(0, 5))

    def test_shift_right_past_zero_empties(self):
        assert BitTaint.byte(0).shifted(-8).is_empty()

    def test_mask_keeps_only_set_bits(self):
        # The paper: "and between a tainted value and an untainted value
        # ... includes the original tags only where the untainted values
        # were 1".
        t = BitTaint.byte(0).masked(0b10100101)
        assert t.tainted_bits() == [0, 2, 5, 7]

    def test_mask_zlib_0x7fff(self):
        # UPDATE_HASH masks ins_h with 0x7fff: taint above bit 14 dies.
        t = BitTaint.byte(0).shifted(10).masked(0x7FFF)
        assert t.tainted_bits() == list(range(10, 15))

    def test_truncated(self):
        t = BitTaint.byte(0).shifted(4).truncated(8)
        assert t.tainted_bits() == [4, 5, 6, 7]

    def test_smeared(self):
        t = BitTaint.of_bits(1, [3]).smeared(8)
        assert t.tainted_bits() == [3, 4, 5, 6, 7]
        assert all(t.at(b) == {1} for b in range(3, 8))

    def test_carry_extended(self):
        t = BitTaint.of_bits(1, [2]).carry_extended(6)
        assert t.tainted_bits() == [2, 3, 4, 5]

    def test_carry_extended_union_of_lower(self):
        a = BitTaint.of_bits(1, [1]).union(BitTaint.of_bits(2, [3]))
        t = a.carry_extended(5)
        assert t.at(2) == {1}
        assert t.at(4) == {1, 2}

    def test_sign_extension(self):
        t = BitTaint.of_bits(1, [7]).sign_extended(8, 12)
        assert t.tainted_bits() == [7, 8, 9, 10, 11]

    def test_sign_extension_untainted_sign_bit(self):
        t = BitTaint.of_bits(1, [3]).sign_extended(8, 12)
        assert t.tainted_bits() == [3]


class TestXorMergeExample:
    def test_paper_xor_example(self):
        """Section III-B: rax tainted by byte 5 in bits 0-1, rbx by byte 6
        in bits 1-2; xor has byte5@0, both@1, byte6@2."""
        rax = BitTaint.of_bits(5, [0, 1])
        rbx = BitTaint.of_bits(6, [1, 2])
        r = rax.union(rbx)
        assert r.at(0) == {5}
        assert r.at(1) == {5, 6}
        assert r.at(2) == {6}


class TestRendering:
    def test_rows(self):
        t = BitTaint.of_bits(1, [0, 1]).union(BitTaint.of_bits(2, [1]))
        assert t.rows() == {1: [0, 1], 2: [1]}

    def test_repr_spans(self):
        t = BitTaint.of_bits(9, [1, 2, 3, 7])
        assert "9:[1-3,7]" in repr(t)

    def test_equality_and_hash(self):
        a = BitTaint.of_bits(1, [0, 5])
        b = BitTaint.of_bits(1, [5, 0])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert BitTaint.of_bits(1, [0]) != BitTaint.of_bits(2, [0])
