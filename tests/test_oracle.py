"""Tests for the compression-oracle scenario family (repro.oracle)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.experiments import get_experiment
from repro.compression.gzip_container import gzip_decompress
from repro.mitigations.padding import (
    RandomPadding,
    SizeQuantization,
    get_oracle_mitigation,
)
from repro.oracle import (
    BreachAttack,
    MemCompTimingDistinguisher,
    make_oracle,
    make_victim,
)
from repro.recovery.oracle_recover import (
    _SEPARATORS,
    probe_pair,
    recover_secret,
)
from repro.traces.format import (
    OracleProbe,
    SPECIES_ORACLE,
    deserialize_records,
    serialize_records,
)
from repro.workloads.generators import TOKEN_CHARSETS, token_secret


class TestVictims:
    def test_http_secret_inside_response(self):
        victim = make_victim("http", seed=3)
        assert victim.secret in victim.payload(b"query")
        assert victim.known_prefix + victim.secret in victim.payload(b"")

    def test_http_compress_roundtrips(self):
        victim = make_victim("http", seed=3)
        blob = victim.compress(b"hello")
        assert gzip_decompress(blob) == victim.payload(b"hello")

    def test_http_debreach_compress_roundtrips(self):
        victim = make_victim("http", mitigation="debreach", seed=3)
        blob = victim.compress(b"hello")
        assert gzip_decompress(blob) == victim.payload(b"hello")

    def test_memcomp_page_fixed_size(self):
        victim = make_victim("memcomp", seed=3)
        assert len(victim.page_bytes(b"")) == victim.page_size
        assert len(victim.page_bytes(b"x" * 40)) == victim.page_size

    def test_memcomp_guess_overflow_rejected(self):
        victim = make_victim("memcomp", seed=3)
        with pytest.raises(ValueError, match="overflows"):
            victim.page_bytes(b"x" * victim.page_size)

    def test_memcomp_rejects_debreach(self):
        with pytest.raises(ValueError, match="debreach"):
            make_victim("memcomp", mitigation="debreach")

    def test_unknown_victim_rejected(self):
        with pytest.raises(ValueError, match="unknown victim"):
            make_victim("smtp")


class TestSealedOracle:
    """The oracle must be a deterministic pure function of
    (victim secret/seed, query, oracle seed, query index)."""

    @given(
        query=st.binary(max_size=40),
        victim_seed=st.integers(0, 50),
        oracle_seed=st.integers(0, 50),
        observable=st.sampled_from(["size", "time"]),
        mitigation=st.sampled_from(["none", "padding", "quantize", "jitter"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_observation_is_pure(
        self, query, victim_seed, oracle_seed, observable, mitigation
    ):
        values = []
        for _ in range(2):
            victim = make_victim(
                "http", seed=victim_seed, secret_len=6, filler_bytes=48
            )
            oracle = make_oracle(victim, observable, mitigation, seed=oracle_seed)
            values.append(oracle.observe(query))
        assert values[0] == values[1]

    def test_query_index_decorrelates_mitigation_noise(self):
        # Same query twice through one padded oracle: the per-query RNG
        # includes the query counter, so the draws differ (no replay).
        victim = make_victim("http", seed=1, secret_len=6, filler_bytes=48)
        oracle = make_oracle(victim, "size", "padding", seed=0)
        a, b = oracle.observe(b"q"), oracle.observe(b"q")
        assert oracle.queries == 2
        # Not guaranteed unequal for every seed, but for this pinned one.
        assert a != b

    def test_size_oracle_matches_victim(self):
        victim = make_victim("http", seed=2, secret_len=6)
        oracle = make_oracle(victim, "size", "none", seed=0)
        assert oracle.observe(b"zz") == victim.size(b"zz")

    def test_unknown_observable_rejected(self):
        victim = make_victim("http", seed=2)
        with pytest.raises(ValueError, match="unknown observable"):
            make_oracle(victim, "power")

    def test_units_per_byte_scales(self):
        victim = make_victim("http", seed=2)
        assert make_oracle(victim, "size").units_per_byte == 1.0
        assert (
            make_oracle(victim, "time").units_per_byte
            == victim.TICKS_PER_BYTE
        )


class TestProbePair:
    @given(
        known=st.binary(max_size=6),
        chars=st.lists(
            st.sampled_from(list(TOKEN_CHARSETS["alnum_lower"])),
            min_size=1,
            max_size=18,
            unique=True,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_length_and_multiset(self, known, chars):
        match, broken = probe_pair(b'value="', known, chars)
        assert len(match) == len(broken)
        assert sorted(match) == sorted(broken)
        assert match != broken

    def test_too_many_candidates_rejected(self):
        with pytest.raises(ValueError, match="separators"):
            probe_pair(b"p", b"", list(range(len(_SEPARATORS) + 1)))


class TestMitigations:
    @given(
        size=st.integers(100, 5_000),
        delta=st.integers(0, 63),
        quantum=st.sampled_from([16, 64, 256]),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantization_bucket_indistinguishable(self, size, delta, quantum):
        # Any two sizes inside one quantum bucket map to the same
        # observation — the attacker's 1-byte delta disappears.
        mit = SizeQuantization(quantum=quantum)
        rng = random.Random(0)
        base = (size // quantum) * quantum + 1  # first size in the bucket
        other = base + (delta % quantum)
        if (base - 1) // quantum == (other - 1) // quantum:
            assert mit.transform_size(base, rng) == mit.transform_size(
                other, rng
            )

    @given(size=st.integers(0, 10_000), quantum=st.sampled_from([8, 64]))
    @settings(max_examples=40, deadline=None)
    def test_quantization_bounds(self, size, quantum):
        out = SizeQuantization(quantum=quantum).transform_size(
            size, random.Random(0)
        )
        assert size <= out < size + quantum
        assert out % quantum == 0

    @given(size=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_padding_bounds(self, size):
        mit = RandomPadding(max_pad=32)
        out = mit.transform_size(size, random.Random(1))
        assert size <= out <= size + 32

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown oracle mitigation"):
            get_oracle_mitigation("prayer")


class TestBreachAttack:
    def test_recovers_secret_from_size_deltas(self):
        victim = make_victim("http", seed=11, secret_len=8)
        oracle = make_oracle(victim, "size", "none", seed=0)
        attack = BreachAttack(oracle, victim.known_prefix, seed=5)
        result = attack.run(8, truth=victim.secret)
        assert result.correct and result.success
        assert result.recovered == victim.secret
        assert result.queries > 0 and len(result.probes) > 0

    def test_fails_under_padding(self):
        victim = make_victim("http", seed=11, secret_len=8)
        oracle = make_oracle(victim, "size", "padding", seed=0)
        attack = BreachAttack(
            oracle, victim.known_prefix, seed=5, max_queries=3_000
        )
        result = attack.run(8, truth=victim.secret)
        assert result.correct is False

    def test_fails_under_debreach(self):
        victim = make_victim("http", mitigation="debreach", seed=11,
                             secret_len=6)
        oracle = make_oracle(victim, "size", "debreach", seed=0)
        attack = BreachAttack(
            oracle, victim.known_prefix, seed=5, max_queries=3_000
        )
        result = attack.run(6, truth=victim.secret)
        assert result.correct is False

    def test_recover_secret_reports_partial_failure(self):
        # A dead oracle (constant size) confirms nothing.
        result = recover_secret(lambda q: 100.0, b"prefix", 4, seed=0)
        assert result.recovered == b""
        assert not result.success
        assert result.requested == 4 and result.confirmed == 0


class TestMemCompDistinguisher:
    @staticmethod
    def _candidates(victim, n, seed):
        decoys = [
            token_secret(len(victim.secret), seed=seed * 977 + i + 1)
            for i in range(n - 1)
        ]
        return [victim.secret] + decoys

    def test_picks_resident_secret(self):
        victim = make_victim("memcomp", seed=9)
        oracle = make_oracle(victim, "time", "none", seed=0)
        result = MemCompTimingDistinguisher(oracle, reps=5).run(
            self._candidates(victim, 10, 9)
        )
        assert result.chosen == victim.secret
        assert result.chosen_index == 0
        assert result.margin > 0

    def test_heavy_jitter_breaks_it(self):
        victim = make_victim("memcomp", seed=9)
        oracle = make_oracle(
            victim, "time", "jitter", seed=0, sigma=2_000.0
        )
        result = MemCompTimingDistinguisher(oracle, reps=3).run(
            self._candidates(victim, 10, 9)
        )
        assert result.chosen != victim.secret

    def test_empty_candidates_rejected(self):
        victim = make_victim("memcomp", seed=9)
        oracle = make_oracle(victim, "time", "none", seed=0)
        with pytest.raises(ValueError, match="candidate"):
            MemCompTimingDistinguisher(oracle).run([])


class TestOracleTraces:
    @given(
        probes=st.lists(
            st.builds(
                OracleProbe,
                step=st.integers(0, 40),
                label=st.text(max_size=12),
                probe_len=st.integers(0, 4_000),
                observation=st.floats(
                    allow_nan=False, allow_infinity=False, width=64
                ),
                queries=st.integers(0, 100_000),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_codec_round_trip(self, probes):
        blob = serialize_records(SPECIES_ORACLE, probes)
        assert deserialize_records(blob) == probes

    def test_capture_into_store(self, tmp_path):
        from repro.traces import TraceStore, capture_oracle_trace

        store = TraceStore(str(tmp_path / "probes.trstore"))
        probes = [
            OracleProbe(0, "confirm:a", 30, -1.0, 6),
            OracleProbe(1, "half:bcde", 60, 0.5, 14),
        ]
        entry = capture_oracle_trace(
            store, "t1", probes, victim="http", observable="size"
        )
        assert entry.species == SPECIES_ORACLE
        assert entry.n_records == 2
        assert list(store.iter_records("t1")) == probes
        assert store.get("t1").meta["victim"] == "http"


class TestExperiments:
    def test_breach_recovery_metrics_json_safe(self):
        import json

        result = get_experiment("breach_recovery")({"secret_len": 5}, 4)
        json.dumps(result)
        assert result["correct"] and result["matching_fraction"] == 1.0
        assert "recovered" not in result  # the secret never leaves

    def test_memcomp_timing_experiment(self):
        result = get_experiment("memcomp_timing")({"n_candidates": 8}, 4)
        assert result["correct"]
        assert result["queries"] == 8 * 5

    def test_mitigation_sweep_shape(self):
        metrics = get_experiment("oracle_mitigation_sweep")(
            {
                "observables": ["size"],
                "mitigations": ["none", "quantize"],
                "secret_len": 4,
                "mi_samples": 0,
                "max_queries": 2_000,
            },
            4,
        )
        assert metrics["size.none.correct"] == 1.0
        assert metrics["size.quantize.correct"] == 0.0
        assert metrics["size.quantize.overhead_pct"] > 0


class TestOracleDiag:
    def test_open_channel_saturates(self):
        from repro.diag.oracle import measure_oracle_channel

        diag = measure_oracle_channel("size", "none", n_samples=12, seed=3)
        assert diag.recovered_fraction == 1.0
        assert diag.mi_bits == pytest.approx(diag.capacity_bits)

    def test_metric_directions(self):
        from repro.diag import metric_direction

        assert metric_direction("oracle.size.mi_bits") == "higher"
        assert metric_direction("oracle.size.recovered_fraction") == "higher"
        assert metric_direction("oracle.size.padding.mi_bits") == "lower"
        assert (
            metric_direction("oracle.size.padding.recovered_fraction")
            == "lower"
        )
        assert metric_direction("oracle.size.capacity_bits") == "info"


class TestOracleCli:
    def test_demo(self, capsys):
        from repro.cli import main

        assert main(["oracle", "demo", "--secret-len", "6"]) == 0
        out = capsys.readouterr().out
        assert "two-guess size delta" in out

    def test_attack_recovers(self, capsys):
        from repro.cli import main

        assert (
            main(["oracle", "attack", "--secret-len", "6", "--seed", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "SECRET RECOVERED" in out

    def test_sweep_table(self, capsys):
        from repro.cli import main

        assert main(
            [
                "oracle", "sweep",
                "--observables", "size",
                "--mitigations", "none",
                "--secret-len", "4",
                "--mi-samples", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "mitigation" in out and "size" in out
