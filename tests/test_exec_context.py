"""Unit tests for execution contexts and array access recording."""

import pytest

from repro.exec import (
    FunctionEvent,
    MemoryAccess,
    NativeContext,
    Profiler,
    TraceLimitExceeded,
    TracingContext,
)


class TestNativeContext:
    def test_input_bytes_plain(self):
        ctx = NativeContext()
        assert ctx.input_bytes(b"ab") == [97, 98]

    def test_array_roundtrip(self):
        ctx = NativeContext()
        a = ctx.array("a", 10, elem_size=4)
        a.set(3, 42)
        assert a.get(3) == 42
        a.add(3, 1)
        assert a[3] == 43
        a[4] = 7
        assert a[4] == 7

    def test_array_bounds_checked(self):
        ctx = NativeContext()
        a = ctx.array("a", 4)
        with pytest.raises(IndexError):
            a.get(4)
        with pytest.raises(IndexError):
            a.set(-1, 0)

    def test_arrays_do_not_overlap(self):
        ctx = NativeContext()
        a = ctx.array("a", 100, elem_size=8)
        b = ctx.array("b", 100, elem_size=8)
        assert b.base >= a.base + 100 * 8

    def test_alignment_and_misalign(self):
        ctx = NativeContext()
        a = ctx.array("a", 10, align=64)
        assert a.base % 64 == 0
        b = ctx.array("b", 10, align=64, misalign=16)
        assert b.base % 64 == 16

    def test_fill_and_snapshot(self):
        ctx = NativeContext()
        a = ctx.array("a", 5, init=1)
        assert a.snapshot() == [1] * 5
        a.fill(9)
        assert a.snapshot() == [9] * 5

    def test_profiler_intervals(self):
        prof = Profiler()
        ctx = NativeContext(profiler=prof)
        with ctx.func("mainSort"):
            ctx.tick(100)
            with ctx.func("inner"):
                ctx.tick(50)
        with ctx.func("fallbackSort"):
            ctx.tick(30)
        assert prof.intervals("mainSort") == [(0, 150)]
        assert prof.intervals("inner") == [(100, 150)]
        assert prof.intervals("fallbackSort") == [(150, 180)]

    def test_profiler_open_interval_closed_at_now(self):
        prof = Profiler()
        prof.mark("f", "enter")
        prof.tick(10)
        assert prof.intervals("f") == [(0, 10)]

    def test_tick_without_profiler_is_noop(self):
        NativeContext().tick(5)


class TestTracingContext:
    def test_tainted_index_access_recorded(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"\x05")
        head = ctx.array("head", 256, elem_size=2)
        head.get(b, site="probe")
        accesses = ctx.tainted_accesses()
        assert len(accesses) == 1
        acc = accesses[0]
        assert acc.array == "head" and acc.site == "probe"
        assert acc.address == head.base + 5 * 2
        # elem_size 2 shifts the index taint up by one bit.
        assert acc.addr_taint.tainted_bits() == list(range(1, 9))

    def test_untainted_access_only_counted(self):
        ctx = TracingContext()
        a = ctx.array("a", 8)
        a.get(3)
        a.set(4, 1)
        assert ctx.memory_accesses() == []
        assert ctx.plain_accesses == 2

    def test_store_of_tainted_value_recorded(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"x")
        a = ctx.array("a", 8)
        a.set(0, b)
        (acc,) = ctx.memory_accesses()
        assert acc.kind == "write" and acc.value_taint

    def test_taint_flows_through_memory(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"x")
        a = ctx.array("a", 8)
        a.set(2, b)
        out = a.get(2)
        assert out.taint.tags() == {0}

    def test_update_is_single_event(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"\x01")
        ftab = ctx.array("ftab", 256, elem_size=4)
        ftab.add(b, 1, site="ftab++")
        events = ctx.memory_accesses()
        assert len(events) == 1
        assert events[0].kind == "update"

    def test_cache_line_masks_low_six_bits(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"\x01")
        a = ctx.array("a", 256, align=64)
        a.get(b)
        (acc,) = ctx.memory_accesses()
        assert acc.cache_line == acc.address >> 6

    def test_function_events(self):
        ctx = TracingContext()
        with ctx.func("mainSort"):
            pass
        evs = ctx.function_events()
        assert [e.kind for e in evs] == ["enter", "exit"]
        assert all(e.name == "mainSort" for e in evs)

    def test_event_budget_enforced(self):
        ctx = TracingContext(max_events=16)
        (b,) = ctx.input_bytes(b"x")
        with pytest.raises(TraceLimitExceeded):
            for _ in range(40):
                b = b ^ 1

    def test_describe_smoke(self):
        ctx = TracingContext()
        (b,) = ctx.input_bytes(b"\x01")
        a = ctx.array("a", 8, elem_size=8)
        a.get(b, site="s")
        for ev in ctx.events:
            assert ev.describe()
