"""Unit tests for the cache model, CAT, and noise sources."""

import pytest

from repro.cache import (
    BackgroundNoise,
    Cache,
    CacheConfig,
    CatController,
    OsPollution,
)
from repro.cache.model import LINE_SIZE


@pytest.fixture
def cache():
    return Cache(CacheConfig(noise_sigma=0.0))


class TestMapping:
    def test_set_index_from_address_bits(self, cache):
        assert cache.set_of(0) == 0
        assert cache.set_of(64) == 1
        assert cache.set_of(64 * 1024) == 0  # wraps at sets_per_slice

    def test_same_line_same_location(self, cache):
        a, b = 0x12345, 0x12345 + 63 - (0x12345 % 64)
        assert cache.location(0x12340) == cache.location(0x12340 + 63)

    def test_slice_in_range(self, cache):
        for addr in range(0, 1 << 20, 4096 + 64):
            assert 0 <= cache.slice_of(addr) < cache.config.n_slices

    def test_slices_are_used(self, cache):
        slices = {cache.slice_of(a) for a in range(0, 1 << 22, 64)}
        assert slices == set(range(cache.config.n_slices))

    def test_capacity(self, cache):
        assert cache.config.capacity_bytes == 4 * 1024 * 16 * 64


class TestAccessPath:
    def test_miss_then_hit(self, cache):
        assert cache.access(0x1000).hit is False
        assert cache.access(0x1000).hit is True

    def test_hit_anywhere_in_line(self, cache):
        cache.access(0x1000)
        assert cache.access(0x103F).hit is True
        assert cache.access(0x1040).hit is False

    def test_latency_separable(self, cache):
        miss = cache.access(0x2000).latency
        hit = cache.access(0x2000).latency
        assert miss > hit

    def test_lru_eviction(self, cache):
        ways = cache.config.ways
        sl, st = cache.location(0)
        # Fill one set with addresses mapping to the same (slice, set).
        addrs = []
        a = 0
        while len(addrs) < ways + 1:
            if cache.location(a) == (sl, st):
                addrs.append(a)
            a += 64 * cache.config.sets_per_slice
        for addr in addrs[:ways]:
            cache.access(addr)
        evicted = cache.access(addrs[ways])
        assert evicted.evicted == addrs[0]
        assert not cache.contains(addrs[0])

    def test_flush_removes_line(self, cache):
        cache.access(0x5000)
        cache.flush(0x5000)
        assert not cache.contains(0x5000)
        assert cache.access(0x5000).hit is False

    def test_clear(self, cache):
        cache.access(0x1000)
        cache.clear()
        assert not cache.contains(0x1000)

    def test_stats(self, cache):
        cache.access(0x9000)
        cache.access(0x9000)
        cache.flush(0x9000)
        assert cache.stats == {
            "hits": 1, "misses": 1, "evictions": 0, "flushes": 1,
        }

    def test_eviction_stat(self, cache):
        # Fill one (slice, set) past its associativity; the slice hash
        # makes same-location addresses non-arithmetic, so probe for
        # them with cache.location().
        ways = cache.config.ways
        target = cache.location(0x9000)
        addrs, addr = [], 0x9000
        while len(addrs) < ways + 1:
            if cache.location(addr) == target:
                addrs.append(addr)
            addr += 64
        for a in addrs:
            cache.access(a)
        assert cache.stats["evictions"] == 1
        assert cache.stats["misses"] == ways + 1


class TestCat:
    def test_contiguity_enforced(self, cache):
        cat = CatController(cache)
        with pytest.raises(ValueError):
            cat.set_mask(0, 0b101)
        with pytest.raises(ValueError):
            cat.set_mask(0, 0)

    def test_mask_width_enforced(self, cache):
        cat = CatController(cache)
        with pytest.raises(ValueError):
            cat.set_mask(0, 1 << cache.config.ways)

    def test_partition_restricts_fills(self, cache):
        cat = CatController(cache)
        cat.partition_for_attack()
        sl, st = cache.location(0x1000)
        cache.access(0x1000, cos=0)  # fills way 0
        # cos 1 traffic to the same set must not evict way 0's line.
        a = 0x1000
        filled = 0
        addr = a
        while filled < 40:
            addr += 64 * cache.config.sets_per_slice
            if cache.location(addr) == (sl, st):
                cache.access(addr, cos=1)
                filled += 1
        assert cache.contains(0x1000)

    def test_one_way_partition_deterministic_eviction(self, cache):
        cat = CatController(cache)
        cat.partition_for_attack()
        sl, st = cache.location(0x1000)
        cache.access(0x1000, cos=0)
        # Any other cos-0 fill into the same set evicts it immediately.
        addr = 0x1000
        while True:
            addr += 64 * cache.config.sets_per_slice
            if cache.location(addr) == (sl, st):
                break
        cache.access(addr, cos=0)
        assert not cache.contains(0x1000)

    def test_reset(self, cache):
        cat = CatController(cache)
        cat.partition_for_attack()
        cat.reset()
        assert cache.cos_masks[0] == tuple(range(cache.config.ways))


class TestNoise:
    def test_background_rate(self, cache):
        noise = BackgroundNoise(cache, rate=5)
        before = cache.stats["misses"] + cache.stats["hits"]
        noise.step()
        after = cache.stats["misses"] + cache.stats["hits"]
        assert after - before == 5

    def test_pollution_is_fixed_working_set(self, cache):
        pollution = OsPollution(cache, n_lines=10)
        pollution.fault_entry()
        locs1 = pollution.polluted_locations()
        pollution.fault_entry()
        assert pollution.polluted_locations() == locs1
        assert len(locs1) <= 10

    def test_pollution_lines_deterministic_across_instances(self, cache):
        a = OsPollution(cache, n_lines=16)
        b = OsPollution(Cache(CacheConfig()), n_lines=16)
        assert a.lines == b.lines
