"""Failure-injection tests: the attack and its substrates under
degraded conditions must fail loudly or degrade gracefully — never
silently corrupt."""

import pytest

from repro.cache import Cache, CacheConfig
from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.memsys import AddressSpace
from repro.sidechannel import AttackerMemory, PrimeProbe
from repro.workloads import random_bytes


class TestFrameExhaustion:
    def test_frame_selection_survives_small_frame_pool(self):
        """With barely enough frames, remapping runs out and the
        selector accepts noisy frames (the paper's 'until a timeout');
        error correction keeps accuracy respectable."""
        secret = random_bytes(150, seed=51)
        attack = SgxBzip2Attack(secret, AttackConfig())
        # Shrink the pool after setup: leave only a handful of spares.
        spares = attack.space.free_frames_left()
        for _ in range(max(0, spares - 3)):
            attack.space._alloc_frame()
        outcome = attack.run()
        assert outcome.bit_accuracy > 0.9

    def test_allocation_failure_is_loud(self):
        space = AddressSpace(n_frames=1)
        space.map_range(0, 4096)
        with pytest.raises(MemoryError):
            space.map_range(0x10000, 4096)


class TestDegenerateCacheGeometries:
    def test_single_slice_cache(self):
        config = AttackConfig(cache=CacheConfig(n_slices=1))
        outcome = SgxBzip2Attack(random_bytes(100, seed=52), config).run()
        assert outcome.bit_accuracy > 0.99

    def test_tiny_set_count_defeats_frame_selection_gracefully(self):
        """With 64 sets/slice the page offset determines the whole set
        index: remapping cannot move monitored sets, so frame selection
        can only time out — accuracy degrades but the attack finishes."""
        config = AttackConfig(
            cache=CacheConfig(sets_per_slice=64, n_slices=4),
            max_frame_remaps=4,
        )
        outcome = SgxBzip2Attack(random_bytes(100, seed=53), config).run()
        assert outcome.bit_accuracy > 0.7

    def test_two_way_cache(self):
        config = AttackConfig(cache=CacheConfig(ways=2))
        outcome = SgxBzip2Attack(random_bytes(80, seed=54), config).run()
        assert outcome.bit_accuracy > 0.95


class TestNoiseExtremes:
    def test_cat_shields_even_heavy_background(self):
        config = AttackConfig(use_cat=True, background_noise_rate=150)
        outcome = SgxBzip2Attack(random_bytes(100, seed=55), config).run()
        assert outcome.bit_accuracy > 0.99

    def test_heavy_os_pollution_degrades_but_does_not_crash(self):
        config = AttackConfig(os_pollution_lines=400)
        outcome = SgxBzip2Attack(random_bytes(100, seed=56), config).run()
        assert outcome.bit_accuracy > 0.8


class TestAttackerResourceLimits:
    def test_undersized_attacker_pool_fails_loudly(self):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        memory = AttackerMemory(cache, n_lines=8)
        pp = PrimeProbe(cache, memory, ways=16)
        loc = cache.location(0x1000)
        with pytest.raises(ValueError, match="attacker pool"):
            pp.prime([loc])
