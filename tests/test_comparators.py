"""Tests for the Section VII detection-approach comparators."""

import pytest

from repro.compression.bzip2 import SITE_FTAB, bzip2_compress
from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.compression.lzw import SITE_PRIMARY, lzw_compress
from repro.core.comparators import (
    TraceCorrelator,
    estimate_symbolic_cost,
)
from repro.core.taintchannel import TaintChannel
from repro.exec import TracingContext


class TestTraceCorrelator:
    def test_finds_zlib_head_site(self):
        correlator = TraceCorrelator(runs=5, input_len=120, seed=1)
        reports = correlator.analyze(
            lambda data: (lambda ctx: deflate_compress(data, ctx))
        )
        assert SITE_HEAD in TraceCorrelator.leaky_sites(reports)

    def test_finds_lzw_htab_site(self):
        correlator = TraceCorrelator(runs=5, input_len=100, seed=2)
        reports = correlator.analyze(
            lambda data: (lambda ctx: lzw_compress(data, ctx))
        )
        assert SITE_PRIMARY in TraceCorrelator.leaky_sites(reports)

    def test_input_independent_site_not_flagged(self):
        """A site whose trace never varies must not be reported leaky."""

        def make_target(data):
            def target(ctx):
                arr = ctx.array("fixed", 64)
                for k in range(8):
                    arr.get(k, site="constant/sweep")
                vals = ctx.input_bytes(data)
                table = ctx.array("table", 256, elem_size=4)
                for v in vals:
                    table.get(v, site="leaky/table[v]")

            return target

        correlator = TraceCorrelator(runs=6, input_len=40, seed=3)
        reports = {r.site: r for r in correlator.analyze(make_target)}
        assert not reports["constant/sweep"].leaky
        assert reports["leaky/table[v]"].leaky

    def test_reports_sorted_by_variability(self):
        correlator = TraceCorrelator(runs=4, input_len=60, seed=4)
        reports = correlator.analyze(
            lambda data: (lambda ctx: lzw_compress(data, ctx))
        )
        scores = [r.distinct_traces for r in reports]
        assert scores == sorted(scores, reverse=True)

    def test_describe_smoke(self):
        correlator = TraceCorrelator(runs=3, input_len=30, seed=5)
        reports = correlator.analyze(
            lambda data: (lambda ctx: deflate_compress(data, ctx))
        )
        assert all(r.describe() for r in reports)

    def test_no_computation_chain_in_output(self):
        """The operational contrast with TaintChannel: correlation
        output has no provenance to render."""
        correlator = TraceCorrelator(runs=3, input_len=30, seed=6)
        reports = correlator.analyze(
            lambda data: (lambda ctx: deflate_compress(data, ctx))
        )
        assert not any(hasattr(r, "addr_origin") for r in reports)


class TestSymbolicCost:
    def _trace(self, target):
        tc = TaintChannel(max_events=4_000_000)
        return tc.trace(target)

    def test_bzip2_forks_match_paper_figure(self):
        """~16 symbolic index bits per ftab write: 65,536 forks per pair
        of input bytes, the paper's infeasibility figure."""
        data = b"pairs of bytes index a 65537-entry table" * 3
        ctx = self._trace(
            lambda c: bzip2_compress(data, c, block_size=len(data))
        )
        estimate = estimate_symbolic_cost(ctx)
        # One ftab update per byte, each with a 16-bit symbolic index.
        assert estimate.log2_states_per_input_byte >= 15.0

    def test_zlib_forks_grow_linearly(self):
        data = b"every insert writes head[ins_h] symbolically" * 2
        ctx = self._trace(lambda c: deflate_compress(data, c))
        estimate = estimate_symbolic_cost(ctx)
        assert estimate.symbolic_writes >= len(data) - 2
        assert estimate.log2_states > 100  # astronomically many states

    def test_taint_only_reads_do_not_fork(self):
        def target(ctx):
            vals = ctx.input_bytes(b"\x01\x02\x03")
            table = ctx.array("t", 256, elem_size=4)
            for v in vals:
                table.get(v, site="read-only lookup")

        estimate = estimate_symbolic_cost(self._trace(target))
        assert estimate.symbolic_writes == 0
        assert estimate.log2_states == 0

    def test_describe_magnitude(self):
        data = b"abcdefgh" * 8
        ctx = self._trace(
            lambda c: bzip2_compress(data, c, block_size=len(data))
        )
        text = estimate_symbolic_cost(ctx).describe()
        assert "2^" in text and "per input byte" in text
