"""Equivalence proofs for the columnar ZTRC decoder.

The columnar decoder (:mod:`repro.traces.columns`) has no authority of
its own: every column must equal, field for field, what the object
reader produces from the same bytes, for both format versions and any
chunking.  The Hypothesis suites here pin exactly that, including the
object-path fallback for varints past int64 and the run-domain pooling
against ``pool_trace``.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zipchannel.fingerprint import pool_trace
from repro.exec.events import MemoryAccess
from repro.taint.bittaint import BitTaint
from repro.traces import (
    FingerprintCapture,
    OracleProbe,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    SPECIES_ORACLE,
    TraceStore,
    TraceWriter,
    count_trace_records,
    read_trace,
    read_trace_columns,
    replay_lines,
    replay_lines_array,
)
from tests.test_traces_format import fingerprint_captures, memory_accesses


def _write(path, species, records, chunk_records=7, version=2):
    with open(path, "wb") as handle:
        with TraceWriter(
            handle, species, chunk_records=chunk_records, version=version
        ) as writer:
            writer.extend(records)


def _roundtrip(species, records, chunk_records, version):
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "t.trc"
        _write(path, species, records, chunk_records, version)
        return read_trace_columns(path), read_trace(path), count_trace_records(path)


# ----------------------------------------------------------------------
# memory species
# ----------------------------------------------------------------------
class TestMemoryColumns:
    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(memory_accesses(), max_size=40),
        chunk_records=st.sampled_from([1, 3, 7, 64]),
        version=st.sampled_from([1, 2]),
    )
    def test_columns_match_objects(self, records, chunk_records, version):
        cols, objs, counted = _roundtrip(
            SPECIES_MEMORY, records, chunk_records, version
        )
        assert counted == len(objs) == cols.n == len(records)
        for i, r in enumerate(objs):
            assert int(cols.seq[i]) == r.seq
            assert cols.strings[int(cols.kind_id[i])] == r.kind
            assert cols.strings[int(cols.array_id[i])] == r.array
            assert int(cols.index[i]) == r.index
            assert int(cols.elem_size[i]) == r.elem_size
            assert int(cols.address[i]) == r.address
            assert cols.strings[int(cols.site_id[i])] == r.site
            assert bool(cols.addr_tainted[i]) == bool(r.addr_taint)
            assert bool(cols.value_tainted[i]) == bool(r.value_taint)

    @settings(max_examples=25, deadline=None)
    @given(
        records=st.lists(memory_accesses(), max_size=40),
        sites=st.one_of(
            st.none(),
            st.sets(
                st.sampled_from(
                    ["deflate_slow/head[ins_h]", "lzw/htab[hp]",
                     "mainSort/ftab", ""]
                ),
                max_size=3,
            ),
        ),
        kind=st.one_of(st.none(), st.sampled_from(["read", "write", "update"])),
        version=st.sampled_from([1, 2]),
    )
    def test_replay_lines_array_matches_objects(
        self, records, sites, kind, version
    ):
        cols, objs, _ = _roundtrip(SPECIES_MEMORY, records, 7, version)
        expected = replay_lines(objs, sites=sites, kind=kind)
        got = replay_lines_array(cols, sites=sites, kind=kind)
        assert got.tolist() == expected

    def test_huge_address_falls_back_to_objects(self):
        # A 70-bit address overflows the int64 fast path; the decode
        # must transparently route through the object reader and keep
        # the exact value in an object-dtype column.
        record = MemoryAccess(
            seq=1, kind="read", array="head", index=2, elem_size=2,
            address=1 << 70, addr_taint=BitTaint.byte(0), site="s",
        )
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "t.trc"
            _write(path, SPECIES_MEMORY, [record])
            cols = read_trace_columns(path)
        assert cols.address.dtype == object
        assert cols.address[0] == 1 << 70
        assert bool(cols.addr_tainted[0])

    def test_empty_trace(self):
        cols, objs, counted = _roundtrip(SPECIES_MEMORY, [], 7, 2)
        assert cols.n == 0 and objs == [] and counted == 0


# ----------------------------------------------------------------------
# fingerprint species
# ----------------------------------------------------------------------
class TestFingerprintColumns:
    @settings(max_examples=40, deadline=None)
    @given(
        captures=st.lists(fingerprint_captures(), max_size=8),
        chunk_records=st.sampled_from([1, 3, 64]),
        version=st.sampled_from([1, 2]),
    )
    def test_columns_match_objects(self, captures, chunk_records, version):
        cols, objs, counted = _roundtrip(
            SPECIES_FINGERPRINT, captures, chunk_records, version
        )
        assert counted == len(objs) == cols.n
        assert cols.labels.tolist() == [c.label for c in objs]
        assert cols.capture_seeds.tolist() == [c.capture_seed for c in objs]
        for got, ref in zip(cols.traces, objs):
            assert got.shape == ref.trace.shape
            assert np.array_equal(got, ref.trace)

    @settings(max_examples=40, deadline=None)
    @given(
        captures=st.lists(fingerprint_captures(), min_size=1, max_size=6),
        width=st.integers(min_value=1, max_value=500),
        version=st.sampled_from([1, 2]),
    )
    def test_pooled_matches_pool_trace(self, captures, width, version):
        cols, objs, _ = _roundtrip(SPECIES_FINGERPRINT, captures, 3, version)
        shapes = {c.trace.shape for c in objs}
        pooled = cols.pooled(width)
        if len(shapes) != 1 or next(iter(shapes))[1] // width < 1:
            assert pooled is None
            return
        assert pooled is not None
        ref = np.stack([pool_trace(c.trace, width) for c in objs])
        assert pooled.dtype == np.int8
        assert np.array_equal(pooled, ref)

    def test_pooled_constant_tensors(self):
        captures = [
            FingerprintCapture(0, 1, np.zeros((2, 40), dtype=np.int8)),
            FingerprintCapture(1, 2, np.ones((2, 40), dtype=np.int8)),
        ]
        cols, objs, _ = _roundtrip(SPECIES_FINGERPRINT, captures, 3, 2)
        for width in (1, 3, 10, 40):
            ref = np.stack([pool_trace(c.trace, width) for c in objs])
            assert np.array_equal(cols.pooled(width), ref)


# ----------------------------------------------------------------------
# species coverage and store integration
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_oracle_species_is_refused(self):
        probes = [OracleProbe(0, "a", 3, -1.0, 7)]
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "t.trc"
            _write(path, SPECIES_ORACLE, probes)
            with pytest.raises(ValueError, match="no columnar decoder"):
                read_trace_columns(path)

    def test_store_count_and_verify_use_chunk_headers(self):
        records = [
            MemoryAccess(seq=i, kind="read", array="head", index=i,
                         elem_size=2, address=(1 << 44) + 64 * i, site="s")
            for i in range(25)
        ]
        with tempfile.TemporaryDirectory() as scratch:
            store = TraceStore(scratch).open()
            with store.create("t", SPECIES_MEMORY, chunk_records=4) as writer:
                writer.extend(records)
            assert store.count_records("t") == 25
            assert store.get("t").n_records == 25
            report = store.verify("t")[0]
            assert report.ok, report
            cols = store.read_columns("t")
            assert cols.n == 25
            assert cols.address.tolist() == [r.address for r in records]
