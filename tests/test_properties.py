"""Hypothesis property tests for core invariants.

Covers the taint algebra laws the propagation rules must satisfy, the
fixed-width value semantics of TaintedInt, cache-model invariants, the
CAT fill contract, oblivious-table equivalence, and end-to-end recovery
properties under random inputs and random observation loss.
"""

import random as stdlib_random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig, CatController
from repro.exec import NativeContext, TracingContext
from repro.mitigations import ObliviousTable
from repro.taint import BitTaint, TaintedInt

def make_taint(items) -> BitTaint:
    out = BitTaint.empty()
    for tag, bits in items:
        out = out.union(BitTaint.of_bits(tag, bits))
    return out


taints = st.lists(
    st.tuples(st.integers(0, 5), st.lists(st.integers(0, 20), min_size=1, max_size=6)),
    max_size=4,
).map(make_taint)


class TestTaintAlgebraLaws:
    @given(taints, taints)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(taints, taints, taints)
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(taints)
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(taints, st.integers(0, 8), st.integers(0, 8))
    def test_left_shift_composes(self, a, n, m):
        assert a.shifted(n).shifted(m) == a.shifted(n + m)

    @given(taints, st.integers(0, (1 << 22) - 1))
    def test_mask_shrinks(self, a, mask):
        masked = a.masked(mask)
        assert set(masked.tainted_bits()) <= set(a.tainted_bits())

    @given(taints, st.integers(0, (1 << 22) - 1), st.integers(0, (1 << 22) - 1))
    def test_mask_composes_as_and(self, a, m1, m2):
        assert a.masked(m1).masked(m2) == a.masked(m1 & m2)

    @given(taints, st.integers(1, 24))
    def test_truncate_idempotent(self, a, width):
        assert a.truncated(width).truncated(width) == a.truncated(width)

    @given(taints)
    def test_carry_extension_only_adds(self, a):
        extended = a.carry_extended(32)
        assert set(a.tainted_bits()) <= set(extended.tainted_bits())

    @given(taints)
    def test_smear_covers_original(self, a):
        smeared = a.smeared(32)
        assert set(a.truncated(32).tainted_bits()) <= set(smeared.tainted_bits())

    @given(taints)
    def test_tags_are_union_of_rows(self, a):
        assert a.tags() == frozenset(a.rows().keys())


ops = st.sampled_from(["add", "sub", "mul", "xor", "or", "and", "shl", "shr"])


def apply_op(op: str, x: int, y: int) -> int:
    if op == "add":
        return x + y
    if op == "sub":
        return x - y
    if op == "mul":
        return x * y
    if op == "xor":
        return x ^ y
    if op == "or":
        return x | y
    if op == "and":
        return x & y
    if op == "shl":
        return x << (y % 16)
    return x >> (y % 16)


class TestTaintedIntSemantics:
    @given(
        st.integers(0, (1 << 32) - 1),
        st.lists(st.tuples(ops, st.integers(0, (1 << 16) - 1)), max_size=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_plain_unsigned_arithmetic(self, start, steps):
        ctx = TracingContext()
        tainted = TaintedInt(start, 64, BitTaint.byte(0), None, ctx)
        plain = start
        mask = (1 << 64) - 1
        for op, operand in steps:
            if op in ("shl", "shr"):
                operand = operand % 16
            tainted = apply_op(op, tainted, operand)
            plain = apply_op(op, plain, operand) & mask
        assert tainted.value == plain

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_xor_taint_is_exact_union(self, a, b):
        ctx = TracingContext()
        x = TaintedInt(a, 64, BitTaint.byte(0), None, ctx)
        y = TaintedInt(b, 64, BitTaint.byte(1, lo_bit=4), None, ctx)
        r = x ^ y
        assert r.taint == x.taint.union(y.taint)

    @given(st.integers(0, 255), st.integers(0, 15))
    def test_shift_then_mask_matches_manual(self, v, n):
        ctx = TracingContext()
        x = TaintedInt(v, 64, BitTaint.byte(0), None, ctx)
        r = (x << n) & 0x7FFF
        assert r.taint == BitTaint.byte(0).shifted(n).masked(0x7FFF)


class TestCacheInvariants:
    @given(st.lists(st.integers(0, (1 << 24) - 1), max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_ways(self, addrs):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        for a in addrs:
            cache.access(a)
        for sl in range(cache.config.n_slices):
            for st_ in range(0, cache.config.sets_per_slice, 97):
                assert cache.occupancy(sl, st_) <= cache.config.ways

    @given(st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_access_inserts_line(self, addrs):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        for a in addrs:
            cache.access(a)
            assert cache.contains(a)

    @given(st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_flush_removes(self, addrs):
        cache = Cache(CacheConfig(noise_sigma=0.0))
        for a in addrs:
            cache.access(a)
        cache.flush(addrs[0])
        assert not cache.contains(addrs[0])

    @given(st.integers(0, (1 << 30) - 1))
    def test_location_is_line_granular(self, addr):
        cache = Cache(CacheConfig())
        base = addr & ~63
        assert cache.location(base) == cache.location(base + 63)

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, (1 << 22) - 1)), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_cat_partition_isolates_way_zero(self, traffic):
        """Under the attack partition, no cos-1 access may ever evict a
        cos-0 resident line."""
        cache = Cache(CacheConfig(noise_sigma=0.0))
        CatController(cache).partition_for_attack()
        protected = 0x123440
        cache.access(protected, cos=0)
        for cos, addr in traffic:
            if cos == 0:
                continue  # only cos-1 traffic in this property
            cache.access(addr, cos=1)
            assert cache.contains(protected)


class TestObliviousTableEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["get", "set", "add"]),
                st.integers(0, 79),
                st.integers(0, 1000),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_behaves_like_plain_array(self, script):
        ctx_a, ctx_b = NativeContext(), NativeContext()
        plain = ctx_a.array("p", 80, elem_size=4, init=7)
        backing = ctx_b.array("o", 80, elem_size=4, init=7)
        oblivious = ObliviousTable(backing)
        for op, index, value in script:
            if op == "get":
                assert oblivious.get(index) == plain.get(index)
            elif op == "set":
                oblivious.set(index, value)
                plain.set(index, value)
            else:
                oblivious.add(index, value)
                plain.add(index, value)
        assert backing.snapshot() == plain.snapshot()


class TestRecoveryProperties:
    @given(st.binary(min_size=4, max_size=120), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_bzip2_recovery_exact_on_clean_trace(self, data, seed):
        from repro.compression.bzip2 import SITE_FTAB
        from repro.compression.bzip2.blocksort import histogram
        from repro.recovery import observed_lines
        from repro.recovery.bzip2_recover import (
            observations_from_lines,
            recover_bzip2_block,
        )

        ctx = TracingContext()
        block = ctx.array("block", len(data))
        for i, v in enumerate(ctx.input_bytes(data)):
            block.set(i, v)
        histogram(ctx, block, len(data))
        obs = observations_from_lines(
            observed_lines(ctx, SITE_FTAB), len(data)
        )
        rec = recover_bzip2_block(obs, ctx.arrays["ftab"].base, len(data))
        assert rec.bit_accuracy(data) == 1.0

    @given(st.binary(min_size=2, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_lzw_recovery_always_includes_truth(self, data):
        from repro.compression.lzw import (
            SITE_PRIMARY,
            SITE_SECONDARY,
            lzw_compress,
        )
        from repro.recovery import recover_lzw_input

        ctx = TracingContext()
        lzw_compress(data, ctx=ctx)
        lines = [
            a.address >> 6
            for a in ctx.tainted_accesses()
            if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
        ]
        candidates = recover_lzw_input(lines, ctx.arrays["htab"].base, len(data))
        assert data in candidates

    @given(st.integers(0, 2**31), st.floats(0.0, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_bzip2_recovery_degrades_gracefully_with_loss(self, seed, loss):
        from repro.compression.bzip2 import SITE_FTAB
        from repro.compression.bzip2.blocksort import histogram
        from repro.recovery import observed_lines
        from repro.recovery.bzip2_recover import (
            observations_from_lines,
            recover_bzip2_block,
        )

        rng = stdlib_random.Random(seed)
        data = bytes(rng.randrange(256) for _ in range(200))
        ctx = TracingContext()
        block = ctx.array("block", len(data))
        for i, v in enumerate(ctx.input_bytes(data)):
            block.set(i, v)
        histogram(ctx, block, len(data))
        obs = observations_from_lines(observed_lines(ctx, SITE_FTAB), len(data))
        for i in range(len(obs)):
            if rng.random() < loss:
                obs[i] = None
        rec = recover_bzip2_block(obs, ctx.arrays["ftab"].base, len(data))
        # Bit accuracy should stay clearly above coin-flipping even with
        # 30% of probes lost.
        assert rec.bit_accuracy(data) > 0.6
