"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_taintchannel_defaults(self):
        args = build_parser().parse_args(["taintchannel", "zlib"])
        assert args.target == "zlib"
        assert args.random == 500
        assert not args.carry_aware

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["taintchannel", "gzip2"])

    def test_sgx_flags(self):
        args = build_parser().parse_args(
            ["sgx-attack", "--no-cat", "--no-frame-selection", "--noise", "9"]
        )
        assert args.no_cat and args.no_frame_selection and args.noise == 9


class TestCommands:
    def test_taintchannel_zlib(self, capsys):
        assert main(["taintchannel", "zlib", "--lowercase", "60", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "data-flow gadgets" in out
        assert "head[ins_h]" in out

    def test_taintchannel_gadget_filter(self, capsys):
        main(["taintchannel", "lzw", "--text", "40", "--gadget", "htab"])
        out = capsys.readouterr().out
        assert "htab[hp]" in out
        assert "Taint-dependent memory access" in out

    def test_taintchannel_aes(self, capsys):
        main(["taintchannel", "aes", "--random", "32", "--top", "1"])
        out = capsys.readouterr().out
        assert "Te" in out

    def test_taintchannel_from_file(self, tmp_path, capsys):
        path = tmp_path / "secret.txt"
        path.write_bytes(b"file-based input works too")
        main(["taintchannel", "zlib", "--file", str(path), "--no-slice"])
        out = capsys.readouterr().out
        assert "input bytes: 26" in out

    def test_sgx_attack(self, capsys):
        assert main(["sgx-attack", "--random", "80"]) == 0
        out = capsys.readouterr().out
        assert "bit accuracy 100.00%" in out

    def test_sgx_attack_mitigated(self, capsys):
        assert main(["sgx-attack", "--random", "40", "--mitigated"]) == 0
        out = capsys.readouterr().out
        assert "bit accuracy" in out
        assert "ambiguous: 40" in out  # every observation floods

    def test_survey(self, capsys):
        assert main(["survey", "--size", "150"]) == 0
        out = capsys.readouterr().out
        assert "zlib" in out and "ncompress" in out and "bzip2" in out
        assert "100.00% of bits recovered" in out

    def test_fingerprint_lipsum_quick(self, capsys):
        assert main(
            ["fingerprint", "--corpus", "lipsum", "--traces", "6", "--epochs", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "test_00001.txt" in out
