"""Tests for first-round AES key recovery through the T-table channel."""

import random

import pytest

from repro.crypto.aes_attack import (
    ROUND1_BYTE_ORDER,
    capture_round1_lines,
    recover_high_nibbles,
    recovered_key_mask,
)


def random_key_and_plaintexts(seed: int, n: int):
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    plaintexts = [
        bytes(rng.randrange(256) for _ in range(16)) for _ in range(n)
    ]
    return key, plaintexts


class TestByteOrder:
    def test_is_a_permutation(self):
        assert sorted(ROUND1_BYTE_ORDER) == list(range(16))

    def test_capture_returns_16_lines(self):
        key, (pt,) = random_key_and_plaintexts(1, 1)
        lines = capture_round1_lines(key, pt)
        assert len(lines) == 16
        assert all(0 <= l < 16 for l in lines)

    def test_lines_match_index_model(self):
        """Observed line == (pt[p] ^ k[p]) >> 4 for every slot."""
        key, (pt,) = random_key_and_plaintexts(2, 1)
        lines = capture_round1_lines(key, pt)
        for slot, line in enumerate(lines):
            p = ROUND1_BYTE_ORDER[slot]
            assert line == (pt[p] ^ key[p]) >> 4


class TestRecovery:
    def test_single_plaintext_recovers_all_high_nibbles(self):
        key, plaintexts = random_key_and_plaintexts(3, 1)
        observed = [capture_round1_lines(key, pt) for pt in plaintexts]
        candidates = recover_high_nibbles(plaintexts, observed)
        for p in range(16):
            assert candidates[p] == {key[p] >> 4}

    def test_multiple_plaintexts_stay_consistent(self):
        key, plaintexts = random_key_and_plaintexts(4, 8)
        observed = [capture_round1_lines(key, pt) for pt in plaintexts]
        candidates = recover_high_nibbles(plaintexts, observed)
        partial, mask = recovered_key_mask(candidates)
        assert mask == b"\xf0" * 16
        for p in range(16):
            assert partial[p] == key[p] & 0xF0

    def test_64_of_128_key_bits_leak(self):
        key, plaintexts = random_key_and_plaintexts(5, 4)
        observed = [capture_round1_lines(key, pt) for pt in plaintexts]
        _, mask = recovered_key_mask(recover_high_nibbles(plaintexts, observed))
        known_bits = sum(bin(m).count("1") for m in mask)
        assert known_bits == 64

    def test_wrong_key_guess_rejected(self):
        key, plaintexts = random_key_and_plaintexts(6, 2)
        observed = [capture_round1_lines(key, pt) for pt in plaintexts]
        candidates = recover_high_nibbles(plaintexts, observed)
        wrong = bytes((key[0] ^ 0x10,)) + key[1:]
        assert candidates[0] != {wrong[0] >> 4}
