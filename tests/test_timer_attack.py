"""Tests for the timer-stepping baseline attack."""

import pytest

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.core.zipchannel.timer_attack import TimerSgxBzip2Attack
from repro.sidechannel.timer_step import TimerStepper
from repro.workloads import random_bytes


class TestTimerStepper:
    def test_fires_about_every_period(self):
        fired = []
        stepper = TimerStepper(period=10, jitter=0, on_interrupt=lambda: fired.append(1))
        for _ in range(100):
            stepper.on_victim_access(0, "read")
        assert len(fired) == 10

    def test_jitter_varies_intervals(self):
        gaps = []
        count = [0]

        def record():
            gaps.append(count[0])
            count[0] = 0

        stepper = TimerStepper(period=10, jitter=4, on_interrupt=record, seed=3)
        for _ in range(500):
            count[0] += 1
            stepper.on_victim_access(0, "read")
        assert min(gaps) < 10 < max(gaps)
        assert len(set(gaps)) > 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TimerStepper(period=0, jitter=0, on_interrupt=lambda: None)
        with pytest.raises(ValueError):
            TimerStepper(period=5, jitter=5, on_interrupt=lambda: None)


class TestTimerAttack:
    def test_recovers_something_but_less_than_mprotect(self):
        secret = random_bytes(100, seed=41)
        timer = TimerSgxBzip2Attack(secret).run()
        mprotect = SgxBzip2Attack(secret, AttackConfig()).run()
        # Better than guessing, clearly worse than controlled-channel.
        assert 0.5 < timer.bit_accuracy < mprotect.bit_accuracy
        assert timer.observations_empty > 0

    def test_interrupt_count_tracks_accesses(self):
        secret = random_bytes(60, seed=42)
        outcome = TimerSgxBzip2Attack(secret, period=3, jitter=1).run()
        # ~3 accesses per iteration, one interrupt per ~period accesses.
        assert 40 <= outcome.interrupts <= 80

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            TimerSgxBzip2Attack(b"")

    def test_summary_smoke(self):
        outcome = TimerSgxBzip2Attack(random_bytes(40, seed=4)).run()
        assert "timer-stepping attack" in outcome.summary()
