"""Unit tests for the repro.perf harness: digests, report round-trips,
section merging, baselines, and the regression gate."""

from __future__ import annotations

import pytest

from repro.perf.harness import (
    BenchResult,
    PerfReport,
    apply_baseline,
    compare_reports,
    load_report,
    merge_reports,
    metrics_digest,
)


def _result(name, seconds, params=None, seed=1, metrics=None):
    metrics = metrics if metrics is not None else {"answer": 42}
    return BenchResult(
        name=name,
        seconds=seconds,
        all_seconds=[seconds],
        params=params or {"size": 100},
        seed=seed,
        metrics=metrics,
        metrics_digest=metrics_digest(metrics),
    )


def _report(mode="full", **benches):
    report = PerfReport(mode=mode, python="3.11", machine="test")
    for name, res in benches.items():
        report.benches[name] = res
    return report


class TestMetricsDigest:
    def test_volatile_keys_do_not_poison_digest(self):
        a = {"accuracy": 0.9, "duration_seconds": 1.23}
        b = {"accuracy": 0.9, "duration_seconds": 9.87}
        assert metrics_digest(a) == metrics_digest(b)

    def test_substantive_change_changes_digest(self):
        assert metrics_digest({"accuracy": 0.9}) != metrics_digest(
            {"accuracy": 0.91}
        )

    def test_key_order_is_canonical(self):
        assert metrics_digest({"a": 1, "b": 2}) == metrics_digest(
            {"b": 2, "a": 1}
        )


class TestReportRoundTrip:
    def test_json_round_trip_preserves_sections(self, tmp_path):
        report = _report(full=_result("x", 1.0))
        report.quick_benches["x"] = _result("x", 0.1)
        report.benches["x"] = report.benches.pop("full")
        path = tmp_path / "r.json"
        path.write_text(report.to_json())
        back = load_report(str(path))
        assert back.mode == "full"
        assert back.benches["x"].seconds == 1.0
        assert back.quick_benches["x"].seconds == 0.1
        assert back.benches["x"].metrics_digest == metrics_digest(
            {"answer": 42}
        )

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            PerfReport.from_dict({"schema": "other/9"})

    def test_section_for_missing_mode_is_refused(self):
        report = _report(x=_result("x", 1.0))
        with pytest.raises(ValueError, match="no 'quick' section"):
            report.section_for("quick")


class TestMergeReports:
    def test_quick_into_full_lands_in_quick_section(self):
        existing = _report(mode="full", a=_result("a", 2.0))
        new = PerfReport(mode="quick", python="3.11", machine="test")
        new.benches["a"] = _result("a", 0.2)
        merged = merge_reports(existing, new)
        assert merged.mode == "full"
        assert merged.benches["a"].seconds == 2.0
        assert merged.quick_benches["a"].seconds == 0.2

    def test_same_mode_merge_keeps_absent_benches(self):
        existing = _report(a=_result("a", 2.0), b=_result("b", 3.0))
        new = _report(a=_result("a", 1.5))
        merged = merge_reports(existing, new)
        assert merged.benches["a"].seconds == 1.5
        assert merged.benches["b"].seconds == 3.0  # not dropped

    def test_full_into_quick_promotes_full_as_primary(self):
        existing = PerfReport(mode="quick")
        existing.benches["a"] = _result("a", 0.2)
        new = _report(mode="full", a=_result("a", 2.0))
        merged = merge_reports(existing, new)
        assert merged.mode == "full"
        assert merged.benches["a"].seconds == 2.0
        assert merged.quick_benches["a"].seconds == 0.2


class TestApplyBaseline:
    def test_speedup_and_match_annotated(self):
        current = _report(a=_result("a", 1.0))
        baseline = _report(a=_result("a", 3.0))
        apply_baseline(current, baseline)
        res = current.benches["a"]
        assert res.speedup == pytest.approx(3.0)
        assert res.metrics_match is True

    def test_pin_change_suppresses_metrics_verdict(self):
        current = _report(a=_result("a", 1.0, params={"size": 500}))
        baseline = _report(a=_result("a", 3.0, params={"size": 100}))
        apply_baseline(current, baseline)
        assert current.benches["a"].metrics_match is None


class TestCompareGate:
    def test_clean_comparison_passes(self):
        current = _report(a=_result("a", 1.0), b=_result("b", 2.0))
        baseline = _report(a=_result("a", 1.05), b=_result("b", 2.1))
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert outcome.ok
        assert "PASS" in outcome.summary()

    def test_digest_mismatch_fails_before_timing(self):
        current = _report(a=_result("a", 0.5, metrics={"bits": 1}))
        baseline = _report(a=_result("a", 1.0, metrics={"bits": 2}))
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert not outcome.ok
        assert outcome.digest_failures == ["a"]
        assert "METRICS CHANGED" in outcome.summary()

    def test_absolute_regression_detected(self):
        current = _report(a=_result("a", 2.0))
        baseline = _report(a=_result("a", 1.0))
        outcome = compare_reports(
            current, baseline, tolerance=0.2, normalize=False
        )
        assert outcome.regressions == ["a"]
        assert "REGRESSION" in outcome.summary()

    def test_uniform_machine_slowdown_cancels_when_normalized(self):
        # Everything 2x slower: a slower machine, not a regression.
        current = _report(
            a=_result("a", 2.0), b=_result("b", 4.0), c=_result("c", 6.0)
        )
        baseline = _report(
            a=_result("a", 1.0), b=_result("b", 2.0), c=_result("c", 3.0)
        )
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert outcome.normalized
        assert outcome.ok

    def test_relative_regression_survives_normalization(self):
        # b regresses 3x while a and c are flat.
        current = _report(
            a=_result("a", 1.0), b=_result("b", 3.0), c=_result("c", 1.0)
        )
        baseline = _report(
            a=_result("a", 1.0), b=_result("b", 1.0), c=_result("c", 1.0)
        )
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert outcome.regressions == ["b"]

    def test_pin_change_skips_timing_comparison(self):
        current = _report(a=_result("a", 9.0, params={"size": 999}))
        baseline = _report(a=_result("a", 1.0, params={"size": 100}))
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert outcome.ok  # incomparable, not a regression
        assert any("pin changed" in m for m in outcome.missing)

    def test_quick_current_compares_against_quick_section(self):
        baseline = _report(a=_result("a", 5.0))
        baseline.quick_benches["a"] = _result("a", 0.5)
        current = PerfReport(mode="quick", python="3.11", machine="test")
        current.benches["a"] = _result("a", 0.52)
        outcome = compare_reports(current, baseline, tolerance=0.2)
        assert outcome.ok
        assert outcome.rows[0].baseline_seconds == 0.5


class TestBenchCatalogue:
    def test_catalogue_names_resolve(self):
        from repro.perf import available_benches, get_bench

        names = available_benches()
        assert "sec5e_attack" in names and "fig7_dataset" in names
        for name in names:
            bench = get_bench(name)
            assert bench.resolved_params(quick=True) != {} or bench.params == {}

    def test_unknown_bench_rejected(self):
        from repro.perf import get_bench

        with pytest.raises(KeyError, match="unknown bench"):
            get_bench("nope")
