"""Unit tests for TaintedInt operator semantics and trace recording."""

import pytest

from repro.exec import TracingContext
from repro.taint import BitTaint, TaintedInt
from repro.taint.value import CompareRecord, OpRecord


def tainted(ctx, value, tag=0, width=64):
    return TaintedInt(value, width, BitTaint.byte(tag), None, ctx)


@pytest.fixture
def ctx():
    return TracingContext()


class TestValueSemantics:
    def test_wraps_to_width(self, ctx):
        x = TaintedInt(0x1FF, width=8)
        assert x.value == 0xFF

    def test_add_sub(self, ctx):
        x = tainted(ctx, 10)
        assert (x + 5).value == 15
        assert (5 + x).value == 15
        assert (x - 3).value == 7
        assert (20 - x).value == 10

    def test_sub_wraps_unsigned(self, ctx):
        x = TaintedInt(1, width=8, recorder=ctx)
        assert (x - 2).value == 0xFF

    def test_mul_div_mod(self, ctx):
        x = tainted(ctx, 12)
        assert (x * 3).value == 36
        assert (x // 5).value == 2
        assert (x % 5).value == 2
        assert (100 // x).value == 8
        assert (100 % x).value == 4

    def test_shifts(self, ctx):
        x = tainted(ctx, 0b1010, width=8)
        assert (x << 2).value == 0b101000
        assert (x >> 1).value == 0b101

    def test_bitwise(self, ctx):
        x = tainted(ctx, 0b1100)
        assert (x & 0b1010).value == 0b1000
        assert (x | 0b0011).value == 0b1111
        assert (x ^ 0b1111).value == 0b0011
        assert (~TaintedInt(0, width=8)).value == 0xFF

    def test_comparisons_return_plain_bool(self, ctx):
        x = tainted(ctx, 5)
        assert (x < 6) is True
        assert (x >= 6) is False
        assert (x == 5) is True
        assert (x != 5) is False
        assert bool(x) is True

    def test_int_and_index(self, ctx):
        x = tainted(ctx, 42)
        assert int(x) == 42
        assert [0, 1, 2][tainted(ctx, 1)] == 1


class TestTaintPropagation:
    def test_xor_merges(self, ctx):
        a = tainted(ctx, 1, tag=0)
        b = tainted(ctx, 2, tag=1)
        assert (a ^ b).taint.tags() == {0, 1}

    def test_and_with_constant_masks(self, ctx):
        a = tainted(ctx, 0xFF, tag=0)
        assert (a & 0x0F).taint.tainted_bits() == [0, 1, 2, 3]

    def test_and_constant_on_left(self, ctx):
        a = tainted(ctx, 0xFF, tag=0)
        assert (0xF0 & a).taint.tainted_bits() == [4, 5, 6, 7]

    def test_shift_moves_taint(self, ctx):
        a = tainted(ctx, 1, tag=0)
        assert (a << 9).taint.tainted_bits() == list(range(9, 17))
        assert (a >> 4).taint.tainted_bits() == [0, 1, 2, 3]

    def test_mul_by_pow2_is_shift(self, ctx):
        a = tainted(ctx, 3, tag=0)
        assert (a * 8).taint.tainted_bits() == list(range(3, 11))
        assert (8 * a).taint.tainted_bits() == list(range(3, 11))

    def test_mul_by_non_pow2_smears(self, ctx):
        a = tainted(ctx, 3, tag=0, width=16)
        assert (a * 3).taint.tainted_bits() == list(range(0, 16))

    def test_div_mod_by_pow2(self, ctx):
        a = tainted(ctx, 0xFF, tag=0)
        assert (a // 4).taint.tainted_bits() == list(range(0, 6))
        assert (a % 8).taint.tainted_bits() == [0, 1, 2]

    def test_add_positional_by_default(self, ctx):
        # Pointer arithmetic base + (tainted index << 1) keeps taint at
        # its shifted positions, matching Fig. 2.
        idx = tainted(ctx, 0x1234, tag=0, width=16)
        addr = 0x7F0000000000 + (idx.extend(64) << 1)
        assert addr.taint.tainted_bits() == list(range(1, 9))

    def test_add_carry_aware_mode(self):
        ctx = TracingContext(carry_aware_add=True)
        a = TaintedInt(1, 8, BitTaint.of_bits(0, [2]), None, ctx)
        r = a + 1
        assert r.taint.tainted_bits() == list(range(2, 8))

    def test_truncate_and_extend(self, ctx):
        a = tainted(ctx, 0xABCD, tag=0, width=16)
        low = a.truncate(8)
        assert low.value == 0xCD
        assert low.taint.tainted_bits() == list(range(0, 8))
        wide = low.extend(32)
        assert wide.width == 32

    def test_sar_replicates_sign_taint(self, ctx):
        a = TaintedInt(0x80, 8, BitTaint.of_bits(0, [7]), None, ctx)
        r = a.sar(2, width=8)
        assert 7 in r.taint.tainted_bits()
        assert 5 in r.taint.tainted_bits()

    def test_comparison_does_not_taint(self, ctx):
        # "if (x<5) cnt++" must leave cnt untainted.
        x = tainted(ctx, 3)
        cnt = 0
        if x < 5:
            cnt += 1
        assert isinstance(cnt, int)


class TestTraceRecording:
    def test_tainted_op_recorded(self, ctx):
        a = tainted(ctx, 1)
        _ = a ^ 2
        ops = [e for e in ctx.events if isinstance(e, OpRecord)]
        assert len(ops) == 1
        assert ops[0].op == "xor"
        assert ops[0].operands[0].tainted
        assert not ops[0].operands[1].tainted

    def test_untainted_op_not_recorded(self, ctx):
        a = ctx.constant(1)
        _ = a + 2
        assert not any(isinstance(e, OpRecord) for e in ctx.events)

    def test_compare_recorded_with_outcome(self, ctx):
        a = tainted(ctx, 3)
        _ = a < 5
        cmps = [e for e in ctx.events if isinstance(e, CompareRecord)]
        assert len(cmps) == 1
        assert cmps[0].op == "lt" and cmps[0].outcome is True

    def test_origin_chain_reaches_input(self, ctx):
        (b,) = ctx.input_bytes(b"\x20")
        r = (b << 9) ^ 0x1F0
        node = r.origin
        seen = set()
        while node is not None and isinstance(node, OpRecord):
            seen.add(node.op)
            parents = [o.origin for o in node.operands if o.origin is not None]
            node = parents[0] if parents else None
        assert "xor" in seen and "shl" in seen
        assert node is not None and node.describe().startswith("#")

    def test_input_bytes_tagged_sequentially(self, ctx):
        vals = ctx.input_bytes(b"abc")
        tags = [v.taint.tags() for v in vals]
        assert tags == [{0}, {1}, {2}]
        assert ctx.tags.label(0) == "0"

    def test_distinct_sources_get_distinct_tags(self, ctx):
        ctx.input_bytes(b"a", source="key")
        ctx.input_bytes(b"b", source="pt")
        assert ctx.tags.label(0) == "key[0]"
        assert ctx.tags.label(1) == "pt[0]"
