"""End-to-end tests for the Bzip2 pipeline: round trips, sorting paths,
and the ftab leakage gadget."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bzip2 import (
    BLOCK_SIZE,
    SITE_FTAB,
    bzip2_compress,
    bzip2_decompress,
)
from repro.compression.bzip2.blocksort import (
    BudgetExhausted,
    fallback_sort,
    histogram,
    main_sort,
)
from repro.compression.bzip2.pipeline import bzip2_compress_with_paths
from repro.exec import NativeContext, TracingContext


def naive_rotation_order(data: bytes) -> list[int]:
    n = len(data)
    return sorted(range(n), key=lambda i: data[i:] + data[:i])


def make_text(n: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    words = [b"lorem", b"ipsum", b"dolor", b"sit", b"amet", b"sed", b"ut"]
    out = bytearray()
    while len(out) < n:
        out += rng.choice(words) + b" "
    return bytes(out[:n])


class TestSorters:
    @pytest.mark.parametrize(
        "data", [b"BANANA", b"abracadabra", b"the quick brown fox", b"xy"]
    )
    def test_fallback_matches_naive(self, data):
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        assert fallback_sort(ctx, block, len(data)) == naive_rotation_order(data)

    def test_main_matches_naive_on_text(self):
        data = make_text(800, seed=2)
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        got = main_sort(ctx, block, len(data), budget=30 * len(data))
        naive = naive_rotation_order(data)
        # Rotation *content* must agree even if ties order differently.
        to_rot = lambda i: data[i:] + data[:i]
        assert [to_rot(i) for i in got] == [to_rot(i) for i in naive]

    def test_main_budget_exhausts_on_periodic_input(self):
        data = b"ab" * 500
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        with pytest.raises(BudgetExhausted):
            main_sort(ctx, block, len(data), budget=10 * len(data))

    def test_fallback_handles_fully_periodic_input(self):
        data = b"ab" * 100
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        order = fallback_sort(ctx, block, len(data))
        assert sorted(order) == list(range(len(data)))

    @given(st.binary(min_size=2, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_fallback_rotation_order_property(self, data):
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        got = fallback_sort(ctx, block, len(data))
        to_rot = lambda i: data[i:] + data[:i]
        expected = [to_rot(i) for i in naive_rotation_order(data)]
        assert [to_rot(i) for i in got] == expected


class TestHistogram:
    def test_counts_all_wrapping_pairs(self):
        data = b"BANANA"
        ctx = NativeContext()
        block = ctx.array("block", len(data))
        for i, b in enumerate(data):
            block.set(i, b)
        ftab = histogram(ctx, block, len(data))
        counts = ftab.snapshot()
        n = len(data)
        for i in range(n):
            j = (data[i] << 8) | data[(i + 1) % n]
            assert counts[j] >= 1
        assert sum(counts) == n

    def test_ftab_taint_matches_fig4(self):
        """Consecutive ftab[j]++ accesses carry byte k in bits 0-7 of the
        index and then bits 8-15 (Fig. 4)."""
        ctx = TracingContext()
        data = b"\x10\x20\x30\x40"
        block = ctx.array("block", len(data))
        for i, v in enumerate(ctx.input_bytes(data)):
            block.set(i, v)
        histogram(ctx, block, len(data))
        updates = [a for a in ctx.tainted_accesses() if a.site == SITE_FTAB]
        assert len(updates) == len(data)
        # Loop runs i = n-1 .. 0; at i, j = (block[i] << 8) | block[i+1].
        # elem size 4 shifts index bits up by 2 in the address.
        acc_i2 = updates[1]  # i == 2: high byte = tag 2, low = tag 3
        assert acc_i2.addr_taint.bits_of_tag(2) == list(range(8 + 2, 16 + 2))
        assert acc_i2.addr_taint.bits_of_tag(3) == list(range(0 + 2, 8 + 2))
        acc_i1 = updates[2]  # i == 1: high byte = tag 1, low = tag 2
        assert acc_i1.addr_taint.bits_of_tag(2) == list(range(0 + 2, 8 + 2))

    def test_ftab_not_cache_aligned(self):
        ctx = NativeContext()
        block = ctx.array("block", 4, init=1)
        ftab = histogram(ctx, block, 4)
        assert ftab.base % 64 != 0  # the paper's off-by-one ambiguity source


class TestPipelineRoundTrip:
    def test_empty(self):
        assert bzip2_decompress(bzip2_compress(b"")) == b""

    def test_single_byte(self):
        assert bzip2_decompress(bzip2_compress(b"q")) == b"q"

    def test_banana(self):
        assert bzip2_decompress(bzip2_compress(b"BANANA")) == b"BANANA"

    def test_text_short_block(self):
        data = make_text(3000, seed=1)
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_text_multi_block(self):
        data = make_text(2 * BLOCK_SIZE + 1234, seed=4)
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_random_data(self):
        rng = random.Random(9)
        data = bytes(rng.randrange(256) for _ in range(BLOCK_SIZE + 500))
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_highly_repetitive(self):
        data = b"ab" * 8000  # forces mainSort -> fallbackSort retreat
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_long_runs_through_rle1(self):
        data = b"\x00" * 5000 + b"hello" + b"\xff" * 5000
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_text_compresses(self):
        data = make_text(9000, seed=3)
        assert len(bzip2_compress(data)) < len(data)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            bzip2_decompress(b"NOPE" + b"\x00" * 10)

    def test_truncated_stream(self):
        blob = bzip2_compress(b"some data here")
        with pytest.raises((ValueError, EOFError, struct_error := Exception)):
            bzip2_decompress(blob[:-2])

    @given(st.binary(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert bzip2_decompress(bzip2_compress(data)) == data


class TestSortingPaths:
    """Fig. 6: the control flow the fingerprinting attack observes."""

    def test_short_file_goes_straight_to_fallback(self):
        _, paths = bzip2_compress_with_paths(b"short file content")
        assert paths == ["fallbackSort"]

    def test_full_text_block_stays_in_main_sort(self):
        data = make_text(BLOCK_SIZE + 5000, seed=7)
        _, paths = bzip2_compress_with_paths(data)
        assert paths[0] == "mainSort"
        assert paths[-1] == "fallbackSort"  # short tail block

    def test_repetitive_full_block_retreats(self):
        data = (b"ababab" * 4000)[: BLOCK_SIZE * 2]
        _, paths = bzip2_compress_with_paths(data)
        assert "mainSort+fallbackSort" in paths

    def test_exact_multiple_has_no_short_tail(self):
        data = make_text(BLOCK_SIZE, seed=8)
        # RLE1 can shrink the block; pick data with no 4-runs.
        _, paths = bzip2_compress_with_paths(data)
        assert len(paths) >= 1
