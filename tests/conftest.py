"""Shared test configuration.

Pins a hypothesis profile with no deadline (the traced/simulated runs
have high variance on shared CI machines) and a fixed derandomization
seed is deliberately NOT set — property tests should explore.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
