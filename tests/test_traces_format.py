"""Property and unit tests for the binary trace serialization."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.events import MemoryAccess
from repro.taint.bittaint import BitTaint
from repro.traces import (
    FingerprintCapture,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    deserialize_records,
    serialize_records,
)
from repro.traces.format import (
    _HEADER,
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def bittaints() -> st.SearchStrategy[BitTaint]:
    entry = st.tuples(
        st.integers(min_value=0, max_value=80),
        st.frozensets(st.integers(min_value=0, max_value=40_000),
                      min_size=1, max_size=4),
    )
    return st.builds(
        lambda entries: BitTaint(dict(entries)),
        st.lists(entry, max_size=5, unique_by=lambda e: e[0]),
    )


def memory_accesses() -> st.SearchStrategy[MemoryAccess]:
    return st.builds(
        MemoryAccess,
        seq=st.integers(min_value=0, max_value=1 << 40),
        kind=st.sampled_from(["read", "write", "update"]),
        array=st.sampled_from(["head", "htab", "ftab", "Te0", "block"]),
        index=st.integers(min_value=-(1 << 20), max_value=1 << 34),
        elem_size=st.sampled_from([1, 2, 4, 8]),
        # >32-bit addresses are the common case (the heap base is 47-bit)
        address=st.integers(min_value=0, max_value=(1 << 48) - 1),
        addr_taint=bittaints(),
        value_taint=bittaints(),
        site=st.sampled_from(
            ["deflate_slow/head[ins_h]", "lzw/htab[hp]", "mainSort/ftab", ""]
        ),
    )


def fingerprint_captures() -> st.SearchStrategy[FingerprintCapture]:
    def build(label, seed, rows, cols, bits):
        rng = np.random.default_rng(bits)
        trace = (rng.random((rows, cols)) < 0.2).astype(np.int8)
        return FingerprintCapture(label=label, capture_seed=seed, trace=trace)

    return st.builds(
        build,
        label=st.integers(min_value=-5, max_value=30),
        seed=st.integers(min_value=0, max_value=(1 << 63) - 1),
        rows=st.integers(min_value=1, max_value=3),
        cols=st.integers(min_value=1, max_value=400),
        bits=st.integers(min_value=0, max_value=1 << 32),
    )


def _same_access(a: MemoryAccess, b: MemoryAccess) -> bool:
    return (
        a.seq == b.seq
        and a.kind == b.kind
        and a.array == b.array
        and a.index == b.index
        and a.elem_size == b.elem_size
        and a.address == b.address
        and a.site == b.site
        and a.addr_taint == b.addr_taint
        and a.value_taint == b.value_taint
    )


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------
class TestVarints:
    @given(st.integers(min_value=0, max_value=1 << 200))
    def test_uvarint_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        got, pos = read_uvarint(memoryview(bytes(out)), 0)
        assert got == value and pos == len(out)

    @given(st.integers(min_value=-(1 << 100), max_value=1 << 100))
    def test_svarint_round_trip(self, value):
        out = bytearray()
        write_svarint(out, value)
        got, pos = read_svarint(memoryview(bytes(out)), 0)
        assert got == value and pos == len(out)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        write_uvarint(out, 1)
        write_svarint(out, -1)
        assert len(out) == 2


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestMemoryRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(memory_accesses(), max_size=60))
    def test_serialize_deserialize_identity(self, records):
        blob = serialize_records(SPECIES_MEMORY, records, chunk_records=7)
        back = deserialize_records(blob)
        assert len(back) == len(records)
        assert all(_same_access(a, b) for a, b in zip(records, back))

    def test_empty_trace(self):
        blob = serialize_records(SPECIES_MEMORY, [])
        assert deserialize_records(blob) == []

    def test_chunk_boundaries_do_not_matter(self):
        records = [
            MemoryAccess(seq=i, kind="read", array="head", index=i,
                         elem_size=2, address=0x7F00_0000_0000 + 64 * i,
                         site="s")
            for i in range(100)
        ]
        blobs = {
            serialize_records(SPECIES_MEMORY, records, chunk_records=n)
            for n in (1, 3, 100, 4096)
        }
        decoded = [deserialize_records(b) for b in blobs]
        for back in decoded:
            assert all(_same_access(a, b) for a, b in zip(records, back))

    def test_tainted_flag_survives(self):
        record = MemoryAccess(
            seq=1, kind="read", array="htab", index=9, elem_size=8,
            address=1 << 45, addr_taint=BitTaint.byte(3, lo_bit=9),
            site="lzw/htab[hp]",
        )
        (back,) = deserialize_records(
            serialize_records(SPECIES_MEMORY, [record])
        )
        assert bool(back.addr_taint)
        assert back.addr_taint.bits_of_tag(3) == list(range(9, 17))
        assert back.cache_line == record.cache_line


class TestFingerprintRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(fingerprint_captures(), max_size=10))
    def test_serialize_deserialize_identity(self, captures):
        blob = serialize_records(SPECIES_FINGERPRINT, captures, chunk_records=3)
        assert deserialize_records(blob) == captures

    def test_all_zero_and_all_one_tensors(self):
        captures = [
            FingerprintCapture(0, 1, np.zeros((2, 10_000), dtype=np.int8)),
            FingerprintCapture(1, 2, np.ones((2, 10_000), dtype=np.int8)),
        ]
        blob = serialize_records(SPECIES_FINGERPRINT, captures)
        assert deserialize_records(blob) == captures
        # Long constant runs compress to a handful of bytes.
        assert len(blob) < 100

    def test_rejects_non_boolean_tensor(self):
        capture = FingerprintCapture(0, 0, np.full((2, 4), 7, dtype=np.int8))
        with pytest.raises(ValueError):
            serialize_records(SPECIES_FINGERPRINT, [capture])


# ----------------------------------------------------------------------
# Corruption and misuse
# ----------------------------------------------------------------------
class TestCorruption:
    def _blob(self):
        records = [
            MemoryAccess(seq=i, kind="write", array="ftab", index=i,
                         elem_size=4, address=(1 << 44) + 4 * i, site="ftab")
            for i in range(50)
        ]
        return serialize_records(SPECIES_MEMORY, records)

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_any_flipped_payload_byte_is_detected(self, data):
        blob = bytearray(self._blob())
        # Bytes past the header are covered by chunk CRCs (the header
        # has its own magic/version checks; its reserved byte is only
        # covered by the store-level sha256).
        offset = data.draw(
            st.integers(min_value=_HEADER.size, max_value=len(blob) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[offset] ^= 1 << bit
        with pytest.raises(TraceFormatError):
            deserialize_records(bytes(blob))

    def test_bad_magic(self):
        blob = bytearray(self._blob())
        blob[0] ^= 0xFF
        with pytest.raises(TraceFormatError, match="magic"):
            deserialize_records(bytes(blob))

    def test_unsupported_version(self):
        blob = bytearray(self._blob())
        blob[4] ^= 0xFF
        with pytest.raises(TraceFormatError, match="version"):
            deserialize_records(bytes(blob))

    def test_truncated_file(self):
        blob = self._blob()
        with pytest.raises(TraceFormatError, match="truncated"):
            deserialize_records(blob[: len(blob) - 3])

    def test_unknown_species_rejected_at_write(self):
        with pytest.raises(ValueError, match="species"):
            serialize_records("quantum", [])

    def test_reader_is_single_pass(self):
        reader = TraceReader(io.BytesIO(self._blob()))
        assert len(list(reader)) == 50
        with pytest.raises(ValueError, match="single-pass"):
            list(reader)

    def test_writer_refuses_append_after_close(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, SPECIES_MEMORY)
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(MemoryAccess(seq=1))


class TestCompactness:
    def test_bzip2_scale_trace_stays_small(self):
        """A 10 KB-input bzip2 histogram trace is ~10k sequential
        accesses; delta+varint keeps it to a few bytes per record."""
        records = [
            MemoryAccess(
                seq=i + 1, kind="update", array="ftab", index=(i * 257) % 65536,
                elem_size=4, address=(0x7F00_0000_0000 + 4 * ((i * 257) % 65536)),
                addr_taint=BitTaint.of_bits(i % 256, range(2, 18)),
                site="mainSort/ftab[j]++",
            )
            for i in range(10_000)
        ]
        blob = serialize_records(SPECIES_MEMORY, records)
        assert len(blob) / len(records) < 24
