"""Report-path edge cases: empty sinks, counters-only streams,
interleaved multi-pid spans, histogram quantiles, and warning dedupe.

These are the shapes a real multi-process campaign sink takes when
things go sideways — workers that die before their first snapshot,
sinks with only counters, spans whose parents never flushed — and the
quantile/dedupe features layered onto the report in this PR.
"""

import pytest

from repro import obs
from repro.obs.core import Histogram, _quantile_bin, _quantile_bin_value
from repro.obs.report import (
    format_event,
    merge_events,
    merge_warnings,
    render_report,
    render_span_tree,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestEmptySink:
    def test_empty_file_loads_no_events(self, tmp_path):
        sink = tmp_path / "empty.jsonl"
        sink.write_text("")
        assert obs.load_events(str(sink)) == []

    def test_empty_events_render_placeholders(self):
        merged = merge_events([])
        assert merged["counters"] == {}
        assert merged["metrics"] == {}
        assert merged["warnings"] == []
        text = render_report([])
        assert "0 events" in text
        assert "no counters" in text


class TestCountersOnly:
    def test_report_renders_without_spans_or_logs(self):
        events = [
            {"kind": "counters", "pid": 1, "ts": 1.0,
             "counters": {"jobs": 4}, "histograms": {}},
        ]
        text = render_report(events)
        assert "## counters" in text
        assert "jobs" in text
        assert "## spans" not in text
        assert "## histograms" not in text

    def test_dead_worker_without_snapshot_is_invisible(self):
        # pid 2 logged but died before its counters flush: its log
        # still counts, its (absent) counters contribute nothing.
        events = [
            {"kind": "counters", "pid": 1, "ts": 1.0,
             "counters": {"jobs": 4}, "histograms": {}},
            {"kind": "log", "pid": 2, "ts": 1.5, "level": "info",
             "msg": "worker up"},
        ]
        merged = merge_events(events)
        assert merged["counters"] == {"jobs": 4}
        assert merged["n_logs"] == 1


class TestInterleavedSpans:
    def _events(self):
        # Two workers' spans interleaved in sink order; pid 2's parent
        # span never flushed (killed), so its child must surface as a
        # root instead of vanishing.
        return [
            {"kind": "span", "pid": 1, "id": "a", "parent": None,
             "name": "campaign.run", "dur": 2.0, "ts": 1.0},
            {"kind": "span", "pid": 2, "id": "x", "parent": "ghost",
             "name": "campaign.job", "dur": 0.5, "ts": 1.2},
            {"kind": "span", "pid": 1, "id": "b", "parent": "a",
             "name": "campaign.job", "dur": 0.7, "ts": 1.4,
             "status": "error"},
        ]

    def test_aggregates_merge_across_pids(self):
        merged = merge_events(self._events())
        assert merged["spans"]["campaign.job"]["count"] == 2
        assert merged["spans"]["campaign.job"]["errors"] == 1
        assert merged["spans"]["campaign.job"]["max"] == 0.7

    def test_orphaned_span_groups_under_synthetic_root(self):
        tree = render_span_tree(self._events())
        lines = tree.splitlines()
        # campaign.run root with its child indented under it
        assert any(l.startswith("campaign.run") for l in lines)
        assert any(l.startswith("  campaign.job") for l in lines)
        # the orphan is never dropped: it renders under the synthetic
        # "(orphaned: ...)" group, indented one level
        marker = next(l for l in lines if l.startswith("(orphaned:"))
        assert "1 span" in marker
        after = lines[lines.index(marker) + 1:]
        assert any(l.startswith("  campaign.job  500.00 ms") for l in after)

    def test_orphan_keeps_its_own_subtree(self):
        events = self._events() + [
            {"kind": "span", "pid": 2, "id": "y", "parent": "x",
             "name": "store.append", "dur": 0.1, "ts": 1.3},
        ]
        tree = render_span_tree(events)
        lines = tree.splitlines()
        start = next(
            i for i, l in enumerate(lines) if l.startswith("(orphaned:")
        )
        # the orphan's own child nests beneath it inside the group
        assert any(
            l.startswith("    store.append") for l in lines[start + 1:]
        )

    def test_orphan_overflow_is_counted_not_dropped(self):
        events = [
            {"kind": "span", "pid": 2, "id": f"o{i}", "parent": "ghost",
             "name": "campaign.job", "dur": 0.1, "ts": 1.0 + i}
            for i in range(12)
        ]
        tree = render_span_tree(events, max_roots=10)
        assert "(orphaned: 12 spans" in tree
        assert "2 more orphaned spans" in tree


class TestHistogramQuantiles:
    def test_quantiles_of_known_distribution(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        # log-spaced bins give ~±15% resolution at 8 bins/decade
        assert h.quantile(0.5) == pytest.approx(50.0, rel=0.2)
        assert h.quantile(0.95) == pytest.approx(95.0, rel=0.2)
        assert h.quantile(0.99) == pytest.approx(99.0, rel=0.2)

    def test_quantiles_clamp_to_observed_range(self):
        h = Histogram()
        h.observe(3.0)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 3.0

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        assert h.to_dict()["p50"] is None

    def test_nonpositive_values_land_in_the_zero_bin(self):
        assert _quantile_bin(0.0) == 0
        assert _quantile_bin(-5.0) == 0
        assert _quantile_bin_value(0) == 0.0
        h = Histogram()
        h.observe(0.0)
        h.observe(0.0)
        assert h.quantile(0.5) == 0.0

    def test_to_dict_carries_sparse_bins(self):
        h = Histogram()
        h.observe(1.0)
        h.observe(1.0)
        payload = h.to_dict()
        assert payload["count"] == 2
        (idx, n) = next(iter(payload["bins"].items()))
        assert n == 2
        assert _quantile_bin_value(int(idx)) == pytest.approx(1.0, rel=0.2)

    def test_merge_dict_folds_bins_across_processes(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0, 4.0):
            a.observe(v)
        for v in (8.0, 16.0, 32.0):
            b.observe(v)
        a.merge_dict(b.to_dict())
        assert a.count == 6
        assert a.quantile(0.5) == pytest.approx(4.0, rel=0.3)
        assert a.maximum == 32.0

    def test_merge_tolerates_pre_quantile_payloads(self):
        h = Histogram()
        h.observe(2.0)
        h.merge_dict({"count": 3, "total": 9.0, "min": 1.0, "max": 5.0})
        assert h.count == 4
        # quantiles degrade gracefully: only binned samples contribute
        assert h.quantile(0.5) is not None

    def test_report_renders_quantile_columns(self):
        obs.enable()
        for v in (0.1, 0.2, 0.3, 0.4):
            obs.observe("lat", v)
        snapshot = obs.histograms_snapshot()
        events = [{"kind": "counters", "pid": 1, "counters": {},
                   "histograms": snapshot}]
        text = render_report(events)
        assert "p50" in text and "p95" in text and "p99" in text
        row = next(l for l in text.splitlines() if l.startswith("lat"))
        assert "-" not in row  # all three quantiles resolved


class TestMetricsEvents:
    def test_publish_metrics_filters_non_numeric_and_casts_bools(self):
        obs.enable()
        obs.publish_metrics(
            "campaign.job",
            {"bit_accuracy": 0.9, "exact_found": True, "name": "zlib"},
        )
        (event,) = [e for e in obs.recent() if e["kind"] == "metrics"]
        assert event["values"] == {"bit_accuracy": 0.9, "exact_found": 1}

    def test_publish_metrics_disabled_is_a_noop(self):
        obs.publish_metrics("campaign.job", {"bit_accuracy": 0.9})
        assert obs.recent() == []

    def test_all_non_numeric_payload_emits_nothing(self):
        obs.enable()
        obs.publish_metrics("campaign.job", {"name": "zlib"})
        assert [e for e in obs.recent() if e["kind"] == "metrics"] == []

    def test_merge_and_report_aggregate_metrics(self):
        events = [
            {"kind": "metrics", "name": "campaign.job", "ts": 1.0,
             "pid": 1, "values": {"bit_accuracy": 0.8}},
            {"kind": "metrics", "name": "campaign.job", "ts": 2.0,
             "pid": 2, "values": {"bit_accuracy": 1.0}},
        ]
        merged = merge_events(events)
        agg = merged["metrics"]["campaign.job.bit_accuracy"]
        assert agg["count"] == 2
        assert agg["mean"] == pytest.approx(0.9)
        assert agg["last"] == 1.0
        text = render_report(events)
        assert "## job metrics" in text
        assert "campaign.job.bit_accuracy" in text

    def test_tail_formats_metrics_lines(self):
        line = format_event(
            {"kind": "metrics", "name": "campaign.job", "ts": 3.0,
             "values": {"bit_accuracy": 0.875}}
        )
        assert "metrics" in line
        assert "bit_accuracy=0.875" in line


class TestWarningDedupe:
    def _warn(self, pid, key="disk", msg="slow disk"):
        return {"kind": "log", "level": "warning", "pid": pid,
                "msg": msg, "ts": 1.0, "fields": {"warn_key": key}}

    def test_same_key_collapses_across_pids(self):
        rows = merge_warnings(
            [self._warn(1), self._warn(2), self._warn(1)]
        )
        (row,) = rows
        assert row["count"] == 3
        assert row["pids"] == [1, 2]

    def test_rows_sort_by_count_then_key(self):
        rows = merge_warnings(
            [self._warn(1, key="b"), self._warn(1, key="a"),
             self._warn(2, key="a")]
        )
        assert [r["key"] for r in rows] == ["a", "b"]

    def test_missing_key_dedupes_by_message(self):
        events = [
            {"kind": "log", "level": "warning", "pid": 1,
             "msg": "no key here", "ts": 1.0},
            {"kind": "log", "level": "warning", "pid": 1,
             "msg": "no key here", "ts": 2.0},
        ]
        (row,) = merge_warnings(events)
        assert row["count"] == 2

    def test_warn_once_emits_the_key_field(self):
        obs.enable()
        obs.warn_once("disk", "slow disk", device="sda")
        (event,) = [e for e in obs.recent() if e["kind"] == "log"]
        assert event["fields"]["warn_key"] == "disk"
        assert event["fields"]["device"] == "sda"
        (row,) = merge_warnings([event])
        assert row["key"] == "disk"

    def test_report_renders_the_warning_section(self):
        text = render_report([self._warn(1), self._warn(2)])
        assert "## warnings" in text
        assert "[x2, 2 pids] slow disk" in text
