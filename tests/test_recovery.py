"""Tests for the Section IV recovery algorithms, driven by real traces
from the instrumented compressors."""

import random

import pytest

from repro.compression.bzip2.blocksort import histogram
from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY, lzw_compress
from repro.exec import TracingContext
from repro.recovery import observed_lines, recover_lzw_input
from repro.recovery.bzip2_recover import (
    observations_from_lines,
    recover_bzip2_block,
)
from repro.recovery.zlib_recover import (
    accuracy,
    recover_direct_bits,
    recover_known_high_bits,
)


def zlib_trace(data: bytes):
    ctx = TracingContext()
    deflate_compress(data, ctx=ctx)
    lines = observed_lines(ctx, SITE_HEAD, kind="write")
    return lines, ctx.arrays["head"].base


def lzw_trace(data: bytes):
    ctx = TracingContext()
    lzw_compress(data, ctx=ctx)
    primary = [
        a
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]
    return [a.address >> 6 for a in primary], ctx.arrays["htab"].base


def bzip2_trace(data: bytes):
    from repro.compression.bzip2 import SITE_FTAB

    ctx = TracingContext()
    block = ctx.array("block", len(data))
    for i, v in enumerate(ctx.input_bytes(data)):
        block.set(i, v)
    histogram(ctx, block, len(data))
    lines = observed_lines(ctx, SITE_FTAB)
    return lines, ctx.arrays["ftab"].base


class TestZlibRecovery:
    def test_direct_bits_correct(self):
        data = b"The DEFLATE hash chain leaks two bits per byte."
        lines, base = zlib_trace(data)
        got = recover_direct_bits(lines, base, len(data))
        for i in range(1, len(data) - 1):
            mask, bits = got[i]
            assert mask == 0b11000
            assert data[i] & mask == bits

    def test_direct_bits_are_quarter_of_input(self):
        data = bytes(range(32, 127))
        lines, base = zlib_trace(data)
        got = recover_direct_bits(lines, base, len(data))
        known_bits = sum(bin(mask).count("1") for mask, _ in got)
        assert known_bits == 2 * (len(data) - 2)

    def test_lowercase_full_recovery(self):
        data = b"thequickbrownfoxjumpsoverthelazydogandrunsaway"
        assert all(0x61 <= b <= 0x7A for b in data)
        lines, base = zlib_trace(data)
        rec = recover_known_high_bits(lines, base, len(data))
        # Everything but the final byte recovers exactly.
        assert accuracy(rec, data) >= (len(data) - 1) / len(data)
        assert rec[: len(data) - 1] == list(data[: len(data) - 1])

    def test_lowercase_recovery_longer_text(self):
        rng = random.Random(11)
        data = bytes(rng.randrange(0x61, 0x7B) for _ in range(600))
        lines, base = zlib_trace(data)
        rec = recover_known_high_bits(lines, base, len(data))
        assert accuracy(rec, data) >= 0.99

    def test_short_inputs(self):
        lines, base = zlib_trace(b"ab")
        assert recover_known_high_bits(lines, base, 2) == [None, None]

    def test_misaligned_head_rejected(self):
        with pytest.raises(ValueError):
            recover_direct_bits([0], head_base=7, n=4)


class TestLzwRecovery:
    def test_exact_recovery_among_candidates(self):
        data = b"TOBEORNOTTOBEORTOBEORNOT"
        lines, base = lzw_trace(data)
        candidates = recover_lzw_input(lines, base, len(data))
        assert data in candidates
        assert 1 <= len(candidates) <= 8

    def test_candidates_differ_only_in_first_byte_low_bits(self):
        data = b"compression is reversible, so the attacker replays it"
        lines, base = lzw_trace(data)
        candidates = recover_lzw_input(lines, base, len(data))
        assert data in candidates
        for cand in candidates:
            assert cand[1:] == data[1:]
            assert cand[0] & 0xF8 == data[0] & 0xF8

    def test_random_input_recovery(self):
        rng = random.Random(5)
        data = bytes(rng.randrange(256) for _ in range(400))
        lines, base = lzw_trace(data)
        candidates = recover_lzw_input(lines, base, len(data))
        assert data in candidates

    def test_repetitive_input_recovery(self):
        data = b"abababababab" * 20
        lines, base = lzw_trace(data)
        assert data in recover_lzw_input(lines, base, len(data))

    def test_empty_and_single(self):
        assert recover_lzw_input([], 0, 0) == [b""]
        assert len(recover_lzw_input([], 0, 1)) == 256


class TestBzip2Recovery:
    def test_noise_free_full_recovery(self):
        data = b"burrows wheeler transforms leak their histograms"
        lines, base = bzip2_trace(data)
        obs = observations_from_lines(lines, len(data))
        rec = recover_bzip2_block(obs, base, len(data))
        assert rec.byte_accuracy(data) == 1.0
        assert rec.ambiguous_positions() == []

    def test_random_data_full_recovery(self):
        rng = random.Random(17)
        data = bytes(rng.randrange(256) for _ in range(800))
        lines, base = bzip2_trace(data)
        obs = observations_from_lines(lines, len(data))
        rec = recover_bzip2_block(obs, base, len(data))
        assert rec.bit_accuracy(data) == 1.0

    def test_missing_observations_degrade_gracefully(self):
        rng = random.Random(23)
        data = bytes(rng.randrange(256) for _ in range(400))
        lines, base = bzip2_trace(data)
        obs = observations_from_lines(lines, len(data))
        for i in range(0, len(obs), 10):  # drop 10% of probes
            obs[i] = None
        rec = recover_bzip2_block(obs, base, len(data))
        assert rec.bit_accuracy(data) > 0.95

    def test_false_positive_lines_filtered(self):
        rng = random.Random(29)
        data = bytes(rng.randrange(256) for _ in range(300))
        lines, base = bzip2_trace(data)
        obs = observations_from_lines(lines, len(data))
        # Add a spurious candidate line to a third of the observations.
        for i in range(0, len(obs), 3):
            if obs[i]:
                obs[i] = list(obs[i]) + [obs[i][0] + 7]
        rec = recover_bzip2_block(obs, base, len(data))
        assert rec.bit_accuracy(data) > 0.98

    def test_off_by_one_ambiguity_without_neighbour_constraint(self):
        """A single isolated observation can leave block[i] ambiguous
        between a low and a high value (the paper's 0x00-0x03 vs
        0xf4-0xff example) -- candidates span at most two hi values."""
        base = 0x7F0000000030  # misaligned like the paper's ftab
        from repro.recovery.bzip2_recover import _pairs_for_line

        for j in (0x015D, 0xF45C):
            line = (base + 4 * j) >> 6
            his = {hi for hi, _ in _pairs_for_line(line, base)}
            assert 1 <= len(his) <= 2

    def test_empty_input(self):
        rec = recover_bzip2_block([], 0, 0)
        assert rec.values == []
        assert rec.bit_accuracy(b"") == 1.0
