"""Unit tests for repro.obs: state machine, spans, sinks, reports.

The contract under test is the tentpole's: disabled observability is a
no-op (and cheap), enabled observability records counters, histograms,
nested spans and logs into the ring and the JSONL sink, and the report
renderer reconstructs it all — including multi-process counter merging.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs.core import STATE, Histogram


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.reset()
    yield
    obs.reset()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_disabled_records_nothing(self):
        with obs.span("x", a=1):
            obs.counter_add("c")
            obs.observe("h", 1.0)
            obs.log("info", "hello")
        assert obs.counters_snapshot() == {}
        assert obs.histograms_snapshot() == {}
        assert obs.recent() == []

    def test_disabled_span_is_the_shared_null_span(self):
        from repro.obs.core import NULL_SPAN

        assert obs.span("a") is NULL_SPAN
        assert obs.span("b", k=1) is NULL_SPAN
        # note() must be callable on it (code annotates unconditionally)
        obs.span("c").note(extra=2)

    def test_logger_silent_when_disabled(self, capsys):
        log = obs.get_logger("test")
        log.info("nothing", x=1)
        log.error("still nothing")
        assert capsys.readouterr().out == ""
        assert obs.recent() == []


class TestCountersAndHistograms:
    def test_counter_accumulates(self):
        obs.enable()
        obs.counter_add("jobs")
        obs.counter_add("jobs", 4)
        assert obs.counters_snapshot() == {"jobs": 5}

    def test_histogram_summary(self):
        obs.enable()
        for v in (1.0, 3.0, 2.0):
            obs.observe("lat", v)
        h = obs.histograms_snapshot()["lat"]
        assert h["count"] == 3
        assert h["min"] == 1.0
        assert h["max"] == 3.0
        assert h["mean"] == 2.0

    def test_histogram_merge_dict(self):
        h = Histogram()
        h.observe(2.0)
        h.merge_dict({"count": 2, "total": 10.0, "min": 1.0, "max": 9.0})
        assert h.count == 3
        assert h.total == 12.0
        assert h.minimum == 1.0
        assert h.maximum == 9.0
        h.merge_dict({"count": 0})  # empty payloads are ignored
        assert h.count == 3

    def test_thread_safety_of_counters(self):
        obs.enable()

        def work():
            for _ in range(1000):
                obs.counter_add("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obs.counters_snapshot()["n"] == 4000


class TestSpans:
    def test_span_records_duration_and_fields(self):
        obs.enable()
        with obs.span("outer", key="v"):
            pass
        (event,) = [e for e in obs.recent() if e["kind"] == "span"]
        assert event["name"] == "outer"
        assert event["fields"] == {"key": "v"}
        assert event["dur"] >= 0.0
        assert event["status"] == "ok"
        assert event["parent"] is None

    def test_spans_nest(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        spans = {e["name"]: e for e in obs.recent() if e["kind"] == "span"}
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["depth"] == 0

    def test_span_marks_errors(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("bad"):
                raise ValueError("boom")
        (event,) = [e for e in obs.recent() if e["kind"] == "span"]
        assert event["status"] == "error"

    def test_note_annotates_mid_span(self):
        obs.enable()
        with obs.span("annotated") as sp:
            sp.note(result=42)
        (event,) = [e for e in obs.recent() if e["kind"] == "span"]
        assert event["fields"] == {"result": 42}


class TestRingAndSink:
    def test_ring_is_bounded(self):
        obs.enable(ring_size=8)
        for i in range(20):
            obs.log("info", f"line {i}")
        events = obs.recent()
        assert len(events) == 8
        assert events[-1]["msg"] == "line 19"

    def test_sink_is_jsonl(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        obs.enable(sink_path=str(sink))
        obs.log("info", "hello", n=1)
        with obs.span("s"):
            pass
        obs.counter_add("c", 2)
        obs.flush()
        obs.disable()
        lines = [json.loads(x) for x in sink.read_text().splitlines()]
        kinds = [e["kind"] for e in lines]
        assert "log" in kinds and "span" in kinds and "counters" in kinds
        snap = [e for e in lines if e["kind"] == "counters"][-1]
        assert snap["counters"] == {"c": 2}

    def test_load_events_skips_torn_lines(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        sink.write_text(
            '{"kind": "log", "ts": 1, "level": "info", "msg": "ok"}\n'
            '{"kind": "log", "ts": 2, "lev'  # torn mid-write
        )
        events = obs.load_events(str(sink))
        assert len(events) == 1

    def test_level_filters_logs(self):
        obs.enable(level="warning")
        obs.log("debug", "dropped")
        obs.log("info", "dropped too")
        obs.log("error", "kept")
        assert [e["msg"] for e in obs.recent() if e["kind"] == "log"] == [
            "kept"
        ]


class TestWarnOnce:
    def test_emits_once_per_key(self):
        obs.enable()
        assert obs.warn_once("k", "message") is True
        assert obs.warn_once("k", "message") is False
        logs = [e for e in obs.recent() if e["kind"] == "log"]
        assert len(logs) == 1

    def test_dedupes_even_while_disabled(self):
        assert obs.warn_once("k", "mirror me") is True
        assert obs.warn_once("k", "mirror me") is False
        assert obs.recent() == []  # nothing recorded, only deduped


class TestEnvActivation:
    def test_unset_or_zero_stays_off(self, monkeypatch):
        from repro.obs.core import _activate_from_env

        for raw in ("", "0", "false"):
            monkeypatch.setenv(obs.ENV_SINK, raw)
            _activate_from_env()
            assert not obs.enabled()

    def test_one_enables_ring_only(self, monkeypatch):
        from repro.obs.core import _activate_from_env

        monkeypatch.setenv(obs.ENV_SINK, "1")
        _activate_from_env()
        assert obs.enabled()
        assert STATE.sink_path is None

    def test_path_enables_sink(self, monkeypatch, tmp_path):
        from repro.obs.core import _activate_from_env

        sink = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.ENV_SINK, str(sink))
        monkeypatch.setenv(obs.ENV_LEVEL, "debug")
        _activate_from_env()
        assert obs.enabled()
        assert STATE.sink_path == str(sink)
        obs.log("debug", "visible at debug level")
        assert obs.recent()[-1]["msg"] == "visible at debug level"


class TestReportRendering:
    def _sinked_events(self, tmp_path):
        sink = tmp_path / "obs.jsonl"
        obs.enable(sink_path=str(sink))
        with obs.span("root", run=1):
            with obs.span("child"):
                obs.counter_add("widgets", 7)
                obs.observe("widget.seconds", 0.25)
        obs.log("info", "made widgets")
        obs.flush()
        obs.disable()
        return obs.load_events(str(sink))

    def test_report_renders_counters_spans_and_tree(self, tmp_path):
        text = obs.render_report(self._sinked_events(tmp_path))
        assert "widgets" in text
        assert "widget.seconds" in text
        assert "## spans" in text
        assert "root" in text and "child" in text
        # the tree indents the child under its root
        assert "\n  child" in text

    def test_merge_sums_counters_across_pids(self):
        events = [
            {"kind": "counters", "pid": 1, "counters": {"c": 2},
             "histograms": {}},
            {"kind": "counters", "pid": 1, "counters": {"c": 5},
             "histograms": {}},  # later snapshot from pid 1 wins
            {"kind": "counters", "pid": 2, "counters": {"c": 3},
             "histograms": {}},
        ]
        merged = obs.merge_events(events)
        assert merged["counters"] == {"c": 8}

    def test_tail_formats_each_kind(self, tmp_path):
        text = obs.render_tail(self._sinked_events(tmp_path), n=50)
        assert "span" in text
        assert "made widgets" in text
        assert "counters" in text

    def test_empty_inputs_render_placeholders(self):
        assert "(no events)" in obs.render_tail([])
        assert "(no spans)" in obs.render_span_tree([])
        assert "no counters" in obs.render_report([])
