"""`repro campaign status`: the read-only progress snapshot.

Pure functions first (:func:`campaign_status` / :func:`render_status`
over stores in every lifecycle state), then the CLI front end as a
subprocess — including the spec-mismatch resume bugfix, which must
fail with exit 2 naming both hashes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    campaign_status,
    register_experiment,
    render_status,
)
from repro.campaign.spec import FaultInjection
from repro.campaign.store import JobRecord

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@register_experiment("status_echo")
def _echo(params: dict, seed: int) -> dict:
    return {"value": params.get("x", 0)}


def finished_store(tmp_path, name="st", xs=(1, 2, 3)):
    spec = CampaignSpec(
        name=name,
        experiment="status_echo",
        grid={"x": list(xs)},
        trials=2,
        max_retries=1,
        retry_backoff=0.0,
        inject_failures=FaultInjection(count=1, attempts=1),
    )
    store = ResultStore(tmp_path / name)
    CampaignRunner(spec, store).run()
    return store


class TestCampaignStatus:
    def test_finished_campaign_counts(self, tmp_path):
        store = finished_store(tmp_path)
        status = campaign_status(store)
        assert status["name"] == "st"
        assert status["n_jobs"] == 6
        assert status["recorded"] == 6
        assert status["pending"] == 0
        assert status["by_status"] == {"ok": 6}
        assert status["retried"] == 1  # the injected first-attempt failure
        assert status["finished"] is True
        assert status["wall_seconds"] >= 0.0
        assert status["shards"] == 0
        assert status["spec_hash"] == store.load_manifest()["spec_hash"]

    def test_in_progress_campaign_reports_pending(self, tmp_path):
        store = finished_store(tmp_path)
        # Rewind to mid-run: drop two records and the finished stamp.
        records = list(store.load_records().values())[:-2]
        store.results_path.write_text(
            "".join(json.dumps(r.to_dict()) + "\n" for r in records)
        )
        manifest = store.load_manifest()
        del manifest["finished_at"]
        store.manifest_path.write_text(json.dumps(manifest))
        status = campaign_status(store)
        assert status["recorded"] == 4
        assert status["pending"] == 2
        assert status["finished"] is False
        assert status["wall_seconds"] is not None  # live elapsed time

    def test_unmerged_shard_records_are_counted(self, tmp_path):
        store = finished_store(tmp_path)
        records = list(store.load_records().values())
        # Move one record out of the main log into a worker shard, as a
        # cluster run mid-flight would leave it.
        store.results_path.write_text(
            "".join(json.dumps(r.to_dict()) + "\n" for r in records[:-1])
        )
        shard = store.shard_store("w9")
        shard.root.mkdir(parents=True, exist_ok=True)
        shard.append(records[-1])
        status = campaign_status(store)
        assert status["recorded"] == 6  # shard record folded in
        assert status["pending"] == 0
        assert status["shards"] == 1

    def test_failures_split_out_by_status(self, tmp_path):
        store = finished_store(tmp_path, name="fs")
        records = list(store.load_records().values())
        records[0] = JobRecord(**{**records[0].to_dict()})
        records[0].status = "timeout"
        records[0].metrics = None
        store.results_path.write_text(
            "".join(json.dumps(r.to_dict()) + "\n" for r in records)
        )
        status = campaign_status(store)
        assert status["by_status"] == {"ok": 5, "timeout": 1}


class TestRenderStatus:
    def test_finished_text_block(self, tmp_path):
        text = render_status(campaign_status(finished_store(tmp_path)))
        assert "campaign st (finished)" in text
        assert "6/6 recorded, 0 pending" in text
        assert "6 ok, 0 failed" in text
        assert "1 jobs needed more than one attempt" in text
        assert "shards" not in text  # no shard dirs on a local run

    def test_shard_line_appears_for_cluster_dirs(self, tmp_path):
        store = finished_store(tmp_path)
        shard = store.shard_store("w0")
        shard.root.mkdir(parents=True, exist_ok=True)
        text = render_status(campaign_status(store))
        assert "1 worker shard dirs" in text


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


class TestStatusCli:
    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli-status")
        spec = tmp / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "cli-st",
                    "experiment": "lzw_recovery",
                    "grid": {"size": [30, 40]},
                }
            )
        )
        out = tmp / "run"
        proc = run_cli(
            "campaign", "run", str(spec), "--out", str(out), "--quiet"
        )
        assert proc.returncode == 0, proc.stderr
        return tmp, spec, out

    def test_status_renders_and_exits_zero(self, campaign_dir):
        _, _, out = campaign_dir
        proc = run_cli("campaign", "status", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "campaign cli-st (finished)" in proc.stdout
        assert "2/2 recorded, 0 pending" in proc.stdout

    def test_status_json_is_machine_readable(self, campaign_dir):
        _, _, out = campaign_dir
        proc = run_cli("campaign", "status", str(out), "--json")
        assert proc.returncode == 0, proc.stderr
        status = json.loads(proc.stdout)
        assert status["recorded"] == 2
        assert status["by_status"] == {"ok": 2}

    def test_missing_directory_exits_two(self, tmp_path):
        proc = run_cli("campaign", "status", str(tmp_path / "nope"))
        assert proc.returncode == 2
        assert "no campaign manifest" in proc.stderr

    def test_resume_with_mismatched_spec_names_both_hashes(
        self, campaign_dir, tmp_path
    ):
        """The resume bugfix: a foreign spec against an existing
        directory exits 2 with a message naming both spec hashes."""
        tmp, spec, out = campaign_dir
        original = CampaignSpec.from_json_file(spec)
        other_path = tmp_path / "other.json"
        other_path.write_text(
            json.dumps(
                {
                    "name": "cli-st",
                    "experiment": "lzw_recovery",
                    "grid": {"size": [30, 40, 50]},
                }
            )
        )
        other = CampaignSpec.from_json_file(other_path)
        proc = run_cli(
            "campaign", "run", str(other_path), "--out", str(out),
            "--resume", "--quiet",
        )
        assert proc.returncode == 2
        assert original.spec_hash() in proc.stderr
        assert other.spec_hash() in proc.stderr
        assert "fresh directory" in proc.stderr
