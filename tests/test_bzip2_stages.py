"""Stage-by-stage tests for the Bzip2 pipeline components."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression.bzip2.huffman import (
    HuffmanTable,
    build_code_lengths,
    canonical_codes,
)
from repro.compression.bzip2.mtf import (
    _decode_zero_run,
    _encode_zero_run,
    mtf_rle2_decode,
    mtf_rle2_encode,
)
from repro.compression.bzip2.pipeline import inverse_bwt
from repro.compression.bzip2.rle import rle1_decode, rle1_encode
from repro.exec import NativeContext


def naive_bwt(data: bytes) -> tuple[list[int], int]:
    """Reference BWT by literally sorting all rotations."""
    n = len(data)
    rotations = sorted(range(n), key=lambda i: data[i:] + data[:i])
    last = [data[(p + n - 1) % n] for p in rotations]
    return last, rotations.index(0)


class TestRLE1:
    def _roundtrip(self, data: bytes) -> bytes:
        enc = rle1_encode(list(data), NativeContext())
        return rle1_decode(enc)

    def test_empty(self):
        assert self._roundtrip(b"") == b""

    def test_no_runs(self):
        assert self._roundtrip(b"abcdef") == b"abcdef"

    def test_run_of_three_untouched(self):
        enc = rle1_encode(list(b"aaab"), NativeContext())
        assert bytes(enc) == b"aaab"

    def test_run_of_four_gets_count(self):
        enc = rle1_encode(list(b"aaaa"), NativeContext())
        assert bytes(enc) == b"aaaa\x00"

    def test_run_of_ten(self):
        enc = rle1_encode(list(b"a" * 10), NativeContext())
        assert bytes(enc) == b"aaaa\x06"

    def test_max_run_and_split(self):
        assert self._roundtrip(b"z" * 300) == b"z" * 300

    def test_run_of_byte_255(self):
        # Count byte value collides with the run byte itself.
        assert self._roundtrip(b"\xff" * 300) == b"\xff" * 300

    def test_truncated_run_rejected(self):
        with pytest.raises(ValueError):
            rle1_decode(list(b"aaaa"))  # missing count byte

    @given(st.binary(max_size=600))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, data):
        assert self._roundtrip(data) == data

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 600)), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_runs(self, runs):
        data = b"".join(bytes([b]) * k for b, k in runs)
        assert self._roundtrip(data) == data


class TestZeroRun:
    @pytest.mark.parametrize("run", list(range(1, 50)) + [100, 255, 1000])
    def test_bijective_roundtrip(self, run):
        digits: list[int] = []
        _encode_zero_run(run, digits)
        assert _decode_zero_run(digits) == run

    def test_zero_run_emits_nothing(self):
        digits: list[int] = []
        _encode_zero_run(0, digits)
        assert digits == []


class TestMTF:
    def _roundtrip(self, data: list[int]) -> list[int]:
        symbols, in_use = mtf_rle2_encode(data)
        return mtf_rle2_decode(symbols, in_use)

    def test_empty(self):
        assert self._roundtrip([]) == []

    def test_single_value_run(self):
        assert self._roundtrip([7] * 20) == [7] * 20

    def test_mixed(self):
        data = list(b"banana bandana")
        assert self._roundtrip(data) == data

    def test_missing_eob_rejected(self):
        symbols, in_use = mtf_rle2_encode(list(b"abc"))
        with pytest.raises(ValueError):
            mtf_rle2_decode(symbols[:-1], in_use)

    def test_eob_is_alphabet_size_plus_one(self):
        symbols, in_use = mtf_rle2_encode(list(b"ab"))
        assert symbols[-1] == sum(in_use) + 1

    @given(st.lists(st.integers(0, 255), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert self._roundtrip(data) == data


class TestHuffman:
    def test_two_symbols(self):
        lengths = build_code_lengths([5, 3])
        assert lengths == [1, 1]

    def test_single_symbol_gets_length_one(self):
        assert build_code_lengths([0, 9, 0]) == [0, 1, 0]

    def test_empty(self):
        assert build_code_lengths([0, 0]) == [0, 0]

    def test_kraft_inequality(self):
        freqs = [random.Random(5).randrange(1, 100) for _ in range(40)]
        lengths = build_code_lengths(freqs)
        assert sum(2.0 ** -l for l in lengths if l) <= 1.0 + 1e-9

    def test_length_limit_respected(self):
        # Fibonacci-ish frequencies force deep trees without a limit.
        freqs = [1, 1]
        while len(freqs) < 40:
            freqs.append(freqs[-1] + freqs[-2])
        lengths = build_code_lengths(freqs, max_len=12)
        assert max(lengths) <= 12

    def test_canonical_codes_are_prefix_free(self):
        lengths = build_code_lengths([7, 1, 3, 3, 9, 2])
        codes = canonical_codes(lengths)
        items = [(codes[i], lengths[i]) for i in range(len(lengths)) if lengths[i]]
        for i, (ca, la) in enumerate(items):
            for j, (cb, lb) in enumerate(items):
                if i == j:
                    continue
                if la <= lb:
                    assert (cb >> (lb - la)) != ca

    def test_encode_unused_symbol_rejected(self):
        table = HuffmanTable.from_freqs([3, 0, 5])
        with pytest.raises(ValueError):
            table.encode(MSBBitWriter(), 1)

    @given(st.lists(st.integers(0, 60), min_size=2, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_stream_roundtrip(self, freqs):
        present = [i for i, f in enumerate(freqs) if f > 0]
        if not present:
            return
        table = HuffmanTable.from_freqs(freqs)
        symbols = [s for s in present for _ in range(freqs[s])]
        out = MSBBitWriter()
        for s in symbols:
            table.encode(out, s)
        reader = MSBBitReader(out.getvalue())
        dec = table.decoder()
        assert [dec.decode(reader) for _ in symbols] == symbols

    def test_lengths_serialisation_roundtrip(self):
        table = HuffmanTable.from_freqs([4, 9, 0, 2, 7])
        out = MSBBitWriter()
        table.write_lengths(out)
        back = HuffmanTable.read_lengths(MSBBitReader(out.getvalue()), 5)
        assert back.lengths == table.lengths
        assert back.codes == table.codes


class TestInverseBWT:
    @pytest.mark.parametrize(
        "data",
        [b"BANANA", b"abracadabra", b"aaaa", b"ab", b"x", b"mississippi river"],
    )
    def test_against_naive_forward(self, data):
        last, orig = naive_bwt(data)
        assert bytes(inverse_bwt(last, orig)) == data

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_inverse_property(self, data):
        last, orig = naive_bwt(data)
        assert bytes(inverse_bwt(last, orig)) == data
