"""Runner semantics: retries, timeouts, crash tolerance, resume.

Everything here uses the in-process executor, so the full scheduling,
retry and persistence machinery runs single-process and fast; one
smoke test at the bottom goes through a real ``ProcessPoolExecutor``.
"""

import os
import time
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro import obs
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    InProcessExecutor,
    ResultStore,
    register_experiment,
)
from repro.campaign.spec import FaultInjection


@pytest.fixture(autouse=True)
def clean_obs():
    """warn_once dedupes per process even while disabled; isolate it."""
    obs.reset()
    yield
    obs.reset()

CALLS: list = []


@register_experiment("test_echo")
def _echo(params: dict, seed: int) -> dict:
    """Fast deterministic experiment for runner tests."""
    CALLS.append((tuple(sorted(params.items())), seed))
    return {"value": params.get("x", 0) * 10, "seed_mod": seed % 97}


@register_experiment("test_flaky")
def _flaky(params: dict, seed: int) -> dict:
    """Fails every attempt for x >= threshold."""
    if params.get("x", 0) >= params.get("threshold", 99):
        raise RuntimeError(f"boom x={params['x']}")
    return {"value": params.get("x", 0)}


@register_experiment("test_sleepy")
def _sleepy(params: dict, seed: int) -> dict:
    """Sleeps; used for timeout and wall-clock parallelism tests."""
    time.sleep(params.get("sleep", 0.01))
    return {"slept": params.get("sleep", 0.01)}


def run_spec(spec, tmp_path, resume=False, workers=1, factory=InProcessExecutor):
    store = ResultStore(tmp_path / spec.name)
    runner = CampaignRunner(
        spec, store, workers=workers, executor_factory=factory
    )
    return runner.run(resume=resume), store


class TestHappyPath:
    def test_all_jobs_recorded_ok(self, tmp_path):
        spec = CampaignSpec(
            name="ok", experiment="test_echo", grid={"x": [1, 2, 3]}, trials=2
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 6}
        records = store.load_records()
        assert len(records) == 6
        assert all(r.ok and r.attempts == 1 for r in records.values())
        assert {r.metrics["value"] for r in records.values()} == {10, 20, 30}

    def test_experiment_receives_derived_seed(self, tmp_path):
        CALLS.clear()
        spec = CampaignSpec(
            name="seeds", experiment="test_echo", grid={"x": [1]}, trials=3
        )
        run_spec(spec, tmp_path)
        seeds = [seed for _, seed in CALLS]
        assert len(set(seeds)) == 3
        assert seeds == [job.seed for job in spec.jobs()]


class TestRetries:
    def test_injected_failure_then_retry_succeeds(self, tmp_path):
        spec = CampaignSpec(
            name="retry",
            experiment="test_echo",
            grid={"x": [1, 2, 3, 4]},
            max_retries=2,
            retry_backoff=0.0,
            inject_failures=FaultInjection(count=2, attempts=1),
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 4}
        attempts = sorted(r.attempts for r in store.load_records().values())
        assert attempts == [1, 1, 2, 2]

    def test_permanent_failure_recorded_not_raised(self, tmp_path):
        spec = CampaignSpec(
            name="fail",
            experiment="test_flaky",
            grid={"x": [1, 100]},
            fixed={"threshold": 50},
            max_retries=1,
            retry_backoff=0.0,
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 1, "failed": 1}
        failed = [r for r in store.load_records().values() if not r.ok]
        assert len(failed) == 1
        assert failed[0].attempts == 2  # first try + one retry
        assert "boom x=100" in failed[0].error

    def test_retry_backoff_delays_reattempt(self, tmp_path):
        spec = CampaignSpec(
            name="backoff",
            experiment="test_echo",
            grid={"x": [1]},
            max_retries=1,
            retry_backoff=0.15,
            inject_failures=FaultInjection(count=1, attempts=1),
        )
        start = time.monotonic()
        result, _ = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 1}
        assert time.monotonic() - start >= 0.15


class TestTimeout:
    def test_overrunning_job_is_killed_and_recorded(self, tmp_path):
        spec = CampaignSpec(
            name="timeout",
            experiment="test_sleepy",
            grid={"sleep": [0.01, 5.0]},
            timeout_seconds=0.25,
            max_retries=0,
        )
        start = time.monotonic()
        result, store = run_spec(spec, tmp_path)
        assert time.monotonic() - start < 3.0  # the 5 s job did not run out
        assert result.counts == {"ok": 1, "timeout": 1}
        timed_out = [r for r in store.load_records().values() if not r.ok]
        assert timed_out[0].status == "timeout"
        assert "0.25" in timed_out[0].error


class TestCrashTolerance:
    def test_crashed_worker_recorded_campaign_continues(self, tmp_path):
        spec = CampaignSpec(
            name="crash",
            experiment="test_echo",
            grid={"x": [1, 2, 3]},
            max_retries=0,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 2, "crashed": 1}
        records = store.load_records()
        assert len(records) == 3  # the crash is a record, not an abort

    def test_crash_then_retry_succeeds(self, tmp_path):
        spec = CampaignSpec(
            name="crash-retry",
            experiment="test_echo",
            grid={"x": [1, 2]},
            max_retries=1,
            retry_backoff=0.0,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        result, _ = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 2}


class TestResume:
    def spec(self):
        return CampaignSpec(
            name="resume", experiment="test_echo", grid={"x": [1, 2, 3]}, trials=2
        )

    def test_fresh_directory_rejects_resumeless_rerun(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        with pytest.raises(FileExistsError, match="resume"):
            run_spec(self.spec(), tmp_path)

    def test_resume_skips_completed_jobs(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        CALLS.clear()
        result, _ = run_spec(self.spec(), tmp_path, resume=True)
        assert result.skipped == 6
        assert result.counts == {}
        assert CALLS == []  # nothing re-executed

    def test_resume_runs_only_missing_jobs(self, tmp_path):
        spec = self.spec()
        result, store = run_spec(spec, tmp_path)
        # Simulate an interruption: drop the records of two jobs.
        records = store.load_records()
        keep = list(records)[:-2]
        store.results_path.write_text(
            "".join(
                __import__("json").dumps(records[k].to_dict()) + "\n" for k in keep
            )
        )
        result, store = run_spec(spec, tmp_path, resume=True)
        assert result.skipped == 4
        assert result.counts == {"ok": 2}
        assert len(store.load_records()) == 6

    def test_resume_different_spec_rejected(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        other = CampaignSpec(
            name="resume", experiment="test_echo", grid={"x": [9]}, trials=2
        )
        with pytest.raises(ValueError, match="fresh directory"):
            run_spec(other, tmp_path, resume=True)


class _BreakingExecutor(InProcessExecutor):
    """An executor whose first ``breaks`` submissions come back as a
    broken pool (``BrokenExecutor`` raised at ``result()`` time, like a
    real ``ProcessPoolExecutor`` after a worker dies), with a small
    delay so terminal records have measurable wall clock."""

    def __init__(self, breaks: int = 0, delay: float = 0.0) -> None:
        self.breaks = breaks
        self.delay = delay

    def submit(self, fn, *args, **kwargs) -> Future:
        if self.breaks > 0:
            self.breaks -= 1
            if self.delay:
                time.sleep(self.delay)
            future: Future = Future()
            future.set_exception(BrokenExecutor("worker died"))
            return future
        return super().submit(fn, *args, **kwargs)


class TestBrokenPoolAccounting:
    """The pool-rebuild path must charge a broken-pool job exactly one
    attempt and keep its real wall-clock duration (it used to reset
    ``submitted_at`` to 0.0 right before recording, zeroing every
    crash-terminated job's duration)."""

    def _runner(self, spec, tmp_path, breaks, delay=0.0):
        built = []

        def factory():
            executor = _BreakingExecutor(
                breaks=breaks if not built else 0, delay=delay
            )
            built.append(executor)
            return executor

        store = ResultStore(tmp_path / spec.name)
        return CampaignRunner(spec, store, executor_factory=factory), store, built

    def test_broken_pool_job_charged_exactly_one_attempt(self, tmp_path):
        spec = CampaignSpec(
            name="broke-retry",
            experiment="test_echo",
            grid={"x": [1]},
            max_retries=1,
            retry_backoff=0.0,
        )
        runner, store, built = self._runner(spec, tmp_path, breaks=1)
        result = runner.run()
        assert result.counts == {"ok": 1}
        assert len(built) == 2  # the pool was rebuilt exactly once
        (record,) = store.load_records().values()
        # broken-pool attempt charged once, successful retry second
        assert record.attempts == 2

    def test_terminal_crash_keeps_wall_clock_duration(self, tmp_path):
        spec = CampaignSpec(
            name="broke-terminal",
            experiment="test_echo",
            grid={"x": [1]},
            max_retries=0,
        )
        runner, store, _ = self._runner(spec, tmp_path, breaks=1, delay=0.05)
        result = runner.run()
        assert result.counts == {"crashed": 1}
        (record,) = store.load_records().values()
        assert record.attempts == 1
        assert record.duration_seconds >= 0.04  # not the old hard 0.0

    def test_every_in_flight_job_charged_once_on_rebuild(self, tmp_path):
        spec = CampaignSpec(
            name="broke-flight",
            experiment="test_echo",
            grid={"x": [1, 2]},
            max_retries=1,
            retry_backoff=0.0,
        )
        built = []

        def factory():
            executor = _BreakingExecutor(breaks=2 if not built else 0)
            built.append(executor)
            return executor

        store = ResultStore(tmp_path / spec.name)
        runner = CampaignRunner(
            spec, store, workers=2, executor_factory=factory
        )
        result = runner.run()
        assert result.counts == {"ok": 2}
        assert len(built) == 2
        assert [r.attempts for r in store.load_records().values()] == [2, 2]


class TestTimeoutEnforcement:
    """Per-job budgets silently do nothing without SIGALRM; the runner
    must say so (once) and stamp ``timeout_enforced: false`` on the
    records instead of pretending the budget was live."""

    def _run(self, tmp_path, spec):
        events = []
        store = ResultStore(tmp_path / spec.name)
        runner = CampaignRunner(
            spec,
            store,
            executor_factory=InProcessExecutor,
            on_event=events.append,
        )
        return runner.run(), store, events

    def test_unenforceable_budget_flagged_and_warned_once(
        self, tmp_path, monkeypatch
    ):
        import repro.campaign.executor as executor_mod

        monkeypatch.setattr(executor_mod, "alarm_supported", lambda: False)
        spec = CampaignSpec(
            name="noalarm",
            experiment="test_echo",
            grid={"x": [1, 2, 3]},
            timeout_seconds=5.0,
        )
        result, store, events = self._run(tmp_path, spec)
        assert result.counts == {"ok": 3}
        records = store.load_records().values()
        assert all(r.timeout_enforced is False for r in records)
        warnings = [e for e in events if "cannot be enforced" in e]
        assert len(warnings) == 1  # once per campaign, not per job

    def test_enforceable_budget_stamped_true(self, tmp_path):
        if not hasattr(__import__("signal"), "SIGALRM"):
            pytest.skip("platform has no SIGALRM")
        spec = CampaignSpec(
            name="alarm",
            experiment="test_echo",
            grid={"x": [1]},
            timeout_seconds=5.0,
        )
        result, store, events = self._run(tmp_path, spec)
        (record,) = store.load_records().values()
        assert record.timeout_enforced is True
        assert not any("cannot be enforced" in e for e in events)

    def test_no_budget_means_not_applicable(self, tmp_path):
        spec = CampaignSpec(
            name="nobudget", experiment="test_echo", grid={"x": [1]}
        )
        _, store, _ = self._run(tmp_path, spec)
        (record,) = store.load_records().values()
        assert record.timeout_enforced is None


@register_experiment("test_interrupt_once")
def _interrupt_once(params: dict, seed: int) -> dict:
    """Raises KeyboardInterrupt while the flag file exists (consuming
    it), so a resumed campaign sails through."""
    flag = params.get("flag")
    if params.get("x") == 2 and flag and os.path.exists(flag):
        os.unlink(flag)
        raise KeyboardInterrupt
    return {"value": params.get("x", 0)}


class TestKeyboardInterrupt:
    def test_interrupt_checkpoints_then_resume_completes(self, tmp_path):
        flag = tmp_path / "interrupt.flag"
        flag.write_text("armed")

        def spec():
            return CampaignSpec(
                name="ki",
                experiment="test_interrupt_once",
                grid={"x": [1, 2, 3]},
                fixed={"flag": str(flag)},
            )

        events = []
        store = ResultStore(tmp_path / "ki")
        runner = CampaignRunner(
            spec(),
            store,
            executor_factory=InProcessExecutor,
            on_event=events.append,
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        # The finished job was flushed to the JSONL checkpoint before
        # the interrupt, and the user is pointed at `campaign resume`.
        assert len(store.load_records()) == 1
        assert any("campaign resume" in e for e in events)

        result, store = run_spec(spec(), tmp_path, resume=True)
        assert result.skipped == 1
        assert result.counts == {"ok": 2}
        assert len(store.load_records()) == 3


class TestProcessPool:
    def test_real_pool_end_to_end_with_injected_crash(self, tmp_path):
        """Smoke the default ProcessPoolExecutor path: real workers, a
        real ``os._exit`` crash, pool rebuild, retry, full recovery."""
        spec = CampaignSpec(
            name="pool",
            experiment="lzw_recovery",  # importable by worker processes
            grid={"size": [30, 40]},
            trials=1,
            max_retries=2,
            retry_backoff=0.0,
            timeout_seconds=60,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        store = ResultStore(tmp_path / "pool")
        result = CampaignRunner(spec, store, workers=2).run()
        assert result.counts == {"ok": 2}
        records = store.load_records()
        assert all(r.ok for r in records.values())
        assert max(r.attempts for r in records.values()) >= 2

    def test_parallel_workers_cut_wall_time(self, tmp_path):
        """Scheduler-level parallelism: sleep-bound jobs finish faster
        with 4 workers than with 1 regardless of core count."""
        def spec(name):
            return CampaignSpec(
                name=name,
                experiment="test_sleepy",
                grid={"i": list(range(8))},
                fixed={"sleep": 0.15},
            )

        start = time.monotonic()
        result1, _ = run_spec(spec("w1"), tmp_path, workers=1, factory=None)
        serial = time.monotonic() - start
        start = time.monotonic()
        result4, _ = run_spec(spec("w4"), tmp_path, workers=4, factory=None)
        parallel = time.monotonic() - start
        assert result1.counts == result4.counts == {"ok": 8}
        assert parallel < serial
