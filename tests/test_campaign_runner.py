"""Runner semantics: retries, timeouts, crash tolerance, resume.

Everything here uses the in-process executor, so the full scheduling,
retry and persistence machinery runs single-process and fast; one
smoke test at the bottom goes through a real ``ProcessPoolExecutor``.
"""

import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    InProcessExecutor,
    ResultStore,
    register_experiment,
)
from repro.campaign.spec import FaultInjection

CALLS: list = []


@register_experiment("test_echo")
def _echo(params: dict, seed: int) -> dict:
    """Fast deterministic experiment for runner tests."""
    CALLS.append((tuple(sorted(params.items())), seed))
    return {"value": params.get("x", 0) * 10, "seed_mod": seed % 97}


@register_experiment("test_flaky")
def _flaky(params: dict, seed: int) -> dict:
    """Fails every attempt for x >= threshold."""
    if params.get("x", 0) >= params.get("threshold", 99):
        raise RuntimeError(f"boom x={params['x']}")
    return {"value": params.get("x", 0)}


@register_experiment("test_sleepy")
def _sleepy(params: dict, seed: int) -> dict:
    """Sleeps; used for timeout and wall-clock parallelism tests."""
    time.sleep(params.get("sleep", 0.01))
    return {"slept": params.get("sleep", 0.01)}


def run_spec(spec, tmp_path, resume=False, workers=1, factory=InProcessExecutor):
    store = ResultStore(tmp_path / spec.name)
    runner = CampaignRunner(
        spec, store, workers=workers, executor_factory=factory
    )
    return runner.run(resume=resume), store


class TestHappyPath:
    def test_all_jobs_recorded_ok(self, tmp_path):
        spec = CampaignSpec(
            name="ok", experiment="test_echo", grid={"x": [1, 2, 3]}, trials=2
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 6}
        records = store.load_records()
        assert len(records) == 6
        assert all(r.ok and r.attempts == 1 for r in records.values())
        assert {r.metrics["value"] for r in records.values()} == {10, 20, 30}

    def test_experiment_receives_derived_seed(self, tmp_path):
        CALLS.clear()
        spec = CampaignSpec(
            name="seeds", experiment="test_echo", grid={"x": [1]}, trials=3
        )
        run_spec(spec, tmp_path)
        seeds = [seed for _, seed in CALLS]
        assert len(set(seeds)) == 3
        assert seeds == [job.seed for job in spec.jobs()]


class TestRetries:
    def test_injected_failure_then_retry_succeeds(self, tmp_path):
        spec = CampaignSpec(
            name="retry",
            experiment="test_echo",
            grid={"x": [1, 2, 3, 4]},
            max_retries=2,
            retry_backoff=0.0,
            inject_failures=FaultInjection(count=2, attempts=1),
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 4}
        attempts = sorted(r.attempts for r in store.load_records().values())
        assert attempts == [1, 1, 2, 2]

    def test_permanent_failure_recorded_not_raised(self, tmp_path):
        spec = CampaignSpec(
            name="fail",
            experiment="test_flaky",
            grid={"x": [1, 100]},
            fixed={"threshold": 50},
            max_retries=1,
            retry_backoff=0.0,
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 1, "failed": 1}
        failed = [r for r in store.load_records().values() if not r.ok]
        assert len(failed) == 1
        assert failed[0].attempts == 2  # first try + one retry
        assert "boom x=100" in failed[0].error

    def test_retry_backoff_delays_reattempt(self, tmp_path):
        spec = CampaignSpec(
            name="backoff",
            experiment="test_echo",
            grid={"x": [1]},
            max_retries=1,
            retry_backoff=0.15,
            inject_failures=FaultInjection(count=1, attempts=1),
        )
        start = time.monotonic()
        result, _ = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 1}
        assert time.monotonic() - start >= 0.15


class TestTimeout:
    def test_overrunning_job_is_killed_and_recorded(self, tmp_path):
        spec = CampaignSpec(
            name="timeout",
            experiment="test_sleepy",
            grid={"sleep": [0.01, 5.0]},
            timeout_seconds=0.25,
            max_retries=0,
        )
        start = time.monotonic()
        result, store = run_spec(spec, tmp_path)
        assert time.monotonic() - start < 3.0  # the 5 s job did not run out
        assert result.counts == {"ok": 1, "timeout": 1}
        timed_out = [r for r in store.load_records().values() if not r.ok]
        assert timed_out[0].status == "timeout"
        assert "0.25" in timed_out[0].error


class TestCrashTolerance:
    def test_crashed_worker_recorded_campaign_continues(self, tmp_path):
        spec = CampaignSpec(
            name="crash",
            experiment="test_echo",
            grid={"x": [1, 2, 3]},
            max_retries=0,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        result, store = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 2, "crashed": 1}
        records = store.load_records()
        assert len(records) == 3  # the crash is a record, not an abort

    def test_crash_then_retry_succeeds(self, tmp_path):
        spec = CampaignSpec(
            name="crash-retry",
            experiment="test_echo",
            grid={"x": [1, 2]},
            max_retries=1,
            retry_backoff=0.0,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        result, _ = run_spec(spec, tmp_path)
        assert result.counts == {"ok": 2}


class TestResume:
    def spec(self):
        return CampaignSpec(
            name="resume", experiment="test_echo", grid={"x": [1, 2, 3]}, trials=2
        )

    def test_fresh_directory_rejects_resumeless_rerun(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        with pytest.raises(FileExistsError, match="resume"):
            run_spec(self.spec(), tmp_path)

    def test_resume_skips_completed_jobs(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        CALLS.clear()
        result, _ = run_spec(self.spec(), tmp_path, resume=True)
        assert result.skipped == 6
        assert result.counts == {}
        assert CALLS == []  # nothing re-executed

    def test_resume_runs_only_missing_jobs(self, tmp_path):
        spec = self.spec()
        result, store = run_spec(spec, tmp_path)
        # Simulate an interruption: drop the records of two jobs.
        records = store.load_records()
        keep = list(records)[:-2]
        store.results_path.write_text(
            "".join(
                __import__("json").dumps(records[k].to_dict()) + "\n" for k in keep
            )
        )
        result, store = run_spec(spec, tmp_path, resume=True)
        assert result.skipped == 4
        assert result.counts == {"ok": 2}
        assert len(store.load_records()) == 6

    def test_resume_different_spec_rejected(self, tmp_path):
        run_spec(self.spec(), tmp_path)
        other = CampaignSpec(
            name="resume", experiment="test_echo", grid={"x": [9]}, trials=2
        )
        with pytest.raises(ValueError, match="fresh directory"):
            run_spec(other, tmp_path, resume=True)


class TestProcessPool:
    def test_real_pool_end_to_end_with_injected_crash(self, tmp_path):
        """Smoke the default ProcessPoolExecutor path: real workers, a
        real ``os._exit`` crash, pool rebuild, retry, full recovery."""
        spec = CampaignSpec(
            name="pool",
            experiment="lzw_recovery",  # importable by worker processes
            grid={"size": [30, 40]},
            trials=1,
            max_retries=2,
            retry_backoff=0.0,
            timeout_seconds=60,
            inject_failures=FaultInjection(count=1, attempts=1, mode="crash"),
        )
        store = ResultStore(tmp_path / "pool")
        result = CampaignRunner(spec, store, workers=2).run()
        assert result.counts == {"ok": 2}
        records = store.load_records()
        assert all(r.ok for r in records.values())
        assert max(r.attempts for r in records.values()) >= 2

    def test_parallel_workers_cut_wall_time(self, tmp_path):
        """Scheduler-level parallelism: sleep-bound jobs finish faster
        with 4 workers than with 1 regardless of core count."""
        def spec(name):
            return CampaignSpec(
                name=name,
                experiment="test_sleepy",
                grid={"i": list(range(8))},
                fixed={"sleep": 0.15},
            )

        start = time.monotonic()
        result1, _ = run_spec(spec("w1"), tmp_path, workers=1, factory=None)
        serial = time.monotonic() - start
        start = time.monotonic()
        result4, _ = run_spec(spec("w4"), tmp_path, workers=4, factory=None)
        parallel = time.monotonic() - start
        assert result1.counts == result4.counts == {"ok": 8}
        assert parallel < serial
