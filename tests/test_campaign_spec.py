"""Campaign spec expansion and deterministic seed derivation."""

import json

import pytest

from repro.campaign.spec import CampaignSpec, FaultInjection, derive_seed


def make_spec(**overrides):
    base = dict(
        name="t",
        experiment="e",
        grid={"a": [1, 2], "b": ["x", "y", "z"]},
        trials=2,
        base_seed=5,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestExpansion:
    def test_grid_times_trials(self):
        spec = make_spec()
        jobs = spec.jobs()
        assert len(jobs) == 2 * 3 * 2 == spec.n_jobs()

    def test_every_cell_and_trial_present(self):
        jobs = make_spec().jobs()
        coords = {(j.params_dict()["a"], j.params_dict()["b"], j.trial) for j in jobs}
        assert len(coords) == 12

    def test_fixed_params_merged_into_every_cell(self):
        spec = make_spec(fixed={"c": 9})
        assert all(j.params_dict()["c"] == 9 for j in spec.jobs())

    def test_job_ids_unique(self):
        jobs = make_spec().jobs()
        assert len({j.job_id for j in jobs}) == len(jobs)

    def test_swept_and_fixed_overlap_rejected(self):
        with pytest.raises(ValueError, match="both swept and fixed"):
            make_spec(fixed={"a": 1})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_spec(grid={"a": []})


class TestSeedDerivation:
    def test_same_spec_same_seeds(self):
        assert make_spec().jobs() == make_spec().jobs()

    def test_seed_depends_on_every_coordinate(self):
        base = derive_seed(5, "e", {"a": 1}, 0)
        assert base != derive_seed(6, "e", {"a": 1}, 0)  # base_seed
        assert base != derive_seed(5, "f", {"a": 1}, 0)  # experiment
        assert base != derive_seed(5, "e", {"a": 2}, 0)  # params
        assert base != derive_seed(5, "e", {"a": 1}, 1)  # trial

    def test_seed_independent_of_param_dict_order(self):
        assert derive_seed(0, "e", {"a": 1, "b": 2}, 0) == derive_seed(
            0, "e", {"b": 2, "a": 1}, 0
        )

    def test_adding_an_axis_value_preserves_existing_seeds(self):
        before = {j.job_id: j.seed for j in make_spec().jobs()}
        after = {
            j.job_id: j.seed
            for j in make_spec(grid={"a": [1, 2, 3], "b": ["x", "y", "z"]}).jobs()
        }
        for job_id, seed in before.items():
            assert after[job_id] == seed

    def test_trials_get_distinct_seeds(self):
        jobs = make_spec().jobs()
        by_cell = {}
        for j in jobs:
            by_cell.setdefault(j.params, set()).add(j.seed)
        assert all(len(seeds) == 2 for seeds in by_cell.values())


class TestSerialisation:
    def test_round_trip(self):
        spec = make_spec(
            timeout_seconds=3.5,
            inject_failures=FaultInjection(count=1, mode="crash"),
        )
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_grid(self):
        assert make_spec().spec_hash() != make_spec(trials=3).spec_hash()

    def test_unknown_keys_rejected(self):
        data = make_spec().to_dict()
        data["tmeout_seconds"] = 3  # the typo this guard exists for
        with pytest.raises(ValueError, match="unknown spec keys"):
            CampaignSpec.from_dict(data)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(make_spec().to_dict()))
        assert CampaignSpec.from_json_file(path).jobs() == make_spec().jobs()


class TestFaultInjection:
    def test_applies_to_leading_positions_first_attempt_only(self):
        inject = FaultInjection(count=2, attempts=1)
        jobs = make_spec().jobs()
        assert inject.applies_to(jobs[0], 0, 0)
        assert inject.applies_to(jobs[1], 1, 0)
        assert not inject.applies_to(jobs[2], 2, 0)
        assert not inject.applies_to(jobs[0], 0, 1)  # retry succeeds

    def test_applies_to_named_jobs(self):
        jobs = make_spec().jobs()
        inject = FaultInjection(jobs=[jobs[5].job_id])
        assert inject.applies_to(jobs[5], 5, 0)
        assert not inject.applies_to(jobs[4], 4, 0)
