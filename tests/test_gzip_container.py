"""Tests for CRC-32 and the gzip container."""

import zlib as stdlib_zlib  # cross-check oracle for CRC-32 only

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.crc import crc32
from repro.compression.gzip_container import (
    GzipFormatError,
    gzip_compress,
    gzip_decompress,
    gzip_mtime,
)


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == 0

    def test_known_value(self):
        # The classic check value for CRC-32/ISO-HDLC.
        assert crc32(b"123456789") == 0xCBF43926

    def test_streaming_matches_oneshot(self):
        data = b"stream me in pieces"
        partial = crc32(data[:7])
        assert crc32(data[7:], partial) == crc32(data)

    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_implementation(self, data):
        assert crc32(data) == stdlib_zlib.crc32(data)


class TestGzipContainer:
    def test_roundtrip(self):
        data = b"hello gzip container " * 30
        assert gzip_decompress(gzip_compress(data)) == data

    def test_empty(self):
        assert gzip_decompress(gzip_compress(b"")) == b""

    def test_header_fields(self):
        blob = gzip_compress(b"x", mtime=1234567890)
        assert blob[:2] == b"\x1f\x8b"
        assert blob[2] == 0x08
        assert gzip_mtime(blob) == 1234567890

    def test_bad_magic_rejected(self):
        blob = bytearray(gzip_compress(b"data"))
        blob[0] = 0x00
        with pytest.raises(GzipFormatError, match="magic"):
            gzip_decompress(bytes(blob))

    def test_corrupt_payload_detected_by_crc(self):
        data = b"integrity matters" * 20
        blob = bytearray(gzip_compress(data))
        blob[-8] ^= 0x01  # flip a bit in the stored CRC
        with pytest.raises(GzipFormatError, match="crc"):
            gzip_decompress(bytes(blob))

    def test_length_mismatch_detected(self):
        blob = bytearray(gzip_compress(b"abcdef"))
        blob[-4:] = (99).to_bytes(4, "little")
        with pytest.raises(GzipFormatError, match="length"):
            gzip_decompress(bytes(blob))

    def test_truncated_rejected(self):
        with pytest.raises(GzipFormatError, match="short"):
            gzip_decompress(b"\x1f\x8b\x08")

    def test_unsupported_method_rejected(self):
        blob = bytearray(gzip_compress(b"x"))
        blob[2] = 0x07
        with pytest.raises(GzipFormatError, match="method"):
            gzip_decompress(bytes(blob))

    @given(st.binary(max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert gzip_decompress(gzip_compress(data)) == data

    def test_gadget_still_present_through_container(self):
        """The container changes nothing about the leak."""
        from repro.compression.lz77 import SITE_HEAD
        from repro.exec import TracingContext

        ctx = TracingContext()
        gzip_compress(b"the gadget survives framing", ctx=ctx)
        assert any(a.site == SITE_HEAD for a in ctx.tainted_accesses())
