#!/usr/bin/env python3
"""Generate docs/api.md from the package's docstrings.

Run:  python docs/generate_api.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "(undocumented)"
    return inspect.cleandoc(doc).split("\n\n")[0].replace("\n", " ")


def main() -> None:
    lines = [
        "# API reference",
        "",
        "One-paragraph summaries extracted from docstrings; see the",
        "source for full documentation.  Regenerate with",
        "`python docs/generate_api.py`.",
        "",
    ]
    modules = sorted(
        name
        for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    )
    for name in modules:
        if name.rsplit(".", 1)[-1].startswith("_"):
            continue
        module = importlib.import_module(name)
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(first_paragraph(module.__doc__))
        lines.append("")
        public = [
            (attr_name, attr)
            for attr_name, attr in sorted(vars(module).items())
            if not attr_name.startswith("_")
            and getattr(attr, "__module__", None) == name
            and (inspect.isclass(attr) or inspect.isfunction(attr))
        ]
        for attr_name, attr in public:
            kind = "class" if inspect.isclass(attr) else "def"
            lines.append(f"- **`{kind} {attr_name}`** — {first_paragraph(attr.__doc__)}")
        if public:
            lines.append("")

    out = Path(__file__).parent / "api.md"
    out.write_text("\n".join(lines))
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
