#!/usr/bin/env python3
"""End-to-end Section VI attack: which file is Bzip2 compressing?

The attacker Flush+Reloads the mainSort/fallbackSort code lines of the
shared libbz2 while the victim compresses one of several known files,
then classifies the trace with a small neural network.

Run:  python examples/file_fingerprinting.py
"""

import numpy as np

from repro.classify import (
    MLPClassifier,
    confusion_matrix,
    render_confusion,
    split_dataset,
)
from repro.core.zipchannel.fingerprint import build_dataset
from repro.workloads import english_like


def main() -> None:
    files = {
        "tiny_note.txt": b"meet me at the usual place",
        "report.txt": english_like(6500, seed=1),
        "novel_draft.txt": english_like(26000, seed=2),
        "log_dump.txt": b"GET /index.html 200\n" * 900,
        "backup.tar": english_like(14000, seed=3) + b"\x00" * 4000,
    }
    names = list(files)
    print(f"candidate files: {names}")
    print("capturing Flush+Reload traces of the victim compressing each...")

    x, y, timelines = build_dataset(
        list(files.values()), traces_per_file=40, seed=5
    )
    for name, tl in zip(names, timelines):
        print(
            f"  {name:<18} duration={tl.duration:>8} ticks  "
            f"sorting={'+'.join(tl.paths)}"
        )

    train, val, test = split_dataset(x, y, seed=6)
    clf = MLPClassifier(x.shape[1], len(names), hidden=48, seed=7)
    clf.fit(*train, epochs=60, x_val=val[0], y_val=val[1])

    acc = clf.accuracy(*test)
    print(f"\ntest accuracy: {acc * 100:.1f}%  (chance: {100 / len(names):.0f}%)")
    matrix = confusion_matrix(test[1], clf.predict(test[0]), len(names))
    print(render_confusion(matrix, names))


if __name__ == "__main__":
    main()
