"""Demo: a fault-tolerant, resumable campaign over the LZW recovery.

Sweeps channel noise × input size over the Section IV-C Ncompress
recovery (24 jobs: 4 noise levels × 3 sizes × 2 trials).  The same
campaign is what
``python -m repro campaign run examples/specs/lzw_noise_sweep.json``
runs; here we drive the Python API directly and print the report.

Interrupt it and run again — completed jobs are skipped on resume.
To watch the retry machinery survive deliberately injected failures,
run ``specs/lzw_fault_drill.json`` instead (pass ``--drill``).
"""

import pathlib
import sys

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, render_report

SPECS = pathlib.Path(__file__).parent / "specs"


def main() -> int:
    name = (
        "lzw_fault_drill.json"
        if "--drill" in sys.argv[1:]
        else "lzw_noise_sweep.json"
    )
    spec = CampaignSpec.from_json_file(SPECS / name)
    store = ResultStore(f"runs/{spec.name}")
    runner = CampaignRunner(spec, store, workers=4, on_event=print)
    result = runner.run(resume=store.exists())
    print()
    print(result.summary())
    print()
    print(render_report(store))
    return 0


if __name__ == "__main__":
    sys.exit(main())
