#!/usr/bin/env python3
"""The Section IV survey: recover plaintext from cache-line traces.

For each of the three compression families, compress a secret under the
tracing context, reduce the gadget's accesses to what a cache attacker
sees (addresses with the low 6 bits masked), and run the corresponding
recovery algorithm from :mod:`repro.recovery`.

Run:  python examples/survey_recovery.py
"""

from repro.compression.bzip2.blocksort import histogram
from repro.compression.lz77 import SITE_HEAD, deflate_compress
from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY, lzw_compress
from repro.exec import TracingContext
from repro.recovery import observed_lines, recover_lzw_input
from repro.recovery.bzip2_recover import (
    observations_from_lines,
    recover_bzip2_block,
)
from repro.recovery.zlib_recover import accuracy, recover_known_high_bits


def zlib_demo() -> None:
    secret = b"attack at dawn bring the zip files and the cache maps"
    print(f"[zlib]   secret: {secret.decode()}")
    ctx = TracingContext()
    deflate_compress(secret, ctx=ctx)
    lines = observed_lines(ctx, SITE_HEAD, kind="write")
    recovered = recover_known_high_bits(
        lines, ctx.arrays["head"].base, len(secret)
    )
    text = "".join(chr(b) if b is not None else "?" for b in recovered)
    print(f"[zlib]   recovered ({accuracy(recovered, secret) * 100:.0f}%): {text}")


def lzw_demo() -> None:
    secret = b"the dictionary remembers everything you compressed"
    print(f"[lzw]    secret: {secret.decode()}")
    ctx = TracingContext()
    lzw_compress(secret, ctx=ctx)
    lines = [
        a.address >> 6
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]
    candidates = recover_lzw_input(lines, ctx.arrays["htab"].base, len(secret))
    print(f"[lzw]    {len(candidates)} feasible candidate(s):")
    for cand in candidates:
        marker = "  <-- exact" if cand == secret else ""
        print(f"[lzw]      {cand.decode(errors='replace')}{marker}")


def bzip2_demo() -> None:
    secret = b"histograms of byte pairs are two bytes of leak per access"
    print(f"[bzip2]  secret: {secret.decode()}")
    ctx = TracingContext()
    block = ctx.array("block", len(secret))
    for i, v in enumerate(ctx.input_bytes(secret)):
        block.set(i, v)
    histogram(ctx, block, len(secret))
    from repro.compression.bzip2 import SITE_FTAB

    obs = observations_from_lines(
        observed_lines(ctx, SITE_FTAB), len(secret)
    )
    rec = recover_bzip2_block(obs, ctx.arrays["ftab"].base, len(secret))
    print(
        f"[bzip2]  recovered ({rec.byte_accuracy(secret) * 100:.0f}%): "
        + bytes(rec.values).decode(errors="replace")
    )


if __name__ == "__main__":
    zlib_demo()
    print()
    lzw_demo()
    print()
    bzip2_demo()
