#!/usr/bin/env python3
"""End-to-end Section V attack: leak a buffer out of an SGX enclave.

The victim compresses a secret with Bzip2 inside the (simulated)
enclave; the attacker single-steps the ftab histogram loop with
mprotect, primes and probes the faulting page's cache lines under a CAT
partition, and reconstructs the secret from the observed lines.

Run:  python examples/sgx_extraction.py
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.workloads import random_bytes


def hexdump_row(data: bytes, offset: int) -> str:
    chunk = data[offset : offset + 16]
    hexpart = " ".join(f"{b:02x}" for b in chunk)
    ascii_part = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
    return f"{offset:06x}  {hexpart:<47}  {ascii_part}"


def main() -> None:
    secret = random_bytes(2048, seed=1234)
    print(f"victim secret: {len(secret)} bytes of random data (hardest case)")
    print("running the attack (single-step + CAT + frame selection)...\n")

    attack = SgxBzip2Attack(secret, AttackConfig())
    outcome = attack.run()

    recovered = bytes(outcome.recovered.values)
    print(outcome.summary())
    print(
        f"empty observations: {outcome.observations_empty}, "
        f"ambiguous: {outcome.observations_ambiguous}\n"
    )

    print("secret (first 4 rows)          vs recovered")
    for off in range(0, 64, 16):
        print(hexdump_row(secret, off))
        print(hexdump_row(recovered, off))
        print()

    wrong = [i for i, (a, b) in enumerate(zip(secret, recovered)) if a != b]
    if wrong:
        print(f"byte errors at offsets: {wrong[:20]}")
    else:
        print("recovered buffer is byte-exact.")


if __name__ == "__main__":
    main()
