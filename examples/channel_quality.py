#!/usr/bin/env python3
"""Channel-quality diagnostics end to end: capture, meter, gate.

Captures a survey sweep into a trace store, meters per-gadget leakage
(mutual information + per-bit heatmaps) from the *stored* traces,
checks that a live re-run agrees bit-exactly, probes the physical
channel's health, and finishes with a drift-gate drill: the same
metrics pass against themselves and fail once the cache noise is
bumped.

Run:  python examples/channel_quality.py
"""

import tempfile
from pathlib import Path

from repro.diag import (
    baseline_payload,
    collect_diag_metrics,
    compare_diag,
    render_channel_health,
    render_survey_leakage,
    survey_leakage,
    survey_leakage_from_store,
)
from repro.diag.channel import channel_health
from repro.traces.capture import capture_survey_traces
from repro.traces.store import TraceStore

SIZE = 120
SEED = 7


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="channel_quality_"))
    store = TraceStore(workdir / "survey.trstore")
    print(f"capturing survey traces (size={SIZE}, seed={SEED}) "
          f"into {store.root} ...\n")
    capture_survey_traces(store, size=SIZE, seed=SEED)

    stored = survey_leakage_from_store(store, SIZE, SEED)
    print("# leakage, metered from the stored traces\n")
    print(render_survey_leakage(stored))

    live = survey_leakage(SIZE, SEED)
    agree = all(
        live[t].to_dict() == stored[t].to_dict() for t in stored
    )
    print(f"\nlive re-run agrees bit-exactly with the stored traces: "
          f"{agree}")

    print("\n" + render_channel_health(
        channel_health(samples=800, n_targets=2, step_n=24)
    ))

    print("\n# drift-gate drill\n")
    params = dict(size=60, samples=400, n_targets=2, step_n=16)
    baseline = baseline_payload(collect_diag_metrics(**params), params)
    clean = compare_diag(collect_diag_metrics(**params), baseline)
    print(f"against itself: {clean.summary().splitlines()[-1]}")
    noisy = compare_diag(
        collect_diag_metrics(noise_sigma=30.0, **params), baseline
    )
    print(f"with noise_sigma bumped to 30: "
          f"{noisy.summary().splitlines()[-1]}")
    for row in noisy.regressions[:4]:
        print(f"  {row.name}: {row.baseline:.4g} -> {row.current:.4g}")


if __name__ == "__main__":
    main()
