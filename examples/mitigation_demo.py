#!/usr/bin/env python3
"""Section VIII: what constant-access compression buys, and what it costs.

Runs the full Section V extraction twice — against the vulnerable
Listing 3 histogram and against the oblivious-access hardened variant —
and prints the security/performance trade-off.

Run:  python examples/mitigation_demo.py
"""

from repro.core.zipchannel import AttackConfig, SgxBzip2Attack
from repro.mitigations import oblivious_histogram
from repro.workloads import random_bytes


def main() -> None:
    secret = random_bytes(150, seed=77)
    print(f"secret: {len(secret)} bytes of random data\n")

    print("1) attacking the vulnerable histogram (Listing 3)...")
    vulnerable = SgxBzip2Attack(secret, AttackConfig()).run()
    print(f"   {vulnerable.summary()}")

    print("\n2) attacking the oblivious-access histogram (Section VIII)...")
    hardened = SgxBzip2Attack(
        secret, AttackConfig(), victim_histogram=oblivious_histogram
    ).run()
    print(f"   {hardened.summary()}")

    overhead = hardened.victim_accesses / vulnerable.victim_accesses
    print("\nsummary:")
    print(
        f"  byte accuracy: {vulnerable.byte_accuracy * 100:.1f}% -> "
        f"{hardened.byte_accuracy * 100:.1f}%"
    )
    print(
        f"  bit accuracy:  {vulnerable.bit_accuracy * 100:.1f}% -> "
        f"{hardened.bit_accuracy * 100:.1f}% (coin flip = 50%)"
    )
    print(
        f"  victim memory traffic: {overhead:,.0f}x — the price of the "
        f"defence,\n  and why 'disabling compression' remains the only "
        f"deployed complete fix."
    )


if __name__ == "__main__":
    main()
