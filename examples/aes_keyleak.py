#!/usr/bin/env python3
"""From detection to exploitation on AES (the Osvik et al. validation).

TaintChannel flags the T-table lookups as taint-dependent dereferences;
this demo closes the loop by using the same cache-line observations to
recover the top nibble of every AES-128 key byte (64 of 128 bits) from
known plaintexts.

Run:  python examples/aes_keyleak.py
"""

import random

from repro.core.taintchannel import TaintChannel
from repro.crypto.aes import aes128_encrypt_block
from repro.crypto.aes_attack import (
    capture_round1_lines,
    recover_high_nibbles,
    recovered_key_mask,
)


def main() -> None:
    rng = random.Random(2024)
    key = bytes(rng.randrange(256) for _ in range(16))
    print(f"victim key (secret): {key.hex()}")

    # Step 1: detection — TaintChannel finds the gadget.
    tc = TaintChannel()
    result = tc.analyze(
        "aes-ttable",
        lambda ctx: aes128_encrypt_block(key, bytes(16), ctx),
    )
    te_gadgets = [g for g in result.gadgets if g.array.startswith("Te")]
    print(
        f"TaintChannel: {len(te_gadgets)} T-table gadgets, "
        f"{sum(g.count for g in te_gadgets)} key/plaintext-dependent lookups"
    )

    # Step 2: exploitation — observe round-1 lines for known plaintexts.
    plaintexts = [
        bytes(rng.randrange(256) for _ in range(16)) for _ in range(4)
    ]
    observed = [capture_round1_lines(key, pt) for pt in plaintexts]
    candidates = recover_high_nibbles(plaintexts, observed)
    partial, mask = recovered_key_mask(candidates)

    print(f"recovered key nibbles: {partial.hex()}")
    print(f"known-bit mask:        {mask.hex()}")
    correct = all(
        partial[p] == key[p] & mask[p] for p in range(16)
    )
    known_bits = sum(bin(m).count("1") for m in mask)
    print(f"-> {known_bits}/128 key bits recovered, correct: {correct}")


if __name__ == "__main__":
    main()
