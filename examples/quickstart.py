#!/usr/bin/env python3
"""Quickstart: run TaintChannel on compression software.

This reproduces the paper's core workflow in a minute: point the tool at
an (instrumented) compressor, get back the leakage gadgets with the exact
input-to-pointer computation and the bit-level taint map of Fig. 2.

Run:  python examples/quickstart.py
"""

from repro.compression import bzip2_compress, deflate_compress, lzw_compress
from repro.core.taintchannel import TaintChannel
from repro.workloads import english_like


def main() -> None:
    data = english_like(1200, seed=1)
    tc = TaintChannel()

    targets = {
        "Gzip/Zlib (LZ77)": lambda ctx: deflate_compress(data, ctx),
        "Ncompress (LZ78/LZW)": lambda ctx: lzw_compress(data, ctx),
        "Bzip2 (BWT)": lambda ctx: bzip2_compress(
            data, ctx, block_size=len(data)
        ),
    }

    for name, target in targets.items():
        print("=" * 72)
        result = tc.analyze(name, target)
        print(result.summary())
        # Show the Fig. 2-style report for the busiest gadget.
        gadget = max(result.gadgets, key=lambda g: g.count)
        print()
        print(tc.render(result, gadget, with_slice=True, sample_index=5))
        print()

    print("=" * 72)
    print(
        "All three families leak input-dependent addresses; see\n"
        "examples/survey_recovery.py for turning those traces back into\n"
        "plaintext, and examples/sgx_extraction.py for the end-to-end\n"
        "Prime+Probe attack."
    )


if __name__ == "__main__":
    main()
