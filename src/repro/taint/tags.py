"""Taint tags: compact identifiers for taint sources.

TaintChannel "assigns a sequential index for each input byte, i.e., the
first byte read with the system call read would be #1, the second would be
#2 etc." (Section III-B).  A tag here is a plain ``int`` for speed; the
:class:`TagRegistry` maps each tag back to a human-readable description of
the input byte it stands for.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TagInfo:
    """Description of a single taint source.

    Attributes:
        source: name of the input stream (e.g. ``"input"``, ``"key"``).
        index: zero-based byte offset within that stream.
    """

    source: str
    index: int

    def __str__(self) -> str:
        if self.source == "input":
            return str(self.index)
        return f"{self.source}[{self.index}]"


class TagRegistry:
    """Allocates integer tags and remembers what each one means.

    One registry instance belongs to one traced execution; tags from
    different registries must never be mixed.
    """

    def __init__(self) -> None:
        self._infos: list[TagInfo] = []
        self._by_info: dict[TagInfo, int] = {}

    def __len__(self) -> int:
        return len(self._infos)

    def new_tag(self, source: str, index: int) -> int:
        """Return the tag for byte ``index`` of ``source``, allocating it
        on first use so repeated reads of the same byte share a tag."""
        info = TagInfo(source, index)
        existing = self._by_info.get(info)
        if existing is not None:
            return existing
        tag = len(self._infos)
        self._infos.append(info)
        self._by_info[info] = tag
        return tag

    def info(self, tag: int) -> TagInfo:
        """Look up the :class:`TagInfo` behind an integer tag."""
        return self._infos[tag]

    def label(self, tag: int) -> str:
        """Human-readable label for a tag (the input byte index, as in the
        left-hand column of the paper's Fig. 2 ASCII art)."""
        return str(self._infos[tag])
