"""Bit-precise taint-tracking algebra.

This package is the foundation of the TaintChannel reproduction: it provides
taint *tags* (one per input byte), *bit-level taint sets* attached to integer
values, and a :class:`TaintedInt` wrapper whose operator overloads implement
the same direct-data-flow propagation rules the paper describes in
Section III (xor/or merge per bit, ``and`` with a constant masks taint to the
constant's set bits, shifts translate taint positionally, and so on).

Taint never propagates through control flow: comparing a tainted value
produces a plain :class:`bool` (the comparison itself is *recorded* so that
control-flow gadgets can be discovered, but the branch outcome carries no
taint) — mirroring the paper's ``if (x<5) cnt++`` example where ``cnt``
stays untainted.
"""

from repro.taint.tags import TagInfo, TagRegistry
from repro.taint.bittaint import BitTaint
from repro.taint.value import TaintedInt, value_of, taint_of

__all__ = [
    "TagInfo",
    "TagRegistry",
    "BitTaint",
    "TaintedInt",
    "value_of",
    "taint_of",
]
