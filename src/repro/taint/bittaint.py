"""Bit-level taint sets.

A :class:`BitTaint` records, for every bit position of a value, the set of
taint tags that influence that bit.  This is the representation behind the
ASCII-art maps in the paper's Figs. 2-4, where e.g. "bits 6-13 are tainted
with information from input byte 5751".

The propagation rules follow Section III-B of the paper:

* ``xor``/``or`` of two values merges the taint of the sources per bit
  ("each bit can hold an arbitrary number of taint tags").
* ``and`` with an untainted mask keeps taint "only at the locations where
  the untainted values were 1".
* Shifts translate taint "the same number of bits as the instruction
  itself".
* Addition is propagated *positionally* by default (per-bit union, like
  ``or``): this matches the positional bit maps TaintChannel prints for
  pointer arithmetic such as ``head + ins_h<<1`` (Fig. 2).  A conservative
  carry-aware mode (each result bit additionally tainted by all lower
  operand bits) is available for analyses that prefer over- to
  under-approximation.

Instances are immutable by convention: every operation returns a new
``BitTaint`` and never mutates ``self._bits``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

_EMPTY_SET: frozenset[int] = frozenset()


class BitTaint:
    """Sparse map from bit position to the ``frozenset`` of tags on it."""

    __slots__ = ("_bits",)

    def __init__(self, bits: dict[int, frozenset[int]] | None = None) -> None:
        self._bits = bits or {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "BitTaint":
        """Taint of an untainted value."""
        return _EMPTY

    @classmethod
    def byte(cls, tag: int, lo_bit: int = 0) -> "BitTaint":
        """Taint of a freshly-read input byte: ``tag`` on 8 consecutive
        bits starting at ``lo_bit``."""
        tags = frozenset((tag,))
        return cls({bit: tags for bit in range(lo_bit, lo_bit + 8)})

    @classmethod
    def of_bits(cls, tag: int, bits: Iterable[int]) -> "BitTaint":
        """Taint ``tag`` on an explicit collection of bit positions."""
        tags = frozenset((tag,))
        return cls({bit: tags for bit in bits})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self._bits

    def __bool__(self) -> bool:
        return bool(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitTaint):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(frozenset(self._bits.items()))

    def __iter__(self) -> Iterator[tuple[int, frozenset[int]]]:
        return iter(sorted(self._bits.items()))

    def at(self, bit: int) -> frozenset[int]:
        """Tags on a single bit position."""
        return self._bits.get(bit, _EMPTY_SET)

    def tainted_bits(self) -> list[int]:
        """Sorted list of bit positions that carry any taint."""
        return sorted(self._bits)

    def tags(self) -> frozenset[int]:
        """Union of the tags over all bits."""
        out: set[int] = set()
        for tags in self._bits.values():
            out |= tags
        return frozenset(out)

    def bits_of_tag(self, tag: int) -> list[int]:
        """Bit positions carrying a specific tag (one row of the ASCII
        art in Fig. 2)."""
        return sorted(bit for bit, tags in self._bits.items() if tag in tags)

    # ------------------------------------------------------------------
    # Propagation rules
    # ------------------------------------------------------------------
    def union(self, other: "BitTaint") -> "BitTaint":
        """Per-bit union: the rule for ``xor``, ``or`` and positional
        ``add``/``sub``."""
        if not other._bits:
            return self
        if not self._bits:
            return other
        bits = dict(self._bits)
        for bit, tags in other._bits.items():
            mine = bits.get(bit)
            bits[bit] = tags if mine is None else mine | tags
        return BitTaint(bits)

    def shifted(self, amount: int) -> "BitTaint":
        """Translate every tainted bit by ``amount`` (negative = right
        shift); bits shifted below position 0 disappear."""
        if amount == 0 or not self._bits:
            return self
        bits = {
            bit + amount: tags
            for bit, tags in self._bits.items()
            if bit + amount >= 0
        }
        return BitTaint(bits)

    def masked(self, mask: int) -> "BitTaint":
        """``and`` with an untainted constant: keep taint only where the
        constant has a 1 bit."""
        if not self._bits:
            return self
        bits = {bit: tags for bit, tags in self._bits.items() if (mask >> bit) & 1}
        return BitTaint(bits)

    def truncated(self, width: int) -> "BitTaint":
        """Drop taint on bits at or above ``width`` (register narrowing,
        e.g. using ``al`` out of ``rax``)."""
        if not self._bits:
            return self
        bits = {bit: tags for bit, tags in self._bits.items() if bit < width}
        return BitTaint(bits)

    def smeared(self, width: int) -> "BitTaint":
        """Conservative rule for multiplication/division by a tainted or
        non-power-of-two value: every bit from the lowest tainted bit up to
        ``width - 1`` receives the union of all tags."""
        if not self._bits:
            return self
        lo = min(self._bits)
        tags = self.tags()
        return BitTaint({bit: tags for bit in range(lo, width)})

    def carry_extended(self, width: int) -> "BitTaint":
        """Conservative carry-aware add: each bit additionally receives
        the tags of every lower tainted bit."""
        if not self._bits:
            return self
        bits: dict[int, frozenset[int]] = {}
        running: set[int] = set()
        for bit in range(min(self._bits), width):
            running |= self._bits.get(bit, _EMPTY_SET)
            if running:
                bits[bit] = frozenset(running)
        return BitTaint(bits)

    def sign_extended(self, from_width: int, to_width: int) -> "BitTaint":
        """Replicate the sign bit's taint into the widened bits
        (arithmetic right shift / ``movsx``)."""
        sign = self._bits.get(from_width - 1)
        if sign is None or to_width <= from_width:
            return self.truncated(to_width)
        bits = {bit: tags for bit, tags in self._bits.items() if bit < from_width}
        for bit in range(from_width, to_width):
            bits[bit] = sign
        return BitTaint(bits)

    # ------------------------------------------------------------------
    # Rendering helpers
    # ------------------------------------------------------------------
    def rows(self) -> dict[int, list[int]]:
        """``{tag: [bit, ...]}`` — the data behind one ASCII-art block."""
        out: dict[int, list[int]] = {}
        for bit, tags in self._bits.items():
            for tag in tags:
                out.setdefault(tag, []).append(bit)
        for bits in out.values():
            bits.sort()
        return out

    def __repr__(self) -> str:
        if not self._bits:
            return "BitTaint()"
        parts = []
        for tag, bits in sorted(self.rows().items()):
            parts.append(f"{tag}:{_span(bits)}")
        return f"BitTaint({', '.join(parts)})"


def _span(bits: list[int]) -> str:
    """Render a sorted bit list compactly, e.g. ``[1-8,11]``."""
    runs: list[str] = []
    start = prev = bits[0]
    for bit in bits[1:]:
        if bit == prev + 1:
            prev = bit
            continue
        runs.append(str(start) if start == prev else f"{start}-{prev}")
        start = prev = bit
    runs.append(str(start) if start == prev else f"{start}-{prev}")
    return "[" + ",".join(runs) + "]"


_EMPTY = BitTaint()
