"""Bit-level taint sets.

A :class:`BitTaint` records, for every bit position of a value, the set of
taint tags that influence that bit.  This is the representation behind the
ASCII-art maps in the paper's Figs. 2-4, where e.g. "bits 6-13 are tainted
with information from input byte 5751".

The propagation rules follow Section III-B of the paper:

* ``xor``/``or`` of two values merges the taint of the sources per bit
  ("each bit can hold an arbitrary number of taint tags").
* ``and`` with an untainted mask keeps taint "only at the locations where
  the untainted values were 1".
* Shifts translate taint "the same number of bits as the instruction
  itself".
* Addition is propagated *positionally* by default (per-bit union, like
  ``or``): this matches the positional bit maps TaintChannel prints for
  pointer arithmetic such as ``head + ins_h<<1`` (Fig. 2).  A conservative
  carry-aware mode (each result bit additionally tainted by all lower
  operand bits) is available for analyses that prefer over- to
  under-approximation.

Instances are immutable by convention: every operation returns a new
``BitTaint`` and never mutates observable state.

Two representation tricks keep the algebra cheap without changing any
observable behaviour:

* **Tag-set interning** — identical tag ``frozenset``s are pooled via
  :func:`intern_tags`, so the overwhelmingly common sets (one tag per
  input byte, and the handful of unions a kernel actually produces) are
  shared objects, which makes equality checks identity hits and keeps a
  trace's memory footprint flat.
* **Run compression** — a freshly-read input byte taints 8 contiguous
  bits with one tag, and shifts/truncations/unions of such values keep
  that shape.  A ``BitTaint`` whose map is "contiguous bits [lo, hi),
  same tags" stores just ``(lo, hi, tags)`` and applies propagation
  rules as interval arithmetic; the per-bit dict is materialised lazily
  only when an operation (or a consumer iterating bits) needs it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

_EMPTY_SET: frozenset[int] = frozenset()

# The global tag-set pool.  Never trimmed: distinct tag combinations are
# bounded by what the traced kernel actually computes, which is tiny
# compared to the number of BitTaint instances sharing them.
_TAG_POOL: dict[frozenset[int], frozenset[int]] = {}


def intern_tags(tags: frozenset[int]) -> frozenset[int]:
    """The pooled instance of a tag frozenset (adds it if new)."""
    pooled = _TAG_POOL.get(tags)
    if pooled is None:
        pooled = _TAG_POOL[tags] = tags
    return pooled


class BitTaint:
    """Sparse map from bit position to the ``frozenset`` of tags on it.

    Internally either a dict ``_bits`` or a run ``_run = (lo, hi, tags)``
    meaning every bit in ``[lo, hi)`` carries exactly ``tags``; the dict
    is materialised from the run on demand.  Runs are canonical: always
    non-empty (``lo < hi``, ``tags`` non-empty), so two run-backed
    instances are equal iff their run triples are.
    """

    __slots__ = ("_bits", "_run")

    def __init__(self, bits: dict[int, frozenset[int]] | None = None) -> None:
        self._bits = bits or {}
        self._run: Optional[tuple[int, int, frozenset[int]]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _make_run(cls, lo: int, hi: int, tags: frozenset[int]) -> "BitTaint":
        """Run-backed instance; degenerate ranges collapse to empty."""
        if lo >= hi or not tags:
            return _EMPTY
        obj = cls.__new__(cls)
        obj._bits = None
        obj._run = (lo, hi, tags)
        return obj

    @classmethod
    def empty(cls) -> "BitTaint":
        """Taint of an untainted value."""
        return _EMPTY

    @classmethod
    def byte(cls, tag: int, lo_bit: int = 0) -> "BitTaint":
        """Taint of a freshly-read input byte: ``tag`` on 8 consecutive
        bits starting at ``lo_bit``."""
        return cls._make_run(lo_bit, lo_bit + 8, intern_tags(frozenset((tag,))))

    @classmethod
    def of_bits(cls, tag: int, bits: Iterable[int]) -> "BitTaint":
        """Taint ``tag`` on an explicit collection of bit positions."""
        positions = sorted(set(bits))
        if not positions:
            return _EMPTY
        tags = intern_tags(frozenset((tag,)))
        lo, hi = positions[0], positions[-1] + 1
        if len(positions) == hi - lo:
            return cls._make_run(lo, hi, tags)
        return cls({bit: tags for bit in positions})

    # ------------------------------------------------------------------
    # Representation plumbing
    # ------------------------------------------------------------------
    def _dict(self) -> dict[int, frozenset[int]]:
        """The per-bit map, materialising a run lazily (cached)."""
        bits = self._bits
        if bits is None:
            lo, hi, tags = self._run
            bits = self._bits = {bit: tags for bit in range(lo, hi)}
        return bits

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self._run is None and not self._bits

    def __bool__(self) -> bool:
        return self._run is not None or bool(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitTaint):
            return NotImplemented
        run_a, run_b = self._run, other._run
        if run_a is not None and run_b is not None:
            return run_a == run_b
        return self._dict() == other._dict()

    def __hash__(self) -> int:
        return hash(frozenset(self._dict().items()))

    def __iter__(self) -> Iterator[tuple[int, frozenset[int]]]:
        run = self._run
        if run is not None:
            lo, hi, tags = run
            return iter([(bit, tags) for bit in range(lo, hi)])
        return iter(sorted(self._bits.items()))

    def at(self, bit: int) -> frozenset[int]:
        """Tags on a single bit position."""
        run = self._run
        if run is not None:
            lo, hi, tags = run
            return tags if lo <= bit < hi else _EMPTY_SET
        return self._bits.get(bit, _EMPTY_SET)

    def tainted_bits(self) -> list[int]:
        """Sorted list of bit positions that carry any taint."""
        run = self._run
        if run is not None:
            return list(range(run[0], run[1]))
        return sorted(self._bits)

    def tags(self) -> frozenset[int]:
        """Union of the tags over all bits."""
        run = self._run
        if run is not None:
            return run[2]
        out: set[int] = set()
        for tags in self._bits.values():
            out |= tags
        return intern_tags(frozenset(out))

    def bits_of_tag(self, tag: int) -> list[int]:
        """Bit positions carrying a specific tag (one row of the ASCII
        art in Fig. 2)."""
        run = self._run
        if run is not None:
            return list(range(run[0], run[1])) if tag in run[2] else []
        return sorted(bit for bit, tags in self._bits.items() if tag in tags)

    # ------------------------------------------------------------------
    # Propagation rules
    # ------------------------------------------------------------------
    def union(self, other: "BitTaint") -> "BitTaint":
        """Per-bit union: the rule for ``xor``, ``or`` and positional
        ``add``/``sub``."""
        if other._run is None and not other._bits:
            return self
        if self._run is None and not self._bits:
            return other
        run_a, run_b = self._run, other._run
        if run_a is not None and run_b is not None:
            lo_a, hi_a, tags_a = run_a
            lo_b, hi_b, tags_b = run_b
            if tags_a is tags_b or tags_a == tags_b:
                # Same tags and overlapping/adjacent ranges: one run.
                if lo_a <= hi_b and lo_b <= hi_a:
                    return BitTaint._make_run(
                        min(lo_a, lo_b), max(hi_a, hi_b), tags_a
                    )
            elif lo_a == lo_b and hi_a == hi_b:
                return BitTaint._make_run(
                    lo_a, hi_a, intern_tags(tags_a | tags_b)
                )
        bits = dict(self._dict())
        for bit, tags in other._dict().items():
            mine = bits.get(bit)
            if mine is None or mine is tags:
                bits[bit] = tags
            else:
                bits[bit] = intern_tags(mine | tags)
        return BitTaint(bits)

    def shifted(self, amount: int) -> "BitTaint":
        """Translate every tainted bit by ``amount`` (negative = right
        shift); bits shifted below position 0 disappear."""
        if amount == 0 or (self._run is None and not self._bits):
            return self
        run = self._run
        if run is not None:
            lo, hi, tags = run
            return BitTaint._make_run(max(lo + amount, 0), hi + amount, tags)
        bits = {
            bit + amount: tags
            for bit, tags in self._bits.items()
            if bit + amount >= 0
        }
        return BitTaint(bits)

    def masked(self, mask: int) -> "BitTaint":
        """``and`` with an untainted constant: keep taint only where the
        constant has a 1 bit."""
        if self._run is None and not self._bits:
            return self
        run = self._run
        if run is not None:
            lo, hi, tags = run
            segment = (1 << hi) - (1 << lo)
            overlap = mask & segment
            if overlap == segment:
                return self
            if overlap == 0:
                return _EMPTY
            new_lo = (overlap & -overlap).bit_length() - 1
            new_hi = overlap.bit_length()
            if overlap == (1 << new_hi) - (1 << new_lo):
                return BitTaint._make_run(new_lo, new_hi, tags)
            return BitTaint(
                {bit: tags for bit in range(lo, hi) if (mask >> bit) & 1}
            )
        bits = {bit: tags for bit, tags in self._bits.items() if (mask >> bit) & 1}
        return BitTaint(bits)

    def truncated(self, width: int) -> "BitTaint":
        """Drop taint on bits at or above ``width`` (register narrowing,
        e.g. using ``al`` out of ``rax``)."""
        if self._run is None and not self._bits:
            return self
        run = self._run
        if run is not None:
            lo, hi, tags = run
            if hi <= width:
                return self
            return BitTaint._make_run(lo, width, tags)
        bits = {bit: tags for bit, tags in self._bits.items() if bit < width}
        return BitTaint(bits)

    def smeared(self, width: int) -> "BitTaint":
        """Conservative rule for multiplication/division by a tainted or
        non-power-of-two value: every bit from the lowest tainted bit up to
        ``width - 1`` receives the union of all tags."""
        if self._run is None and not self._bits:
            return self
        run = self._run
        if run is not None:
            return BitTaint._make_run(run[0], width, run[2])
        lo = min(self._bits)
        return BitTaint._make_run(lo, width, self.tags())

    def carry_extended(self, width: int) -> "BitTaint":
        """Conservative carry-aware add: each bit additionally receives
        the tags of every lower tainted bit."""
        if self._run is None and not self._bits:
            return self
        run = self._run
        if run is not None:
            # From the lowest tainted bit up, the running union is just
            # the run's tags.
            return BitTaint._make_run(run[0], width, run[2])
        bits: dict[int, frozenset[int]] = {}
        running: set[int] = set()
        mine = self._bits
        for bit in range(min(mine), width):
            running |= mine.get(bit, _EMPTY_SET)
            if running:
                bits[bit] = intern_tags(frozenset(running))
        return BitTaint(bits)

    def sign_extended(self, from_width: int, to_width: int) -> "BitTaint":
        """Replicate the sign bit's taint into the widened bits
        (arithmetic right shift / ``movsx``)."""
        run = self._run
        if run is not None:
            lo, hi, tags = run
            if not (lo <= from_width - 1 < hi) or to_width <= from_width:
                return self.truncated(to_width)
            return BitTaint._make_run(lo, to_width, tags)
        sign = self._bits.get(from_width - 1)
        if sign is None or to_width <= from_width:
            return self.truncated(to_width)
        bits = {bit: tags for bit, tags in self._bits.items() if bit < from_width}
        for bit in range(from_width, to_width):
            bits[bit] = sign
        return BitTaint(bits)

    # ------------------------------------------------------------------
    # Rendering helpers
    # ------------------------------------------------------------------
    def rows(self) -> dict[int, list[int]]:
        """``{tag: [bit, ...]}`` — the data behind one ASCII-art block."""
        run = self._run
        if run is not None:
            lo, hi, tags = run
            return {tag: list(range(lo, hi)) for tag in tags}
        out: dict[int, list[int]] = {}
        for bit, tags in self._bits.items():
            for tag in tags:
                out.setdefault(tag, []).append(bit)
        for bits in out.values():
            bits.sort()
        return out

    def __repr__(self) -> str:
        if self._run is None and not self._bits:
            return "BitTaint()"
        parts = []
        for tag, bits in sorted(self.rows().items()):
            parts.append(f"{tag}:{_span(bits)}")
        return f"BitTaint({', '.join(parts)})"


def _span(bits: list[int]) -> str:
    """Render a sorted bit list compactly, e.g. ``[1-8,11]``."""
    runs: list[str] = []
    start = prev = bits[0]
    for bit in bits[1:]:
        if bit == prev + 1:
            prev = bit
            continue
        runs.append(str(start) if start == prev else f"{start}-{prev}")
        start = prev = bit
    runs.append(str(start) if start == prev else f"{start}-{prev}")
    return "[" + ",".join(runs) + "]"


_EMPTY = BitTaint()
