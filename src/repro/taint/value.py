"""Tainted integer values with direct-data-flow propagation.

:class:`TaintedInt` wraps a fixed-width unsigned integer together with its
:class:`~repro.taint.bittaint.BitTaint` and a provenance link to the
operation that produced it.  All arithmetic/logic operators are overloaded
so that instrumented code reads like ordinary Python while every operation

* computes the result value with fixed-width unsigned semantics,
* propagates taint per the rules of the paper's Section III-B, and
* (when a recorder is attached) appends an :class:`OpRecord` to the
  execution trace, which is what lets TaintChannel later print "all
  instructions accessing the secret".

Comparisons deliberately return plain ``bool``: taint does not propagate
through control flow.  When a comparison involves a tainted operand it is
recorded as a *control-flow use*, the raw material for the control-flow
gadget discovery of Sections III-B and VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Union

from repro.taint.bittaint import BitTaint

IntLike = Union[int, "TaintedInt"]


@dataclass(slots=True)
class Origin:
    """Base class for provenance records (a node in the data-flow DAG)."""

    seq: int


@dataclass(slots=True)
class InputRecord(Origin):
    """A byte read from a taint source (the root of a provenance chain)."""

    source: str = "input"
    index: int = 0
    value: int = 0
    tag: int = 0

    def describe(self) -> str:
        return (
            f"#{self.seq:06d} read {self.source}[{self.index}] "
            f"= 0x{self.value:02x} -> tag {self.tag}"
        )


@dataclass(frozen=True, slots=True)
class Operand:
    """Snapshot of one operand at the time an operation executed."""

    value: int
    taint: BitTaint
    origin: Optional[Origin]

    @property
    def tainted(self) -> bool:
        return bool(self.taint)


@dataclass(slots=True)
class OpRecord(Origin):
    """One executed data-flow operation involving taint."""

    op: str = ""
    operands: tuple[Operand, ...] = ()
    result_value: int = 0
    result_taint: BitTaint = field(default_factory=BitTaint.empty)
    width: int = 64

    def describe(self) -> str:
        ops = ", ".join(
            f"0x{o.value:x}{'*' if o.tainted else ''}" for o in self.operands
        )
        return (
            f"#{self.seq:06d} {self.op:<5} {ops} -> "
            f"0x{self.result_value:x}  taint={self.result_taint!r}"
        )


@dataclass(slots=True)
class CompareRecord(Origin):
    """A comparison (or truth test) with at least one tainted operand."""

    op: str = ""
    operands: tuple[Operand, ...] = ()
    outcome: bool = False

    def describe(self) -> str:
        ops = ", ".join(
            f"0x{o.value:x}{'*' if o.tainted else ''}" for o in self.operands
        )
        return f"#{self.seq:06d} cmp.{self.op} {ops} -> {self.outcome}"


class TaintRecorder(Protocol):
    """What :class:`TaintedInt` needs from an execution context."""

    carry_aware_add: bool
    # False = instrumentation tier skips OpRecord/CompareRecord
    # construction; sequence numbers are still consumed so the memory
    # access stream stays identical to a fully-recorded run.
    record_ops: bool

    def next_seq(self) -> int: ...

    def record_op(self, record: OpRecord) -> None: ...

    def record_compare(self, record: CompareRecord) -> None: ...


def value_of(x: IntLike) -> int:
    """The plain integer behind a possibly-tainted value."""
    return x.value if isinstance(x, TaintedInt) else x


_EMPTY_TAINT = BitTaint.empty()


def taint_of(x: IntLike) -> BitTaint:
    """The taint of a possibly-tainted value (empty for plain ints)."""
    return x.taint if isinstance(x, TaintedInt) else _EMPTY_TAINT


def origin_of(x: IntLike) -> Optional[Origin]:
    """The provenance node of a possibly-tainted value (None for ints)."""
    return x.origin if isinstance(x, TaintedInt) else None


def _operand(x: IntLike) -> Operand:
    return Operand(value_of(x), taint_of(x), origin_of(x))


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class TaintedInt:
    """A fixed-width unsigned integer carrying bit-level taint.

    Instances are immutable.  Mixing with plain ``int`` works in either
    operand position; the result is a ``TaintedInt`` when it carries taint
    and may degrade to one with empty taint otherwise (we keep the wrapper
    so provenance of e.g. ``x & 0`` is preserved in the trace).
    """

    __slots__ = ("value", "width", "taint", "origin", "_rec")

    def __init__(
        self,
        value: int,
        width: int = 64,
        taint: BitTaint | None = None,
        origin: Optional[Origin] = None,
        recorder: Optional[TaintRecorder] = None,
    ) -> None:
        self.width = width
        self.value = value & ((1 << width) - 1)
        self.taint = taint if taint is not None else BitTaint.empty()
        self.origin = origin
        self._rec = recorder

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _emit(
        self, op: str, operands: tuple[IntLike, ...], value: int, taint: BitTaint, width: int
    ) -> "TaintedInt":
        """Build the result and, if anything is tainted, log the op."""
        origin: Optional[Origin] = None
        rec = self._rec
        if rec is not None and (taint or any(taint_of(o) for o in operands)):
            if rec.record_ops:
                record = OpRecord(
                    seq=rec.next_seq(),
                    op=op,
                    operands=tuple(_operand(o) for o in operands),
                    result_value=value & ((1 << width) - 1),
                    result_taint=taint,
                    width=width,
                )
                rec.record_op(record)
                origin = record
            else:
                # Lower tier: drop the record but burn its sequence
                # number so access streams match FULL runs exactly.
                rec.next_seq()
        return TaintedInt(value, width, taint, origin, rec)

    def _coerce_width(self, other: IntLike) -> int:
        if isinstance(other, TaintedInt):
            return max(self.width, other.width)
        return self.width

    def _fast(self, other: IntLike) -> Optional[tuple[int, int]]:
        """``(other_value, width)`` when neither operand carries taint.

        Untainted arithmetic is the bulk of an instrumented run (loop
        counters, pointer bookkeeping); when nothing is tainted no
        record is emitted and no taint rule fires, so the operators
        skip straight to :meth:`_untainted`.
        """
        if self.taint:
            return None
        if type(other) is int:
            return other, self.width
        if isinstance(other, TaintedInt) and not other.taint:
            return other.value, max(self.width, other.width)
        return None

    def _untainted(self, value: int, width: int) -> "TaintedInt":
        out = TaintedInt.__new__(TaintedInt)
        out.width = width
        out.value = value & ((1 << width) - 1)
        out.taint = _EMPTY_TAINT
        out.origin = None
        out._rec = self._rec
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"TaintedInt(0x{self.value:x}, w={self.width}, {self.taint!r})"

    def truncate(self, width: int) -> "TaintedInt":
        """Narrow to ``width`` bits (e.g. taking ``al`` out of ``rax``)."""
        return self._emit(
            f"trunc{width}", (self,), self.value, self.taint.truncated(width), width
        )

    def extend(self, width: int) -> "TaintedInt":
        """Zero-extend to a wider register."""
        return self._emit(f"zext{width}", (self,), self.value, self.taint, width)

    # ------------------------------------------------------------------
    # Bitwise ops
    # ------------------------------------------------------------------
    def __xor__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value ^ fast[0], fast[1])
        width = self._coerce_width(other)
        taint = self.taint.union(taint_of(other))
        return self._emit("xor", (self, other), self.value ^ value_of(other), taint, width)

    __rxor__ = __xor__

    def __or__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value | fast[0], fast[1])
        width = self._coerce_width(other)
        taint = self.taint.union(taint_of(other))
        return self._emit("or", (self, other), self.value | value_of(other), taint, width)

    __ror__ = __or__

    def __and__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value & fast[0], fast[1])
        width = self._coerce_width(other)
        other_taint = taint_of(other)
        if not other_taint:
            taint = self.taint.masked(value_of(other))
        elif not self.taint:
            taint = other_taint.masked(self.value)
        else:
            taint = self.taint.union(other_taint)
        return self._emit("and", (self, other), self.value & value_of(other), taint, width)

    __rand__ = __and__

    def __invert__(self) -> "TaintedInt":
        if not self.taint:
            return self._untainted(~self.value, self.width)
        return self._emit("not", (self,), ~self.value, self.taint, self.width)

    def __lshift__(self, amount: IntLike) -> "TaintedInt":
        fast = self._fast(amount)
        if fast is not None:
            return self._untainted(self.value << fast[0], self.width)
        n = value_of(amount)
        taint = self.taint.shifted(n).truncated(self.width)
        if taint_of(amount):
            taint = self.taint.smeared(self.width).union(taint)
        return self._emit("shl", (self, amount), self.value << n, taint, self.width)

    def __rshift__(self, amount: IntLike) -> "TaintedInt":
        fast = self._fast(amount)
        if fast is not None:
            return self._untainted(self.value >> fast[0], self.width)
        n = value_of(amount)
        taint = self.taint.shifted(-n)
        if taint_of(amount):
            taint = self.taint.smeared(self.width).union(taint)
        return self._emit("shr", (self, amount), self.value >> n, taint, self.width)

    def sar(self, amount: int, width: int | None = None) -> "TaintedInt":
        """Arithmetic right shift: the sign bit's taint replicates."""
        width = width or self.width
        signed = self.value - (1 << width) if self.value >> (width - 1) else self.value
        taint = self.taint.sign_extended(width, width + amount).shifted(-amount)
        taint = taint.truncated(width)
        return self._emit("sar", (self, amount), signed >> amount, taint, width)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def _additive_taint(self, other: IntLike, width: int) -> BitTaint:
        taint = self.taint.union(taint_of(other))
        rec = self._rec
        if rec is not None and getattr(rec, "carry_aware_add", False):
            taint = taint.carry_extended(width)
        return taint

    def __add__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value + fast[0], fast[1])
        width = self._coerce_width(other)
        taint = self._additive_taint(other, width)
        return self._emit("add", (self, other), self.value + value_of(other), taint, width)

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value - fast[0], fast[1])
        width = self._coerce_width(other)
        taint = self._additive_taint(other, width)
        return self._emit("sub", (self, other), self.value - value_of(other), taint, width)

    def __rsub__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(fast[0] - self.value, fast[1])
        width = self._coerce_width(other)
        taint = self._additive_taint(other, width)
        return self._emit("sub", (other, self), value_of(other) - self.value, taint, width)

    def __mul__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value * fast[0], fast[1])
        width = self._coerce_width(other)
        ov, ot = value_of(other), taint_of(other)
        if not ot and _is_pow2(ov):
            taint = self.taint.shifted(ov.bit_length() - 1).truncated(width)
        elif not self.taint and _is_pow2(self.value):
            taint = ot.shifted(self.value.bit_length() - 1).truncated(width)
        else:
            taint = self.taint.union(ot).smeared(width)
        return self._emit("mul", (self, other), self.value * ov, taint, width)

    __rmul__ = __mul__

    def __floordiv__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value // fast[0], fast[1])
        width = self._coerce_width(other)
        ov, ot = value_of(other), taint_of(other)
        if not ot and _is_pow2(ov):
            taint = self.taint.shifted(-(ov.bit_length() - 1))
        else:
            taint = self.taint.union(ot).smeared(width)
        return self._emit("div", (self, other), self.value // ov, taint, width)

    def __rfloordiv__(self, other: IntLike) -> "TaintedInt":
        width = self._coerce_width(other)
        taint = self.taint.union(taint_of(other)).smeared(width)
        return self._emit("div", (other, self), value_of(other) // self.value, taint, width)

    def __mod__(self, other: IntLike) -> "TaintedInt":
        fast = self._fast(other)
        if fast is not None:
            return self._untainted(self.value % fast[0], fast[1])
        width = self._coerce_width(other)
        ov, ot = value_of(other), taint_of(other)
        if not ot and _is_pow2(ov):
            taint = self.taint.masked(ov - 1)
        else:
            taint = self.taint.union(ot).smeared(width)
        return self._emit("mod", (self, other), self.value % ov, taint, width)

    def __rmod__(self, other: IntLike) -> "TaintedInt":
        width = self._coerce_width(other)
        taint = self.taint.union(taint_of(other)).smeared(width)
        return self._emit("mod", (other, self), value_of(other) % self.value, taint, width)

    def __neg__(self) -> "TaintedInt":
        if not self.taint:
            return self._untainted(-self.value, self.width)
        taint = self._additive_taint(0, self.width)
        return self._emit("neg", (self,), -self.value, taint, self.width)

    # ------------------------------------------------------------------
    # Comparisons: plain bool out, control-flow use recorded
    # ------------------------------------------------------------------
    def _compare(self, op: str, other: IntLike, outcome: bool) -> bool:
        rec = self._rec
        if rec is not None and (
            self.taint or (isinstance(other, TaintedInt) and other.taint)
        ):
            if rec.record_ops:
                rec.record_compare(
                    CompareRecord(
                        seq=rec.next_seq(),
                        op=op,
                        operands=(_operand(self), _operand(other)),
                        outcome=outcome,
                    )
                )
            else:
                rec.next_seq()
        return outcome

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if not isinstance(other, (int, TaintedInt)):
            return NotImplemented
        return self._compare("eq", other, self.value == value_of(other))

    def __ne__(self, other: object) -> bool:  # type: ignore[override]
        if not isinstance(other, (int, TaintedInt)):
            return NotImplemented
        return self._compare("ne", other, self.value != value_of(other))

    def __lt__(self, other: IntLike) -> bool:
        return self._compare("lt", other, self.value < value_of(other))

    def __le__(self, other: IntLike) -> bool:
        return self._compare("le", other, self.value <= value_of(other))

    def __gt__(self, other: IntLike) -> bool:
        return self._compare("gt", other, self.value > value_of(other))

    def __ge__(self, other: IntLike) -> bool:
        return self._compare("ge", other, self.value >= value_of(other))

    def __bool__(self) -> bool:
        return self._compare("nz", 0, self.value != 0)

    def __hash__(self) -> int:
        return hash(self.value)
