"""Per-gadget leakage metering: how many input bits does each survey
gadget actually deliver through the cache-line channel?

For each of the paper's three gadgets (zlib ``head[ins_h]``, Sec. IV-B;
LZW ``htab[hp]``, IV-C; bzip2 ``ftab[j]++``, IV-D) this module turns a
cache-line observation stream into:

* a **per-bit accuracy map** — for every bit 0..7, the fraction of
  input positions whose bit the decoder recovered correctly (a bit at
  an unrecovered position counts as wrong), plus a positional heatmap
  in the style of the paper's Figs. 2-4;
* the **empirical mutual information** ``I(X; X̂)`` between the true
  input byte and the decoder's point estimate (plug-in estimator over
  the joint histogram) — the end-to-end "bits extracted per input
  byte", also normalised to bits per cache-line observation.

The same :func:`leakage_from_lines` core consumes a live
:class:`~repro.exec.context.TracingContext` (via
:func:`measure_gadget_live`) or a stored ``.trc`` trace (via
:func:`measure_gadget_from_store` and the
:mod:`repro.traces.replay` adapters), so the two paths agree
**bit-exactly** by construction — asserted in
``tests/test_diag_leakage.py``.

Estimator caveat: the plug-in MI estimator is biased upward for small
sample counts relative to the alphabet (n positions vs up to 256 x 257
joint cells).  The numbers here are comparable *between runs of the
same size* — which is what the drift gate needs — not absolute channel
capacities; see ``docs/diagnostics.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

GADGET_TARGETS = ("zlib", "lzw", "bzip2")

# Shade ramp for heatmap cells: accuracy 0.0 .. 1.0 maps left to right.
HEAT_RAMP = " .:-=+*#%@"
HEAT_COLUMNS = 48

# Sentinel symbol for "decoder produced no estimate" in the MI joint
# histogram (must be outside the 0..255 byte alphabet).
_NO_ESTIMATE = -1


def plugin_mutual_information(
    xs: Sequence[int], ys: Sequence[int]
) -> float:
    """Plug-in (maximum-likelihood) estimate of ``I(X; Y)`` in bits.

    Pure integer counting plus ``math.log2`` over exact rationals, so
    identical inputs give identical floats on both the live and stored
    paths.
    """
    n = len(xs)
    if n == 0 or n != len(ys):
        return 0.0
    joint: dict[tuple[int, int], int] = {}
    px: dict[int, int] = {}
    py: dict[int, int] = {}
    for x, y in zip(xs, ys):
        joint[(x, y)] = joint.get((x, y), 0) + 1
        px[x] = px.get(x, 0) + 1
        py[y] = py.get(y, 0) + 1
    mi = 0.0
    for (x, y), c in sorted(joint.items()):
        mi += (c / n) * math.log2(c * n / (px[x] * py[y]))
    return max(0.0, mi)


@dataclass
class GadgetLeakage:
    """Leakage diagnostics for one gadget on one input."""

    target: str
    size: int
    input_kind: str
    input_seed: int
    n_observations: int
    recovered_fraction: float  # positions with any estimate
    byte_accuracy: float  # exact-byte point-estimate accuracy
    bit_accuracy: float  # mean over the 8 per-bit accuracies
    per_bit_accuracy: list[float]  # index = bit position 0 (lsb) .. 7
    mi_bits_per_byte: float  # plug-in I(truth; estimate)
    input_entropy_bits: float  # plug-in H(truth), the MI ceiling
    bits_per_observation: float  # total MI / cache-line observations
    extras: dict = field(default_factory=dict)  # per-target metrics
    bit_matrix: list[list[int]] = field(default_factory=list)
    # bit_matrix[b][i] = 1 iff bit b of position i was recovered
    # correctly; feeds the heatmap and is part of the bit-exact
    # live/stored equality contract.

    def to_dict(self) -> dict:
        """JSON-ready payload (used verbatim in equality assertions)."""
        return {
            "target": self.target,
            "size": self.size,
            "input_kind": self.input_kind,
            "input_seed": self.input_seed,
            "n_observations": self.n_observations,
            "recovered_fraction": self.recovered_fraction,
            "byte_accuracy": self.byte_accuracy,
            "bit_accuracy": self.bit_accuracy,
            "per_bit_accuracy": list(self.per_bit_accuracy),
            "mi_bits_per_byte": self.mi_bits_per_byte,
            "input_entropy_bits": self.input_entropy_bits,
            "bits_per_observation": self.bits_per_observation,
            "extras": dict(self.extras),
            "bit_matrix": [list(row) for row in self.bit_matrix],
        }

    def metric_dict(self, prefix: str = "") -> dict:
        """Flat numeric metrics (for campaigns and the drift gate)."""
        out = {
            f"{prefix}byte_accuracy": self.byte_accuracy,
            f"{prefix}bit_accuracy": self.bit_accuracy,
            f"{prefix}bit_accuracy_min": min(self.per_bit_accuracy),
            f"{prefix}mi_bits_per_byte": self.mi_bits_per_byte,
            f"{prefix}bits_per_observation": self.bits_per_observation,
            f"{prefix}recovered_fraction": self.recovered_fraction,
            f"{prefix}n_observations": self.n_observations,
        }
        for key, value in self.extras.items():
            if isinstance(value, bool):
                out[f"{prefix}{key}"] = int(value)
            elif isinstance(value, (int, float)):
                out[f"{prefix}{key}"] = value
        return out


def _point_estimates(
    target: str, lines: list[int], bases: dict, size: int, truth: bytes
) -> tuple[list[Optional[int]], dict]:
    """Run the target's Section IV decoder; return one estimated byte
    per input position (None = no estimate) plus per-target extras."""
    if target == "zlib":
        from repro.recovery.zlib_recover import recover_known_high_bits

        recovered = recover_known_high_bits(lines, bases["head"], size)
        return list(recovered), {}

    if target == "lzw":
        from repro.recovery import recover_lzw_input

        candidates = recover_lzw_input(lines, bases["htab"], size)
        # The decoder returns whole-input candidates (first-byte low
        # bits are ambiguous); the deterministic point estimate is the
        # first candidate — the attacker's best single guess.
        est: list[Optional[int]]
        est = list(candidates[0]) if candidates else [None] * size
        return est, {
            "exact_found": truth in candidates,
            "n_candidates": len(candidates),
        }

    if target == "bzip2":
        from repro.recovery.bzip2_recover import (
            observations_from_lines,
            recover_bzip2_block,
        )

        observations = observations_from_lines(lines, size)
        result = recover_bzip2_block(observations, bases["ftab"], size)
        est = [
            value if candidates else None
            for value, candidates in zip(result.values, result.candidates)
        ]
        return est, {
            "ambiguous_positions": len(result.ambiguous_positions()),
        }

    raise ValueError(
        f"unknown gadget target {target!r}; choose from {GADGET_TARGETS}"
    )


def leakage_from_lines(
    target: str,
    lines: list[int],
    bases: dict,
    size: int,
    input_kind: str,
    input_seed: int,
) -> GadgetLeakage:
    """The shared metering core: decode ``lines`` with the target's
    Section IV decoder and score every bit against the regenerated
    input.  Both the live and stored paths funnel through here, which
    is what makes them bit-exact."""
    from repro.campaign.experiments import make_input

    truth = make_input(input_kind, size, input_seed)
    estimates, extras = _point_estimates(target, lines, bases, size, truth)
    n = len(truth)

    bit_matrix = [[0] * n for _ in range(8)]
    recovered = 0
    exact = 0
    for i, (est, true_byte) in enumerate(zip(estimates, truth)):
        if est is None:
            continue
        recovered += 1
        if est == true_byte:
            exact += 1
        matching = ~(est ^ true_byte)
        for b in range(8):
            bit_matrix[b][i] = (matching >> b) & 1
    per_bit = [sum(row) / n if n else 0.0 for row in bit_matrix]

    mi_symbols = [
        _NO_ESTIMATE if est is None else est for est in estimates
    ]
    mi = plugin_mutual_information(list(truth), mi_symbols)
    entropy = plugin_mutual_information(list(truth), list(truth))
    n_obs = len(lines)
    return GadgetLeakage(
        target=target,
        size=size,
        input_kind=input_kind,
        input_seed=input_seed,
        n_observations=n_obs,
        recovered_fraction=recovered / n if n else 0.0,
        byte_accuracy=exact / n if n else 0.0,
        bit_accuracy=sum(per_bit) / 8.0,
        per_bit_accuracy=per_bit,
        mi_bits_per_byte=mi,
        input_entropy_bits=entropy,
        bits_per_observation=(mi * n / n_obs) if n_obs else 0.0,
        extras=extras,
        bit_matrix=bit_matrix,
    )


def _live_lines(ctx, target: str) -> list[int]:
    """Extract the attacker's cache-line stream from a live context with
    exactly the site/kind filters the stored path replays."""
    from repro.recovery import observed_lines

    if target == "zlib":
        from repro.compression.lz77 import SITE_HEAD

        return observed_lines(ctx, SITE_HEAD, kind="write")
    if target == "lzw":
        from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY

        return [
            access.address >> 6
            for access in ctx.tainted_accesses()
            if access.site in (SITE_PRIMARY, SITE_SECONDARY)
            and access.kind == "read"
        ]
    if target == "bzip2":
        from repro.compression.bzip2 import SITE_FTAB

        return observed_lines(ctx, SITE_FTAB)
    raise ValueError(
        f"unknown gadget target {target!r}; choose from {GADGET_TARGETS}"
    )


def _stored_lines(store, trace_id: str, target: str) -> list[int]:
    """The stored-trace counterpart of :func:`_live_lines`.

    Decodes columnar (no per-record objects) via the same
    :func:`~repro.traces.replay._target_filter` the replay path uses, so
    the meter sees the identical line stream as live observation.
    """
    from repro.traces.replay import _target_filter, replay_lines_array

    if target not in GADGET_TARGETS:
        raise ValueError(
            f"unknown gadget target {target!r}; choose from {GADGET_TARGETS}"
        )
    sites, kind = _target_filter(target)
    return replay_lines_array(store.read_columns(trace_id), sites, kind).tolist()


def measure_gadget_live(
    target: str,
    size: int,
    seed: int,
    input_kind: Optional[str] = None,
) -> GadgetLeakage:
    """Run the gadget under tracing now and meter its leakage."""
    from repro import obs
    from repro.campaign.experiments import make_input
    from repro.traces.capture import default_input_kind, run_memory_target

    input_kind = input_kind or default_input_kind(target)
    data = make_input(input_kind, size, seed)
    with obs.span("diag.leakage.live", target=target, size=size):
        ctx = run_memory_target(target, data)
        lines = _live_lines(ctx, target)
        bases = {name: arr.base for name, arr in ctx.arrays.items()}
        return leakage_from_lines(
            target, lines, bases, size, input_kind, seed
        )


def measure_gadget_from_store(store, trace_id: str) -> GadgetLeakage:
    """Meter leakage from a stored memory trace (no victim re-run).

    Reads the target, input provenance, and array bases from the trace
    metadata written by :func:`repro.traces.capture.capture_memory_trace`.
    """
    from repro import obs
    from repro.traces.format import SPECIES_MEMORY

    entry = store.get(trace_id)
    if entry.species != SPECIES_MEMORY:
        raise ValueError(
            f"trace {trace_id!r} is a {entry.species!r} trace; leakage "
            f"metering needs {SPECIES_MEMORY!r}"
        )
    meta = entry.meta
    target = meta["target"]
    with obs.span("diag.leakage.stored", target=target, trace_id=trace_id):
        lines = _stored_lines(store, trace_id, target)
        return leakage_from_lines(
            target,
            lines,
            meta["bases"],
            int(meta["size"]),
            meta["input_kind"],
            int(meta["input_seed"]),
        )


def survey_leakage(size: int, seed: int) -> dict[str, GadgetLeakage]:
    """Leakage diagnostics for all three gadgets, live, with the survey
    seed convention (bzip2 uses ``seed + 1``) so results line up with
    ``survey_recovery`` campaigns and captured survey sweeps."""
    out = {}
    for target in GADGET_TARGETS:
        input_seed = seed + 1 if target == "bzip2" else seed
        out[target] = measure_gadget_live(target, size, input_seed)
    return out


def survey_leakage_from_store(
    store, size: int, sweep_seed: int, prefix: str = "survey"
) -> dict[str, GadgetLeakage]:
    """Leakage diagnostics for a captured survey sweep (the traces
    written by ``capture_survey_traces(store, size, sweep_seed)``)."""
    return {
        target: measure_gadget_from_store(
            store, f"{prefix}-{target}-n{size}-s{sweep_seed}"
        )
        for target in GADGET_TARGETS
    }


# -- rendering ---------------------------------------------------------
def render_heatmap(diag: GadgetLeakage, columns: int = HEAT_COLUMNS) -> str:
    """Figs. 2-4-style ASCII heatmap: bit rows (msb on top) x input
    position, cell shade = fraction of that bucket's positions whose
    bit was recovered."""
    n = diag.size
    if n == 0:
        return "(empty input)"
    columns = max(1, min(columns, n))
    lines = [
        f"bit accuracy map — {diag.target}, {n} bytes "
        f"({diag.input_kind}), shade: '{HEAT_RAMP[0]}'=0 "
        f"'{HEAT_RAMP[-1]}'=1"
    ]
    top = len(HEAT_RAMP) - 1
    for b in range(7, -1, -1):
        row = diag.bit_matrix[b]
        cells = []
        for c in range(columns):
            lo = c * n // columns
            hi = max(lo + 1, (c + 1) * n // columns)
            frac = sum(row[lo:hi]) / (hi - lo)
            cells.append(HEAT_RAMP[round(frac * top)])
        lines.append(
            f"bit {b} |{''.join(cells)}| {diag.per_bit_accuracy[b]*100:6.2f}%"
        )
    lines.append(f"       +{'-' * columns}+")
    lines.append(f"        position 0 .. {n - 1}")
    return "\n".join(lines)


def render_leakage(diag: GadgetLeakage) -> str:
    """One gadget's full diagnostics block: summary line + heatmap."""
    extras = " ".join(
        f"{k}={v}" for k, v in sorted(diag.extras.items())
    )
    lines = [
        f"## {diag.target}",
        f"observations: {diag.n_observations} cache lines  "
        f"recovered: {diag.recovered_fraction*100:.1f}% of positions",
        f"byte accuracy {diag.byte_accuracy*100:.2f}%  "
        f"bit accuracy {diag.bit_accuracy*100:.2f}%",
        f"mutual information {diag.mi_bits_per_byte:.3f} bits/byte "
        f"(input entropy {diag.input_entropy_bits:.3f})  "
        f"{diag.bits_per_observation:.4f} bits/observation",
    ]
    if extras:
        lines.append(extras)
    lines.append(render_heatmap(diag))
    return "\n".join(lines)


def render_survey_leakage(diags: dict[str, GadgetLeakage]) -> str:
    """The multi-gadget ``repro diag report`` body."""
    blocks = [render_leakage(diags[t]) for t in GADGET_TARGETS if t in diags]
    return "\n\n".join(blocks)
