"""Channel-health probes: is the physical side channel in good shape?

Leakage metering (:mod:`repro.diag.leakage`) scores the *idealised*
gadget channel; this module probes the simulated *physical* layers the
end-to-end attacks actually cross, each with a dedicated, freshly
seeded instance so probing never perturbs an experiment in flight:

* :func:`timing_margins` — hit/miss latency separation from
  :mod:`repro.cache.model`'s noisy timer: empirical means, the decision
  margin in noise-σ units, the misclassification rate at the midpoint
  threshold, and fixed-bin latency histograms for rendering;
* :func:`eviction_quality` — how well
  :class:`~repro.sidechannel.eviction_sets.EvictionSetBuilder` does
  against the model's ground truth (minimal-set rate, congruence of
  the found lines, verified eviction, group-testing cost);
* :func:`single_step_fidelity` — does the Fig. 5 mprotect state
  machine observe exactly one ftab access per input position, and are
  the faulting pages the ones the true ``j`` indices predict;
* :func:`fingerprint_confusion` — a small Section VI train/test round
  rendered as a confusion matrix via :mod:`repro.classify.metrics`.

Everything is deterministic given its seed arguments, which is what
lets ``repro diag compare`` gate these numbers against a committed
baseline.
"""

from __future__ import annotations

import random
from typing import Optional

from repro import obs
from repro.cache.model import LINE_SIZE, Cache, CacheConfig

HIST_BINS = 30


def _fixed_bin_histogram(
    values: list[float], lo: float, hi: float, bins: int = HIST_BINS
) -> list[int]:
    counts = [0] * bins
    span = hi - lo
    if span <= 0:
        counts[0] = len(values)
        return counts
    for v in values:
        idx = int((v - lo) / span * bins)
        counts[min(max(idx, 0), bins - 1)] += 1
    return counts


def _mean_std(values: list[float]) -> tuple[float, float]:
    n = len(values)
    if not n:
        return 0.0, 0.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, var ** 0.5


def timing_margins(
    config: Optional[CacheConfig] = None,
    samples: int = 1500,
) -> dict:
    """Empirical hit/miss timing separation on a dedicated cache.

    Each sample touches a distinct cold line (miss latency) then
    touches it again (hit latency).  The decision threshold is the
    hit/miss midpoint — the same default
    :class:`~repro.sidechannel.eviction_sets.EvictionSetBuilder` uses —
    and the margin is its distance to either true latency in units of
    the timer's noise σ.
    """
    cfg = config or CacheConfig()
    cache = Cache(cfg)
    base = 0x9_0000_0000
    hits: list[float] = []
    misses: list[float] = []
    with obs.span("diag.timing_margins", samples=samples):
        for i in range(samples):
            addr = base + i * LINE_SIZE
            misses.append(cache.access(addr).latency)
            hits.append(cache.access(addr).latency)
    threshold = (cfg.hit_latency + cfg.miss_latency) / 2.0
    hit_mean, hit_std = _mean_std(hits)
    miss_mean, miss_std = _mean_std(misses)
    misclassified = sum(1 for v in hits if v >= threshold) + sum(
        1 for v in misses if v < threshold
    )
    half_gap = (cfg.miss_latency - cfg.hit_latency) / 2.0
    margin_sigma = (
        half_gap / cfg.noise_sigma if cfg.noise_sigma > 0 else float("inf")
    )
    lo = min(hits + misses)
    hi = max(hits + misses)
    return {
        "samples": samples,
        "hit_mean": hit_mean,
        "hit_std": hit_std,
        "miss_mean": miss_mean,
        "miss_std": miss_std,
        "threshold": threshold,
        "margin_sigma": margin_sigma,
        "empirical_separation": (
            (miss_mean - hit_mean) / ((hit_std + miss_std) / 2.0)
            if (hit_std + miss_std) > 0
            else float("inf")
        ),
        "misclassified_rate": misclassified / (2 * samples),
        "noise_sigma": cfg.noise_sigma,
        "histogram": {
            "lo": lo,
            "hi": hi,
            "hits": _fixed_bin_histogram(hits, lo, hi),
            "misses": _fixed_bin_histogram(misses, lo, hi),
        },
    }


def render_timing_margins(report: dict, width: int = 60) -> str:
    """Two-distribution ASCII histogram plus the margin summary."""
    hist = report["histogram"]
    peak = max(max(hist["hits"], default=1), max(hist["misses"], default=1))
    peak = max(peak, 1)
    bins = len(hist["hits"])
    lines = [
        f"timing margins: hit {report['hit_mean']:.1f}±"
        f"{report['hit_std']:.1f}  miss {report['miss_mean']:.1f}±"
        f"{report['miss_std']:.1f}  threshold {report['threshold']:.1f}",
        f"decision margin {report['margin_sigma']:.2f}σ  "
        f"empirical separation {report['empirical_separation']:.2f}σ  "
        f"misclassified {report['misclassified_rate']*100:.3f}%",
    ]
    for name in ("hits", "misses"):
        counts = hist[name]
        dense = "".join(
            " ▁▂▃▄▅▆▇█"[min(8, round(c / peak * 8))] for c in counts
        )
        lines.append(f"{name:<7}|{dense}|")
    lines.append(
        f"       {hist['lo']:.0f} .. {hist['hi']:.0f} cycles "
        f"({bins} bins)"
    )
    return "\n".join(lines)


def eviction_quality(
    config: Optional[CacheConfig] = None,
    n_targets: int = 4,
    seed: int = 5,
) -> dict:
    """Score the group-testing eviction-set builder against the model.

    For each (deterministically drawn) target address the builder
    reduces its congruent pool to a minimal set; the model's
    :meth:`~repro.cache.model.Cache.location` gives ground truth for
    how many found lines are actually congruent, and a final
    :meth:`~repro.sidechannel.eviction_sets.EvictionSetBuilder.evicts`
    call verifies the set still evicts.
    """
    from repro.sidechannel.eviction_sets import (
        EvictionSetBuilder,
        EvictionSetError,
    )

    cfg = config or CacheConfig()
    cache = Cache(cfg)
    builder = EvictionSetBuilder(cache)
    rng = random.Random(seed)
    found = 0
    minimal = 0
    verified = 0
    congruent_lines = 0
    total_lines = 0
    sizes: list[int] = []
    tests: list[int] = []
    with obs.span("diag.eviction_quality", targets=n_targets):
        for _ in range(n_targets):
            target = 0x1_0000_0000 + rng.randrange(1 << 14) * LINE_SIZE
            before = builder.tests_performed
            try:
                es = builder.find(target)
            except EvictionSetError:
                tests.append(builder.tests_performed - before)
                continue
            tests.append(builder.tests_performed - before)
            found += 1
            sizes.append(len(es))
            if len(es) == cfg.ways:
                minimal += 1
            if builder.evicts(target, es):
                verified += 1
            truth = cache.location(target)
            congruent_lines += sum(
                1 for addr in es if cache.location(addr) == truth
            )
            total_lines += len(es)
    return {
        "n_targets": n_targets,
        "found_fraction": found / n_targets if n_targets else 0.0,
        "minimal_fraction": minimal / n_targets if n_targets else 0.0,
        "verified_fraction": verified / n_targets if n_targets else 0.0,
        "congruent_fraction": (
            congruent_lines / total_lines if total_lines else 0.0
        ),
        "mean_set_size": sum(sizes) / len(sizes) if sizes else 0.0,
        "ways": cfg.ways,
        "mean_tests": sum(tests) / len(tests) if tests else 0.0,
    }


def single_step_fidelity(n: int = 32, seed: int = 3) -> dict:
    """Fidelity of the Fig. 5 single-stepping state machine.

    Builds a dedicated enclave, runs the bzip2 ``histogram`` kernel
    under the mprotect stepper, and checks three invariants: one step
    per input position, one ftab fault per position, and each faulting
    page equal to the page the true ``j = (block[i]<<8) | block[i+1]``
    index predicts (in the kernel's reverse iteration order).
    """
    from repro.compression.bzip2.blocksort import histogram
    from repro.memsys import AddressSpace
    from repro.sgx import Enclave
    from repro.sidechannel import SingleStepper
    from repro.workloads import random_bytes

    space = AddressSpace()
    cache = Cache(CacheConfig(noise_sigma=0.0))
    enclave = Enclave(space, cache)
    quadrant = enclave.array("quadrant", n, elem_size=2)
    block = enclave.array("block", n, elem_size=1)
    data = random_bytes(n, seed=seed)
    block.load(list(data))
    ftab = enclave.array("ftab", 65537, elem_size=4, misalign=48)

    fault_pages: list[int] = []
    probes = [0]
    stepper = SingleStepper(
        space,
        quadrant,
        block,
        ftab,
        before_ftab_access=fault_pages.append,
        probe_point=lambda: probes.__setitem__(0, probes[0] + 1),
    )
    enclave.fault_handler = stepper.handle_fault
    with obs.span("diag.single_step", n=n):
        stepper.arm()
        histogram(enclave, block, n, ftab=ftab, quadrant=quadrant)
        stepper.disarm()

    # Expected fault pages, in the kernel's i = n-1 .. 0 order.
    expected = []
    for i in range(n - 1, -1, -1):
        j = (data[i] << 8) | data[(i + 1) % n]
        expected.append((ftab.base + 4 * j) & ~0xFFF)
    page_hits = sum(1 for got, want in zip(fault_pages, expected) if got == want)
    return {
        "n": n,
        "steps": stepper.steps,
        "step_fidelity": stepper.steps / n if n else 0.0,
        "ftab_faults": len(fault_pages),
        "ftab_fault_fidelity": len(fault_pages) / n if n else 0.0,
        "probe_points": probes[0],
        "page_accuracy": (
            page_hits / len(expected) if expected else 0.0
        ),
    }


def fingerprint_confusion(
    corpus: str = "lipsum",
    traces: int = 8,
    epochs: int = 12,
    seed: int = 0,
    hidden: int = 48,
) -> dict:
    """A small Section VI fingerprint round with its confusion matrix.

    Returns test accuracy, the confusion matrix (column-normalised, as
    :func:`repro.classify.metrics.confusion_matrix` defines it), its
    diagonal mean, and a rendered table.  Deliberately small defaults —
    this is a health probe, not the Fig. 7 experiment.
    """
    from repro.classify import (
        MLPClassifier,
        confusion_matrix,
        render_confusion,
        split_dataset,
    )
    from repro.classify.metrics import diagonal_accuracy
    from repro.core.zipchannel.fingerprint import build_dataset
    from repro.traces.capture import fingerprint_corpus

    files = fingerprint_corpus(corpus)
    names = [f"file_{i}" for i in range(len(files))]
    with obs.span(
        "diag.fingerprint_confusion", corpus=corpus, traces=traces
    ):
        x, y, _ = build_dataset(files, traces_per_file=traces, seed=seed)
        train, val, test = split_dataset(x, y, seed=seed + 1)
        clf = MLPClassifier(
            x.shape[1], len(files), hidden=hidden, seed=seed + 2
        )
        clf.fit(*train, epochs=epochs, x_val=val[0], y_val=val[1])
        matrix = confusion_matrix(
            test[1], clf.predict(test[0]), len(files)
        )
    return {
        "corpus": corpus,
        "n_files": len(files),
        "chance": 1.0 / len(files),
        "test_accuracy": float(clf.accuracy(*test)),
        "diagonal_accuracy": float(diagonal_accuracy(matrix).mean()),
        "matrix": matrix.tolist(),
        "rendered": render_confusion(matrix, names),
    }


def channel_health(
    samples: int = 1500,
    n_targets: int = 4,
    step_n: int = 32,
    noise_sigma: Optional[float] = None,
    include_confusion: bool = False,
) -> dict:
    """Run every probe; ``noise_sigma`` overrides the cache config used
    by the timing/eviction probes (the drift drill bumps it to inject a
    regression)."""
    cfg = (
        CacheConfig(noise_sigma=noise_sigma)
        if noise_sigma is not None
        else CacheConfig()
    )
    report = {
        "timing": timing_margins(config=cfg, samples=samples),
        "eviction": eviction_quality(config=cfg, n_targets=n_targets),
        "single_step": single_step_fidelity(n=step_n),
    }
    if include_confusion:
        report["confusion"] = fingerprint_confusion()
    return report


def render_channel_health(report: dict) -> str:
    """The ``repro diag channel`` text output."""
    lines = ["# channel health", "", "## timing"]
    lines.append(render_timing_margins(report["timing"]))
    ev = report["eviction"]
    lines += [
        "",
        "## eviction sets",
        f"found {ev['found_fraction']*100:.0f}%  minimal "
        f"{ev['minimal_fraction']*100:.0f}% (ways={ev['ways']})  "
        f"verified {ev['verified_fraction']*100:.0f}%",
        f"congruent lines {ev['congruent_fraction']*100:.1f}%  "
        f"mean set size {ev['mean_set_size']:.1f}  "
        f"mean group tests {ev['mean_tests']:.1f}",
    ]
    ss = report["single_step"]
    lines += [
        "",
        "## single-step",
        f"steps {ss['steps']}/{ss['n']} "
        f"(fidelity {ss['step_fidelity']*100:.1f}%)  "
        f"ftab faults {ss['ftab_faults']} "
        f"({ss['ftab_fault_fidelity']*100:.1f}%)  "
        f"fault-page accuracy {ss['page_accuracy']*100:.1f}%",
    ]
    if "confusion" in report:
        conf = report["confusion"]
        lines += [
            "",
            "## fingerprint confusion",
            f"test accuracy {conf['test_accuracy']*100:.1f}% "
            f"(chance {conf['chance']*100:.1f}%)  diagonal "
            f"{conf['diagonal_accuracy']*100:.1f}%",
            conf["rendered"],
        ]
    return "\n".join(lines)
