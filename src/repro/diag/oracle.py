"""Oracle-channel diagnostics: per-character MI for the BREACH channel.

Answers the same question the gadget leakage meters answer for the
cache channels — *how many bits does one attack step actually move?* —
but for the compression-ratio oracle of :mod:`repro.oracle`.  The
estimator is deliberately the same plug-in mutual-information core as
:func:`repro.diag.leakage.leakage_from_lines`, so oracle and cache
numbers sit on one scale in the drift baseline.

Protocol: sample secrets whose first character cycles uniformly over a
small calibration charset, let a one-step attacker produce a point
estimate of that character through the sealed oracle (singleton
two-guess probes, argmin), and compute ``I(char; estimate)``.
Unmitigated, the estimate is exact and MI saturates at
``log2(len(charset))``; under an effective mitigation the estimate
decorrelates and MI falls toward the plug-in estimator's small-sample
bias floor.  The charset is kept small (4 symbols) precisely to keep
that bias floor well below the unmitigated signal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.diag.leakage import plugin_mutual_information

#: Calibration alphabet: 4 symbols keeps the plug-in MI bias floor
#: (~(|X|-1)(|Y|-1) / (2 n ln 2) bits) far below the 2-bit signal at
#: the sample counts the diag suite can afford.
ORACLE_MI_CHARSET = b"ak3z"


@dataclass
class OracleChannelDiag:
    """One oracle channel's measured quality."""

    observable: str
    mitigation: str
    n_samples: int
    capacity_bits: float   # log2(len(charset)): the saturation point
    mi_bits: float         # I(secret char; one-step estimate)
    recovered_fraction: float  # P(estimate == char)

    def metric_dict(self, prefix: str = "") -> dict:
        return {
            f"{prefix}mi_bits": self.mi_bits,
            f"{prefix}recovered_fraction": self.recovered_fraction,
            f"{prefix}capacity_bits": self.capacity_bits,
        }


def one_step_estimate(
    oracle,
    prefix: bytes,
    charset: bytes,
    rng: random.Random,
    reps: int = 2,
) -> int:
    """A single attack step's point estimate of the secret's first
    character: singleton two-guess probes over ``charset``, argmin mean
    delta.  No confirmation, no escalation — the diag wants the raw
    per-step channel, not the full attack's error correction."""
    from repro.recovery.oracle_recover import _random_pad, probe_pair

    best_c, best_delta = charset[0], float("inf")
    for c in charset:
        total = 0.0
        for _ in range(max(1, reps)):
            pad = _random_pad(rng)
            match, broken = probe_pair(prefix, b"", [c], pad)
            total += oracle.observe(match) - oracle.observe(broken)
        delta = total / max(1, reps)
        if delta < best_delta:
            best_delta, best_c = delta, c
    return best_c


def measure_oracle_channel(
    observable: str = "size",
    mitigation: str = "none",
    n_samples: int = 48,
    seed: int = 7,
    reps: int = 2,
    charset: bytes = ORACLE_MI_CHARSET,
) -> OracleChannelDiag:
    """Measure one (observable, mitigation) oracle channel.

    Per sample: a fresh HTTP victim whose secret starts with the
    cycled calibration character, a fresh sealed oracle, one one-step
    estimate.  Everything is seeded per sample, so the measurement is a
    deterministic function of ``(observable, mitigation, n_samples,
    seed, reps)``.
    """
    import math

    from repro.oracle import make_oracle, make_victim

    xs: list[int] = []
    ys: list[int] = []
    for i in range(n_samples):
        true_c = charset[i % len(charset)]
        victim = make_victim(
            "http",
            mitigation=mitigation,
            seed=seed * 1_000 + i,
            secret_len=6,
            filler_bytes=96,
        )
        # Pin the calibration character as the secret's first byte.
        victim.secret = bytes([true_c]) + victim.secret[1:]
        victim.generator.secret = victim.secret
        oracle = make_oracle(victim, observable, mitigation, seed=seed + i)
        rng = random.Random((seed << 16) ^ i)
        estimate = one_step_estimate(
            oracle, victim.known_prefix, charset, rng, reps=reps
        )
        xs.append(true_c)
        ys.append(estimate)

    hits = sum(1 for x, y in zip(xs, ys) if x == y)
    return OracleChannelDiag(
        observable=observable,
        mitigation=mitigation,
        n_samples=n_samples,
        capacity_bits=math.log2(len(charset)),
        mi_bits=plugin_mutual_information(xs, ys),
        recovered_fraction=hits / max(1, n_samples),
    )


def oracle_channel_metrics(
    seed: int = 7,
    n_samples: int = 48,
    mitigations: tuple = ("none", "padding"),
) -> dict:
    """The drift-gate rows: size-oracle MI with and without mitigation.

    Metric names: ``oracle.size.mi_bits`` (unmitigated — *higher* is
    better, the channel must stay open) and
    ``oracle.size.<mitigation>.mi_bits`` (*lower* is better, the
    mitigation must keep it closed); same pattern for
    ``recovered_fraction``.
    """
    metrics: dict[str, float] = {}
    for mitigation in mitigations:
        diag = measure_oracle_channel(
            observable="size",
            mitigation=mitigation,
            n_samples=n_samples,
            seed=seed,
        )
        prefix = (
            "oracle.size."
            if mitigation == "none"
            else f"oracle.size.{mitigation}."
        )
        metrics.update(diag.metric_dict(prefix=prefix))
    return metrics
