"""repro.diag — channel-quality diagnostics on top of repro.obs.

Three layers, all deterministic given their seeds:

* **leakage metering** (:mod:`repro.diag.leakage`) — per-gadget
  empirical mutual information and per-bit accuracy maps for the
  zlib/lzw/bzip2 survey gadgets, computed identically from live runs
  or stored ``.trc`` traces, rendered as Figs. 2-4-style ASCII
  heatmaps;
* **channel-health probes** (:mod:`repro.diag.channel`) — hit/miss
  timing-margin histograms (decision margin in σ), eviction-set
  quality versus the cache model's ground truth, single-step fidelity,
  and fingerprint confusion matrices;
* **drift gate** (:mod:`repro.diag.drift`) — ``repro diag compare``
  fails when leakage metrics regress beyond tolerance against the
  committed ``benchmarks/diag_baseline.json``;
* **oracle channel MI** (:mod:`repro.diag.oracle`) — per-character
  mutual information of the BREACH compression-ratio oracle, scored
  through the same plug-in MI core as the cache gadgets and gated in
  both directions (open unmitigated, closed mitigated).

Campaign workers publish these metrics through the obs sink
(``obs.publish_metrics``); ``repro obs watch`` renders them live and
``campaign.store`` aggregates them into a per-run ``diag.json``
timeseries.
"""

from repro.diag.channel import (
    channel_health,
    eviction_quality,
    fingerprint_confusion,
    render_channel_health,
    render_timing_margins,
    single_step_fidelity,
    timing_margins,
)
from repro.diag.drift import (
    DIAG_SCHEMA,
    DiagComparison,
    DiagRow,
    baseline_payload,
    collect_diag_metrics,
    compare_diag,
    load_baseline,
    metric_direction,
    save_baseline,
)
from repro.diag.leakage import (
    GADGET_TARGETS,
    GadgetLeakage,
    leakage_from_lines,
    measure_gadget_from_store,
    measure_gadget_live,
    plugin_mutual_information,
    render_heatmap,
    render_leakage,
    render_survey_leakage,
    survey_leakage,
    survey_leakage_from_store,
)
from repro.diag.oracle import (
    ORACLE_MI_CHARSET,
    OracleChannelDiag,
    measure_oracle_channel,
    oracle_channel_metrics,
)

__all__ = [
    "DIAG_SCHEMA",
    "DiagComparison",
    "DiagRow",
    "GADGET_TARGETS",
    "GadgetLeakage",
    "ORACLE_MI_CHARSET",
    "OracleChannelDiag",
    "baseline_payload",
    "channel_health",
    "collect_diag_metrics",
    "compare_diag",
    "eviction_quality",
    "fingerprint_confusion",
    "leakage_from_lines",
    "load_baseline",
    "measure_gadget_from_store",
    "measure_gadget_live",
    "measure_oracle_channel",
    "metric_direction",
    "oracle_channel_metrics",
    "plugin_mutual_information",
    "render_channel_health",
    "render_heatmap",
    "render_leakage",
    "render_survey_leakage",
    "render_timing_margins",
    "save_baseline",
    "single_step_fidelity",
    "survey_leakage",
    "survey_leakage_from_store",
    "timing_margins",
]
