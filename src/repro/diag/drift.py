"""The leakage drift gate: fail CI when channel quality regresses.

Modeled on the ``repro perf compare`` gate (PR 3) but for *leakage*
metrics instead of timings: :func:`collect_diag_metrics` runs the
deterministic diagnostics suite — the three gadgets' leakage meters,
the mitigation before/after loop, and the channel-health probes — into
one flat ``{metric: value}``
dict, and :func:`compare_diag` checks it against a committed
``benchmarks/diag_baseline.json`` with a per-metric *direction*:

* ``higher`` (bit accuracy, mutual information, eviction quality,
  fidelity) fails when ``current < baseline * (1 - tolerance)``;
* ``lower`` (misclassification rate) fails when
  ``current > baseline * (1 + tolerance)`` (plus an absolute epsilon
  so a 0.0 baseline doesn't make any nonzero value a failure);
* ``info`` metrics are recorded but never gate.

Every probe is seeded, so on one machine the collected numbers are
exactly reproducible; the tolerance absorbs the last-ulp libm
differences a different platform may introduce into the timing draws.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

DIAG_SCHEMA = "repro-diag/1"

DEFAULT_TOLERANCE = 0.05
# Absolute slack for lower-is-better metrics with ~0 baselines.
ABS_EPSILON = 0.005

DEFAULT_PARAMS = {
    "size": 120,
    "seed": 7,
    "samples": 1500,
    "n_targets": 4,
    "step_n": 32,
    "oracle_samples": 48,
}

# Direction per metric suffix (the part after "<gadget>." / the probe
# prefix).  Anything not matched here defaults to "info".
_HIGHER = (
    "byte_accuracy",
    "bit_accuracy",
    "bit_accuracy_min",
    "mi_bits_per_byte",
    "mi_bits",
    "bits_per_observation",
    "recovered_fraction",
    "exact_found",
    "timing.margin_sigma",
    "timing.empirical_separation",
    "eviction.found_fraction",
    "eviction.minimal_fraction",
    "eviction.verified_fraction",
    "eviction.congruent_fraction",
    "single_step.step_fidelity",
    "single_step.ftab_fault_fidelity",
    "single_step.page_accuracy",
    "confusion.test_accuracy",
    "confusion.diagonal_accuracy",
    "output_equal",
    "decodable",
    "guard_ok",
)
# Mitigated rows are checked first: under an effective mitigation the
# channel must stay *closed*, so leakage going up is the regression
# (e.g. ``oracle.size.padding.mi_bits``, or every ``after.*`` leakage
# metric of the ``repro mitigate`` loop — those must stay ~0 even
# though their un-prefixed suffixes are higher-is-better on the
# vulnerable kernel).
_LOWER = (
    "timing.misclassified_rate",
    "padding.mi_bits",
    "padding.recovered_fraction",
    "quantize.mi_bits",
    "quantize.recovered_fraction",
    "jitter.mi_bits",
    "jitter.recovered_fraction",
    "debreach.mi_bits",
    "debreach.recovered_fraction",
    "after.byte_accuracy",
    "after.bit_accuracy",
    "after.bit_accuracy_min",
    "after.mi_bits_per_byte",
    "after.bits_per_observation",
    "after.recovered_fraction",
    "after.exact_found",
    "residual_gadgets",
    "leftover_gadgets",
)


def metric_direction(name: str) -> str:
    """``higher`` / ``lower`` / ``info`` for one metric name."""
    for suffix in _LOWER:
        if name.endswith(suffix):
            return "lower"
    for suffix in _HIGHER:
        if name.endswith(suffix):
            return "higher"
    return "info"


def collect_diag_metrics(
    size: int = DEFAULT_PARAMS["size"],
    seed: int = DEFAULT_PARAMS["seed"],
    samples: int = DEFAULT_PARAMS["samples"],
    n_targets: int = DEFAULT_PARAMS["n_targets"],
    step_n: int = DEFAULT_PARAMS["step_n"],
    noise_sigma: Optional[float] = None,
    include_confusion: bool = False,
    oracle_samples: int = DEFAULT_PARAMS["oracle_samples"],
) -> dict:
    """Run the full diagnostics suite into one flat metrics dict.

    ``noise_sigma`` overrides the cache noise used by the channel
    probes — bumping it is the standard injected-regression drill for
    the gate.
    """
    from repro.diag.channel import channel_health
    from repro.diag.leakage import survey_leakage
    from repro.diag.oracle import oracle_channel_metrics

    metrics: dict[str, float] = {}
    for target, diag in survey_leakage(size, seed).items():
        metrics.update(diag.metric_dict(prefix=f"{target}."))

    # The mitigation loop on the cheapest target: the gate pins that
    # the synthesised patch keeps closing the channel (``after.*``
    # leakage ~0, zero residual gadgets) and stays output-preserving.
    from repro.mitigations.verify import verify_mitigation

    mit = verify_mitigation("lzw", size=size, seed=seed)
    for key, value in mit.metric_dict().items():
        metrics[f"mitigate.lzw.{key}"] = float(value)

    health = channel_health(
        samples=samples,
        n_targets=n_targets,
        step_n=step_n,
        noise_sigma=noise_sigma,
        include_confusion=include_confusion,
    )
    timing = health["timing"]
    for key in (
        "margin_sigma",
        "empirical_separation",
        "misclassified_rate",
        "hit_mean",
        "miss_mean",
        "noise_sigma",
    ):
        metrics[f"timing.{key}"] = float(timing[key])
    for key, value in health["eviction"].items():
        metrics[f"eviction.{key}"] = float(value)
    for key, value in health["single_step"].items():
        metrics[f"single_step.{key}"] = float(value)
    if include_confusion:
        conf = health["confusion"]
        metrics["confusion.test_accuracy"] = conf["test_accuracy"]
        metrics["confusion.diagonal_accuracy"] = conf["diagonal_accuracy"]
    if oracle_samples > 0:
        metrics.update(
            oracle_channel_metrics(seed=seed, n_samples=oracle_samples)
        )
    return metrics


def baseline_payload(metrics: dict, params: Optional[dict] = None) -> dict:
    """The JSON document ``repro diag collect --out`` writes."""
    return {
        "schema": DIAG_SCHEMA,
        "params": dict(params or DEFAULT_PARAMS),
        "metrics": dict(sorted(metrics.items())),
        "directions": {
            name: metric_direction(name) for name in sorted(metrics)
        },
    }


def save_baseline(path: str, payload: dict) -> None:
    """Write a :func:`baseline_payload` document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> dict:
    """Read a baseline back, rejecting non-``repro-diag/1`` files."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != DIAG_SCHEMA:
        raise ValueError(
            f"{path} is not a {DIAG_SCHEMA} baseline "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


@dataclass
class DiagRow:
    """One metric's comparison outcome."""

    name: str
    direction: str
    baseline: Optional[float]
    current: Optional[float]
    ok: bool
    note: str = ""


@dataclass
class DiagComparison:
    """The full gate result; ``ok`` is what CI exits on."""

    rows: list[DiagRow] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def regressions(self) -> list[DiagRow]:
        return [row for row in self.rows if not row.ok]

    def summary(self) -> str:
        lines = [
            f"diag compare (tolerance {self.tolerance * 100:.1f}%):",
            f"{'metric':<38} {'dir':<7} {'baseline':>12} "
            f"{'current':>12}  status",
        ]
        for row in self.rows:
            base = "-" if row.baseline is None else f"{row.baseline:.6g}"
            cur = "-" if row.current is None else f"{row.current:.6g}"
            status = "ok" if row.ok else "REGRESSED"
            if row.direction == "info" and row.ok:
                status = "info"
            note = f"  ({row.note})" if row.note else ""
            lines.append(
                f"{row.name:<38} {row.direction:<7} {base:>12} "
                f"{cur:>12}  {status}{note}"
            )
        verdict = "PASS" if self.ok else "FAIL"
        n_bad = len(self.regressions)
        lines.append(
            f"{verdict}: {n_bad} regression{'s' if n_bad != 1 else ''} "
            f"across {len(self.rows)} metrics"
        )
        return "\n".join(lines)


def compare_diag(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> DiagComparison:
    """Gate ``current`` metrics against a baseline payload.

    ``current`` may be a flat metrics dict or a full baseline-shaped
    payload; ``baseline`` must be the payload form (it carries the
    directions).  A metric present in the baseline but missing from
    the current run is a failure (the suite shrank); new metrics are
    informational.
    """
    base_metrics = baseline.get("metrics", baseline)
    directions = baseline.get("directions", {})
    cur_metrics = current.get("metrics", current)

    comparison = DiagComparison(tolerance=tolerance)
    for name in sorted(base_metrics):
        direction = directions.get(name) or metric_direction(name)
        base = float(base_metrics[name])
        if name not in cur_metrics:
            comparison.rows.append(
                DiagRow(name, direction, base, None, False, "missing")
            )
            continue
        cur = float(cur_metrics[name])
        if direction == "higher":
            ok = cur >= base * (1.0 - tolerance) - ABS_EPSILON
        elif direction == "lower":
            ok = cur <= base * (1.0 + tolerance) + ABS_EPSILON
        else:
            ok = True
        comparison.rows.append(DiagRow(name, direction, base, cur, ok))
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        comparison.rows.append(
            DiagRow(
                name,
                "info",
                None,
                float(cur_metrics[name]),
                True,
                "new",
            )
        )
    return comparison
