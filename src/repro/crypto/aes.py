"""T-table AES-128, the classic cache side-channel victim.

This is the software AES structure Osvik, Shamir and Tromer attacked
(the paper's reference [1]) and that TaintChannel is validated against
(Section III-B): each round reads four 1 KiB tables ``Te0..Te3`` at
indices that are bytes of the state, so the *addresses* of the lookups
carry plaintext taint (first round: ``pt[i] ^ key[i]``) and key taint
(every round, through the round keys).

The implementation is a real AES — verified against the FIPS-197 known
answer — written against the execution-context API so TaintChannel can
analyse it exactly like the compression kernels.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

SITE_TE = "aes/Te{k}[state byte]"
SITE_SBOX = "aes/sbox[state byte]"


def _build_sbox() -> list[int]:
    """Generate the Rijndael S-box (GF(2^8) inverse + affine map)."""

    def gf_mul(a: int, b: int) -> int:
        p = 0
        for _ in range(8):
            if b & 1:
                p ^= a
            hi = a & 0x80
            a = (a << 1) & 0xFF
            if hi:
                a ^= 0x1B
            b >>= 1
        return p

    # Discrete-log tables over the generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    sbox = [0] * 256
    for v in range(256):
        inv = 0 if v == 0 else exp[255 - log[v]]
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        sbox[v] = s ^ 0x63
    return sbox


def _xtime(v: int) -> int:
    v <<= 1
    return (v ^ 0x1B) & 0xFF if v & 0x100 else v


SBOX = _build_sbox()
TE0 = [
    (_xtime(s) << 24) | (s << 16) | (s << 8) | (_xtime(s) ^ s)
    for s in SBOX
]
TE1 = [((t >> 8) | (t << 24)) & 0xFFFFFFFF for t in TE0]
TE2 = [((t >> 16) | (t << 16)) & 0xFFFFFFFF for t in TE0]
TE3 = [((t >> 24) | (t << 8)) & 0xFFFFFFFF for t in TE0]
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key_bytes: list, sbox_array) -> list:
    """Rijndael key schedule for AES-128: 44 round-key words.

    ``key_bytes`` may be tainted; S-box lookups during expansion are
    themselves key-dependent memory accesses (and show up as gadgets).
    """
    words = []
    for i in range(4):
        w = key_bytes[4 * i]
        for b in key_bytes[4 * i + 1 : 4 * i + 4]:
            w = (w << 8) | b
        words.append(w & 0xFFFFFFFF)
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            sub = 0
            for shift in (24, 16, 8, 0):
                byte = (rotated >> shift) & 0xFF
                sub = (sub << 8) | sbox_array.get(byte, site=SITE_SBOX)
            temp = sub ^ (RCON[i // 4 - 1] << 24)
        words.append((words[i - 4] ^ temp) & 0xFFFFFFFF)
    return words


def aes128_encrypt_block(
    key: bytes,
    plaintext: bytes,
    ctx: Optional[ExecutionContext] = None,
) -> bytes:
    """Encrypt one 16-byte block with T-table AES-128.

    Key and plaintext are registered as distinct taint sources
    (``"key"`` / ``"input"``) so gadget reports show which one reaches
    each lookup address.
    """
    if len(key) != 16 or len(plaintext) != 16:
        raise ValueError("AES-128 needs 16-byte key and block")
    if ctx is None:
        ctx = NativeContext()

    sbox = ctx.array("sbox", 256, elem_size=1)
    sbox.load(SBOX)
    tables = []
    for k, te in enumerate((TE0, TE1, TE2, TE3)):
        arr = ctx.array(f"Te{k}", 256, elem_size=4)
        arr.load(te)
        tables.append(arr)
    te0, te1, te2, te3 = tables

    with ctx.func("aes128_encrypt"):
        key_vals = ctx.input_bytes(key, source="key")
        pt_vals = ctx.input_bytes(plaintext)
        rk = expand_key(key_vals, sbox)

        state = []
        for col in range(4):
            w = pt_vals[4 * col]
            for b in pt_vals[4 * col + 1 : 4 * col + 4]:
                w = (w << 8) | b
            state.append(w ^ rk[col])

        for rnd in range(1, 10):
            ctx.tick(4)
            s0, s1, s2, s3 = state
            state = [
                te0.get((s0 >> 24) & 0xFF, site=SITE_TE.format(k=0))
                ^ te1.get((s1 >> 16) & 0xFF, site=SITE_TE.format(k=1))
                ^ te2.get((s2 >> 8) & 0xFF, site=SITE_TE.format(k=2))
                ^ te3.get(s3 & 0xFF, site=SITE_TE.format(k=3))
                ^ rk[4 * rnd],
                te0.get((s1 >> 24) & 0xFF, site=SITE_TE.format(k=0))
                ^ te1.get((s2 >> 16) & 0xFF, site=SITE_TE.format(k=1))
                ^ te2.get((s3 >> 8) & 0xFF, site=SITE_TE.format(k=2))
                ^ te3.get(s0 & 0xFF, site=SITE_TE.format(k=3))
                ^ rk[4 * rnd + 1],
                te0.get((s2 >> 24) & 0xFF, site=SITE_TE.format(k=0))
                ^ te1.get((s3 >> 16) & 0xFF, site=SITE_TE.format(k=1))
                ^ te2.get((s0 >> 8) & 0xFF, site=SITE_TE.format(k=2))
                ^ te3.get(s1 & 0xFF, site=SITE_TE.format(k=3))
                ^ rk[4 * rnd + 2],
                te0.get((s3 >> 24) & 0xFF, site=SITE_TE.format(k=0))
                ^ te1.get((s0 >> 16) & 0xFF, site=SITE_TE.format(k=1))
                ^ te2.get((s1 >> 8) & 0xFF, site=SITE_TE.format(k=2))
                ^ te3.get(s2 & 0xFF, site=SITE_TE.format(k=3))
                ^ rk[4 * rnd + 3],
            ]

        # Final round: plain S-box, shifted rows, no MixColumns.
        s0, s1, s2, s3 = state
        srcs = [(s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1), (s3, s0, s1, s2)]
        out = []
        for col, (a, b, c, d) in enumerate(srcs):
            w = (
                (sbox.get((a >> 24) & 0xFF, site=SITE_SBOX) << 24)
                | (sbox.get((b >> 16) & 0xFF, site=SITE_SBOX) << 16)
                | (sbox.get((c >> 8) & 0xFF, site=SITE_SBOX) << 8)
                | sbox.get(d & 0xFF, site=SITE_SBOX)
            ) ^ rk[40 + col]
            out.append(value_of(w) & 0xFFFFFFFF)

    result = bytearray()
    for w in out:
        result += bytes(((w >> 24) & 0xFF, (w >> 16) & 0xFF, (w >> 8) & 0xFF, w & 0xFF))
    return bytes(result)
