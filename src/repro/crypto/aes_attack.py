"""First-round AES key recovery from T-table cache lines.

The classic exploitation of the gadget TaintChannel is validated against
(Osvik, Shamir and Tromer — the paper's reference [1]): the round-1
lookups are ``Te_t[pt[p] ^ k[p]]`` with 4-byte entries, so a
line-granular observer sees the index's top 4 bits and, knowing the
plaintext, learns the top nibble of every key byte — 64 of the 128 key
bits from a single known-plaintext encryption, confirmable across many.

This complements the detection story: the same trace TaintChannel used
to *find* the gadget suffices to *exploit* it.
"""

from __future__ import annotations

from repro.crypto.aes import aes128_encrypt_block
from repro.exec.context import TracingContext

# Byte position (into plaintext and round-0 key) consumed by each of the
# 16 round-1 table lookups, in execution order: output column-major,
# ShiftRows applied.
ROUND1_BYTE_ORDER = [
    0, 5, 10, 15,
    4, 9, 14, 3,
    8, 13, 2, 7,
    12, 1, 6, 11,
]

ENTRIES_PER_LINE = 64 // 4  # Te entries share 16-entry cache lines


def capture_round1_lines(key: bytes, plaintext: bytes) -> list[int]:
    """Cache-line indices of the 16 first-round Te lookups, in order
    (what Flush+Reload/Prime+Probe on the tables observes)."""
    ctx = TracingContext()
    aes128_encrypt_block(key, plaintext, ctx=ctx)
    lines = []
    for access in ctx.memory_accesses():
        if access.array.startswith("Te"):
            table = ctx.arrays[access.array]
            lines.append((access.address - table.base) // 4 // ENTRIES_PER_LINE)
            if len(lines) == 16:
                break
    return lines


def recover_high_nibbles(
    plaintexts: list[bytes], observed: list[list[int]]
) -> list[set[int]]:
    """Per key byte, the surviving candidates for its top nibble.

    Args:
        plaintexts: the known plaintexts.
        observed: per plaintext, the 16 round-1 line offsets (as from
            :func:`capture_round1_lines`).

    Returns:
        16 candidate sets; with noise-free observations each is a
        singleton ``{k[p] >> 4}``.
    """
    candidates: list[set[int]] = [set(range(16)) for _ in range(16)]
    for pt, lines in zip(plaintexts, observed):
        for slot, line in enumerate(lines):
            p = ROUND1_BYTE_ORDER[slot]
            # line == index >> 4 == (pt[p] ^ k[p]) >> 4; the xor of the
            # top nibbles is exact (low nibble cannot carry).
            k_high = line ^ (pt[p] >> 4)
            candidates[p] &= {k_high}
    return candidates


def recovered_key_mask(candidates: list[set[int]]) -> tuple[bytes, bytes]:
    """(partial_key, mask): recovered top nibbles and which bits are
    known (0xF0 where a nibble survived uniquely)."""
    key = bytearray(16)
    mask = bytearray(16)
    for p, cand in enumerate(candidates):
        if len(cand) == 1:
            key[p] = next(iter(cand)) << 4
            mask[p] = 0xF0
    return bytes(key), bytes(mask)
