"""Cryptographic validation workloads for TaintChannel.

The paper validates TaintChannel by rediscovering the Osvik et al. AES
T-table gadget in OpenSSL's software AES; :mod:`repro.crypto.aes` is a
from-scratch T-table AES-128 serving the same role.
"""

from repro.crypto.aes import aes128_encrypt_block, expand_key

__all__ = ["aes128_encrypt_block", "expand_key"]
