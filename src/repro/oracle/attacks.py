"""Attacker harnesses over sealed oracles.

Two attacks, one per scenario family:

* :class:`BreachAttack` — iterative BREACH secret recovery through a
  size (or timing) oracle: two-guess divide-and-conquer per character
  with charset escalation, driven by the pure core in
  :mod:`repro.recovery.oracle_recover`.
* :class:`MemCompTimingDistinguisher` — the KASLR/dedup-flavoured
  memory-compression attack: distinguish which of N candidate secrets
  is resident by storing each next to the secret and taking the argmin
  of the mean store latency (a correct candidate deduplicates against
  the secret, compresses further, and stores faster).

Both emit one :class:`~repro.traces.format.OracleProbe` record per
scored probe into ``self.probes``, ready for
:func:`repro.traces.capture.capture_oracle_trace`, and bracket their
runs in obs spans so ``--obs`` campaigns show per-attack query counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import obs
from repro.oracle.observables import Oracle
from repro.recovery.oracle_recover import (
    CONFIRM_THRESHOLD,
    DEFAULT_CHARSET_LADDER,
    ProbeOutcome,
    RecoveryResult,
    recover_secret,
)
from repro.traces.format import OracleProbe


@dataclass
class BreachResult:
    """Outcome of one BREACH recovery run."""

    recovered: bytes
    success: bool          # every position passed two-guess confirmation
    correct: Optional[bool]  # recovered == ground truth (None if unknown)
    queries: int
    probes: list[OracleProbe] = field(default_factory=list)


class BreachAttack:
    """Iterative BREACH secret recovery through a sealed oracle.

    Args:
        oracle: the sealed observable (size or time).
        prefix: the attacker-known bytes preceding the secret in the
            victim payload (BREACH's "bootstrapping secret").
        charsets: escalation ladder of charset names.
        reps: probe repetitions averaged per score (random re-padding).
        max_queries: hard query budget — a mitigated oracle burns
            queries without confirming, so the budget is the attack's
            give-up condition.
        confirm_threshold: two-guess delta that confirms a candidate, in
            observation units.  Defaults per observable: a quarter byte
            for size, half the per-byte transmit cost (ticks) for time.
        strategy: per-character search — ``"dnc"`` (two-guess divide and
            conquer, the size oracle's O(log) mode) or ``"scan"``
            (per-candidate singleton probes, which the timing oracle
            needs because multi-candidate probes pick up match-search
            timing systematics).  Defaults per observable.
    """

    def __init__(
        self,
        oracle: Oracle,
        prefix: bytes,
        charsets: Sequence[str] = DEFAULT_CHARSET_LADDER,
        reps: int = 2,
        seed: int = 0,
        max_queries: int = 50_000,
        confirm_threshold: Optional[float] = None,
        strategy: Optional[str] = None,
    ) -> None:
        if confirm_threshold is None:
            if oracle.observable == "time":
                # Half the per-byte cost of this victim's observable —
                # the timing analogue of the quarter-byte size threshold.
                confirm_threshold = -oracle.units_per_byte / 2
            else:
                confirm_threshold = CONFIRM_THRESHOLD
        if strategy is None:
            strategy = "scan" if oracle.observable == "time" else "dnc"
        self.strategy = strategy
        self.oracle = oracle
        self.prefix = bytes(prefix)
        self.charsets = tuple(charsets)
        self.reps = reps
        self.seed = seed
        self.max_queries = max_queries
        self.confirm_threshold = confirm_threshold
        self.probes: list[OracleProbe] = []

    def _on_probe(self, outcome: ProbeOutcome) -> None:
        self.probes.append(
            OracleProbe(
                step=outcome.step,
                label=outcome.label,
                probe_len=outcome.probe_len,
                observation=outcome.delta,
                queries=outcome.queries,
            )
        )
        obs.counter_add("oracle.probes")

    def run(self, length: int, truth: Optional[bytes] = None) -> BreachResult:
        """Recover ``length`` characters; score against ``truth`` if given."""
        self.probes.clear()
        with obs.span(
            "oracle.breach",
            observable=self.oracle.observable,
            mitigation=self.oracle.mitigation_name,
            length=length,
        ):
            result: RecoveryResult = recover_secret(
                self.oracle.observe,
                self.prefix,
                length,
                charsets=self.charsets,
                reps=self.reps,
                seed=self.seed,
                max_queries=self.max_queries,
                on_probe=self._on_probe,
                confirm_threshold=self.confirm_threshold,
                strategy=self.strategy,
            )
        correct = None
        if truth is not None:
            correct = result.recovered == bytes(truth)[:length]
        obs.counter_add("oracle.breach.chars_confirmed", result.confirmed)
        return BreachResult(
            recovered=result.recovered,
            success=result.success,
            correct=correct,
            queries=result.queries,
            probes=list(self.probes),
        )


@dataclass
class DistinguisherResult:
    """Outcome of one timing-distinguisher run."""

    chosen: bytes
    chosen_index: int
    means: list[float]     # mean observation per candidate, probe order
    margin: float          # runner-up mean minus winner mean
    queries: int
    probes: list[OracleProbe] = field(default_factory=list)


class MemCompTimingDistinguisher:
    """Pick the resident secret out of N candidates by store latency.

    The KASLR-break shape of the memory-compression attack: the secret
    is known to be one of ``candidates`` (candidate pointer values,
    dedup targets); storing a page containing the right one compresses
    further and returns measurably faster.
    """

    def __init__(self, oracle: Oracle, reps: int = 5) -> None:
        self.oracle = oracle
        self.reps = reps
        self.probes: list[OracleProbe] = []

    def run(self, candidates: Sequence[bytes]) -> DistinguisherResult:
        if not candidates:
            raise ValueError("need at least one candidate")
        self.probes.clear()
        means: list[float] = []
        with obs.span(
            "oracle.memcomp",
            observable=self.oracle.observable,
            mitigation=self.oracle.mitigation_name,
            n_candidates=len(candidates),
        ):
            for i, cand in enumerate(candidates):
                cand = bytes(cand)
                total = 0.0
                for _ in range(max(1, self.reps)):
                    total += self.oracle.observe(cand)
                mean = total / max(1, self.reps)
                means.append(mean)
                probe = OracleProbe(
                    step=i,
                    label=f"candidate:{cand[:12].decode('latin1')}",
                    probe_len=len(cand),
                    observation=mean,
                    queries=self.oracle.queries,
                )
                self.probes.append(probe)
                obs.counter_add("oracle.probes")
        order = sorted(range(len(means)), key=means.__getitem__)
        winner = order[0]
        margin = (
            means[order[1]] - means[winner] if len(means) > 1 else float("inf")
        )
        return DistinguisherResult(
            chosen=bytes(candidates[winner]),
            chosen_index=winner,
            means=means,
            margin=margin,
            queries=self.oracle.queries,
            probes=list(self.probes),
        )
