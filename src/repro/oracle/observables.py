"""The sealed oracle layer: one scalar per query, nothing else.

A compression-oracle attacker never sees the victim's memory, code, or
plaintext — only a single number per request: the compressed response
size (BREACH reads it off Content-Length) or the wall-time of the
compression (Schwarzl et al. time the ZRAM store).  :class:`Oracle`
enforces that boundary in the type system: attacks receive an oracle,
not a victim, and the oracle exports exactly ``observe(query) -> float``
plus a query counter.

Determinism: every observation is a pure function of
``(victim state, query, oracle seed, query index)``.  The timing model
adds seeded Gaussian measurement noise to the victim's virtual ticks,
and mitigations draw their randomness from the same per-query RNG — so
campaigns replay bit-identically and recorded probe traces re-score
exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro import obs
from repro.mitigations.padding import OracleMitigation, get_oracle_mitigation

OBSERVABLES = ("size", "time")


class Oracle(ABC):
    """Sealed query interface over a victim.

    Subclasses implement :meth:`_measure`; the public :meth:`observe`
    owns the per-query RNG, the query counter, and the mitigation
    transform, so no subclass can accidentally widen the channel.
    """

    observable: str = "?"

    def __init__(
        self,
        victim,
        mitigation: OracleMitigation | None = None,
        seed: int = 0,
    ) -> None:
        self._victim = victim
        self._mitigation = mitigation or OracleMitigation()
        self._seed = seed
        self.queries = 0

    @property
    def mitigation_name(self) -> str:
        return self._mitigation.name

    @property
    def units_per_byte(self) -> float:
        """How much one compressed byte moves this observable — the
        scale attacks calibrate their decision thresholds against.
        (This is attacker-known calibration data, not a leak: a real
        attacker measures it from reference queries.)"""
        return 1.0

    def _rng(self, query: bytes) -> random.Random:
        # Deterministic per (oracle seed, query index, query bytes):
        # bytes-seeding hashes via SHA-512 internally, so this is stable
        # across processes (unlike hash()-based seeding).
        return random.Random(
            b"%d:%d:" % (self._seed, self.queries) + bytes(query)
        )

    def observe(self, query: bytes) -> float:
        """The one number the attacker gets for this query."""
        rng = self._rng(query)
        value = self._transform(self._measure(bytes(query)), rng)
        self.queries += 1
        obs.counter_add("oracle.queries")
        return value

    @abstractmethod
    def _measure(self, query: bytes) -> float:
        """The victim-side raw measurement (pre-mitigation)."""

    @abstractmethod
    def _transform(self, value: float, rng: random.Random) -> float:
        """Apply the observable-appropriate mitigation transform."""


class SizeOracle(Oracle):
    """Compressed-size observable: BREACH's Content-Length channel."""

    observable = "size"

    def _measure(self, query: bytes) -> float:
        return float(self._victim.size(query))

    def _transform(self, value: float, rng: random.Random) -> float:
        return float(self._mitigation.transform_size(int(value), rng))


class TimingOracle(Oracle):
    """Wall-time observable: virtual compression ticks plus seeded
    Gaussian measurement noise (the deterministic timing model)."""

    observable = "time"

    def __init__(
        self,
        victim,
        mitigation: OracleMitigation | None = None,
        seed: int = 0,
        noise_ticks: float = 3.0,
    ) -> None:
        super().__init__(victim, mitigation, seed)
        self.noise_ticks = noise_ticks

    @property
    def units_per_byte(self) -> float:
        return float(self._victim.TICKS_PER_BYTE)

    def _measure(self, query: bytes) -> float:
        return float(self._victim.ticks(query))

    def _transform(self, value: float, rng: random.Random) -> float:
        noisy = value + rng.gauss(0.0, self.noise_ticks)
        return self._mitigation.transform_time(noisy, rng)


def make_oracle(
    victim,
    observable: str = "size",
    mitigation: str = "none",
    seed: int = 0,
    **mitigation_params,
) -> Oracle:
    """Seal a victim behind the named observable and mitigation."""
    shaped = get_oracle_mitigation(mitigation, **mitigation_params)
    if observable == "size":
        return SizeOracle(victim, shaped, seed)
    if observable == "time":
        return TimingOracle(victim, shaped, seed)
    raise ValueError(
        f"unknown observable {observable!r}; choose from {OBSERVABLES}"
    )
