"""Compression-ratio and timing oracles: the BREACH / memory-compression
scenario family.

The cache channels elsewhere in this reproduction leak through *where*
compression touches memory; this package reproduces the older, coarser
channel the paper situates itself against — compression leaks through
*how well it compresses*.  An attacker who can (a) inject chosen bytes
next to a secret and (b) observe one scalar per attempt — compressed
size or compression time — recovers the secret without any shared cache
at all.

Layered exactly like the real attacks:

* :mod:`repro.oracle.victims` — open victim models: a gzip web endpoint
  reflecting attacker input next to a CSRF token (BREACH) and a
  ZRAM-style compressed page store (Schwarzl et al.).
* :mod:`repro.oracle.observables` — the sealed :class:`Oracle`
  boundary: ``observe(query) -> float`` and nothing else, with the
  deterministic timing model and the observable-shaping mitigations of
  :mod:`repro.mitigations.padding` applied inside the seal.
* :mod:`repro.oracle.attacks` — :class:`BreachAttack` (two-guess
  divide-and-conquer character recovery, core logic in
  :mod:`repro.recovery.oracle_recover`) and
  :class:`MemCompTimingDistinguisher` (argmin-latency candidate
  distinguishing).

CLI: ``python -m repro oracle demo|attack|sweep``.  Campaigns:
``breach_recovery``, ``memcomp_timing``, ``oracle_mitigation_sweep``.
Diagnostics: :mod:`repro.diag.oracle` scores per-character mutual
information through the same plug-in MI core as the cache channels.
"""

from repro.oracle.attacks import (
    BreachAttack,
    BreachResult,
    DistinguisherResult,
    MemCompTimingDistinguisher,
)
from repro.oracle.observables import (
    OBSERVABLES,
    Oracle,
    SizeOracle,
    TimingOracle,
    make_oracle,
)
from repro.oracle.victims import (
    VICTIMS,
    HttpResponseVictim,
    MemCompressionVictim,
    make_victim,
)

__all__ = [
    "BreachAttack",
    "BreachResult",
    "DistinguisherResult",
    "HttpResponseVictim",
    "MemCompTimingDistinguisher",
    "MemCompressionVictim",
    "OBSERVABLES",
    "Oracle",
    "SizeOracle",
    "TimingOracle",
    "VICTIMS",
    "make_oracle",
    "make_victim",
]
