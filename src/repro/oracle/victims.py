"""The victims behind the compression oracles.

Two scenario families from the compression-oracle literature that the
paper positions ZipChannel against (Section II related work):

* :class:`HttpResponseVictim` — the BREACH setting: a web server gzips
  a response that interleaves a fixed secret (a CSRF token) with
  attacker-reflected input.  The attacker sees only the compressed
  response size (or the compression wall-time).
* :class:`MemCompressionVictim` — the Schwarzl et al. memory-compression
  setting: a ZRAM-style store compresses a page that co-locates
  attacker-controlled bytes with a secret; store latency depends on
  compressibility, so a guess that matches the secret is observably
  faster (and smaller).

Victims are *open* objects — they expose their secret so experiments
can score recovery accuracy.  The attacker-facing seal lives one layer
up in :mod:`repro.oracle.observables`, which wraps a victim and exports
nothing but a scalar per query.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.gzip_container import CONTAINER_OVERHEAD, gzip_compress
from repro.compression.lz77 import deflate_compress
from repro.exec.context import NativeContext, Profiler
from repro.memsys.paging import PAGE_SIZE, AddressSpace
from repro.mitigations.debreach import guarded_gzip_compress
from repro.workloads.generators import (
    HttpResponseGenerator,
    english_like,
    random_bytes,
    token_secret,
)

VICTIMS = ("http", "memcomp")

#: Ticks charged per byte written back by the memory-compression store.
#: Models the ZRAM copy-out: latency grows with *compressed* size, which
#: is the paper-adjacent reason compressibility is timing-observable.
STORE_TICKS_PER_BYTE = 4

#: Ticks charged per compressed byte the HTTP victim serialises onto the
#: wire.  Couples response time to response size the way TIME/HEIST do:
#: even when Content-Length is hidden, transmission cost leaks it.  Set
#: well above the deflate search-path tick variance (~5 ticks between
#: same-multiset probes) so a one-byte size delta survives in time.
TRANSMIT_TICKS_PER_BYTE = 16


class HttpResponseVictim:
    """A gzip-compressing web endpoint with a reflected query parameter.

    Args:
        secret: the CSRF token to protect; generated from ``seed`` and
            ``charset`` when omitted.
        debreach: harden with the taint-guarded deflater — the secret
            span is excluded from LZ77 match search, so reflected input
            can never compress against it.
    """

    name = "http"
    #: Ticks one compressed byte costs on this victim's time observable.
    TICKS_PER_BYTE = TRANSMIT_TICKS_PER_BYTE

    def __init__(
        self,
        secret: Optional[bytes] = None,
        seed: int = 0,
        secret_len: int = 12,
        charset: str = "alnum_lower",
        filler_bytes: int = 160,
        debreach: bool = False,
    ) -> None:
        if secret is None:
            secret = token_secret(secret_len, seed, charset)
        self.secret = bytes(secret)
        self.debreach = debreach
        self.generator = HttpResponseGenerator(
            self.secret, seed=seed, filler_bytes=filler_bytes
        )

    @property
    def known_prefix(self) -> bytes:
        """The attacker-known bytes immediately preceding the secret."""
        return HttpResponseGenerator.SECRET_PREFIX

    def payload(self, query: bytes) -> bytes:
        return self.generator.response(query)

    def compress(self, query: bytes, ctx=None) -> bytes:
        payload = self.generator.response(query)
        if self.debreach:
            span = self.generator.secret_span(query)
            return guarded_gzip_compress(payload, [span], ctx)
        return gzip_compress(payload, ctx)

    def size(self, query: bytes) -> int:
        """Compressed response size — the Content-Length the network sees."""
        return len(self.compress(query))

    def ticks(self, query: bytes) -> int:
        """Virtual response time: deflate ticks plus per-byte transmit
        cost for the compressed bytes (the TIME/HEIST observation that
        response *duration* proxies response size)."""
        profiler = Profiler()
        blob = self.compress(query, ctx=NativeContext(profiler))
        return profiler.now + TRANSMIT_TICKS_PER_BYTE * len(blob)


class MemCompressionVictim:
    """A ZRAM-style compressed page store with an attacker-shared page.

    One page interleaves compressible filler, a marker-tagged secret,
    and an attacker-writable region; :meth:`store` writes a guess into
    the attacker region, compresses the page, and returns
    compressibility-dependent cost.  The page lives in a
    :class:`~repro.memsys.paging.AddressSpace` so the scenario shares
    the reproduction's memory model (finite frames, page-granular
    mapping) rather than inventing its own.
    """

    name = "memcomp"
    #: Ticks one compressed byte costs on this victim's time observable.
    TICKS_PER_BYTE = STORE_TICKS_PER_BYTE

    BASE_VADDR = 0x5000_0000
    MARKER = b"\x00ptr="

    def __init__(
        self,
        secret: Optional[bytes] = None,
        seed: int = 0,
        secret_len: int = 8,
        charset: str = "alnum_lower",
        page_size: int = PAGE_SIZE // 4,
    ) -> None:
        if secret is None:
            secret = token_secret(secret_len, seed, charset)
        self.secret = bytes(secret)
        self.page_size = page_size
        self.space = AddressSpace(seed=seed)
        self.space.map_range(self.BASE_VADDR, page_size)
        # Filler is compressible text; the tail pad is incompressible so
        # page size stays fixed without adding exploitable redundancy.
        filler_len = max(0, page_size // 2 - len(self.MARKER) - len(secret))
        self._head = (
            english_like(filler_len, seed ^ 0x3A7)
            + self.MARKER
            + self.secret
        )
        self._pad = random_bytes(page_size, seed ^ 0x5C3)

    @property
    def known_prefix(self) -> bytes:
        """The marker tagging the secret in the page — a BREACH-style
        attacker guesses ``MARKER + candidate`` so a correct candidate
        extends the match into the resident secret."""
        return self.MARKER

    def page_bytes(self, guess: bytes) -> bytes:
        """The page content with ``guess`` written to the shared region."""
        body = self._head + self.MARKER + bytes(guess)
        if len(body) > self.page_size:
            raise ValueError(
                f"guess of {len(guess)} bytes overflows the "
                f"{self.page_size}-byte page"
            )
        return body + self._pad[: self.page_size - len(body)]

    def store(self, guess: bytes) -> tuple[int, int]:
        """Write the page through the compressed store.

        Returns ``(compressed_size, ticks)``: deflate body size plus the
        virtual time of compressing and copying out the compressed page.
        """
        page = self.page_bytes(guess)
        # Touch the address space like a real store would: translate the
        # first and last byte of the page being written back.
        self.space.translate(self.BASE_VADDR, "write")
        self.space.translate(self.BASE_VADDR + self.page_size - 1, "write")
        profiler = Profiler()
        body = deflate_compress(page, ctx=NativeContext(profiler))
        ticks = profiler.now + STORE_TICKS_PER_BYTE * len(body)
        return len(body), ticks

    def size(self, guess: bytes) -> int:
        """Stored (compressed) page size, with container accounting to
        match the HTTP victim's size semantics."""
        return self.store(guess)[0] + CONTAINER_OVERHEAD

    def ticks(self, guess: bytes) -> int:
        """Store latency in virtual ticks — the Schwarzl observable."""
        return self.store(guess)[1]


def make_victim(name: str, mitigation: str = "none", **params):
    """Construct a victim by CLI/campaign name.

    ``mitigation="debreach"`` is victim-side (it changes the compressor)
    and only the HTTP victim supports it; observable-shaping mitigations
    are applied by :func:`repro.oracle.observables.make_oracle` instead.
    """
    debreach = mitigation == "debreach"
    if name == "http":
        return HttpResponseVictim(debreach=debreach, **params)
    if name == "memcomp":
        if debreach:
            raise ValueError(
                "debreach guards the HTTP deflate path; the memcomp "
                "victim has no secret-span metadata to guard"
            )
        return MemCompressionVictim(**params)
    raise ValueError(f"unknown victim {name!r}; choose from {VICTIMS}")
