"""Indexed on-disk trace corpus: the capture-once/analyze-many layer.

Layout of one store directory (conventionally named ``<name>.trstore``)::

    <root>/
      manifest.json        store identity: format version, created_at
      traces/<id>.trc      the binary trace (see repro.traces.format)
      traces/<id>.json     sidecar entry: species, sha256, n_records,
                           size, created_at, and free-form metadata
                           (experiment id, input label, seed, capture
                           params, ...)

Each trace's sidecar is written atomically *after* its ``.trc`` file is
complete, so a crashed capture leaves at most an orphan ``.trc`` that
``list`` never surfaces and ``verify`` flags.  Because every trace owns
its own pair of files, parallel campaign workers can capture into the
same store without any cross-process locking — there is no shared file
two writers ever race on.

Corruption detection happens at two levels: every read streams through
the per-chunk CRCs of the binary format, and :meth:`TraceStore.verify`
additionally recomputes each file's SHA-256 against the sidecar.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.traces.format import (
    TraceFormatError,
    TraceReader,
    TraceWriter,
    TraceRecord,
    DEFAULT_CHUNK_RECORDS,
    count_trace_records,
)

MANIFEST_NAME = "manifest.json"
TRACES_DIR = "traces"
STORE_VERSION = 1

_ID_ALLOWED = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
                  "0123456789._-")


def _check_trace_id(trace_id: str) -> str:
    if not trace_id or not set(trace_id) <= _ID_ALLOWED:
        raise ValueError(
            f"invalid trace id {trace_id!r}: use letters, digits, '.', "
            f"'_' and '-'"
        )
    return trace_id


def file_sha256(path) -> str:
    """SHA-256 of a file, streamed in 1 MiB blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                return digest.hexdigest()
            digest.update(block)


@dataclass
class TraceEntry:
    """One trace's index record (the parsed sidecar)."""

    trace_id: str
    species: str
    sha256: str
    n_records: int
    size_bytes: int
    created_at: float
    meta: dict

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "species": self.species,
            "sha256": self.sha256,
            "n_records": self.n_records,
            "size_bytes": self.size_bytes,
            "created_at": self.created_at,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEntry":
        return cls(
            trace_id=data["trace_id"],
            species=data["species"],
            sha256=data["sha256"],
            n_records=int(data["n_records"]),
            size_bytes=int(data["size_bytes"]),
            created_at=float(data.get("created_at", 0.0)),
            meta=dict(data.get("meta", {})),
        )


@dataclass
class VerifyReport:
    """Outcome of :meth:`TraceStore.verify` for one trace."""

    trace_id: str
    ok: bool
    problem: Optional[str] = None


class _StoreWriter:
    """Context manager returned by :meth:`TraceStore.create`.

    Streams records into ``<id>.trc`` and registers the sidecar entry on
    successful close; on error the partial file is removed and no entry
    appears in the store.
    """

    def __init__(
        self,
        store: "TraceStore",
        trace_id: str,
        species: str,
        meta: dict,
        chunk_records: int,
    ) -> None:
        self._store = store
        self._trace_id = trace_id
        self._meta = meta
        self._path = store.trace_path(trace_id)
        self._tmp = self._path.with_suffix(".trc.tmp")
        self._handle = open(self._tmp, "wb")
        self._writer = TraceWriter(self._handle, species, chunk_records)
        self.entry: Optional[TraceEntry] = None

    def append(self, record: TraceRecord) -> None:
        self._writer.append(record)

    def extend(self, records) -> None:
        self._writer.extend(records)

    def close(self) -> TraceEntry:
        if self.entry is not None:
            return self.entry
        summary = self._writer.close()
        self._handle.close()
        os.replace(self._tmp, self._path)
        entry = TraceEntry(
            trace_id=self._trace_id,
            species=summary.species,
            sha256=file_sha256(self._path),
            n_records=summary.n_records,
            size_bytes=summary.size_bytes,
            created_at=time.time(),
            meta=self._meta,
        )
        self._store._write_entry(entry)
        self.entry = entry
        return entry

    def abort(self) -> None:
        self._handle.close()
        if self._tmp.exists():
            self._tmp.unlink()

    def __enter__(self) -> "_StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class TraceStore:
    """A directory of captured traces with list/get/put/verify."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.manifest_path = self.root / MANIFEST_NAME
        self.traces_dir = self.root / TRACES_DIR

    # -- lifecycle ------------------------------------------------------
    def exists(self) -> bool:
        return self.manifest_path.exists()

    def open(self, create: bool = True) -> "TraceStore":
        """Ensure the directory is an initialised store."""
        if self.exists():
            manifest = self._load_manifest()
            if manifest.get("store_version") != STORE_VERSION:
                raise ValueError(
                    f"{self.root} is a v{manifest.get('store_version')} "
                    f"trace store; this code speaks v{STORE_VERSION}"
                )
            return self
        if not create:
            raise FileNotFoundError(f"no trace store at {self.root}")
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_json(
            self.manifest_path,
            {"store_version": STORE_VERSION, "created_at": time.time()},
        )
        return self

    def _load_manifest(self) -> dict:
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- paths ----------------------------------------------------------
    def trace_path(self, trace_id: str) -> Path:
        return self.traces_dir / f"{_check_trace_id(trace_id)}.trc"

    def entry_path(self, trace_id: str) -> Path:
        return self.traces_dir / f"{_check_trace_id(trace_id)}.json"

    # -- write ----------------------------------------------------------
    def create(
        self,
        trace_id: str,
        species: str,
        meta: Optional[dict] = None,
        overwrite: bool = False,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> _StoreWriter:
        """Open a streaming writer for a new trace.

        The trace becomes visible (listable) only when the writer closes
        cleanly.
        """
        self.open()
        if not overwrite and self.entry_path(trace_id).exists():
            raise FileExistsError(
                f"trace {trace_id!r} already exists in {self.root}; "
                f"pass overwrite=True to replace it"
            )
        return _StoreWriter(self, trace_id, species, dict(meta or {}), chunk_records)

    def put(
        self,
        trace_id: str,
        species: str,
        records,
        meta: Optional[dict] = None,
        overwrite: bool = False,
    ) -> TraceEntry:
        """Write a complete trace in one call; returns its entry."""
        with self.create(trace_id, species, meta, overwrite) as writer:
            writer.extend(records)
        assert writer.entry is not None
        return writer.entry

    def _write_entry(self, entry: TraceEntry) -> None:
        self._atomic_json(self.entry_path(entry.trace_id), entry.to_dict())

    @staticmethod
    def _atomic_json(path: Path, payload: dict) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- read -----------------------------------------------------------
    def get(self, trace_id: str) -> TraceEntry:
        """The index entry for one trace (KeyError when absent)."""
        path = self.entry_path(trace_id)
        if not path.exists():
            raise KeyError(f"no trace {trace_id!r} in {self.root}")
        with open(path, "r", encoding="utf-8") as handle:
            return TraceEntry.from_dict(json.load(handle))

    def trace_ids(self) -> list[str]:
        if not self.traces_dir.is_dir():
            return []
        return sorted(p.stem for p in self.traces_dir.glob("*.json"))

    def list(
        self,
        species: Optional[str] = None,
        **meta_filters,
    ) -> list[TraceEntry]:
        """All entries, optionally filtered by species and metadata
        equality (``store.list(experiment="survey", target="zlib")``)."""
        out = []
        for trace_id in self.trace_ids():
            entry = self.get(trace_id)
            if species is not None and entry.species != species:
                continue
            if any(entry.meta.get(k) != v for k, v in meta_filters.items()):
                continue
            out.append(entry)
        return out

    def iter_records(self, trace_id: str) -> Iterator[TraceRecord]:
        """Stream one trace's records (chunk CRCs checked as read)."""
        entry = self.get(trace_id)
        with open(self.trace_path(trace_id), "rb") as handle:
            reader = TraceReader(handle)
            if reader.species != entry.species:
                raise TraceFormatError(
                    f"trace {trace_id!r}: file says species "
                    f"{reader.species!r} but the index says "
                    f"{entry.species!r}"
                )
            yield from reader

    def read(self, trace_id: str) -> list[TraceRecord]:
        """Materialise one trace (small traces / tests)."""
        return list(self.iter_records(trace_id))

    def read_columns(self, trace_id: str):
        """Decode one trace straight into numpy columns.

        Returns :class:`repro.traces.columns.MemoryColumns` or
        :class:`~repro.traces.columns.FingerprintColumns` — the
        array-native view replay analyses run on, 1–2 orders of
        magnitude faster than materialising records.  Raises
        ``ValueError`` for oracle traces (no columnar layout).
        """
        from repro.traces.columns import read_trace_columns

        entry = self.get(trace_id)
        columns = read_trace_columns(self.trace_path(trace_id))
        if columns.species != entry.species:
            raise TraceFormatError(
                f"trace {trace_id!r}: file says species "
                f"{columns.species!r} but the index says "
                f"{entry.species!r}"
            )
        return columns

    def count_records(self, trace_id: str) -> int:
        """Record count from chunk headers alone (CRC-checked, no
        per-record decode) — what ``verify`` uses to cross-check the
        sidecar's ``n_records``."""
        self.get(trace_id)  # surface KeyError for unknown ids
        return count_trace_records(self.trace_path(trace_id))

    # -- integrity ------------------------------------------------------
    def verify(self, trace_id: Optional[str] = None) -> list[VerifyReport]:
        """Recompute hashes and CRC-check every chunk of one or all
        traces, cross-checking record counts against the sidecars.

        Also flags orphan ``.trc`` files that have no sidecar (a capture
        that died before committing).
        """
        reports: list[VerifyReport] = []
        ids = [trace_id] if trace_id is not None else self.trace_ids()
        for tid in ids:
            reports.append(self._verify_one(tid))
        if trace_id is None and self.traces_dir.is_dir():
            known = set(self.trace_ids())
            for orphan in sorted(self.traces_dir.glob("*.trc")):
                if orphan.stem not in known:
                    reports.append(
                        VerifyReport(orphan.stem, False, "orphan trace file (no index entry)")
                    )
        return reports

    def _verify_one(self, trace_id: str) -> VerifyReport:
        try:
            entry = self.get(trace_id)
        except KeyError as exc:
            return VerifyReport(trace_id, False, str(exc))
        path = self.trace_path(trace_id)
        if not path.exists():
            return VerifyReport(trace_id, False, "trace file missing")
        actual_sha = file_sha256(path)
        if actual_sha != entry.sha256:
            return VerifyReport(
                trace_id,
                False,
                f"sha256 mismatch: index {entry.sha256[:12]}…, "
                f"file {actual_sha[:12]}…",
            )
        try:
            n = count_trace_records(path)
        except TraceFormatError as exc:
            return VerifyReport(trace_id, False, f"decode failed: {exc}")
        if n != entry.n_records:
            return VerifyReport(
                trace_id,
                False,
                f"record count mismatch: index {entry.n_records}, file {n}",
            )
        return VerifyReport(trace_id, True)

    def delete(self, trace_id: str) -> None:
        """Remove a trace and its index entry."""
        entry_path = self.entry_path(trace_id)
        trace_path = self.trace_path(trace_id)
        if not entry_path.exists() and not trace_path.exists():
            raise KeyError(f"no trace {trace_id!r} in {self.root}")
        # Entry first: a half-deleted trace must not stay listable.
        if entry_path.exists():
            entry_path.unlink()
        if trace_path.exists():
            trace_path.unlink()
