"""Victim-side capture: run a kernel once, persist what the attacker saw.

Capture is the expensive half of every experiment — a traced bzip2 run
or a 10,000-round Flush+Reload sweep re-executes the victim — so these
helpers run it exactly once and stream the result into a
:class:`~repro.traces.store.TraceStore`, together with everything an
analysis pass later needs:

* **memory traces** record the tainted :class:`MemoryAccess` stream of a
  named survey target (``zlib``/``lzw``/``bzip2``), plus the array base
  addresses and input provenance (kind, size, seed) in metadata — the
  recovery decoders need the bases, and the input regenerates from its
  seed for accuracy scoring without storing the secret itself;
* **fingerprint traces** record one raw 2 x N_SAMPLES capture per
  classifier example with its per-capture seed
  (:func:`~repro.core.zipchannel.fingerprint.derive_capture_seed`), so a
  stored dataset is bit-identical to the live
  :func:`~repro.core.zipchannel.fingerprint.build_dataset` output under
  the same base seed.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

from repro import obs
from repro.traces.format import (
    FingerprintCapture,
    OracleProbe,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    SPECIES_ORACLE,
)
from repro.traces.store import TraceEntry, TraceStore

MEMORY_TARGETS = ("zlib", "lzw", "bzip2")
FINGERPRINT_CORPORA = ("brotli", "lipsum")


def _input_for(input_kind: str, size: int, seed: int) -> bytes:
    from repro.campaign.experiments import make_input

    return make_input(input_kind, size, seed)


def default_input_kind(target: str) -> str:
    """The survey's input regime per target: zlib's full recovery needs
    lowercase ASCII (known high bits); the others use random bytes."""
    return "lowercase" if target == "zlib" else "random"


def run_memory_target(target: str, data: bytes):
    """Run one survey target under tracing; returns the populated
    :class:`~repro.exec.context.TracingContext`."""
    from repro.exec import InstrumentationTier, TracingContext

    # Captured ZTRC files hold only the access stream, which the
    # ADDRESS_ONLY tier produces byte-identically to a FULL run.
    ctx = TracingContext(tier=InstrumentationTier.ADDRESS_ONLY)
    if target == "zlib":
        from repro.compression import deflate_compress

        deflate_compress(data, ctx=ctx)
    elif target == "lzw":
        from repro.compression import lzw_compress

        lzw_compress(data, ctx=ctx)
    elif target == "bzip2":
        from repro.compression.bzip2.blocksort import histogram

        block = ctx.array("block", len(data))
        for i, v in enumerate(ctx.input_bytes(data)):
            block.set(i, v)
        histogram(ctx, block, len(data))
    else:
        raise ValueError(
            f"unknown memory-trace target {target!r}; "
            f"choose from {MEMORY_TARGETS}"
        )
    return ctx


def capture_memory_trace(
    store: TraceStore,
    trace_id: str,
    target: str,
    size: int,
    seed: int,
    input_kind: Optional[str] = None,
    overwrite: bool = False,
    extra_meta: Optional[dict] = None,
) -> TraceEntry:
    """Capture one survey target's tainted access trace into the store.

    The stored metadata carries the recovery parameters (array bases,
    input provenance); :mod:`repro.traces.replay` turns the pair back
    into the exact inputs the Section IV decoders take.
    """
    input_kind = input_kind or default_input_kind(target)
    data = _input_for(input_kind, size, seed)
    with obs.span(
        "trace.capture.memory", trace_id=trace_id, target=target, size=size
    ):
        ctx = run_memory_target(target, data)
    ctx.publish_stats()
    meta = {
        "species": SPECIES_MEMORY,
        "target": target,
        "input_kind": input_kind,
        "size": size,
        "input_seed": seed,
        "input_sha256": hashlib.sha256(data).hexdigest(),
        "bases": {name: arr.base for name, arr in ctx.arrays.items()},
        **(extra_meta or {}),
    }
    with store.create(
        trace_id, SPECIES_MEMORY, meta, overwrite=overwrite
    ) as writer:
        writer.extend(ctx.tainted_accesses())
    assert writer.entry is not None
    obs.counter_add("trace.records", writer.entry.n_records)
    return writer.entry


def fingerprint_corpus(corpus: str) -> list[bytes]:
    """The named fingerprint corpus as an ordered file list (order is
    the label assignment, so it must match live dataset assembly)."""
    from repro.workloads import brotli_like_corpus, repetitiveness_series

    if corpus == "brotli":
        return list(brotli_like_corpus().values())
    if corpus == "lipsum":
        return repetitiveness_series()
    raise ValueError(
        f"unknown corpus {corpus!r}; choose from {FINGERPRINT_CORPORA}"
    )


def capture_fingerprint_traces(
    store: TraceStore,
    trace_id: str,
    corpus: str,
    traces_per_file: int,
    seed: int,
    channel_params: Optional[dict] = None,
    work_factor: Optional[int] = None,
    overwrite: bool = False,
    extra_meta: Optional[dict] = None,
    max_file_bytes: Optional[int] = None,
) -> TraceEntry:
    """Capture a whole fingerprint dataset into one stored trace.

    One :class:`FingerprintCapture` record per (file, repetition), each
    carrying its derived capture seed; the victim timeline is computed
    once per file (the compression run) and sampled ``traces_per_file``
    times (the cheap, noisy part) — same structure as live
    :func:`~repro.core.zipchannel.fingerprint.build_dataset`.
    """
    from repro.core.zipchannel.fingerprint import (
        FingerprintChannel,
        capture_raw_trace,
        derive_capture_seed,
        victim_timeline,
    )

    files = fingerprint_corpus(corpus)
    if max_file_bytes is not None:
        files = [f[: int(max_file_bytes)] for f in files]
    channel = FingerprintChannel(**(channel_params or {}))
    meta = {
        "species": SPECIES_FINGERPRINT,
        "corpus": corpus,
        "n_files": len(files),
        "traces_per_file": traces_per_file,
        "base_seed": seed,
        "channel": {
            "period": channel.period,
            "p_false_negative": channel.p_false_negative,
            "p_false_positive": channel.p_false_positive,
            "speed_jitter": channel.speed_jitter,
        },
        "work_factor": work_factor,
        "max_file_bytes": max_file_bytes,
        **(extra_meta or {}),
    }
    with obs.span(
        "trace.capture.fingerprint",
        trace_id=trace_id,
        corpus=corpus,
        traces_per_file=traces_per_file,
    ):
        with store.create(
            trace_id, SPECIES_FINGERPRINT, meta, overwrite=overwrite
        ) as writer:
            for label, data in enumerate(files):
                timeline = victim_timeline(data, work_factor)
                for i in range(traces_per_file):
                    capture_seed = derive_capture_seed(seed, label, i)
                    writer.append(
                        FingerprintCapture(
                            label=label,
                            capture_seed=capture_seed,
                            trace=capture_raw_trace(
                                timeline, capture_seed, channel
                            ),
                        )
                    )
    assert writer.entry is not None
    obs.counter_add("trace.records", writer.entry.n_records)
    return writer.entry


def capture_oracle_trace(
    store: TraceStore,
    trace_id: str,
    probes: Sequence[OracleProbe],
    victim: str,
    observable: str,
    mitigation: str = "none",
    seed: int = 0,
    overwrite: bool = False,
    extra_meta: Optional[dict] = None,
) -> TraceEntry:
    """Persist one oracle attack's per-guess probe stream.

    Every scored probe of a :class:`~repro.oracle.attacks.BreachAttack`
    or distinguisher run becomes one
    :class:`~repro.traces.format.OracleProbe` record; metadata carries
    the scenario coordinates (victim, observable, mitigation, seed) so
    a stored trace can be re-scored — e.g. by replaying the recovery
    decision procedure over recorded deltas — without a live victim.
    The secret itself is never stored.
    """
    meta = {
        "species": SPECIES_ORACLE,
        "victim": victim,
        "observable": observable,
        "mitigation": mitigation,
        "seed": seed,
        "n_probes": len(probes),
        **(extra_meta or {}),
    }
    with obs.span(
        "trace.capture.oracle",
        trace_id=trace_id,
        victim=victim,
        observable=observable,
    ):
        with store.create(
            trace_id, SPECIES_ORACLE, meta, overwrite=overwrite
        ) as writer:
            writer.extend(probes)
    assert writer.entry is not None
    obs.counter_add("trace.records", writer.entry.n_records)
    return writer.entry


def capture_survey_traces(
    store: TraceStore,
    size: int,
    seed: int,
    targets: Sequence[str] = MEMORY_TARGETS,
    prefix: str = "survey",
    overwrite: bool = False,
) -> list[TraceEntry]:
    """Capture every survey target in one sweep (the SURVEY corpus).

    Seeds mirror :func:`repro.campaign.experiments.survey_recovery`:
    zlib and lzw use ``seed``, bzip2 uses ``seed + 1`` — so replayed
    recovery numbers are comparable 1:1 with the live experiment.
    """
    entries = []
    for target in targets:
        input_seed = seed + 1 if target == "bzip2" else seed
        entries.append(
            capture_memory_trace(
                store,
                f"{prefix}-{target}-n{size}-s{seed}",
                target,
                size,
                input_seed,
                overwrite=overwrite,
                extra_meta={"experiment": "survey", "sweep_seed": seed},
            )
        )
    return entries
