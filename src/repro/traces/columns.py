"""Columnar ZTRC decode: whole chunks into numpy arrays, no objects.

The object reader (:class:`repro.traces.format.TraceReader`) spends its
time constructing one :class:`~repro.exec.events.MemoryAccess` (plus two
:class:`~repro.taint.bittaint.BitTaint`) per record, while every
analysis pass downstream immediately reduces the record to two or three
integers (address, site id, kind id).  This module decodes the same
chunk bytes straight into int64 columns.

For version-2 files the chunk's record directory (see
:mod:`repro.traces.format`) makes this almost free of per-record Python
work:

1. record byte boundaries are a cumulative sum of the directory's
   length entries, and the per-record taint booleans are directory flag
   bits — the taint-run payloads are never decoded at all;
2. the seven header varints of *all* records in a chunk are assembled
   together, one byte lane at a time, over vectors of record offsets;
3. per-chunk delta fields (seq, index, address) become ``np.cumsum``.

Version-1 files (no directory) take a slower but still object-free
path: every varint in the chunk is decoded in one vectorised pass, then
a cursor walk over the value list recovers record boundaries.

Corruption detection is unchanged: every chunk's CRC is checked before
decoding and structural damage raises :class:`TraceFormatError`.  The
output is proven equal, field for field, to the object path
(``tests/test_traces_columns.py``); inputs the vectorised paths cannot
represent exactly (any varint beyond 63 bits, i.e. values past
``2**63 - 1``) fall back to object decoding transparently.

The ``oracle`` species stores fixed-width IEEE-754 doubles mid-record,
which breaks the uniform-varint property the version-1 path needs, and
its analyses are scalar anyway — :func:`read_trace_columns` raises
``ValueError`` for it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.taint.bittaint import BitTaint
from repro.traces.format import (
    _CHUNK_HEADER,
    _HEADER,
    _SPECIES_NAMES,
    _StringTable,
    MAGIC,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    SUPPORTED_VERSIONS,
    TraceFormatError,
    iter_trace,
    read_uvarint,
)

LINE_BITS = 6

# Values at or above 2**63 overflow the int64 columns the vectorised
# paths assemble into; any varint longer than this many bytes routes the
# whole trace through the object-path fallback.
_MAX_FAST_VARINT_BYTES = 9


@dataclass
class MemoryColumns:
    """One memory trace as parallel int64/bool columns.

    ``strings`` is the trace's interned string table; ``kind_id``,
    ``array_id`` and ``site_id`` index into it.  ``addr_tainted`` /
    ``value_tainted`` record whether each access carried any taint (the
    attacker-facing bit the export and replay paths consume; full
    per-bit tag sets remain on the object path).
    """

    seq: np.ndarray
    kind_id: np.ndarray
    array_id: np.ndarray
    index: np.ndarray
    elem_size: np.ndarray
    address: np.ndarray
    site_id: np.ndarray
    addr_tainted: np.ndarray
    value_tainted: np.ndarray
    strings: tuple[str, ...]

    species = SPECIES_MEMORY

    @property
    def n(self) -> int:
        return int(self.address.shape[0])

    def lines(self) -> np.ndarray:
        """Per-record cache line — the attacker's ``address >> 6`` view."""
        return self.address >> LINE_BITS

    def string_ids(self, names: Sequence[str]) -> list[int]:
        """Table ids of the given strings (absent names simply match
        nothing, like a filter over objects would)."""
        wanted = set(names)
        return [i for i, s in enumerate(self.strings) if s in wanted]

    def mask(
        self,
        sites: Optional[Sequence[str]] = None,
        kind: Optional[str] = None,
    ) -> np.ndarray:
        """Boolean record mask for the replay filters (site set, kind)."""
        mask = np.ones(self.n, dtype=bool)
        if sites is not None:
            mask &= np.isin(self.site_id, self.string_ids(tuple(sites)))
        if kind is not None:
            mask &= np.isin(self.kind_id, self.string_ids((kind,)))
        return mask

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Resolve an id column to its strings (object-dtype array)."""
        table = np.array(self.strings, dtype=object)
        return table[ids]


@dataclass
class _FingerprintRle:
    """Run-length form of a fingerprint trace, exactly as stored: per
    capture the tensor shape, the RAW start value, and the run-length
    vector (values alternate from the start value).  Kept instead of the
    materialised tensors so pooling analyses can stay in the run domain;
    :meth:`materialise` expands to the tensors on demand."""

    shapes: list[tuple[int, int]]
    starts: list[int]
    runs: list[np.ndarray]

    def materialise(self) -> list[np.ndarray]:
        out = []
        for (rows, cols), start, runs in zip(
            self.shapes, self.starts, self.runs
        ):
            if not rows * cols:
                out.append(np.zeros((rows, cols), dtype=np.int8))
                continue
            values = (
                (start + np.arange(runs.shape[0], dtype=np.int64)) & 1
            ).astype(np.int8)
            out.append(np.repeat(values, runs).reshape(rows, cols))
        return out


@dataclass
class FingerprintColumns:
    """One fingerprint trace: per-capture labels, seeds, and tensors.

    ``traces`` materialises lazily when the trace was decoded columnar
    (the run-length form is kept; :meth:`pooled` never needs the full
    tensors)."""

    labels: np.ndarray
    capture_seeds: np.ndarray
    _traces: Optional[list[np.ndarray]] = None  # per capture, (rows, cols) int8
    _rle: Optional[_FingerprintRle] = None

    species = SPECIES_FINGERPRINT

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    @property
    def traces(self) -> list[np.ndarray]:
        if self._traces is None:
            assert self._rle is not None
            self._traces = self._rle.materialise()
        return self._traces

    def stacked(self) -> Optional[np.ndarray]:
        """All captures as one (n, rows, cols) tensor, or None when the
        capture shapes are not uniform."""
        if not self.traces:
            return None
        shape = self.traces[0].shape
        if any(t.shape != shape for t in self.traces):
            return None
        return np.stack(self.traces)

    def pooled(self, width: int) -> Optional[np.ndarray]:
        """Every capture max-pooled to ``(rows, width)``, computed in
        the run domain: a pooling window is 1 iff a 1-run overlaps it,
        so interval marking over the run boundaries replaces tensor
        materialisation entirely.  Bit-identical to ``pool_trace`` over
        :attr:`traces` (the tensors are 0/1, so max is presence).
        Returns None when the run-length form is unavailable, shapes
        are not uniform, or ``cols < width`` — callers fall back to the
        per-capture pooling path.
        """
        rle = self._rle
        if rle is None or not rle.shapes:
            return None
        rows, cols = rle.shapes[0]
        if any(s != (rows, cols) for s in rle.shapes):
            return None
        stride = cols // width
        if stride < 1:
            return None
        n = self.n
        counts = np.array([r.shape[0] for r in rle.runs], dtype=np.int64)
        total = int(counts.sum())
        out_shape = (n, rows, width)
        if not total:
            return np.zeros(out_shape, dtype=np.int8)
        lengths = np.concatenate(rle.runs)
        g_end = np.cumsum(lengths)
        # Pick out the 1-runs: a run's value is (start + ordinal) & 1
        # with ordinal its index within the capture, so its parity is
        # global-index parity XOR (capture block start + start) parity.
        block = np.cumsum(counts) - counts
        offsets = np.asarray(rle.starts, dtype=np.int64) + block
        one = (
            (np.arange(total, dtype=np.int64) ^ np.repeat(offsets, counts)) & 1
        ) == 1
        e1 = g_end[one]
        s1 = e1 - lengths[one]
        n_windows = n * rows * width
        if not e1.shape[0]:
            return np.zeros(out_shape, dtype=np.int8)
        if stride * width == cols:
            # No column truncation: the windows tile every capture
            # contiguously, and stride divides the row length, so a
            # sample's window is just its global index // stride.  The
            # 1-runs are disjoint and in position order, so the window
            # intervals are sorted — merge overlapping neighbours and
            # expand each merged interval to explicit marks.
            w_lo = s1 // stride
            w_hi = (e1 - 1) // stride
            keep = np.empty(w_lo.shape[0], dtype=bool)
            keep[0] = True
            np.greater(w_lo[1:], w_hi[:-1], out=keep[1:])
            lo = w_lo[keep]
            idx = np.flatnonzero(keep)
            hi = np.empty_like(lo)
            hi[:-1] = w_hi[idx[1:] - 1]
            hi[-1] = w_hi[-1]
            spans = hi - lo + 1
            cum = np.cumsum(spans)
            offs = np.arange(int(cum[-1]), dtype=np.int64) - np.repeat(
                cum - spans, spans
            )
            flat = np.zeros(n_windows, dtype=np.int8)
            flat[np.repeat(lo, spans) + offs] = 1
            return flat.reshape(out_shape)
        else:
            # Truncated columns: clip each run to every row's surviving
            # [0, stride*width) span before mapping to windows.
            size = rows * cols
            cap1 = np.repeat(np.arange(n, dtype=np.int64), counts)[one]
            e_loc = e1 - cap1 * size
            s_loc = e_loc - (e1 - s1)
            span = stride * width
            lo_parts, hi_parts = [], []
            for r in range(rows):
                row_base = r * cols
                s_r = np.maximum(s_loc, row_base)
                e_r = np.minimum(e_loc, row_base + span)
                valid = s_r < e_r
                if not valid.any():
                    continue
                w_base = cap1[valid] * (rows * width) + r * width
                lo_parts.append(w_base + (s_r[valid] - row_base) // stride)
                hi_parts.append(w_base + (e_r[valid] - 1 - row_base) // stride)
            if not lo_parts:
                return np.zeros(out_shape, dtype=np.int8)
            w_lo = np.concatenate(lo_parts)
            w_hi = np.concatenate(hi_parts)
        # Mark covered windows by boundary counting: +1 where a 1-run's
        # window interval opens, -1 one past its close; a window holds a
        # 1 iff the running sum is positive.
        delta = np.bincount(w_lo, minlength=n_windows + 1)
        delta -= np.bincount(w_hi + 1, minlength=n_windows + 1)
        flat = (np.cumsum(delta[:n_windows]) > 0).view(np.int8)
        return flat.reshape(out_shape)


TraceColumns = Union[MemoryColumns, FingerprintColumns]


class _FallbackNeeded(Exception):
    """A chunk contains a varint the int64 fast path cannot hold."""


# ----------------------------------------------------------------------
# vectorised varint decoding
# ----------------------------------------------------------------------
def _decode_varint_stream(
    body: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Decode every LEB128 varint in ``body`` (uint8) in one pass.

    Returns ``(values, starts)`` — the decoded uint-interpreted values
    as int64 and each varint's byte offset (for error reporting).
    Raises :class:`_FallbackNeeded` when any varint exceeds the int64
    fast path and :class:`TraceFormatError` on a truncated tail.
    """
    if body.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ends = np.flatnonzero(body < 0x80)
    if ends.size == 0 or ends[-1] != body.size - 1:
        raise TraceFormatError("truncated varint")
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > _MAX_FAST_VARINT_BYTES:
        raise _FallbackNeeded
    # Gather lane by lane from the uint8 body: only the (shrinking) set
    # of varints long enough for each lane pays the int64 widening, so
    # the body is never materialised as int64 wholesale.
    values = (body[starts] & 0x7F).astype(np.int64)
    for k in range(1, max_len):
        longer = np.flatnonzero(lengths > k)
        lane = body[starts[longer] + k] & 0x7F
        values[longer] |= lane.astype(np.int64) << (7 * k)
    return values, starts


def _gather_varints(
    data: np.ndarray, pos: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble one varint *per row* of ``pos``, all rows in lockstep.

    ``data`` is the whole chunk as uint8; ``pos`` holds each row's
    varint start offset.  Returns ``(values, next_pos)`` so successive
    fields of fixed-field records chain through repeated calls.  Byte
    lanes are processed together: rows whose varint has ended drop out
    of the active set, so the loop runs max-varint-length times, not
    once per row.
    """
    n = pos.shape[0]
    values = np.zeros(n, dtype=np.int64)
    cur = pos.astype(np.int64, copy=True)
    active = np.arange(n)
    limit = data.shape[0]
    shift = 0
    while active.size:
        if shift >= 7 * _MAX_FAST_VARINT_BYTES:
            raise _FallbackNeeded
        offsets = cur[active]
        if int(offsets.max()) >= limit:
            raise TraceFormatError("truncated varint")
        byte = data[offsets]
        values[active] |= (byte & 0x7F).astype(np.int64) << shift
        cur[active] += 1
        active = active[(byte & 0x80) != 0]
        shift += 7
    return values, cur


def _unzigzag(values: np.ndarray) -> np.ndarray:
    """Vectorised inverse of the zigzag map (svarint payloads)."""
    return (values >> 1) ^ -(values & 1)


def _safe_cumsum(deltas: np.ndarray) -> np.ndarray:
    """Per-chunk delta accumulation with an int64-overflow guard.

    ``n * max|delta|`` bounds every partial sum; when that bound could
    wrap int64 the caller must take the object path instead.  Real
    traces sit many orders of magnitude below the bound.
    """
    if deltas.size:
        peak = int(np.abs(deltas).max())
        if peak and peak > (1 << 62) // deltas.size:
            raise _FallbackNeeded
    return np.cumsum(deltas)


# ----------------------------------------------------------------------
# chunk iteration (shared header/CRC validation)
# ----------------------------------------------------------------------
def _read_header(data: bytes) -> tuple[str, int]:
    if len(data) < _HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, species_code, _ = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}: not a trace file")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace format version {version} "
            f"(this reader speaks {SUPPORTED_VERSIONS})"
        )
    species = _SPECIES_NAMES.get(species_code)
    if species is None:
        raise TraceFormatError(f"unknown species code {species_code}")
    return species, version


def _iter_chunks(data: bytes) -> Iterator[bytes]:
    """CRC-checked chunk payloads of an in-memory trace file."""
    pos = _HEADER.size
    total = len(data)
    while pos < total:
        if pos + _CHUNK_HEADER.size > total:
            raise TraceFormatError("truncated chunk header")
        length, crc = _CHUNK_HEADER.unpack_from(data, pos)
        pos += _CHUNK_HEADER.size
        raw = data[pos : pos + length]
        if len(raw) != length:
            raise TraceFormatError("truncated chunk payload")
        if zlib.crc32(raw) != crc:
            raise TraceFormatError("chunk CRC mismatch: trace file is corrupted")
        pos += length
        yield raw


def _read_directory(
    raw: bytes, buf: memoryview, strings: _StringTable
) -> tuple[int, np.ndarray, int]:
    """Common v2 chunk prefix: prelude, count, record directory.

    Returns ``(n_records, directory_values, records_base)`` where
    ``records_base`` is the byte offset of the first record.
    """
    pos = strings.read_prelude(buf, 0)
    n_records, pos = read_uvarint(buf, pos)
    dir_nbytes, pos = read_uvarint(buf, pos)
    if pos + dir_nbytes > len(buf):
        raise TraceFormatError("truncated record directory")
    dir_bytes = np.frombuffer(raw, dtype=np.uint8, offset=pos, count=dir_nbytes)
    entries, _ = _decode_varint_stream(dir_bytes)
    if entries.shape[0] != n_records:
        raise TraceFormatError(
            f"record directory holds {entries.shape[0]} entries "
            f"for {n_records} records"
        )
    return n_records, entries, pos + dir_nbytes


# ----------------------------------------------------------------------
# memory species
# ----------------------------------------------------------------------
def _decode_memory_chunk_v2(
    raw: bytes, strings: _StringTable, acc: dict
) -> None:
    """Directory-driven decode: no per-record Python in the hot loop."""
    buf = memoryview(raw)
    n_records, entries, base = _read_directory(raw, buf, strings)
    if base + int((entries >> 2).sum()) != len(raw):
        raise TraceFormatError(
            f"{len(raw) - base - int((entries >> 2).sum())} "
            f"trailing bytes in chunk"
        )
    if not n_records:
        return
    byte_lens = entries >> 2
    rec_starts = np.empty(n_records, dtype=np.int64)
    rec_starts[0] = 0
    np.cumsum(byte_lens[:-1], out=rec_starts[1:])
    rec_starts += base
    data = np.frombuffer(raw, dtype=np.uint8)
    pos = rec_starts
    fields = []
    for _ in range(7):
        value, pos = _gather_varints(data, pos)
        fields.append(value)
    # The taint-run payloads occupy the rest of each record; the
    # directory flags already carry the per-record taint booleans.
    if (pos > rec_starts + byte_lens).any():
        raise TraceFormatError("record fields overrun the directory entry")
    acc["seq"].append(_safe_cumsum(_unzigzag(fields[0])))
    acc["kind_id"].append(fields[1])
    acc["array_id"].append(fields[2])
    acc["index"].append(_safe_cumsum(_unzigzag(fields[3])))
    acc["elem_size"].append(fields[4])
    acc["address"].append(_safe_cumsum(_unzigzag(fields[5])))
    acc["site_id"].append(fields[6])
    acc["addr_tainted"].append((entries & 0b10) != 0)
    acc["value_tainted"].append((entries & 0b01) != 0)


def _decode_memory_chunk_v1(
    raw: bytes, strings: _StringTable, acc: dict
) -> None:
    """Legacy chunks: vectorised varint pass + cursor walk over values."""
    buf = memoryview(raw)
    prelude_end = strings.read_prelude(buf, 0)
    body = np.frombuffer(raw, dtype=np.uint8, offset=prelude_end)
    values, starts = _decode_varint_stream(body)
    v = values.tolist()
    if not v:
        raise TraceFormatError("truncated varint")
    n_records = v[0]
    i = 1
    rec_starts: list[int] = []
    addr_runs: list[int] = []
    value_runs: list[int] = []
    # One pass over the value stream recovers the record structure:
    # 7 fixed header fields, then the two taint encodings, each
    # ``n_runs`` of (gap, length, n_tags, tags...).
    try:
        for _ in range(n_records):
            rec_starts.append(i)
            i += 7
            n_runs = v[i]
            i += 1
            addr_runs.append(n_runs)
            for _ in range(n_runs):
                i += 3 + v[i + 2]
            n_runs = v[i]
            i += 1
            value_runs.append(n_runs)
            for _ in range(n_runs):
                i += 3 + v[i + 2]
    except IndexError:
        raise TraceFormatError("truncated varint") from None
    if i > len(v):
        raise TraceFormatError("truncated varint")
    if i != len(v):
        raise TraceFormatError(
            f"{len(body) - int(starts[i])} trailing bytes in chunk"
        )
    if not rec_starts:
        return
    rs = np.asarray(rec_starts, dtype=np.int64)
    acc["seq"].append(_safe_cumsum(_unzigzag(values[rs])))
    acc["kind_id"].append(values[rs + 1])
    acc["array_id"].append(values[rs + 2])
    acc["index"].append(_safe_cumsum(_unzigzag(values[rs + 3])))
    acc["elem_size"].append(values[rs + 4])
    acc["address"].append(_safe_cumsum(_unzigzag(values[rs + 5])))
    acc["site_id"].append(values[rs + 6])
    acc["addr_tainted"].append(np.asarray(addr_runs, dtype=np.int64) > 0)
    acc["value_tainted"].append(np.asarray(value_runs, dtype=np.int64) > 0)


_COLUMN_NAMES = (
    "seq", "kind_id", "array_id", "index", "elem_size",
    "address", "site_id", "addr_tainted", "value_tainted",
)


def _memory_columns(data: bytes, version: int) -> MemoryColumns:
    strings = _StringTable()
    acc: dict[str, list[np.ndarray]] = {name: [] for name in _COLUMN_NAMES}
    decode = _decode_memory_chunk_v2 if version >= 2 else _decode_memory_chunk_v1
    for raw in _iter_chunks(data):
        decode(raw, strings, acc)

    def cat(name: str, dtype) -> np.ndarray:
        parts = acc[name]
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    columns = MemoryColumns(
        seq=cat("seq", np.int64),
        kind_id=cat("kind_id", np.int64),
        array_id=cat("array_id", np.int64),
        index=cat("index", np.int64),
        elem_size=cat("elem_size", np.int64),
        address=cat("address", np.int64),
        site_id=cat("site_id", np.int64),
        addr_tainted=cat("addr_tainted", bool),
        value_tainted=cat("value_tainted", bool),
        strings=tuple(strings._strings),
    )
    n_strings = len(columns.strings)
    for ids in (columns.kind_id, columns.array_id, columns.site_id):
        if ids.size and (int(ids.max()) >= n_strings or int(ids.min()) < 0):
            raise TraceFormatError(
                f"string id {int(ids.max())} out of range"
            )
    return columns


def _memory_columns_from_records(records) -> MemoryColumns:
    """Object-path fallback (and test oracle): identical columns built
    from decoded :class:`MemoryAccess` records."""
    strings = _StringTable()
    seq, kind_id, array_id, index = [], [], [], []
    elem_size, address, site_id = [], [], []
    addr_tainted, value_tainted = [], []
    for record in records:
        seq.append(record.seq)
        kind_id.append(strings.intern(record.kind))
        array_id.append(strings.intern(record.array))
        index.append(record.index)
        elem_size.append(record.elem_size)
        address.append(record.address)
        site_id.append(strings.intern(record.site))
        addr_tainted.append(bool(record.addr_taint))
        value_tainted.append(bool(record.value_taint))
    def col(vals: list) -> np.ndarray:
        # Values past int64 (>63-bit varints are why we're on this
        # path at all) keep exact Python ints in an object column.
        try:
            return np.asarray(vals, dtype=np.int64)
        except OverflowError:
            return np.asarray(vals, dtype=object)

    return MemoryColumns(
        seq=col(seq),
        kind_id=np.asarray(kind_id, dtype=np.int64),
        array_id=np.asarray(array_id, dtype=np.int64),
        index=col(index),
        elem_size=col(elem_size),
        address=col(address),
        site_id=np.asarray(site_id, dtype=np.int64),
        addr_tainted=np.asarray(addr_tainted, dtype=bool),
        value_tainted=np.asarray(value_tainted, dtype=bool),
        strings=tuple(strings._strings),
    )


# ----------------------------------------------------------------------
# fingerprint species
# ----------------------------------------------------------------------
def _decode_fingerprint_chunk(
    raw: bytes, strings: _StringTable, version: int, acc: dict
) -> None:
    buf = memoryview(raw)
    prelude_end = strings.read_prelude(buf, 0)
    body = np.frombuffer(raw, dtype=np.uint8, offset=prelude_end)
    values, starts = _decode_varint_stream(body)
    v = values
    if not v.shape[0]:
        raise TraceFormatError("truncated varint")
    n_records = int(v[0])
    # The v2 record directory is one varint per record; fingerprint
    # chunks are all-varint streams, so skipping it is pure arithmetic.
    # Only the handful of header scalars per capture leave the array
    # (the run vectors stay as int64 views), so no wholesale tolist.
    i = 2 + n_records if version >= 2 else 1
    try:
        for _ in range(n_records):
            raw_label = int(v[i])
            acc["labels"].append((raw_label >> 1) ^ -(raw_label & 1))
            acc["capture_seeds"].append(int(v[i + 1]))
            rows, cols = int(v[i + 2]), int(v[i + 3])
            i += 4
            size = rows * cols
            if not size:
                acc["shapes"].append((rows, cols))
                acc["starts"].append(0)
                acc["runs"].append(np.zeros(0, dtype=np.int64))
                continue
            start_value = int(v[i])
            if start_value not in (0, 1):
                raise TraceFormatError(
                    f"invalid fingerprint start value {start_value}"
                )
            n_runs = int(v[i + 1])
            i += 2
            runs = values[i : i + n_runs]
            if runs.shape[0] != n_runs:
                raise TraceFormatError("truncated varint")
            i += n_runs
            # Run values alternate from start_value; the run-length
            # form is kept as-is (materialised lazily), so the only
            # decode-time work left is validating coverage.
            covered = int(runs.sum())
            if covered > size:
                raise TraceFormatError("fingerprint runs overflow the tensor")
            if covered != size:
                raise TraceFormatError(
                    f"fingerprint runs cover {covered} of {size} samples"
                )
            acc["shapes"].append((rows, cols))
            acc["starts"].append(start_value)
            acc["runs"].append(runs)
    except IndexError:
        raise TraceFormatError("truncated varint") from None
    if i != len(v):
        raise TraceFormatError(
            f"{len(body) - int(starts[i])} trailing bytes in chunk"
        )


def _fingerprint_columns(data: bytes, version: int) -> FingerprintColumns:
    strings = _StringTable()
    acc: dict = {
        "labels": [],
        "capture_seeds": [],
        "shapes": [],
        "starts": [],
        "runs": [],
    }
    for raw in _iter_chunks(data):
        _decode_fingerprint_chunk(raw, strings, version, acc)
    return FingerprintColumns(
        labels=np.asarray(acc["labels"], dtype=np.int64),
        capture_seeds=np.asarray(acc["capture_seeds"], dtype=np.int64),
        _rle=_FingerprintRle(
            shapes=acc["shapes"], starts=acc["starts"], runs=acc["runs"]
        ),
    )


def _fingerprint_columns_from_records(records) -> FingerprintColumns:
    labels, seeds, traces = [], [], []
    for record in records:
        labels.append(record.label)
        seeds.append(record.capture_seed)
        traces.append(np.ascontiguousarray(record.trace, dtype=np.int8))
    return FingerprintColumns(
        labels=np.asarray(labels, dtype=np.int64),
        capture_seeds=np.asarray(seeds, dtype=np.int64),
        _traces=traces,
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def read_trace_columns(path) -> TraceColumns:
    """Decode a whole ``.trc`` file into columns (memory/fingerprint).

    Equivalent, field for field, to object decoding via
    :func:`repro.traces.format.read_trace` — the Hypothesis oracle in
    ``tests/test_traces_columns.py`` asserts exactly that.  Oracle
    traces have no columnar layout; use the object reader for them.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    species, version = _read_header(data)
    if species == SPECIES_MEMORY:
        try:
            return _memory_columns(data, version)
        except _FallbackNeeded:
            return _memory_columns_from_records(iter_trace(path))
    if species == SPECIES_FINGERPRINT:
        try:
            return _fingerprint_columns(data, version)
        except _FallbackNeeded:
            return _fingerprint_columns_from_records(iter_trace(path))
    raise ValueError(
        f"no columnar decoder for {species!r} traces; "
        f"use iter_trace/read_trace"
    )


def memory_taints(path) -> Iterator[tuple[BitTaint, BitTaint]]:
    """Full per-record taint objects for a memory trace, for consumers
    that need more than the boolean columns (rare; object-path cost)."""
    for record in iter_trace(path):
        yield record.addr_taint, record.value_taint
