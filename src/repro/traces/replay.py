"""Analysis-side replay: stored traces drive the same decoders as live
captures.

The contract throughout is *interchangeability*: every function here
reproduces, bit for bit, what the corresponding live pipeline computes —
:func:`replay_lines` matches :func:`repro.recovery.observe.observed_lines`
over the same execution, :func:`dataset_from_store` matches
:func:`repro.core.zipchannel.fingerprint.build_dataset` under the same
base seed, and :func:`survey_from_store` returns the same metrics dict
as the live ``survey_recovery`` campaign experiment.  Tests assert the
equalities exactly; the payoff is that analysis jobs never pay the
victim simulation again.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.exec.events import MemoryAccess
from repro.traces.format import (
    FingerprintCapture,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
)
from repro.traces.store import TraceStore


def replay_lines(
    records: Iterable[MemoryAccess],
    sites: Optional[Iterable[str]] = None,
    kind: Optional[str] = None,
) -> list[int]:
    """Cache-line observations from stored records, in program order.

    The stored-trace counterpart of
    :func:`repro.recovery.observe.observed_lines` (which reads a live
    :class:`TracingContext`): same site/kind filtering, same ``>> 6``
    attacker view.
    """
    site_set = None if sites is None else set(sites)
    return [
        record.address >> 6
        for record in records
        if (site_set is None or record.site in site_set)
        and (kind is None or record.kind == kind)
    ]


def replay_lines_array(
    columns,
    sites: Optional[Iterable[str]] = None,
    kind: Optional[str] = None,
) -> np.ndarray:
    """Array-native :func:`replay_lines`: same filters, same ``>> 6``
    attacker view, but over :class:`~repro.traces.columns.MemoryColumns`
    so the whole observation stream is one masked shift."""
    return columns.address[columns.mask(sites, kind)] >> 6


def _target_filter(target: str) -> tuple[tuple[str, ...], Optional[str]]:
    """The (sites, kind) observation filter each survey target uses —
    one definition shared by live observation, object replay, columnar
    replay, and the diag leakage meter."""
    if target == "zlib":
        from repro.compression.lz77 import SITE_HEAD

        return (SITE_HEAD,), "write"
    if target == "lzw":
        from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY

        return (SITE_PRIMARY, SITE_SECONDARY), "read"
    if target == "bzip2":
        from repro.compression.bzip2 import SITE_FTAB

        return (SITE_FTAB,), None
    raise ValueError(f"no observation filter for target {target!r}")


def target_lines(
    store: TraceStore,
    trace_id: str,
    target: Optional[str] = None,
    use_columns: bool = True,
) -> np.ndarray:
    """One stored trace's attacker-observed line stream for a survey
    target (defaults to the trace's own ``target`` metadata)."""
    meta = _require_species(store, trace_id, SPECIES_MEMORY)
    sites, kind = _target_filter(target or meta["target"])
    if use_columns:
        return replay_lines_array(store.read_columns(trace_id), sites, kind)
    lines = replay_lines(store.iter_records(trace_id), sites=sites, kind=kind)
    return np.asarray(lines, dtype=np.int64)


def _require_species(store: TraceStore, trace_id: str, species: str) -> dict:
    entry = store.get(trace_id)
    if entry.species != species:
        raise ValueError(
            f"trace {trace_id!r} is a {entry.species!r} trace; "
            f"this replay needs {species!r}"
        )
    return entry.meta


def _truth(meta: dict) -> bytes:
    """Regenerate the captured input from its stored provenance."""
    from repro.campaign.experiments import make_input

    return make_input(meta["input_kind"], int(meta["size"]), int(meta["input_seed"]))


def recover_from_trace(
    store: TraceStore, trace_id: str, use_columns: bool = True
) -> dict:
    """Run the matching Section IV recovery on one stored memory trace.

    Dispatches on the trace's ``target`` metadata and returns the same
    metric names the live survey produces for that target.  The default
    columnar path feeds the recovery decoders the identical line stream
    (``tests/test_traces_columns.py`` pins the metric equality); pass
    ``use_columns=False`` to force the object decode.
    """
    meta = _require_species(store, trace_id, SPECIES_MEMORY)
    target = meta["target"]
    n = int(meta["size"])
    truth = _truth(meta)
    lines = target_lines(store, trace_id, target, use_columns=use_columns)

    if target == "zlib":
        from repro.recovery.zlib_recover import accuracy, recover_known_high_bits

        recovered = recover_known_high_bits(lines, meta["bases"]["head"], n)
        return {"target": target, "zlib_accuracy": accuracy(recovered, truth)}

    if target == "lzw":
        from repro.recovery import recover_lzw_input

        candidates = recover_lzw_input(lines, meta["bases"]["htab"], n)
        return {
            "target": target,
            "lzw_exact_found": truth in candidates,
            "lzw_candidates": len(candidates),
        }

    if target == "bzip2":
        from repro.recovery.bzip2_recover import (
            observations_from_lines,
            recover_bzip2_block,
        )

        obs = observations_from_lines(lines, n)
        result = recover_bzip2_block(obs, meta["bases"]["ftab"], n)
        return {
            "target": target,
            "bzip2_bit_accuracy": result.bit_accuracy(truth),
        }

    raise ValueError(f"no recovery decoder for stored target {target!r}")


def survey_from_store(store: TraceStore, size: int, sweep_seed: int,
                      prefix: str = "survey", use_columns: bool = True) -> dict:
    """Assemble the Section IV survey metrics from a captured sweep.

    Reads the three traces :func:`repro.traces.capture.capture_survey_traces`
    wrote for ``(size, sweep_seed)`` and returns the same dict shape as
    the live ``survey_recovery`` experiment.
    """
    out: dict = {}
    for target in ("zlib", "lzw", "bzip2"):
        metrics = recover_from_trace(
            store, f"{prefix}-{target}-n{size}-s{sweep_seed}",
            use_columns=use_columns,
        )
        metrics.pop("target")
        out.update(metrics)
    return out


def dataset_from_store(
    store: TraceStore, trace_id: str, use_columns: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Reassemble the classifier dataset from one stored fingerprint
    trace: ``(X, y)`` exactly as live ``build_dataset`` returns them
    (pooled, flattened, float32, same ordering)."""
    from repro.core.zipchannel.fingerprint import TENSOR_WIDTH, pool_trace

    _require_species(store, trace_id, SPECIES_FINGERPRINT)
    if use_columns:
        cols = store.read_columns(trace_id)
        pooled = cols.pooled(TENSOR_WIDTH)
        if pooled is not None:
            # Pooling happened in the run domain — no tensor was ever
            # materialised; bit-identical to pool_trace per capture.
            x = pooled.reshape(cols.n, -1).astype(np.float32)
            return x, np.array(cols.labels.tolist())
        xs = [pool_trace(trace).reshape(-1) for trace in cols.traces]
        return np.array(xs, dtype=np.float32), np.array(cols.labels.tolist())
    xs, ys = [], []
    for capture in store.iter_records(trace_id):
        assert isinstance(capture, FingerprintCapture)
        xs.append(pool_trace(capture.trace).reshape(-1))
        ys.append(capture.label)
    return np.array(xs, dtype=np.float32), np.array(ys)


def fingerprint_experiment_from_store(
    store: TraceStore,
    trace_id: str,
    epochs: int = 20,
    seed: int = 0,
    hidden: int = 96,
    use_columns: bool = True,
) -> dict:
    """Train and score the Section VI classifier from stored traces.

    The replay counterpart of
    :func:`repro.core.zipchannel.fingerprint.run_fingerprint_experiment`:
    given the same base seed it consumes an identical dataset, so the
    returned metrics match the live experiment exactly.
    """
    from repro.classify import MLPClassifier, split_dataset

    meta = store.get(trace_id).meta
    x, y = dataset_from_store(store, trace_id, use_columns=use_columns)
    n_files = int(meta.get("n_files", len(set(y.tolist()))))
    train, val, test = split_dataset(x, y, seed=seed + 1)
    clf = MLPClassifier(x.shape[1], n_files, hidden=hidden, seed=seed + 2)
    clf.fit(*train, epochs=epochs, x_val=val[0], y_val=val[1])
    return {
        "test_accuracy": float(clf.accuracy(*test)),
        "train_accuracy": float(clf.accuracy(*train)),
        "n_files": n_files,
        "chance": 1.0 / n_files,
        "n_traces": int(x.shape[0]),
    }
