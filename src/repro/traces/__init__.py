"""Trace capture, storage, and replay: capture-once / analyze-many.

Every attack in this reproduction separates into an expensive victim
simulation (a traced compression run, a 10,000-round Flush+Reload
sweep) and a cheap analysis (recovery decoding, classifier training).
This package decouples them:

* :mod:`repro.traces.format` — compact, versioned, chunked binary
  serialization for the trace species the repo produces (``memory``
  access streams, ``fingerprint`` hit/miss tensors, and ``oracle``
  per-guess probe streams), with per-record delta+varint coding and
  per-chunk CRCs;
* :mod:`repro.traces.store` — an indexed on-disk :class:`TraceStore`
  (``*.trstore`` directories) with list/get/put/verify and corruption
  detection on read;
* :mod:`repro.traces.capture` — run a victim once, persist the
  attacker's observations plus the metadata analysis needs;
* :mod:`repro.traces.replay` — adapters that feed stored traces to the
  Section IV recovery decoders and the Section VI classifier,
  bit-identically to live captures.

CLI: ``python -m repro trace capture|list|verify|export``.  Campaign
integration: the ``trace_capture_*`` / ``*_from_store`` experiments in
:mod:`repro.campaign.experiments` capture a corpus in one sweep and fan
analysis jobs out over it in another.
"""

from repro.traces.columns import (
    FingerprintColumns,
    MemoryColumns,
    read_trace_columns,
)
from repro.traces.format import (
    FORMAT_VERSION,
    FingerprintCapture,
    OracleProbe,
    SPECIES_FINGERPRINT,
    SPECIES_MEMORY,
    SPECIES_ORACLE,
    TraceFormatError,
    TraceReader,
    TraceSummary,
    TraceWriter,
    count_trace_records,
    deserialize_records,
    iter_trace,
    read_trace,
    serialize_records,
    write_trace,
)
from repro.traces.store import TraceEntry, TraceStore, VerifyReport, file_sha256
from repro.traces.capture import (
    capture_fingerprint_traces,
    capture_memory_trace,
    capture_oracle_trace,
    capture_survey_traces,
)
from repro.traces.replay import (
    dataset_from_store,
    fingerprint_experiment_from_store,
    recover_from_trace,
    replay_lines,
    replay_lines_array,
    survey_from_store,
    target_lines,
)

__all__ = [
    "FORMAT_VERSION",
    "FingerprintCapture",
    "FingerprintColumns",
    "MemoryColumns",
    "OracleProbe",
    "SPECIES_FINGERPRINT",
    "SPECIES_MEMORY",
    "SPECIES_ORACLE",
    "TraceEntry",
    "TraceFormatError",
    "TraceReader",
    "TraceStore",
    "TraceSummary",
    "TraceWriter",
    "VerifyReport",
    "capture_fingerprint_traces",
    "capture_memory_trace",
    "capture_oracle_trace",
    "capture_survey_traces",
    "count_trace_records",
    "dataset_from_store",
    "deserialize_records",
    "file_sha256",
    "fingerprint_experiment_from_store",
    "iter_trace",
    "read_trace",
    "read_trace_columns",
    "recover_from_trace",
    "replay_lines",
    "replay_lines_array",
    "serialize_records",
    "survey_from_store",
    "target_lines",
    "write_trace",
]
