"""Compact, versioned binary serialization for captured traces.

Two trace *species* cover everything the reproduction records:

* ``memory`` — :class:`~repro.exec.events.MemoryAccess` streams from
  :class:`~repro.exec.context.TracingContext`: the raw material of the
  Section IV recovery survey and the Section V extraction.  Records are
  delta+varint coded (sequence numbers, addresses and indices are stored
  as zigzag deltas from the previous record) with an incremental string
  table for the heavily repeated ``array``/``site``/``kind`` fields, so
  a 10 KB-input bzip2 ftab trace costs a few bytes per access instead of
  a pickled dataclass each.
* ``fingerprint`` — sampled Flush+Reload hit/miss captures from
  :mod:`repro.core.zipchannel.fingerprint`: one
  :class:`FingerprintCapture` per classifier example, run-length coded
  (the 2 x 10,000 boolean tensor is long runs of hits and misses).
* ``oracle`` — per-guess probe outcomes from the :mod:`repro.oracle`
  BREACH / memory-compression attacks: one :class:`OracleProbe` per
  scored probe (step, probe label, probe length, the observed score,
  and the cumulative oracle-query count), so a recorded attack can be
  replayed and re-scored without re-running the victim.

Files are written and read in *chunks*: the writer flushes every
``chunk_records`` records, the reader yields records chunk by chunk, and
neither ever materialises the whole trace.  Every chunk carries a CRC-32
so corruption is detected at read time, at the damaged chunk, not as a
garbage analysis result.

Layout of one ``.trc`` file::

    header   magic "ZTRC" | version u16 LE | species u8 | reserved u8
    chunk*   payload_len u32 LE | crc32(payload) u32 LE | payload

    payload  new-strings prelude | record count varint
             | record directory (v2+) | records

    directory  total-bytes varint, then one varint per record:
               (record_byte_len << 2) | addr_tainted << 1 | value_tainted

The version-2 record directory costs ~1 byte per record and is what
makes the columnar fast path (:mod:`repro.traces.columns`) possible:
record boundaries become a cumulative sum instead of a sequential
decode, so replay analyses read whole chunks straight into numpy
arrays.  Version-1 files (no directory) remain fully readable.

Taint is preserved bit-exactly (the per-bit tag sets of
:class:`~repro.taint.bittaint.BitTaint`), so replayed traces drive the
same gadget classification as live ones.  Provenance links
(``addr_origin``) are *not* serialized: a stored trace is the attacker's
observation layer, not the full data-flow DAG.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator, Optional, Union

import numpy as np

from repro.exec.events import MemoryAccess
from repro.taint.bittaint import BitTaint

MAGIC = b"ZTRC"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

SPECIES_MEMORY = "memory"
SPECIES_FINGERPRINT = "fingerprint"
SPECIES_ORACLE = "oracle"

_SPECIES_CODES = {SPECIES_MEMORY: 1, SPECIES_FINGERPRINT: 2, SPECIES_ORACLE: 3}
_SPECIES_NAMES = {code: name for name, code in _SPECIES_CODES.items()}

_HEADER = struct.Struct("<4sHBB")
_CHUNK_HEADER = struct.Struct("<II")

DEFAULT_CHUNK_RECORDS = 4096


class TraceFormatError(ValueError):
    """Malformed, truncated, or corrupted trace file."""


@dataclass
class FingerprintCapture:
    """One stored Flush+Reload capture: the classifier's raw example.

    ``capture_seed`` is the exact RNG seed that produced this capture
    (see :func:`repro.core.zipchannel.fingerprint.derive_capture_seed`),
    which is what makes a stored trace re-derivable from scratch.
    """

    label: int
    capture_seed: int
    trace: np.ndarray  # (rows, cols) int8 of 0/1 hits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FingerprintCapture):
            return NotImplemented
        return (
            self.label == other.label
            and self.capture_seed == other.capture_seed
            and self.trace.shape == other.trace.shape
            and bool(np.array_equal(self.trace, other.trace))
        )


@dataclass(frozen=True)
class OracleProbe:
    """One scored probe of a sealed compression oracle.

    ``observation`` is the probe's *score* (for BREACH: the two-guess
    size delta in bytes, negative when the probed guess set contains the
    secret's next character; for the timing distinguisher: the mean
    observed latency in ticks).  ``queries`` is the attack's cumulative
    oracle-query count after this probe, so replay can reconstruct the
    query-budget curve.
    """

    step: int
    label: str
    probe_len: int
    observation: float
    queries: int


TraceRecord = Union[MemoryAccess, FingerprintCapture, OracleProbe]


# ----------------------------------------------------------------------
# varint / zigzag primitives
# ----------------------------------------------------------------------
def write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_svarint(out: bytearray, value: int) -> None:
    """Zigzag-mapped signed varint (small magnitudes stay 1 byte)."""
    write_uvarint(out, (value << 1) ^ (value >> 63) if -(1 << 62) < value < (1 << 62)
                  else _zigzag_big(value))


def _zigzag_big(value: int) -> int:
    # Arbitrary-precision zigzag for values outside the fast 63-bit path.
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def read_uvarint(buf: memoryview, pos: int) -> tuple[int, int]:
    """Decode one unsigned varint at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise TraceFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def read_svarint(buf: memoryview, pos: int) -> tuple[int, int]:
    """Decode one zigzag varint at ``pos``; returns (value, new_pos)."""
    raw, pos = read_uvarint(buf, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


# ----------------------------------------------------------------------
# BitTaint codec
# ----------------------------------------------------------------------
def _encode_bittaint(out: bytearray, taint: BitTaint) -> None:
    # Taint is overwhelmingly *runs* of consecutive bits sharing one tag
    # set (an input byte taints 8 bits, shifts translate whole runs), so
    # encode maximal equal-tag-set runs: gap from the previous run's
    # end, run length, then the delta-coded sorted tags.
    runs: list[tuple[int, int, tuple[int, ...]]] = []  # (start, length, tags)
    for bit, tags in taint:  # sorted (bit, frozenset) pairs
        ordered = tuple(sorted(tags))
        if runs and runs[-1][0] + runs[-1][1] == bit and runs[-1][2] == ordered:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1, ordered)
        else:
            runs.append((bit, 1, ordered))
    write_uvarint(out, len(runs))
    prev_end = 0
    for start, length, ordered in runs:
        write_uvarint(out, start - prev_end)
        write_uvarint(out, length)
        prev_end = start + length
        write_uvarint(out, len(ordered))
        prev_tag = 0
        for tag in ordered:
            write_uvarint(out, tag - prev_tag)
            prev_tag = tag


def _decode_bittaint(buf: memoryview, pos: int) -> tuple[BitTaint, int]:
    n_runs, pos = read_uvarint(buf, pos)
    if not n_runs:
        return BitTaint.empty(), pos
    bits: dict[int, frozenset[int]] = {}
    end = 0
    for _ in range(n_runs):
        gap, pos = read_uvarint(buf, pos)
        length, pos = read_uvarint(buf, pos)
        start = end + gap
        end = start + length
        n_tags, pos = read_uvarint(buf, pos)
        tags = []
        tag = 0
        for _ in range(n_tags):
            tag_delta, pos = read_uvarint(buf, pos)
            tag += tag_delta
            tags.append(tag)
        frozen = frozenset(tags)
        for bit in range(start, end):
            bits[bit] = frozen
    return BitTaint(bits), pos


# ----------------------------------------------------------------------
# Species codecs.  Encoders hold per-chunk delta state; a fresh encoder
# is created for every chunk so chunks decode independently of each
# other (apart from the append-only string table).
# ----------------------------------------------------------------------
class _StringTable:
    """Incremental interning: new strings ride in each chunk's prelude."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []
        self._pending: list[str] = []

    def intern(self, text: str) -> int:
        existing = self._ids.get(text)
        if existing is not None:
            return existing
        idx = len(self._strings)
        self._ids[text] = idx
        self._strings.append(text)
        self._pending.append(text)
        return idx

    def flush_prelude(self, out: bytearray) -> None:
        write_uvarint(out, len(self._pending))
        for text in self._pending:
            raw = text.encode("utf-8")
            write_uvarint(out, len(raw))
            out.extend(raw)
        self._pending.clear()

    def read_prelude(self, buf: memoryview, pos: int) -> int:
        n_new, pos = read_uvarint(buf, pos)
        for _ in range(n_new):
            length, pos = read_uvarint(buf, pos)
            if pos + length > len(buf):
                raise TraceFormatError("truncated string table entry")
            self._strings.append(bytes(buf[pos : pos + length]).decode("utf-8"))
            pos += length
        return pos

    def lookup(self, idx: int) -> str:
        try:
            return self._strings[idx]
        except IndexError:
            raise TraceFormatError(f"string id {idx} out of range") from None


class _MemoryCodec:
    """Delta+varint codec for MemoryAccess records."""

    def __init__(self, strings: _StringTable) -> None:
        self.strings = strings
        self._reset()

    def _reset(self) -> None:
        self._prev_seq = 0
        self._prev_address = 0
        self._prev_index = 0

    def begin_chunk(self) -> None:
        self._reset()

    def flags(self, record: MemoryAccess) -> int:
        # Directory bits: the per-record taint booleans the columnar
        # reader serves without decoding the taint-run payloads.
        return (bool(record.addr_taint) << 1) | bool(record.value_taint)

    def encode(self, out: bytearray, record: MemoryAccess) -> None:
        write_svarint(out, record.seq - self._prev_seq)
        self._prev_seq = record.seq
        write_uvarint(out, self.strings.intern(record.kind))
        write_uvarint(out, self.strings.intern(record.array))
        write_svarint(out, record.index - self._prev_index)
        self._prev_index = record.index
        write_uvarint(out, record.elem_size)
        write_svarint(out, record.address - self._prev_address)
        self._prev_address = record.address
        write_uvarint(out, self.strings.intern(record.site))
        _encode_bittaint(out, record.addr_taint)
        _encode_bittaint(out, record.value_taint)

    def decode(self, buf: memoryview, pos: int) -> tuple[MemoryAccess, int]:
        seq_delta, pos = read_svarint(buf, pos)
        self._prev_seq += seq_delta
        kind_id, pos = read_uvarint(buf, pos)
        array_id, pos = read_uvarint(buf, pos)
        index_delta, pos = read_svarint(buf, pos)
        self._prev_index += index_delta
        elem_size, pos = read_uvarint(buf, pos)
        addr_delta, pos = read_svarint(buf, pos)
        self._prev_address += addr_delta
        site_id, pos = read_uvarint(buf, pos)
        addr_taint, pos = _decode_bittaint(buf, pos)
        value_taint, pos = _decode_bittaint(buf, pos)
        record = MemoryAccess(
            seq=self._prev_seq,
            kind=self.strings.lookup(kind_id),
            array=self.strings.lookup(array_id),
            index=self._prev_index,
            elem_size=elem_size,
            address=self._prev_address,
            addr_taint=addr_taint,
            value_taint=value_taint,
            site=self.strings.lookup(site_id),
        )
        return record, pos


class _FingerprintCodec:
    """Run-length codec for boolean hit/miss tensors."""

    def __init__(self, strings: _StringTable) -> None:
        del strings  # fingerprint records carry no strings

    def begin_chunk(self) -> None:
        pass

    def flags(self, record: FingerprintCapture) -> int:
        del record
        return 0

    def encode(self, out: bytearray, record: FingerprintCapture) -> None:
        trace = np.ascontiguousarray(record.trace, dtype=np.int8)
        if trace.ndim != 2:
            raise ValueError(f"fingerprint trace must be 2-D, got {trace.shape}")
        if trace.size and not np.isin(trace, (0, 1)).all():
            raise ValueError("fingerprint trace must contain only 0/1 samples")
        write_svarint(out, record.label)
        write_uvarint(out, record.capture_seed)
        rows, cols = trace.shape
        write_uvarint(out, rows)
        write_uvarint(out, cols)
        flat = trace.reshape(-1)
        if not flat.size:
            return
        # Run boundaries via the classic diff trick; first value, then
        # the run lengths (they alternate, so values are implicit).
        boundaries = np.flatnonzero(np.diff(flat)) + 1
        runs = np.diff(np.concatenate(([0], boundaries, [flat.size])))
        out.append(int(flat[0]))
        write_uvarint(out, len(runs))
        for run in runs:
            write_uvarint(out, int(run))

    def decode(self, buf: memoryview, pos: int) -> tuple[FingerprintCapture, int]:
        label, pos = read_svarint(buf, pos)
        capture_seed, pos = read_uvarint(buf, pos)
        rows, pos = read_uvarint(buf, pos)
        cols, pos = read_uvarint(buf, pos)
        size = rows * cols
        if not size:
            trace = np.zeros((rows, cols), dtype=np.int8)
            return FingerprintCapture(label, capture_seed, trace), pos
        if pos >= len(buf):
            raise TraceFormatError("truncated fingerprint record")
        value = buf[pos]
        pos += 1
        if value not in (0, 1):
            raise TraceFormatError(f"invalid fingerprint start value {value}")
        n_runs, pos = read_uvarint(buf, pos)
        flat = np.empty(size, dtype=np.int8)
        offset = 0
        for _ in range(n_runs):
            run, pos = read_uvarint(buf, pos)
            if offset + run > size:
                raise TraceFormatError("fingerprint runs overflow the tensor")
            flat[offset : offset + run] = value
            offset += run
            value ^= 1
        if offset != size:
            raise TraceFormatError(
                f"fingerprint runs cover {offset} of {size} samples"
            )
        return FingerprintCapture(label, capture_seed, flat.reshape(rows, cols)), pos


class _OracleCodec:
    """Delta+varint codec for OracleProbe records.

    Steps and query counts are monotone within an attack, so both are
    delta coded; labels repeat heavily (one per probe shape) and ride
    the string table; the observation stays an exact IEEE-754 double so
    replayed scores are bit-identical.
    """

    _OBSERVATION = struct.Struct("<d")

    def __init__(self, strings: _StringTable) -> None:
        self.strings = strings
        self._reset()

    def _reset(self) -> None:
        self._prev_step = 0
        self._prev_queries = 0

    def begin_chunk(self) -> None:
        self._reset()

    def flags(self, record: OracleProbe) -> int:
        del record
        return 0

    def encode(self, out: bytearray, record: OracleProbe) -> None:
        write_svarint(out, record.step - self._prev_step)
        self._prev_step = record.step
        write_uvarint(out, self.strings.intern(record.label))
        write_uvarint(out, record.probe_len)
        out.extend(self._OBSERVATION.pack(record.observation))
        write_svarint(out, record.queries - self._prev_queries)
        self._prev_queries = record.queries

    def decode(self, buf: memoryview, pos: int) -> tuple[OracleProbe, int]:
        step_delta, pos = read_svarint(buf, pos)
        self._prev_step += step_delta
        label_id, pos = read_uvarint(buf, pos)
        probe_len, pos = read_uvarint(buf, pos)
        if pos + self._OBSERVATION.size > len(buf):
            raise TraceFormatError("truncated oracle observation")
        (observation,) = self._OBSERVATION.unpack_from(buf, pos)
        pos += self._OBSERVATION.size
        queries_delta, pos = read_svarint(buf, pos)
        self._prev_queries += queries_delta
        record = OracleProbe(
            step=self._prev_step,
            label=self.strings.lookup(label_id),
            probe_len=probe_len,
            observation=observation,
            queries=self._prev_queries,
        )
        return record, pos


_CODECS = {
    SPECIES_MEMORY: _MemoryCodec,
    SPECIES_FINGERPRINT: _FingerprintCodec,
    SPECIES_ORACLE: _OracleCodec,
}


# ----------------------------------------------------------------------
# Streaming writer / reader
# ----------------------------------------------------------------------
@dataclass
class TraceSummary:
    """What a finished write reports (and a verify recomputes)."""

    species: str
    n_records: int = 0
    n_chunks: int = 0
    size_bytes: int = 0


class TraceWriter:
    """Chunked streaming writer; use as a context manager.

    Records are buffered and flushed every ``chunk_records`` appends, so
    writing a multi-million-event trace never holds more than one
    chunk's worth of encoded bytes.
    """

    def __init__(
        self,
        stream: BinaryIO,
        species: str,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        version: int = FORMAT_VERSION,
    ) -> None:
        if species not in _SPECIES_CODES:
            raise ValueError(f"unknown trace species {species!r}")
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported trace format version {version}")
        self.species = species
        self.chunk_records = chunk_records
        self.version = version
        self._stream = stream
        self._strings = _StringTable()
        self._codec = _CODECS[species](self._strings)
        self._buffer: list[TraceRecord] = []
        self._closed = False
        self.summary = TraceSummary(species=species)
        header = _HEADER.pack(MAGIC, version, _SPECIES_CODES[species], 0)
        self._stream.write(header)
        self.summary.size_bytes = len(header)

    def append(self, record: TraceRecord) -> None:
        """Add one record; flushes a chunk when the buffer fills."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        payload = bytearray()
        self._codec.begin_chunk()
        records_block = bytearray()
        lengths: list[int] = []
        flags: list[int] = []
        for record in self._buffer:
            before = len(records_block)
            self._codec.encode(records_block, record)
            lengths.append(len(records_block) - before)
            flags.append(self._codec.flags(record))
        body = bytearray()
        write_uvarint(body, len(self._buffer))
        if self.version >= 2:
            directory = bytearray()
            for length, flag in zip(lengths, flags):
                write_uvarint(directory, (length << 2) | flag)
            write_uvarint(body, len(directory))
            body.extend(directory)
        body.extend(records_block)
        # String-table prelude goes first, but interning happens during
        # record encoding — so build the body first, then the prelude.
        self._strings.flush_prelude(payload)
        payload.extend(body)
        raw = bytes(payload)
        self._stream.write(_CHUNK_HEADER.pack(len(raw), zlib.crc32(raw)))
        self._stream.write(raw)
        self.summary.n_records += len(self._buffer)
        self.summary.n_chunks += 1
        self.summary.size_bytes += _CHUNK_HEADER.size + len(raw)
        self._buffer.clear()

    def close(self) -> TraceSummary:
        """Flush the final partial chunk and seal the summary."""
        if not self._closed:
            self._flush_chunk()
            self._closed = True
        return self.summary

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True  # don't flush half a record set on error


class TraceReader:
    """Chunked streaming reader: iterate to get records lazily.

    Each chunk's CRC is checked before decoding, so a flipped byte
    anywhere in the file raises :class:`TraceFormatError` instead of
    yielding silently wrong records.
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, species_code, _ = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}: not a trace file")
        if version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(
                f"unsupported trace format version {version} "
                f"(this reader speaks {SUPPORTED_VERSIONS})"
            )
        species = _SPECIES_NAMES.get(species_code)
        if species is None:
            raise TraceFormatError(f"unknown species code {species_code}")
        self.species = species
        self.version = version
        self._strings = _StringTable()
        self._codec = _CODECS[species](self._strings)
        self._consumed = False

    def __iter__(self) -> Iterator[TraceRecord]:
        if self._consumed:
            raise ValueError("trace readers are single-pass; reopen the file")
        self._consumed = True
        while True:
            chunk_header = self._stream.read(_CHUNK_HEADER.size)
            if not chunk_header:
                return
            if len(chunk_header) != _CHUNK_HEADER.size:
                raise TraceFormatError("truncated chunk header")
            length, crc = _CHUNK_HEADER.unpack(chunk_header)
            raw = self._stream.read(length)
            if len(raw) != length:
                raise TraceFormatError("truncated chunk payload")
            if zlib.crc32(raw) != crc:
                raise TraceFormatError(
                    "chunk CRC mismatch: trace file is corrupted"
                )
            buf = memoryview(raw)
            pos = self._strings.read_prelude(buf, 0)
            n_records, pos = read_uvarint(buf, pos)
            if self.version >= 2:
                # The record directory serves the columnar reader; the
                # object path decodes records sequentially and skips it.
                dir_nbytes, pos = read_uvarint(buf, pos)
                if pos + dir_nbytes > len(buf):
                    raise TraceFormatError("truncated record directory")
                pos += dir_nbytes
            self._codec.begin_chunk()
            for _ in range(n_records):
                record, pos = self._codec.decode(buf, pos)
                yield record
            if pos != len(buf):
                raise TraceFormatError(
                    f"{len(buf) - pos} trailing bytes in chunk"
                )


# ----------------------------------------------------------------------
# Whole-file convenience wrappers
# ----------------------------------------------------------------------
def write_trace(
    path,
    species: str,
    records: Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> TraceSummary:
    """Write ``records`` to ``path``; returns the write summary."""
    with open(path, "wb") as handle:
        with TraceWriter(handle, species, chunk_records=chunk_records) as writer:
            writer.extend(records)
        return writer.close()


def iter_trace(path) -> Iterator[TraceRecord]:
    """Stream records from ``path`` without materialising the trace."""
    with open(path, "rb") as handle:
        yield from TraceReader(handle)


def read_trace(path) -> list[TraceRecord]:
    """Read the whole trace into memory (small traces / tests)."""
    return list(iter_trace(path))


def trace_species(path) -> str:
    """Peek at a file's species without decoding any records."""
    with open(path, "rb") as handle:
        return TraceReader(handle).species


def count_trace_records(path) -> int:
    """Count records from chunk headers alone, without decoding them.

    Each chunk's CRC is still verified and its record-count varint read,
    so a corrupted file raises exactly as full decoding would — but the
    cost is one CRC pass over the bytes, not one decode per record.
    """
    with open(path, "rb") as handle:
        reader = TraceReader(handle)  # validates magic/version/species
        total = 0
        while True:
            chunk_header = handle.read(_CHUNK_HEADER.size)
            if not chunk_header:
                return total
            if len(chunk_header) != _CHUNK_HEADER.size:
                raise TraceFormatError("truncated chunk header")
            length, crc = _CHUNK_HEADER.unpack(chunk_header)
            raw = handle.read(length)
            if len(raw) != length:
                raise TraceFormatError("truncated chunk payload")
            if zlib.crc32(raw) != crc:
                raise TraceFormatError(
                    "chunk CRC mismatch: trace file is corrupted"
                )
            buf = memoryview(raw)
            pos = reader._strings.read_prelude(buf, 0)
            n_records, _ = read_uvarint(buf, pos)
            total += n_records


def serialize_records(
    species: str,
    records: Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> bytes:
    """In-memory serialization (property tests, network transport)."""
    buffer = io.BytesIO()
    with TraceWriter(buffer, species, chunk_records=chunk_records) as writer:
        writer.extend(records)
    writer.close()
    return buffer.getvalue()


def deserialize_records(blob: bytes) -> list[TraceRecord]:
    """Inverse of :func:`serialize_records`."""
    return list(TraceReader(io.BytesIO(blob)))
