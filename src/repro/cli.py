"""Command-line interface to the reproduction.

Mirrors the paper's tooling workflow: point TaintChannel at a target,
run the end-to-end attacks, regenerate the survey, or drive a whole
experiment campaign — all from a shell.

    python -m repro taintchannel zlib --lowercase 600
    python -m repro sgx-attack --size 2000
    python -m repro fingerprint --corpus lipsum --traces 40
    python -m repro survey --size 800
    python -m repro oracle demo --victim http
    python -m repro oracle attack --victim http --observable size
    python -m repro oracle sweep --observables size --mitigations none padding
    python -m repro trace capture --store corpus.trstore --size 600
    python -m repro trace verify --store corpus.trstore
    python -m repro campaign run examples/specs/lzw_noise_sweep.json \
        --out runs/lzw --workers 4 --obs runs/lzw/obs.jsonl
    python -m repro campaign resume runs/lzw
    python -m repro campaign status runs/lzw
    python -m repro campaign report runs/lzw
    python -m repro cluster run examples/specs/lzw_noise_sweep.json \
        --out runs/lzw-cluster --workers 4 --obs-shards
    python -m repro cluster serve --listen unix:/tmp/repro-cluster.sock
    python -m repro cluster submit examples/specs/lzw_noise_sweep.json \
        --connect unix:/tmp/repro-cluster.sock --out runs/lzw-svc
    python -m repro cluster status --connect unix:/tmp/repro-cluster.sock
    python -m repro mitigate survey lzw --random 150
    python -m repro mitigate report lzw --size 120
    python -m repro obs report runs/lzw/obs.jsonl
    python -m repro obs watch 'runs/lzw-cluster/shard-*/obs.jsonl'
    python -m repro obs tail runs/lzw/obs.jsonl -n 40
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.compression import deflate_compress, lzw_compress
from repro.workloads import english_like, lowercase_ascii, random_bytes

# The shared notion of "analyse target X on input Y" lives with the tool.
from repro.core.taintchannel.tool import target_for as _target_for


def _load_input(args: argparse.Namespace) -> bytes:
    if args.file:
        with open(args.file, "rb") as handle:
            return handle.read()
    if args.lowercase:
        return lowercase_ascii(args.lowercase, seed=args.seed)
    if args.text:
        return english_like(args.text, seed=args.seed)
    return random_bytes(args.random, seed=args.seed)


def cmd_taintchannel(args: argparse.Namespace) -> int:
    """Run TaintChannel on a named target and render its gadgets."""
    from repro.core.taintchannel import TaintChannel

    data = _load_input(args)
    tc = TaintChannel(carry_aware_add=args.carry_aware, max_events=args.max_events)
    try:
        target = _target_for(args.target, data)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = tc.analyze(args.target, target)
    print(result.summary())
    gadgets = result.gadgets
    if args.gadget:
        gadgets = [g for g in gadgets if args.gadget in g.site]
    for gadget in sorted(gadgets, key=lambda g: -g.count)[: args.top]:
        print()
        print(tc.render(result, gadget, with_slice=not args.no_slice))
    return 0


def cmd_sgx_attack(args: argparse.Namespace) -> int:
    """Run the Section V extraction attack end to end."""
    from repro.core.zipchannel import AttackConfig, SgxBzip2Attack

    secret = _load_input(args)
    config = AttackConfig(
        use_cat=not args.no_cat,
        use_frame_selection=not args.no_frame_selection,
        background_noise_rate=args.noise,
    )
    if args.mitigated:
        from repro.mitigations import oblivious_histogram

        outcome = SgxBzip2Attack(
            secret, config, victim_histogram=oblivious_histogram
        ).run()
    else:
        outcome = SgxBzip2Attack(secret, config).run()
    print(outcome.summary())
    print(
        f"empty observations: {outcome.observations_empty}, "
        f"ambiguous: {outcome.observations_ambiguous}, "
        f"victim accesses: {outcome.victim_accesses}"
    )
    return 0


def cmd_fingerprint(args: argparse.Namespace) -> int:
    """Run the Section VI fingerprinting attack and print the confusion
    matrix."""
    from repro.classify import (
        MLPClassifier,
        confusion_matrix,
        render_confusion,
        split_dataset,
    )
    from repro.core.zipchannel.fingerprint import build_dataset
    from repro.workloads import brotli_like_corpus, repetitiveness_series

    if args.corpus == "brotli":
        corpus = brotli_like_corpus()
        names, files = list(corpus), list(corpus.values())
    else:
        files = repetitiveness_series()
        names = [f"test_0000{i + 1}.txt" for i in range(len(files))]

    print(f"capturing {args.traces} traces for each of {len(files)} files...")
    x, y, _ = build_dataset(files, traces_per_file=args.traces, seed=args.seed)
    train, val, test = split_dataset(x, y, seed=args.seed + 1)
    clf = MLPClassifier(x.shape[1], len(files), hidden=96, seed=args.seed + 2)
    clf.fit(*train, epochs=args.epochs, x_val=val[0], y_val=val[1])
    print(f"test accuracy: {clf.accuracy(*test) * 100:.1f}% "
          f"(chance {100 / len(files):.1f}%)")
    matrix = confusion_matrix(test[1], clf.predict(test[0]), len(files))
    print(render_confusion(matrix, names))
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    """Run the Section IV recovery survey on all three compressors."""
    from repro.compression.bzip2.blocksort import histogram
    from repro.compression.lz77 import SITE_HEAD
    from repro.compression.lzw import SITE_PRIMARY, SITE_SECONDARY
    from repro.exec import InstrumentationTier, TracingContext
    from repro.recovery import observed_lines, recover_lzw_input
    from repro.recovery.bzip2_recover import (
        observations_from_lines,
        recover_bzip2_block,
    )
    from repro.recovery.zlib_recover import accuracy, recover_known_high_bits

    n = args.size

    # The survey only consumes the memory-access stream.
    tier = InstrumentationTier.ADDRESS_ONLY

    data = lowercase_ascii(n, seed=args.seed)
    ctx = TracingContext(tier=tier)
    deflate_compress(data, ctx=ctx)
    rec = recover_known_high_bits(
        observed_lines(ctx, SITE_HEAD, kind="write"), ctx.arrays["head"].base, n
    )
    print(f"zlib (lowercase): {accuracy(rec, data) * 100:.2f}% of bytes recovered")

    data = random_bytes(n, seed=args.seed)
    ctx = TracingContext(tier=tier)
    lzw_compress(data, ctx=ctx)
    lines = [
        a.address >> 6
        for a in ctx.tainted_accesses()
        if a.site in (SITE_PRIMARY, SITE_SECONDARY) and a.kind == "read"
    ]
    cands = recover_lzw_input(lines, ctx.arrays["htab"].base, n)
    print(f"ncompress: exact input {'found' if data in cands else 'NOT found'} "
          f"among {len(cands)} candidates")

    data = random_bytes(n, seed=args.seed + 1)
    ctx = TracingContext(tier=tier)
    block = ctx.array("block", n)
    for i, v in enumerate(ctx.input_bytes(data)):
        block.set(i, v)
    histogram(ctx, block, n)
    from repro.compression.bzip2 import SITE_FTAB

    obs = observations_from_lines(observed_lines(ctx, SITE_FTAB), n)
    result = recover_bzip2_block(obs, ctx.arrays["ftab"].base, n)
    print(f"bzip2: {result.bit_accuracy(data) * 100:.2f}% of bits recovered")
    return 0


def cmd_trace_capture(args: argparse.Namespace) -> int:
    """Capture victim traces into a trace store."""
    from repro.traces import TraceStore
    from repro.traces.capture import (
        capture_fingerprint_traces,
        capture_survey_traces,
    )

    store = TraceStore(args.store)
    if args.species == "memory":
        entries = capture_survey_traces(
            store,
            size=args.size,
            seed=args.seed,
            targets=args.targets or ("zlib", "lzw", "bzip2"),
            overwrite=args.overwrite,
        )
    else:
        trace_id = args.id or (
            f"fingerprint-{args.corpus}-t{args.traces}-s{args.seed}"
        )
        entries = [
            capture_fingerprint_traces(
                store,
                trace_id,
                corpus=args.corpus,
                traces_per_file=args.traces,
                seed=args.seed,
                overwrite=args.overwrite,
            )
        ]
    for entry in entries:
        print(
            f"captured {entry.trace_id}: {entry.n_records} records, "
            f"{entry.size_bytes} bytes, sha256 {entry.sha256[:12]}"
        )
    return 0


def cmd_trace_list(args: argparse.Namespace) -> int:
    """List the traces in a store."""
    from repro.traces import TraceStore

    store = TraceStore(args.store)
    if not store.exists():
        print(f"error: no trace store at {args.store}", file=sys.stderr)
        return 2
    entries = store.list(species=args.species)
    for entry in entries:
        meta = entry.meta
        label = (
            meta.get("target") or meta.get("corpus")
            or meta.get("victim") or "-"
        )
        print(
            f"{entry.trace_id:<40} {entry.species:<12} {label:<10} "
            f"{entry.n_records:>9} rec {entry.size_bytes:>10} B"
        )
    if not entries:
        print("(store is empty)")
    return 0


def cmd_trace_verify(args: argparse.Namespace) -> int:
    """Verify stored traces against their hashes; exit 1 on corruption."""
    from repro.traces import TraceStore

    store = TraceStore(args.store)
    if not store.exists():
        print(f"error: no trace store at {args.store}", file=sys.stderr)
        return 2
    reports = store.verify(args.id)
    bad = 0
    for report in reports:
        if report.ok:
            print(f"ok      {report.trace_id}")
        else:
            bad += 1
            print(f"CORRUPT {report.trace_id}: {report.problem}")
    if not reports:
        print("(store is empty)")
    return 1 if bad else 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Export one trace to JSON for external tooling."""
    import json

    from repro.traces import (
        SPECIES_FINGERPRINT,
        SPECIES_MEMORY,
        TraceStore,
    )

    store = TraceStore(args.store)
    try:
        entry = store.get(args.id)
    except (KeyError, FileNotFoundError):
        print(f"error: no trace {args.id!r} in {args.store}", file=sys.stderr)
        return 2
    records = []
    if entry.species == SPECIES_MEMORY:
        cols = store.read_columns(args.id)
        kinds = cols.lookup(cols.kind_id)
        arrays = cols.lookup(cols.array_id)
        sites = cols.lookup(cols.site_id)
        lines = cols.lines()
        for i in range(cols.n):
            records.append(
                {
                    "seq": int(cols.seq[i]),
                    "kind": kinds[i],
                    "array": arrays[i],
                    "index": int(cols.index[i]),
                    "elem_size": int(cols.elem_size[i]),
                    "address": int(cols.address[i]),
                    "cache_line": int(lines[i]),
                    "site": sites[i],
                    "tainted": bool(cols.addr_tainted[i]),
                }
            )
    elif entry.species == SPECIES_FINGERPRINT:
        cols = store.read_columns(args.id)
        for i in range(cols.n):
            records.append(
                {
                    "label": int(cols.labels[i]),
                    "capture_seed": int(cols.capture_seeds[i]),
                    "trace": cols.traces[i].tolist(),
                }
            )
    else:
        for record in store.iter_records(args.id):
            records.append(
                {
                    "step": record.step,
                    "label": record.label,
                    "probe_len": record.probe_len,
                    "observation": record.observation,
                    "queries": record.queries,
                }
            )
    payload = {"entry": entry.to_dict(), "records": records}
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(records)} records to {args.out}")
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()
    return 0


def _campaign_pieces(args: argparse.Namespace, spec=None):
    """Build (spec, store, runner) from parsed campaign arguments."""
    from repro.campaign import CampaignRunner, ResultStore
    from repro.campaign.spec import CampaignSpec

    sink = getattr(args, "obs", None)
    if sink:
        from repro import obs

        # Enable here and export the sink path so spawned campaign
        # worker processes activate from the environment and append to
        # the same JSONL file.
        os.environ[obs.ENV_SINK] = sink
        obs.enable(sink_path=sink)
    if spec is None:
        spec = CampaignSpec.from_json_file(args.spec)
    out = getattr(args, "out", None) or f"runs/{spec.name}"
    store = ResultStore(out)
    runner = CampaignRunner(
        spec,
        store,
        workers=args.workers,
        on_event=None if args.quiet else print,
    )
    return spec, store, runner


def _campaign_exit_code(result) -> int:
    """0 if every job succeeded, 1 if every job terminally failed,
    3 on partial failure — so scripts/CI can tell the cases apart."""
    failed = sum(v for k, v in result.counts.items() if k != "ok")
    if not failed:
        return 0
    return 1 if result.counts.get("ok", 0) == 0 else 3


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Expand a spec file into jobs and run them in parallel."""
    from repro.campaign import SpecMismatchError

    spec, store, runner = _campaign_pieces(args)
    print(
        f"campaign {spec.name!r}: {spec.n_jobs()} jobs of "
        f"{spec.experiment!r} -> {store.root} "
        f"({args.workers} worker{'s' if args.workers != 1 else ''})"
    )
    try:
        result = runner.run(resume=args.resume)
    except SpecMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"interrupted — finished jobs are checkpointed; continue "
            f"with `python -m repro campaign resume {store.root}`",
            file=sys.stderr,
        )
        # The terminal delivers SIGINT to the whole process group; a
        # second delivery during interpreter shutdown (while atexit
        # joins the dead pool's threads) prints an ignorable traceback.
        # The runner already flushed obs and the store fsyncs per
        # record, so exit hard with the conventional SIGINT code.
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(130)
    print(result.summary())
    return _campaign_exit_code(result)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted campaign from its result directory: the
    spec is rehydrated from the manifest and recorded jobs are skipped."""
    from repro.campaign import ResultStore, SpecMismatchError

    store = ResultStore(args.dir)
    if not store.exists():
        print(f"error: no campaign manifest in {args.dir}", file=sys.stderr)
        return 2
    args.out = args.dir
    try:
        spec, store, runner = _campaign_pieces(args, spec=store.load_spec())
        result = runner.run(resume=True)
    except SpecMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"interrupted — finished jobs are checkpointed; continue "
            f"with `python -m repro campaign resume {store.root}`",
            file=sys.stderr,
        )
        # The terminal delivers SIGINT to the whole process group; a
        # second delivery during interpreter shutdown (while atexit
        # joins the dead pool's threads) prints an ignorable traceback.
        # The runner already flushed obs and the store fsyncs per
        # record, so exit hard with the conventional SIGINT code.
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(130)
    print(result.summary())
    return _campaign_exit_code(result)


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """Render the per-cell aggregate report for a campaign directory."""
    from repro.campaign import ResultStore, render_report

    store = ResultStore(args.dir)
    if not store.exists():
        print(f"error: no campaign manifest in {args.dir}", file=sys.stderr)
        return 2
    print(render_report(store))
    return 0


def cmd_campaign_list(args: argparse.Namespace) -> int:
    """List the experiments campaigns can run."""
    from repro.campaign import available_experiments

    for name in available_experiments():
        print(name)
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """Read-only progress snapshot of a campaign directory (local or
    cluster; live or finished) from its JSONL checkpoint."""
    import json as _json

    from repro.campaign import ResultStore, campaign_status, render_status

    store = ResultStore(args.dir)
    if not store.exists():
        print(f"error: no campaign manifest in {args.dir}", file=sys.stderr)
        return 2
    status = campaign_status(store)
    if args.json:
        _json.dump(status, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_status(status))
    return 0


def _cluster_exit_code(counts: dict) -> int:
    """Same convention as local campaigns: 0 all ok, 1 all failed,
    3 partial."""
    failed = sum(
        v for k, v in counts.items() if k in ("failed", "timeout", "crashed")
    )
    if not failed:
        return 0
    return 1 if counts.get("ok", 0) == 0 else 3


def cmd_cluster_run(args: argparse.Namespace) -> int:
    """One-shot distributed run: scheduler + N local worker processes."""
    from repro.campaign import SpecMismatchError
    from repro.campaign.spec import CampaignSpec
    from repro.cluster import parse_endpoint, run_cluster

    spec = CampaignSpec.from_json_file(args.spec)
    out = args.out or f"runs/{spec.name}"
    endpoint = parse_endpoint(args.listen) if args.listen else None
    if args.obs:
        from repro import obs

        # The scheduler runs in this process; workers append to the
        # same file, so one sink holds the whole trace tree.
        obs.enable(sink_path=args.obs)
    print(
        f"cluster campaign {spec.name!r}: {spec.n_jobs()} jobs of "
        f"{spec.experiment!r} -> {out} ({args.workers} worker "
        f"process{'es' if args.workers != 1 else ''})"
    )
    try:
        outcome = run_cluster(
            spec,
            out,
            workers=args.workers,
            endpoint=endpoint,
            resume=args.resume,
            lease_seconds=args.lease_seconds,
            heartbeat_seconds=args.heartbeat_seconds,
            obs_shards=args.obs_shards,
            obs_sink=args.obs,
            drill_kill_worker=args.drill_kill_worker,
            on_event=None if args.quiet else print,
            deadline_seconds=args.deadline,
        )
    except SpecMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counts = outcome["counts"]
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    print(
        f"cluster campaign: {summary or 'nothing to do'} "
        f"in {outcome['elapsed_seconds']:.2f}s"
    )
    return _cluster_exit_code(counts)


def cmd_cluster_worker(args: argparse.Namespace) -> int:
    """Run one worker process against a scheduler (spawned by
    ``cluster run``, or started by hand against ``cluster serve``)."""
    from repro.cluster import ClusterWorker, parse_endpoint

    worker = ClusterWorker(
        parse_endpoint(args.connect),
        worker_id=args.worker_id,
        on_event=None if args.quiet else print,
        max_jobs=args.max_jobs,
    )
    try:
        worker.run()
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(f"error: cannot reach scheduler: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Run the scheduler as a long-lived campaign service."""
    from repro.cluster import parse_endpoint, serve

    if args.obs:
        from repro import obs

        # A service scheduler runs for days; cap the sink so it rotates
        # (sink.jsonl -> sink.jsonl.1) instead of growing without bound.
        obs.enable(sink_path=args.obs, max_sink_bytes=args.obs_max_bytes)
    serve(
        parse_endpoint(args.listen),
        lease_seconds=args.lease_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
        on_event=None if args.quiet else print,
    )
    return 0


def _cluster_control(args: argparse.Namespace, message: dict):
    """Send one control message; returns the reply or None on error."""
    from repro.cluster import control_request, parse_endpoint

    try:
        return control_request(parse_endpoint(args.connect), message)
    except (ConnectionRefusedError, FileNotFoundError, OSError) as exc:
        print(
            f"error: cannot reach scheduler at {args.connect}: {exc}",
            file=sys.stderr,
        )
        return None


def cmd_cluster_submit(args: argparse.Namespace) -> int:
    """Queue a campaign on a running ``cluster serve`` scheduler."""
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec.from_json_file(args.spec)
    out = args.out or f"runs/{spec.name}"
    reply = _cluster_control(
        args,
        {
            "type": "submit",
            "spec": spec.to_dict(),
            "store": out,
            "resume": args.resume,
        },
    )
    if reply is None:
        return 2
    if reply.get("type") != "ok":
        print(f"error: {reply.get('error', reply)}", file=sys.stderr)
        return 2
    print(f"submitted {reply['campaign_id']} -> {out}")
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """Show campaigns and workers of a running scheduler."""
    import json as _json

    reply = _cluster_control(args, {"type": "status"})
    if reply is None:
        return 2
    if args.json:
        _json.dump(reply, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    campaigns = reply.get("campaigns", [])
    workers = reply.get("workers", [])
    if not campaigns:
        print("(no campaigns submitted)")
    for c in campaigns:
        counts = ", ".join(
            f"{v} {k}" for k, v in sorted(c.get("counts", {}).items())
        )
        print(
            f"{c['campaign_id']:<28} {c['state']:<10} "
            f"pending {c['pending']:>4}  leased {c['leased']:>3}  "
            f"done {c['done']:>4}  [{counts or 'no outcomes yet'}] "
            f"{c['elapsed_seconds']:.1f}s -> {c['store']}"
        )
    print(
        f"workers: {sum(1 for w in workers if w.get('connected'))} connected, "
        f"{len(workers)} seen"
    )
    return 0


def cmd_cluster_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued/running campaign on the scheduler."""
    reply = _cluster_control(
        args, {"type": "cancel", "campaign_id": args.campaign_id}
    )
    if reply is None:
        return 2
    if reply.get("type") != "ok":
        print(f"error: {reply.get('error', reply)}", file=sys.stderr)
        return 2
    print(f"cancelled {args.campaign_id}")
    return 0


def cmd_cluster_shutdown(args: argparse.Namespace) -> int:
    """Ask a serving scheduler to drain and exit."""
    reply = _cluster_control(args, {"type": "shutdown"})
    if reply is None:
        return 2
    print("shutdown requested (scheduler drains running campaigns first)")
    return 0


def _load_obs_events(sink):
    """Read one or many JSONL obs sinks (globs allowed) or None (with a
    stderr message) when nothing matches."""
    from repro.obs import load_events_multi

    try:
        return load_events_multi(sink)
    except FileNotFoundError:
        shown = sink if isinstance(sink, str) else " ".join(sink)
        print(f"error: no obs sink at {shown}", file=sys.stderr)
        return None


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Render counters, histograms, and span timings from a JSONL sink.

    With ``--trace``: the cross-process trace view instead — the
    stitched span tree over all given sinks plus the critical-path
    breakdown of campaign wall-clock."""
    from repro.obs import render_report, render_trace

    events = _load_obs_events(args.sink)
    if events is None:
        return 2
    print(render_trace(events) if args.trace else render_report(events))
    return 0


def cmd_obs_tail(args: argparse.Namespace) -> int:
    """Print the last N events of a JSONL sink, one line each.

    With ``--follow`` keep polling the sink for appended lines (like
    ``tail -f``); truncated or corrupt trailing lines from killed
    workers are buffered/skipped instead of raising."""
    from repro.obs import format_event, render_tail

    if not args.follow:
        events = _load_obs_events(args.sink)
        if events is None:
            return 2
        print(render_tail(events, n=args.n))
        return 0

    import time as _time

    from repro.obs.watch import make_follower

    follower = make_follower(args.sink)
    deadline = (
        None
        if args.duration is None
        else _time.monotonic() + args.duration
    )
    shown = 0
    try:
        while True:
            events = follower.poll()
            if shown == 0 and events:
                events = events[-args.n:]
            for event in events:
                print(format_event(event))
                shown += 1
            sys.stdout.flush()
            if deadline is not None and _time.monotonic() >= deadline:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Live in-terminal dashboard over a sink being written by a
    running campaign: job progress, rolling metrics sparklines, merged
    counters/histograms, recent warnings."""
    from repro.obs.watch import watch_loop

    watch_loop(
        args.sink,
        interval=args.interval,
        duration=args.duration,
        clear=not args.no_clear,
        once=args.once,
    )
    return 0


def cmd_obs_export(args: argparse.Namespace) -> int:
    """Merge a JSONL sink into one machine-readable document.

    ``--format summary`` (default) is the merged counter/histogram/span
    JSON; ``--format chrome-trace`` converts spans, logs and metric
    points into Chrome Trace Event JSON loadable in ``chrome://tracing``
    and Perfetto."""
    import json

    from repro.obs import merge_events, render_chrome_trace

    events = _load_obs_events(args.sink)
    if events is None:
        return 2
    if args.format == "chrome-trace":
        shown = args.sink if isinstance(args.sink, str) else " ".join(args.sink)
        text = render_chrome_trace(events, origin=shown)
    else:
        text = json.dumps(merge_events(events), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Write the unified campaign dossier: campaign report + diag
    timeseries + obs summary + trace critical path, one markdown doc."""
    from repro.campaign import ResultStore, build_dossier

    store = ResultStore(args.dir)
    if not store.exists():
        print(f"error: no campaign manifest in {args.dir}", file=sys.stderr)
        return 2
    text = build_dossier(store, sinks=args.obs or None)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_diag_report(args: argparse.Namespace) -> int:
    """Per-gadget leakage metering: mutual information, per-bit
    accuracy, and Figs. 2-4-style heatmaps — from a live run or (with
    ``--store``) from stored traces, bit-identically."""
    from repro.diag import (
        render_survey_leakage,
        survey_leakage,
        survey_leakage_from_store,
    )

    if args.store:
        from repro.traces import TraceStore

        store = TraceStore(args.store)
        if not store.exists():
            print(f"error: no trace store at {args.store}", file=sys.stderr)
            return 2
        try:
            diags = survey_leakage_from_store(
                store, args.size, args.seed, prefix=args.prefix
            )
        except (KeyError, FileNotFoundError) as exc:
            print(
                f"error: missing survey trace: {exc} — capture with "
                f"`repro trace capture --store {args.store} "
                f"--size {args.size} --seed {args.seed}`",
                file=sys.stderr,
            )
            return 2
        source = f"stored traces ({args.store})"
    else:
        diags = survey_leakage(args.size, args.seed)
        source = "live run"
    print(
        f"# leakage diagnostics — {source}, size={args.size} "
        f"seed={args.seed}"
    )
    print()
    print(render_survey_leakage(diags))
    return 0


def cmd_diag_channel(args: argparse.Namespace) -> int:
    """Channel-health probes: timing margins, eviction-set quality,
    single-step fidelity, optional fingerprint confusion matrix."""
    from repro.diag import channel_health, render_channel_health

    report = channel_health(
        samples=args.samples,
        n_targets=args.targets,
        step_n=args.step_n,
        noise_sigma=args.noise_sigma,
        include_confusion=args.confusion,
    )
    print(render_channel_health(report))
    return 0


def cmd_diag_collect(args: argparse.Namespace) -> int:
    """Run the deterministic diagnostics suite and write the metrics
    (the baseline-refresh path: ``--out benchmarks/diag_baseline.json``)."""
    import json as _json

    from repro.diag import baseline_payload, collect_diag_metrics

    params = {
        "size": args.size,
        "seed": args.seed,
        "samples": args.samples,
        "n_targets": args.targets,
        "step_n": args.step_n,
        "oracle_samples": args.oracle_samples,
    }
    metrics = collect_diag_metrics(
        noise_sigma=args.noise_sigma,
        include_confusion=args.confusion,
        **params,
    )
    payload = baseline_payload(metrics, params=params)
    if args.out:
        from repro.diag import save_baseline

        save_baseline(args.out, payload)
        print(f"wrote {len(metrics)} metrics to {args.out}")
    else:
        _json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def cmd_diag_compare(args: argparse.Namespace) -> int:
    """The leakage drift gate: current metrics vs a committed baseline;
    exit 1 when a gated metric regressed beyond tolerance."""
    import json as _json

    from repro.diag import collect_diag_metrics, compare_diag, load_baseline

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"error: no baseline at {args.baseline}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.current:
        try:
            with open(args.current, "r", encoding="utf-8") as handle:
                current = _json.load(handle)
        except FileNotFoundError:
            print(f"error: no metrics file at {args.current}", file=sys.stderr)
            return 2
    else:
        # No file given: re-collect now with the baseline's parameters
        # (plus any injected override, e.g. --noise-sigma for drills).
        params = baseline.get("params", {})
        current = collect_diag_metrics(
            size=int(params.get("size", 120)),
            seed=int(params.get("seed", 7)),
            samples=int(params.get("samples", 1500)),
            n_targets=int(params.get("n_targets", 4)),
            step_n=int(params.get("step_n", 32)),
            oracle_samples=int(params.get("oracle_samples", 48)),
            noise_sigma=args.noise_sigma,
        )
    result = compare_diag(current, baseline, tolerance=args.tolerance)
    print(result.summary())
    return 0 if result.ok else 1


def _parse_spans(raw_spans: Optional[list]) -> list:
    """``--secret-span LO:HI`` values -> [(lo, hi), ...]."""
    spans = []
    for raw in raw_spans or []:
        lo, sep, hi = raw.partition(":")
        if not sep:
            raise ValueError(f"bad span {raw!r}; expected LO:HI")
        spans.append((int(lo), int(hi)))
    return spans


def cmd_mitigate_survey(args: argparse.Namespace) -> int:
    """Scan the vulnerable kernel and print/write its mitigation plan."""
    from repro.mitigations.verify import survey_plan

    data = _load_input(args)
    try:
        spans = _parse_spans(args.secret_span)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plan, result = survey_plan(args.target, data, secret_spans=spans or None)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(plan.to_json())
            handle.write("\n")
        print(f"wrote plan ({len(plan.sites)} sites) to {args.out}")
        return 0
    if args.json:
        print(plan.to_json())
        return 0
    print(result.summary())
    print()
    print(plan.summary())
    return 0


def cmd_mitigate_apply(args: argparse.Namespace) -> int:
    """Instantiate the patched kernel and compress the input with it."""
    from repro.core.taintchannel.tool import target_for
    from repro.exec.context import NativeContext
    from repro.mitigations.apply import build_kernel
    from repro.mitigations.plan import MitigationPlan
    from repro.mitigations.verify import survey_plan

    data = _load_input(args)
    try:
        spans = _parse_spans(args.secret_span)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = MitigationPlan.from_json(handle.read())
        if plan.target != args.target:
            print(
                f"error: plan targets {plan.target!r}, not {args.target!r}",
                file=sys.stderr,
            )
            return 2
    else:
        plan, _ = survey_plan(args.target, data, secret_spans=spans or None)
    kernel = build_kernel(args.target, plan, hash_bits=args.hash_bits)
    blob = kernel.run_native(data)
    vuln = target_for(args.target, data)(NativeContext())
    print(plan.summary())
    print()
    print(
        f"mitigated output: {len(blob)} bytes "
        f"(byte-identical to vulnerable kernel: {blob == vuln})"
    )
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(blob)
        print(f"wrote {args.out}")
    return 0


def cmd_mitigate_report(args: argparse.Namespace) -> int:
    """The full loop: scan, plan, apply, re-meter; before/after verdict.

    Exits 1 when a mitigated site still shows tainted accesses or the
    patched output diverges (outside of guard mode, where it may)."""
    import json as _json

    from repro.mitigations.verify import verify_mitigation

    try:
        spans = _parse_spans(args.secret_span)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = verify_mitigation(
        args.target,
        size=args.size,
        input_kind=args.input_kind,
        seed=args.seed,
        hash_bits=args.hash_bits,
        secret_spans=spans or None,
    )
    if args.json:
        _json.dump(
            report.metric_dict(), sys.stdout, indent=2, sort_keys=True
        )
        print()
    else:
        print(report.summary())
    ok = not report.residual_sites and (
        (report.output_equal and report.decodable)
        or (report.guarded and report.guard_ok)
    )
    return 0 if ok else 1


def _oracle_params(args: argparse.Namespace) -> dict:
    """Shared experiment params from parsed oracle-command arguments."""
    import json as _json

    params = {
        "victim": args.victim,
        "observable": args.observable,
        "mitigation": args.mitigation,
        "secret_len": args.secret_len,
        "charset": args.charset,
        "reps": args.reps,
        "max_queries": args.max_queries,
    }
    if args.mitigation_params:
        params["mitigation_params"] = _json.loads(args.mitigation_params)
    if getattr(args, "store", None):
        params["store"] = args.store
        params["overwrite"] = True
    if getattr(args, "strategy", None):
        params["strategy"] = args.strategy
    return params


def cmd_oracle_demo(args: argparse.Namespace) -> int:
    """Show the raw compression-oracle signal: one victim, one true and
    one false guess, and what each observable leaks."""
    from repro.oracle import make_oracle, make_victim
    from repro.recovery import probe_pair

    victim = make_victim(
        args.victim,
        mitigation=args.mitigation,
        seed=args.seed,
        secret_len=args.secret_len,
        charset=args.charset,
    )
    print(
        f"victim: {victim.name} (secret: {len(victim.secret)} chars of "
        f"{args.charset}, mitigation {args.mitigation})"
    )
    if victim.name == "http":
        plain = len(victim.payload(b""))
        packed = victim.size(b"")
        print(f"response: {plain} B plain, {packed} B through gzip "
              f"(the secret shares the compression context with the "
              f"reflected query)")
    true_c = victim.secret[0]
    false_c = ord("q") if true_c != ord("q") else ord("x")
    for label, c in (("true ", true_c), ("false", false_c)):
        oracle = make_oracle(
            victim, args.observable, args.mitigation, seed=args.seed
        )
        match, broken = probe_pair(victim.known_prefix, b"", [c])
        delta = oracle.observe(match) - oracle.observe(broken)
        print(
            f"{label} guess {chr(c)!r}: two-guess {args.observable} "
            f"delta {delta:+.1f}"
        )
    print(
        "a negative delta means the guess extended an LZ77 match into "
        "the secret — iterate with `repro oracle attack`"
    )
    return 0


def cmd_oracle_attack(args: argparse.Namespace) -> int:
    """Run the end-to-end BREACH recovery (or print why it failed)."""
    from repro.campaign.experiments import get_experiment

    result = get_experiment("breach_recovery")(_oracle_params(args), args.seed)
    print(
        f"breach recovery: victim={args.victim} observable={args.observable} "
        f"mitigation={args.mitigation}"
    )
    print(
        f"recovered {result['recovered_len']}/{result['secret_len']} chars, "
        f"{result['matching_fraction'] * 100:.0f}% matching ground truth"
    )
    print(
        f"queries: {result['queries']} "
        f"({result['queries_per_char']:.1f}/char over {result['probes']} probes)"
    )
    verdict = "SECRET RECOVERED" if result["correct"] else "recovery failed"
    print(f"verdict: {verdict}")
    return 0


def cmd_oracle_sweep(args: argparse.Namespace) -> int:
    """Recovery-rate-vs-overhead matrix across mitigations/observables."""
    import json as _json

    from repro.campaign.experiments import get_experiment

    params = {
        "secret_len": args.secret_len,
        "max_queries": args.max_queries,
        "mi_samples": args.mi_samples,
    }
    if args.observables:
        params["observables"] = args.observables
    if args.mitigations:
        params["mitigations"] = args.mitigations
    metrics = get_experiment("oracle_mitigation_sweep")(params, args.seed)
    if args.json:
        _json.dump(metrics, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    cells = sorted(
        {key.rsplit(".", 1)[0] for key in metrics if key.endswith(".correct")}
    )
    print(
        f"{'observable':<11} {'mitigation':<11} {'recovered':>9} "
        f"{'queries':>8} {'overhead%':>10} {'MI bits':>9}"
    )
    for cell in cells:
        observable, mitigation = cell.split(".", 1)
        mi = metrics.get(f"{cell}.mi_bits")
        cap = metrics.get(f"{cell}.mi_capacity_bits")
        mi_text = "-" if mi is None else f"{mi:.2f}/{cap:.0f}"
        print(
            f"{observable:<11} {mitigation:<11} "
            f"{metrics[f'{cell}.matching_fraction']:>9.2f} "
            f"{metrics[f'{cell}.queries']:>8.0f} "
            f"{metrics[f'{cell}.overhead_pct']:>10.2f} "
            f"{mi_text:>9}"
        )
    return 0


def cmd_perf_run(args: argparse.Namespace) -> int:
    """Time the bench catalogue; optionally annotate speedups vs a
    recorded baseline and write the JSON report."""
    from repro.perf import load_report, run_benches
    from repro.perf.harness import apply_baseline, merge_reports

    report = run_benches(
        names=args.bench or None,
        quick=args.quick,
        repeats=args.repeats,
        on_event=None if args.quiet else print,
    )
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except FileNotFoundError:
            print(f"error: no baseline at {args.baseline}", file=sys.stderr)
            return 2
        try:
            apply_baseline(report, baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(report.summary())
    out_path, to_write = args.out, report
    if args.update:
        out_path = args.update
        try:
            to_write = merge_reports(load_report(args.update), report)
        except FileNotFoundError:
            to_write = report
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(to_write.to_json())
        print(f"wrote {out_path}")
    changed = [
        name
        for name, r in report.benches.items()
        if r.metrics_match is False
    ]
    if changed:
        print(
            f"error: metrics changed vs baseline for {sorted(changed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    """The regression gate: compare a current report (or a fresh quick
    run) against a baseline file; exit 1 on regression."""
    from repro.perf import compare_reports, load_report, run_benches

    try:
        baseline = load_report(args.baseline)
    except FileNotFoundError:
        print(f"error: no baseline at {args.baseline}", file=sys.stderr)
        return 2
    if args.current:
        try:
            current = load_report(args.current)
        except FileNotFoundError:
            print(f"error: no report at {args.current}", file=sys.stderr)
            return 2
    else:
        # No report given: run the benches now, in the baseline's mode.
        current = run_benches(
            quick=baseline.mode == "quick",
            on_event=None if args.quiet else print,
        )
    result = compare_reports(
        current,
        baseline,
        tolerance=args.tolerance,
        normalize=not args.absolute,
    )
    print(result.summary())
    return 0 if result.ok else 1


def cmd_perf_profile(args: argparse.Namespace) -> int:
    """cProfile one bench (or any experiment id) and print the stats.

    With ``--sites TARGET``: a per-site access-count profile instead —
    one ADDRESS_ONLY traced run of the named analysis target, hottest
    sites first, keyed by the same site labels the gadget reports and
    ``repro mitigate`` plans use."""
    import json as _json

    from repro.perf import profile_bench

    if args.sites:
        from repro.perf import render_site_profile, site_access_profile

        data = random_bytes(args.size, seed=args.seed)
        try:
            rows = site_access_profile(args.sites, data)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            render_site_profile(rows, args.sites, len(data), top=args.top)
        )
        return 0
    try:
        text = profile_bench(
            args.name if not args.experiment else "",
            quick=args.quick,
            sort=args.sort,
            top=args.top,
            experiment=args.experiment,
            params=_json.loads(args.params) if args.params else None,
            seed=args.seed,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(text)
    return 0


def cmd_perf_list(args: argparse.Namespace) -> int:
    """List the bench catalogue with its pinned workloads."""
    from repro.perf import get_bench, available_benches

    for name in available_benches():
        bench = get_bench(name)
        print(
            f"{name:<20} {bench.experiment:<22} "
            f"full={bench.params} quick={bench.resolved_params(True)}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZipChannel (DSN 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--file", help="read the input/secret from a file")
        p.add_argument("--random", type=int, default=500,
                       help="random input of N bytes (default)")
        p.add_argument("--lowercase", type=int,
                       help="lowercase-ASCII input of N bytes")
        p.add_argument("--text", type=int, help="English-like input of N bytes")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("taintchannel", help="detect cache side-channel gadgets")
    p.add_argument("target", choices=["zlib", "lzw", "bzip2", "aes"])
    add_input_args(p)
    p.add_argument("--carry-aware", action="store_true",
                   help="conservative carry propagation for additions")
    p.add_argument("--max-events", type=int, default=2_000_000)
    p.add_argument("--gadget", help="only render gadgets whose site matches")
    p.add_argument("--top", type=int, default=3, help="gadget reports to render")
    p.add_argument("--no-slice", action="store_true")
    p.set_defaults(func=cmd_taintchannel)

    p = sub.add_parser("sgx-attack", help="end-to-end Section V attack")
    add_input_args(p)
    p.add_argument("--no-cat", action="store_true")
    p.add_argument("--no-frame-selection", action="store_true")
    p.add_argument("--noise", type=int, default=2,
                   help="background line touches per victim access")
    p.add_argument("--mitigated", action="store_true",
                   help="attack the Section VIII oblivious victim instead")
    p.set_defaults(func=cmd_sgx_attack)

    p = sub.add_parser("fingerprint", help="Section VI fingerprinting attack")
    p.add_argument("--corpus", choices=["brotli", "lipsum"], default="brotli")
    p.add_argument("--traces", type=int, default=30)
    p.add_argument("--epochs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fingerprint)

    p = sub.add_parser("survey", help="Section IV recovery survey")
    p.add_argument("--size", type=int, default=600)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser(
        "trace",
        help="capture, inspect, and verify stored victim traces",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser(
        "capture", help="run a victim and store what the attacker saw"
    )
    t.add_argument("--store", required=True,
                   help="trace store directory (conventionally *.trstore)")
    t.add_argument("--species", choices=["memory", "fingerprint"],
                   default="memory")
    t.add_argument("--size", type=int, default=600,
                   help="input bytes per memory-trace target")
    t.add_argument("--targets", nargs="*",
                   choices=["zlib", "lzw", "bzip2"],
                   help="memory-trace targets (default: all three)")
    t.add_argument("--corpus", choices=["brotli", "lipsum"],
                   default="lipsum", help="fingerprint corpus")
    t.add_argument("--traces", type=int, default=10,
                   help="fingerprint captures per corpus file")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--id", help="explicit trace id (fingerprint captures)")
    t.add_argument("--overwrite", action="store_true")
    t.set_defaults(func=cmd_trace_capture)

    t = tsub.add_parser("list", help="list the traces in a store")
    t.add_argument("--store", required=True)
    t.add_argument("--species", choices=["memory", "fingerprint", "oracle"])
    t.set_defaults(func=cmd_trace_list)

    t = tsub.add_parser(
        "verify", help="check stored traces against their content hashes"
    )
    t.add_argument("--store", required=True)
    t.add_argument("--id", help="verify a single trace")
    t.set_defaults(func=cmd_trace_verify)

    t = tsub.add_parser("export", help="export one trace as JSON")
    t.add_argument("--store", required=True)
    t.add_argument("--id", required=True)
    t.add_argument("--out", help="output file (default: stdout)")
    t.set_defaults(func=cmd_trace_export)

    p = sub.add_parser(
        "oracle",
        help="compression-ratio/timing oracles: BREACH & memory compression",
    )
    orsub = p.add_subparsers(dest="oracle_command", required=True)

    def add_oracle_args(o: argparse.ArgumentParser) -> None:
        o.add_argument("--victim", choices=["http", "memcomp"],
                       default="http")
        o.add_argument("--observable", choices=["size", "time"],
                       default="size")
        o.add_argument("--mitigation",
                       choices=["none", "padding", "quantize", "jitter",
                                "debreach"],
                       default="none")
        o.add_argument("--secret-len", type=int, default=8,
                       help="victim secret length in characters")
        o.add_argument("--charset", default="alnum_lower",
                       help="victim secret charset "
                            "(hex/alnum_lower/alnum/token68)")
        o.add_argument("--seed", type=int, default=0)
        o.add_argument("--reps", type=int, default=2,
                       help="probe repetitions per score")
        o.add_argument("--max-queries", type=int, default=50_000,
                       help="attack give-up budget")
        o.add_argument("--mitigation-params",
                       help='mitigation knobs as JSON, e.g. \'{"quantum": 32}\'')

    o = orsub.add_parser(
        "demo", help="show the raw true-vs-false guess signal"
    )
    add_oracle_args(o)
    o.set_defaults(func=cmd_oracle_demo)

    o = orsub.add_parser(
        "attack", help="end-to-end BREACH recovery through a sealed oracle"
    )
    add_oracle_args(o)
    o.add_argument("--strategy", choices=["dnc", "scan"],
                   help="per-character search (default: per scenario)")
    o.add_argument("--store",
                   help="persist the per-guess probe trace into this store")
    o.set_defaults(func=cmd_oracle_attack)

    o = orsub.add_parser(
        "sweep", help="recovery-rate vs overhead across mitigations"
    )
    o.add_argument("--observables", nargs="*",
                   help="observables to sweep (default: size time)")
    o.add_argument("--mitigations", nargs="*",
                   help="mitigations to sweep (default: all)")
    o.add_argument("--secret-len", type=int, default=6)
    o.add_argument("--max-queries", type=int, default=4_000)
    o.add_argument("--mi-samples", type=int, default=24,
                   help="per-cell oracle-MI samples (0 skips MI)")
    o.add_argument("--seed", type=int, default=0)
    o.add_argument("--json", action="store_true",
                   help="raw metrics JSON instead of the table")
    o.set_defaults(func=cmd_oracle_sweep)

    p = sub.add_parser(
        "campaign",
        help="parallel experiment campaigns with a persistent result store",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("run", help="run a campaign from a JSON spec file")
    c.add_argument("spec", help="path to the campaign spec (JSON)")
    c.add_argument("--out", help="result directory (default runs/<name>)")
    c.add_argument("--workers", type=int, default=1,
                   help="parallel worker processes")
    c.add_argument("--resume", action="store_true",
                   help="continue if the directory already holds this campaign")
    c.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    c.add_argument("--obs", metavar="SINK",
                   help="record observability events (spans, counters, "
                        "logs) to this JSONL file; workers inherit it")
    c.set_defaults(func=cmd_campaign_run)

    c = csub.add_parser(
        "resume", help="continue an interrupted campaign directory"
    )
    c.add_argument("dir", help="campaign result directory")
    c.add_argument("--workers", type=int, default=1)
    c.add_argument("--quiet", action="store_true")
    c.add_argument("--obs", metavar="SINK",
                   help="record observability events to this JSONL file")
    c.set_defaults(func=cmd_campaign_resume)

    c = csub.add_parser("report", help="aggregate a campaign into markdown")
    c.add_argument("dir", help="campaign result directory")
    c.set_defaults(func=cmd_campaign_report)

    c = csub.add_parser(
        "status",
        help="read-only done/failed/retried/pending snapshot of a "
             "campaign directory (local or cluster)",
    )
    c.add_argument("dir", help="campaign result directory")
    c.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of text")
    c.set_defaults(func=cmd_campaign_status)

    c = csub.add_parser("list", help="list registered experiments")
    c.set_defaults(func=cmd_campaign_list)

    p = sub.add_parser(
        "report",
        help="unified campaign dossier: results, diag timeseries, obs "
             "summary, and the trace critical path in one markdown doc",
    )
    p.add_argument("dir", help="campaign result directory")
    p.add_argument("--obs", nargs="+", metavar="SINK",
                   help="obs sink file(s)/glob(s) to merge (default: "
                        "auto-discover obs.jsonl and shard-*/obs.jsonl "
                        "under the campaign directory)")
    p.add_argument("--out", help="write the dossier here "
                                 "(default: stdout)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "cluster",
        help="distributed campaigns: scheduler, workers, campaign service",
    )
    clsub = p.add_subparsers(dest="cluster_command", required=True)

    def add_cluster_tuning(k: argparse.ArgumentParser) -> None:
        k.add_argument("--lease-seconds", type=float, default=30.0,
                       help="job lease lifetime; expiry requeues the job")
        k.add_argument("--heartbeat-seconds", type=float, default=1.0,
                       help="worker heartbeat interval")

    k = clsub.add_parser(
        "run",
        help="one-shot distributed run: scheduler + N local workers",
    )
    k.add_argument("spec", help="path to the campaign spec (JSON)")
    k.add_argument("--out", help="result directory (default runs/<name>)")
    k.add_argument("--workers", type=int, default=2,
                   help="worker processes to spawn")
    k.add_argument("--resume", action="store_true",
                   help="continue if the directory already holds this campaign")
    k.add_argument("--listen",
                   help="scheduler endpoint (unix:/path or tcp:host:port; "
                        "default: ephemeral localhost TCP)")
    k.add_argument("--obs", metavar="SINK",
                   help="record scheduler and worker obs events "
                        "(spans, counters, trace context) to this one "
                        "JSONL file; `obs report --trace SINK` then "
                        "shows the full campaign span tree")
    k.add_argument("--obs-shards", action="store_true",
                   help="each worker records obs events to "
                        "<out>/shard-<id>/obs.jsonl (watch with "
                        "`obs watch '<out>/shard-*/obs.jsonl'`)")
    k.add_argument("--drill-kill-worker", type=int, metavar="N",
                   help="crash-recovery drill: SIGKILL the first worker "
                        "after N jobs have completed")
    k.add_argument("--deadline", type=float, default=600.0,
                   help="abort the run after this many seconds")
    k.add_argument("--quiet", action="store_true")
    add_cluster_tuning(k)
    k.set_defaults(func=cmd_cluster_run)

    k = clsub.add_parser(
        "worker", help="run one worker against a scheduler"
    )
    k.add_argument("--connect", required=True,
                   help="scheduler endpoint (unix:/path or tcp:host:port)")
    k.add_argument("--worker-id",
                   help="stable worker name (default: generated); also "
                        "names the shard directory")
    k.add_argument("--max-jobs", type=int,
                   help="exit after executing N jobs (test hook)")
    k.add_argument("--quiet", action="store_true")
    k.set_defaults(func=cmd_cluster_worker)

    k = clsub.add_parser(
        "serve",
        help="long-lived campaign service (submit/status/cancel against it)",
    )
    k.add_argument("--listen", default="tcp:127.0.0.1:7633",
                   help="endpoint to listen on (default tcp:127.0.0.1:7633)")
    k.add_argument("--obs", metavar="SINK",
                   help="record scheduler obs events to this JSONL file")
    k.add_argument("--obs-max-bytes", type=int, metavar="N",
                   help="rotate the sink (SINK -> SINK.1) when it "
                        "would exceed N bytes — bounds disk use for a "
                        "long-running service")
    k.add_argument("--quiet", action="store_true")
    add_cluster_tuning(k)
    k.set_defaults(func=cmd_cluster_serve)

    k = clsub.add_parser(
        "submit", help="queue a campaign on a running scheduler"
    )
    k.add_argument("spec", help="path to the campaign spec (JSON)")
    k.add_argument("--connect", default="tcp:127.0.0.1:7633",
                   help="scheduler endpoint")
    k.add_argument("--out", help="result directory (default runs/<name>)")
    k.add_argument("--resume", action="store_true")
    k.set_defaults(func=cmd_cluster_submit)

    k = clsub.add_parser(
        "status", help="campaigns and workers of a running scheduler"
    )
    k.add_argument("--connect", default="tcp:127.0.0.1:7633",
                   help="scheduler endpoint")
    k.add_argument("--json", action="store_true",
                   help="raw status payload as JSON")
    k.set_defaults(func=cmd_cluster_status)

    k = clsub.add_parser("cancel", help="cancel a campaign by id")
    k.add_argument("campaign_id", help="id from `cluster status`")
    k.add_argument("--connect", default="tcp:127.0.0.1:7633",
                   help="scheduler endpoint")
    k.set_defaults(func=cmd_cluster_cancel)

    k = clsub.add_parser(
        "shutdown", help="drain and stop a serving scheduler"
    )
    k.add_argument("--connect", default="tcp:127.0.0.1:7633",
                   help="scheduler endpoint")
    k.set_defaults(func=cmd_cluster_shutdown)

    p = sub.add_parser(
        "obs",
        help="render observability sinks (spans, counters, logs)",
    )
    osub = p.add_subparsers(dest="obs_command", required=True)

    o = osub.add_parser(
        "report", help="counter/histogram tables and span tree from a sink"
    )
    o.add_argument("sink", nargs="+",
                   help="JSONL sink file(s) or glob, e.g. "
                        "'runs/x/shard-*/obs.jsonl'")
    o.add_argument("--trace", action="store_true",
                   help="cross-process trace view: stitched span tree "
                        "over all sinks + critical-path breakdown")
    o.set_defaults(func=cmd_obs_report)

    o = osub.add_parser("tail", help="print the last N events of a sink")
    o.add_argument("sink", nargs="+",
                   help="JSONL sink file(s) or glob")
    o.add_argument("-n", type=int, default=20, help="events to show")
    o.add_argument("--follow", "-f", action="store_true",
                   help="poll the sink for appended events (tail -f); "
                        "tolerates torn lines from killed workers")
    o.add_argument("--interval", type=float, default=0.5,
                   help="poll interval seconds (with --follow)")
    o.add_argument("--duration", type=float,
                   help="stop following after this many seconds "
                        "(default: until Ctrl-C)")
    o.set_defaults(func=cmd_obs_tail)

    o = osub.add_parser(
        "watch",
        help="live dashboard over a sink a running campaign is writing",
    )
    o.add_argument("sink", nargs="+",
                   help="JSONL sink file(s) or glob (--obs SINK of the "
                        "run, or 'out/shard-*/obs.jsonl' for a cluster)")
    o.add_argument("--interval", type=float, default=0.5,
                   help="poll/redraw interval seconds")
    o.add_argument("--duration", type=float,
                   help="stop watching after this many seconds "
                        "(default: until Ctrl-C)")
    o.add_argument("--once", action="store_true",
                   help="render one frame and exit (CI smoke)")
    o.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen")
    o.set_defaults(func=cmd_obs_watch)

    o = osub.add_parser(
        "export", help="merge a sink into one JSON summary document"
    )
    o.add_argument("sink", nargs="+",
                   help="JSONL sink file(s) or glob")
    o.add_argument("--format", choices=["summary", "chrome-trace"],
                   default="summary",
                   help="summary: merged counters/histograms/spans; "
                        "chrome-trace: Chrome Trace Event JSON for "
                        "chrome://tracing / Perfetto")
    o.add_argument("--out", help="output file (default: stdout)")
    o.set_defaults(func=cmd_obs_export)

    p = sub.add_parser(
        "diag",
        help="channel-quality diagnostics: leakage metering and drift gate",
    )
    dsub = p.add_subparsers(dest="diag_command", required=True)

    d = dsub.add_parser(
        "report",
        help="per-gadget MI + per-bit accuracy heatmaps (live or stored)",
    )
    d.add_argument("--size", type=int, default=120, help="input bytes")
    d.add_argument("--seed", type=int, default=7, help="survey sweep seed")
    d.add_argument("--store",
                   help="meter stored survey traces instead of a live run")
    d.add_argument("--prefix", default="survey",
                   help="trace id prefix in the store")
    d.set_defaults(func=cmd_diag_report)

    d = dsub.add_parser(
        "channel",
        help="timing margins, eviction-set quality, single-step fidelity",
    )
    d.add_argument("--samples", type=int, default=1500,
                   help="hit/miss timing draws")
    d.add_argument("--targets", type=int, default=4,
                   help="eviction-set targets to build")
    d.add_argument("--step-n", type=int, default=32,
                   help="single-step probe input bytes")
    d.add_argument("--noise-sigma", type=float,
                   help="override the cache timer noise σ")
    d.add_argument("--confusion", action="store_true",
                   help="include a small fingerprint confusion matrix")
    d.set_defaults(func=cmd_diag_channel)

    d = dsub.add_parser(
        "collect",
        help="run the deterministic diag suite into a metrics JSON",
    )
    d.add_argument("--out", help="write here (default: stdout)")
    d.add_argument("--size", type=int, default=120)
    d.add_argument("--seed", type=int, default=7)
    d.add_argument("--samples", type=int, default=1500)
    d.add_argument("--targets", type=int, default=4)
    d.add_argument("--step-n", type=int, default=32)
    d.add_argument("--oracle-samples", type=int, default=48,
                   help="oracle-MI samples per mitigation (0 skips)")
    d.add_argument("--noise-sigma", type=float,
                   help="override the cache timer noise σ")
    d.add_argument("--confusion", action="store_true")
    d.set_defaults(func=cmd_diag_collect)

    d = dsub.add_parser(
        "compare",
        help="drift gate: current metrics vs committed baseline",
    )
    d.add_argument("current", nargs="?",
                   help="metrics JSON to check (default: collect now "
                        "with the baseline's parameters)")
    d.add_argument("--baseline", default="benchmarks/diag_baseline.json",
                   help="committed baseline payload")
    d.add_argument("--tolerance", type=float, default=0.05,
                   help="allowed relative regression (default 0.05 = 5%%)")
    d.add_argument("--noise-sigma", type=float,
                   help="override the cache noise σ for the fresh "
                        "collection (regression-injection drills)")
    d.set_defaults(func=cmd_diag_compare)

    p = sub.add_parser(
        "mitigate",
        help="gadget-report-driven mitigation synthesis: survey, apply, "
             "verify",
    )
    msub = p.add_subparsers(dest="mitigate_command", required=True)

    def add_span_args(m: argparse.ArgumentParser) -> None:
        m.add_argument(
            "--secret-span", action="append", metavar="LO:HI",
            help="secret input byte range (repeatable); switches the "
                 "zlib match-finder sites to Debreach-style guarding",
        )

    m = msub.add_parser(
        "survey",
        help="scan the vulnerable kernel and derive its mitigation plan",
    )
    m.add_argument("target", choices=["zlib", "lzw", "bzip2"])
    add_input_args(m)
    add_span_args(m)
    m.add_argument("--json", action="store_true",
                   help="print the plan as JSON instead of a summary")
    m.add_argument("--out", help="write the plan JSON here (feed back "
                                 "to `mitigate apply --plan`)")
    m.set_defaults(func=cmd_mitigate_survey)

    m = msub.add_parser(
        "apply",
        help="instantiate the patched kernel and compress the input",
    )
    m.add_argument("target", choices=["zlib", "lzw", "bzip2"])
    add_input_args(m)
    add_span_args(m)
    m.add_argument("--plan", help="plan JSON from `mitigate survey` "
                                  "(default: survey this input now)")
    m.add_argument("--hash-bits", type=int, default=12,
                   help="reduced LZW hash-table bits (covered table)")
    m.add_argument("--out", help="write the mitigated compressed blob")
    m.set_defaults(func=cmd_mitigate_apply)

    m = msub.add_parser(
        "report",
        help="full loop: scan, plan, apply, re-meter; before/after "
             "leakage and the overhead bill",
    )
    m.add_argument("target", choices=["zlib", "lzw", "bzip2"])
    m.add_argument("--size", type=int, default=120, help="input bytes")
    m.add_argument("--seed", type=int, default=7)
    m.add_argument("--input-kind", choices=["random", "lowercase", "text"],
                   help="input distribution (default: the target's "
                        "survey default)")
    m.add_argument("--hash-bits", type=int, default=12,
                   help="reduced LZW hash-table bits (covered table)")
    add_span_args(m)
    m.add_argument("--json", action="store_true",
                   help="emit the flat metric dict as JSON")
    m.set_defaults(func=cmd_mitigate_report)

    p = sub.add_parser(
        "perf",
        help="time the bench catalogue and gate regressions",
    )
    psub = p.add_subparsers(dest="perf_command", required=True)

    q = psub.add_parser("run", help="time benches and write a JSON report")
    q.add_argument("--bench", action="append",
                   help="bench name (repeatable; default: all)")
    q.add_argument("--quick", action="store_true",
                   help="CI-sized workloads instead of the full pins")
    q.add_argument("--repeats", type=int,
                   help="override per-bench timing repetitions")
    q.add_argument("--baseline",
                   help="recorded report to compute speedups against")
    q.add_argument("--out", help="write the JSON report here")
    q.add_argument("--update",
                   help="merge this run into an existing report file "
                        "(quick runs land in its quick_benches section)")
    q.add_argument("--quiet", action="store_true")
    q.set_defaults(func=cmd_perf_run)

    q = psub.add_parser(
        "compare", help="regression gate: current report vs baseline"
    )
    q.add_argument("current", nargs="?",
                   help="report to check (default: run benches now)")
    q.add_argument("--baseline", required=True,
                   help="recorded baseline report")
    q.add_argument("--tolerance", type=float, default=0.2,
                   help="allowed slowdown fraction (default 0.2 = 20%%)")
    q.add_argument("--absolute", action="store_true",
                   help="raw time ratios (same-machine comparisons only)")
    q.add_argument("--quiet", action="store_true")
    q.set_defaults(func=cmd_perf_compare)

    q = psub.add_parser("profile", help="cProfile one bench")
    q.add_argument("name", nargs="?", default="",
                   help="bench name from `perf list`")
    q.add_argument("--experiment",
                   help="profile a raw experiment id instead")
    q.add_argument("--sites", metavar="TARGET",
                   choices=["zlib", "lzw", "bzip2", "aes"],
                   help="per-site access-count profile of an analysis "
                        "target instead (same site ids as the gadget "
                        "reports)")
    q.add_argument("--size", type=int, default=500,
                   help="input bytes for --sites (default 500)")
    q.add_argument("--params", help="JSON params for --experiment")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--quick", action="store_true")
    q.add_argument("--sort", default="cumulative",
                   help="pstats sort key (default cumulative)")
    q.add_argument("--top", type=int, default=30)
    q.set_defaults(func=cmd_perf_profile)

    q = psub.add_parser("list", help="list the bench catalogue")
    q.set_defaults(func=cmd_perf_list)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; not an error.
        # Detach stdout so interpreter shutdown doesn't re-raise on flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
