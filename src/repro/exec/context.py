"""Execution contexts: native, profiled, and taint-traced.

See :mod:`repro.exec` for the overall picture.  The key design point is
that an :class:`ExecutionContext` is the *only* dependency a compression
kernel has, so the same kernel code is the victim under TaintChannel, the
victim inside the simulated SGX enclave, and the reference implementation
for round-trip correctness tests.
"""

from __future__ import annotations

import contextlib
import enum
from abc import ABC, abstractmethod
from typing import Iterator, Optional, Sequence

from repro import obs
from repro.exec.arrays import TArray, TracingArray
from repro.exec.events import FunctionEvent, MemoryAccess, TraceLimitExceeded
from repro.taint.bittaint import BitTaint
from repro.taint.tags import TagRegistry
from repro.taint.value import (
    CompareRecord,
    InputRecord,
    OpRecord,
    Origin,
    TaintedInt,
    taint_of,
    value_of,
)

# Arrays are laid out by a bump allocator starting well above null, with a
# guard gap between arrays so address arithmetic bugs fault loudly in
# tests rather than silently aliasing.
_HEAP_BASE = 0x7F00_0000_0000
_GUARD_GAP = 0x1000


class Profiler:
    """Virtual-time profiler: records function enter/exit intervals.

    The fingerprinting attack (Section VI) needs to know *when* the victim
    was executing ``mainSort`` vs ``fallbackSort``.  Kernels advance
    virtual time with ``ctx.tick(cost)``; the profiler turns the
    enter/exit bracketing into per-function intervals that the simulated
    Flush+Reload channel later samples.
    """

    def __init__(self) -> None:
        self.now = 0
        self.events: list[FunctionEvent] = []
        self._seq = 0

    def tick(self, cost: int) -> None:
        self.now += cost

    def mark(self, name: str, kind: str) -> None:
        self._seq += 1
        self.events.append(FunctionEvent(self._seq, name, kind, self.now))

    def intervals(self, name: str) -> list[tuple[int, int]]:
        """(start, end) virtual-time intervals during which ``name`` was
        on the call stack."""
        out: list[tuple[int, int]] = []
        stack: list[int] = []
        for ev in self.events:
            if ev.name != name:
                continue
            if ev.kind == "enter":
                stack.append(ev.time)
            elif stack:
                out.append((stack.pop(), ev.time))
        for start in stack:  # never exited: open until end of run
            out.append((start, self.now))
        return out

    def chrome_trace_events(self, pid: int = 0) -> list[dict]:
        """This profiler's enter/exit events as Chrome Trace Event
        ``B``/``E`` pairs on the virtual clock, ready for
        ``chrome://tracing`` / Perfetto (see :mod:`repro.obs.export`)."""
        from repro.obs.export import profiler_chrome_events

        return profiler_chrome_events(self, pid=pid)


class ExecutionContext(ABC):
    """The substrate API compression kernels are written against."""

    @abstractmethod
    def input_bytes(self, data: bytes, source: str = "input") -> list:
        """Mark ``data`` as (possibly tainted) program input and return
        its bytes as context-appropriate values."""

    @abstractmethod
    def array(
        self,
        name: str,
        length: int,
        elem_size: int = 1,
        init: int = 0,
        align: int = 64,
        misalign: int = 0,
    ) -> TArray:
        """Allocate a named array.  ``align`` is the base alignment in
        bytes; ``misalign`` adds a deliberate offset (the paper's ftab is
        *not* cache-line aligned, which causes the off-by-one ambiguity
        of Section IV-D)."""

    def tick(self, cost: int = 1) -> None:
        """Advance virtual time (no-op unless a profiler is attached)."""

    @contextlib.contextmanager
    def func(self, name: str) -> Iterator[None]:
        """Bracket a function body for profiling / control-flow traces."""
        self.on_func(name, "enter")
        try:
            yield
        finally:
            self.on_func(name, "exit")

    def on_func(self, name: str, kind: str) -> None:
        """Hook for subclasses; default ignores function markers."""


class NativeContext(ExecutionContext):
    """Fast un-instrumented execution (plain ints, plain arrays).

    Optionally carries a :class:`Profiler` so the fingerprinting attack
    can extract the mainSort/fallbackSort timeline from a fast run.
    """

    def __init__(self, profiler: Optional[Profiler] = None) -> None:
        self.profiler = profiler
        self._next_base = _HEAP_BASE
        self.arrays: dict[str, TArray] = {}
        if profiler is not None:
            # Shadow the method with the profiler's bound tick: kernels
            # call ctx.tick once per simulated instruction burst, so the
            # extra delegation frame is worth skipping.
            self.tick = profiler.tick

    def input_bytes(self, data: bytes, source: str = "input") -> list[int]:
        return list(data)

    def array(
        self,
        name: str,
        length: int,
        elem_size: int = 1,
        init: int = 0,
        align: int = 64,
        misalign: int = 0,
    ) -> TArray:
        base = self._allocate(length * elem_size, align, misalign)
        arr = TArray(name, length, elem_size, base, init)
        self.arrays[name] = arr
        return arr

    def _allocate(self, size: int, align: int, misalign: int) -> int:
        base = -(-self._next_base // align) * align + misalign
        self._next_base = base + size + _GUARD_GAP
        return base

    def tick(self, cost: int = 1) -> None:
        if self.profiler is not None:
            self.profiler.tick(cost)

    def on_func(self, name: str, kind: str) -> None:
        if self.profiler is not None:
            self.profiler.mark(name, kind)


class InstrumentationTier(enum.Enum):
    """How much a :class:`TracingContext` records.

    Consumers that only look at the memory-access stream (the recovery
    survey, ZTRC capture, the SGX attack's gadget observations) pay for
    the full data-flow DAG under ``FULL`` without ever reading it; the
    lower tiers skip that work.

    * ``FULL`` — everything: op records, compare records, memory
      accesses, input records, function markers.  TaintChannel's tier.
    * ``ADDRESS_ONLY`` — memory accesses (with their taint), input
      records and function markers, but no :class:`OpRecord` /
      :class:`CompareRecord` construction.  Sequence numbers are still
      consumed for the skipped records, so the access stream — and a
      ZTRC file captured from it — is *byte-identical* to a FULL run's.
    * ``PROFILE_ONLY`` — function markers only; input bytes stay plain
      ints (no tags), so no taint propagates and no accesses record.
      The cheapest tier; no sequence parity with FULL.
    """

    FULL = "full"
    ADDRESS_ONLY = "address_only"
    PROFILE_ONLY = "profile_only"


class TracingContext(ExecutionContext):
    """TaintChannel's execution substrate.

    Input bytes become :class:`TaintedInt` values with one fresh tag per
    byte; all tainted operations, comparisons, function markers, and
    taint-relevant memory accesses are appended to :attr:`events` in
    program order.

    Args:
        carry_aware_add: propagate addition taint conservatively through
            carries instead of positionally (see
            :meth:`repro.taint.bittaint.BitTaint.carry_extended`).
        max_events: hard cap on recorded events; exceeded -> raise
            :class:`TraceLimitExceeded` (runaway-loop protection, needed
            because compression has input-dependent unbounded loops).
        tier: how much to record (see :class:`InstrumentationTier`).
    """

    def __init__(
        self,
        carry_aware_add: bool = False,
        max_events: int = 2_000_000,
        record_untainted_accesses: bool = False,
        tier: InstrumentationTier = InstrumentationTier.FULL,
    ) -> None:
        self.tags = TagRegistry()
        self.events: list[Origin] = []
        self.carry_aware_add = carry_aware_add
        self.max_events = max_events
        # Trace-correlation comparators need the *full* address trace,
        # not just the tainted slice TaintChannel keeps.
        self.record_untainted_accesses = record_untainted_accesses
        self.tier = tier
        # Flags the hot paths (TaintedInt._emit, record_access) read
        # instead of comparing enum members.
        self.record_ops = tier is InstrumentationTier.FULL
        self.record_addresses = tier is not InstrumentationTier.PROFILE_ONLY
        self.plain_accesses = 0
        self._seq = 0
        self._next_base = _HEAP_BASE
        self.arrays: dict[str, TArray] = {}

    # -- TaintRecorder protocol ----------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _append(self, event: Origin) -> None:
        if len(self.events) >= self.max_events:
            obs.log(
                "warning",
                "trace limit exceeded",
                max_events=self.max_events,
                seq=self._seq,
            )
            raise TraceLimitExceeded(
                f"trace exceeded {self.max_events} events"
            )
        self.events.append(event)

    def record_op(self, record: OpRecord) -> None:
        self._append(record)

    def record_compare(self, record: CompareRecord) -> None:
        self._append(record)

    def record_access(
        self,
        kind: str,
        array: TArray,
        index,
        addr_taint: BitTaint,
        value_taint: BitTaint,
        site: str,
    ) -> None:
        if not self.record_addresses:
            self.plain_accesses += 1
            return
        i = value_of(index)
        self._append(
            MemoryAccess(
                seq=self.next_seq(),
                kind=kind,
                array=array.name,
                index=i,
                elem_size=array.elem_size,
                address=array.address_of(i),
                addr_taint=addr_taint,
                addr_origin=index.origin if isinstance(index, TaintedInt) else None,
                value_taint=value_taint,
                site=site,
            )
        )

    # -- ExecutionContext API ------------------------------------------
    def input_bytes(self, data: bytes, source: str = "input") -> list:
        if not self.record_addresses:
            return list(data)
        out: list[TaintedInt] = []
        for i, b in enumerate(data):
            tag = self.tags.new_tag(source, i)
            record = InputRecord(
                seq=self.next_seq(), source=source, index=i, value=b, tag=tag
            )
            self._append(record)
            out.append(
                TaintedInt(b, 64, BitTaint.byte(tag), record, self)
            )
        return out

    def array(
        self,
        name: str,
        length: int,
        elem_size: int = 1,
        init: int = 0,
        align: int = 64,
        misalign: int = 0,
    ) -> TracingArray:
        base = self._allocate(length * elem_size, align, misalign)
        arr = TracingArray(self, name, length, elem_size, base, init)
        self.arrays[name] = arr
        return arr

    def _allocate(self, size: int, align: int, misalign: int) -> int:
        base = -(-self._next_base // align) * align + misalign
        self._next_base = base + size + _GUARD_GAP
        return base

    def on_func(self, name: str, kind: str) -> None:
        self._append(
            FunctionEvent(seq=self.next_seq(), name=name, kind=kind, time=0)
        )

    # -- convenience ---------------------------------------------------
    def publish_stats(self, prefix: str = "exec") -> None:
        """Publish this trace's instruction/memory-access counts as obs
        counters (no-op while observability is disabled).  Called by the
        consumers that retire a context — TaintChannel analysis, trace
        capture — not per event, so the recording hot path stays
        untouched."""
        if not obs.enabled():
            return
        n_accesses = sum(
            1 for e in self.events if isinstance(e, MemoryAccess)
        )
        obs.counter_add("exec.trace_events", len(self.events))
        obs.counter_add("exec.memory_accesses", n_accesses)
        obs.counter_add("exec.plain_accesses", self.plain_accesses)
        obs.counter_add("exec.seq_consumed", self._seq)

    def constant(self, value: int, width: int = 64) -> TaintedInt:
        """An untainted value that still participates in trace recording
        when combined with tainted ones."""
        return TaintedInt(value, width, BitTaint.empty(), None, self)

    def memory_accesses(self) -> list[MemoryAccess]:
        return [e for e in self.events if isinstance(e, MemoryAccess)]

    def tainted_accesses(self) -> list[MemoryAccess]:
        """Accesses whose *address* carries taint: gadget candidates."""
        return [
            e
            for e in self.events
            if isinstance(e, MemoryAccess) and e.addr_taint
        ]

    def compares(self) -> list[CompareRecord]:
        return [e for e in self.events if isinstance(e, CompareRecord)]

    def function_events(self) -> list[FunctionEvent]:
        return [e for e in self.events if isinstance(e, FunctionEvent)]
