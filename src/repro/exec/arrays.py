"""Array abstraction shared by all execution contexts.

Compression kernels never touch raw Python lists for their significant
data structures; they allocate :class:`TArray` objects from their context.
This is what lets one kernel implementation run natively, under taint
tracing, or on the simulated SGX memory system without modification — and
it is where memory accesses (the things a cache side channel observes)
become explicit events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.taint.bittaint import BitTaint
from repro.taint.value import TaintedInt, taint_of, value_of

if TYPE_CHECKING:
    from repro.exec.context import TracingContext

Index = Union[int, TaintedInt]


class TArray:
    """A named, base-addressed array of fixed-size elements.

    The base class implements the fast, non-recording behaviour used by
    :class:`~repro.exec.context.NativeContext`.
    """

    __slots__ = ("name", "length", "elem_size", "base", "values")

    def __init__(
        self, name: str, length: int, elem_size: int, base: int, init: int = 0
    ) -> None:
        self.name = name
        self.length = length
        self.elem_size = elem_size
        self.base = base
        self.values: list = [init] * length

    # -- helpers -------------------------------------------------------
    def address_of(self, index: int) -> int:
        return self.base + index * self.elem_size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise IndexError(
                f"{self.name}[{index}] out of bounds (length {self.length})"
            )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, len={self.length}, "
            f"esize={self.elem_size}, base=0x{self.base:x})"
        )

    # -- access API ----------------------------------------------------
    # The native paths below are the innermost loop of every untraced
    # kernel run; the index unwrap and bounds check are inlined rather
    # than delegated to value_of/_check.
    def get(self, index: Index, site: str = ""):
        i = index if type(index) is int else value_of(index)
        if 0 <= i < self.length:
            return self.values[i]
        self._check(i)

    def set(self, index: Index, value, site: str = "") -> None:
        i = index if type(index) is int else value_of(index)
        if 0 <= i < self.length:
            self.values[i] = value
            return
        self._check(i)

    def add(self, index: Index, delta, site: str = "") -> None:
        """Read-modify-write (``a[i] += delta``): one instruction, one
        cache-line touch, requires write permission."""
        i = index if type(index) is int else value_of(index)
        if 0 <= i < self.length:
            self.values[i] = self.values[i] + delta
            return
        self._check(i)

    def fill(self, value) -> None:
        """Bulk initialisation; never recorded as individual accesses."""
        self.values = [value] * self.length

    def load(self, values) -> None:
        """Bulk load of constant table contents (e.g. AES T-tables);
        never recorded as individual accesses."""
        if len(values) != self.length:
            raise ValueError(
                f"load of {len(values)} values into {self.name}[{self.length}]"
            )
        self.values = list(values)

    def snapshot(self) -> list:
        """Plain-int copy of the contents (drops taint wrappers)."""
        return [v.value if type(v) is TaintedInt else v for v in self.values]

    def __getitem__(self, index: Index):
        return self.get(index)

    def __setitem__(self, index: Index, value) -> None:
        self.set(index, value)


class TracingArray(TArray):
    """Array that reports taint-relevant accesses to a TracingContext.

    Only accesses involving taint (in the address or the value) are
    recorded as :class:`~repro.exec.events.MemoryAccess` events; untainted
    traffic is merely counted.  This mirrors TaintChannel's output, which
    shows the tainted instructions and elides the rest.
    """

    __slots__ = ("ctx", "_shift")

    def __init__(
        self,
        ctx: "TracingContext",
        name: str,
        length: int,
        elem_size: int,
        base: int,
        init: int = 0,
    ) -> None:
        super().__init__(name, length, elem_size, base, init)
        self.ctx = ctx
        if elem_size & (elem_size - 1) == 0:
            self._shift = elem_size.bit_length() - 1
        else:
            self._shift = -1

    def _addr_taint(self, index: Index) -> BitTaint:
        taint = taint_of(index)
        if not taint:
            return taint
        if self._shift >= 0:
            return taint.shifted(self._shift).truncated(64)
        return taint.smeared(64)

    def get(self, index: Index, site: str = ""):
        i = value_of(index)
        self._check(i)
        value = self.values[i]
        addr_taint = self._addr_taint(index)
        value_taint = taint_of(value)
        if addr_taint or value_taint or self.ctx.record_untainted_accesses:
            self.ctx.record_access(
                "read", self, index, addr_taint, value_taint, site
            )
        else:
            self.ctx.plain_accesses += 1
        return value

    def set(self, index: Index, value, site: str = "") -> None:
        i = value_of(index)
        self._check(i)
        addr_taint = self._addr_taint(index)
        value_taint = taint_of(value)
        if addr_taint or value_taint or self.ctx.record_untainted_accesses:
            self.ctx.record_access(
                "write", self, index, addr_taint, value_taint, site
            )
        else:
            self.ctx.plain_accesses += 1
        self.values[i] = value

    def add(self, index: Index, delta, site: str = "") -> None:
        i = value_of(index)
        self._check(i)
        new = self.values[i] + delta
        addr_taint = self._addr_taint(index)
        value_taint = taint_of(new)
        if addr_taint or value_taint or self.ctx.record_untainted_accesses:
            self.ctx.record_access(
                "update", self, index, addr_taint, value_taint, site
            )
        else:
            self.ctx.plain_accesses += 1
        self.values[i] = new
