"""Execution contexts for instrumented compression kernels.

The compression kernels in :mod:`repro.compression` (and the AES validation
workload) are written once against the small :class:`ExecutionContext` API
— arrays come from ``ctx.array(...)``, input bytes from
``ctx.input_bytes(...)``, functions are bracketed with ``ctx.func(...)`` —
and can then be run on three different substrates:

* :class:`NativeContext` — plain Python values, no taint, fastest; also
  hosts the virtual-time profiler used by the fingerprinting attack.
* :class:`TracingContext` — TaintChannel's substrate: every input byte is
  tagged, every tainted operation and every memory access with a tainted
  address is recorded.  This plays the role DynamoRIO plays in the paper.
* ``MemsysContext`` (in :mod:`repro.sgx`) — the SGX-attack substrate, where
  array accesses go through simulated page tables and a cache model.
"""

from repro.exec.events import (
    FunctionEvent,
    MemoryAccess,
    TraceLimitExceeded,
)
from repro.exec.arrays import TArray
from repro.exec.context import (
    ExecutionContext,
    InstrumentationTier,
    NativeContext,
    Profiler,
    TracingContext,
)

__all__ = [
    "ExecutionContext",
    "InstrumentationTier",
    "NativeContext",
    "TracingContext",
    "Profiler",
    "TArray",
    "MemoryAccess",
    "FunctionEvent",
    "TraceLimitExceeded",
]
