"""Trace event types produced by instrumented execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.taint.bittaint import BitTaint
from repro.taint.value import Origin


class TraceLimitExceeded(RuntimeError):
    """Raised when a traced run exceeds its configured event budget."""


@dataclass(slots=True)
class MemoryAccess(Origin):
    """One array access, the unit TaintChannel inspects for gadgets.

    ``address`` is the full virtual address of the accessed element;
    ``addr_taint`` is the taint of that address.  A non-empty
    ``addr_taint`` makes this access a *data-flow leakage gadget
    candidate*: the cache channel exposes ``address`` minus its 6
    line-offset bits (Section IV-A), so any taint on bits >= 6 leaks.
    """

    kind: str = "read"  # "read" | "write" | "update" (read-modify-write)
    array: str = ""
    index: int = 0
    elem_size: int = 1
    address: int = 0
    addr_taint: BitTaint = None  # type: ignore[assignment]
    addr_origin: Optional[Origin] = None
    value_taint: BitTaint = None  # type: ignore[assignment]
    site: str = ""  # source location label, e.g. "deflate_slow/head[ins_h]"

    def __post_init__(self) -> None:
        if self.addr_taint is None:
            self.addr_taint = BitTaint.empty()
        if self.value_taint is None:
            self.value_taint = BitTaint.empty()

    @property
    def cache_line(self) -> int:
        """The address as an attacker sees it: low 6 bits masked."""
        return self.address >> 6

    def describe(self) -> str:
        mark = "*" if self.addr_taint else ""
        return (
            f"#{self.seq:06d} {self.kind:<6} {self.array}[{self.index}]"
            f" @0x{self.address:x}{mark} ({self.site})"
        )


@dataclass(slots=True)
class FunctionEvent(Origin):
    """Function enter/exit marker with the virtual time it happened at."""

    name: str = ""
    kind: str = "enter"  # "enter" | "exit"
    time: int = 0

    def describe(self) -> str:
        return f"#{self.seq:06d} {self.kind} {self.name} @t={self.time}"
