"""Gzip-style container around the deflate kernel (RFC 1952 framing).

The paper's LZ77 target is "Gzip" — Zlib's deflate inside the gzip file
format.  The leaking gadget lives in the deflate match finder
(:mod:`repro.compression.lz77`); this module adds the container the
utility actually writes: magic, method/flags/mtime header, the deflate
body, and the CRC-32 + length trailer that the decompressor verifies.

The body is this repository's deflate token stream, not byte-exact
RFC 1951 (DESIGN.md); the framing and integrity checking are faithful.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.crc import crc32
from repro.compression.lz77 import deflate_compress, deflate_decompress
from repro.exec.context import ExecutionContext

GZIP_MAGIC = b"\x1f\x8b"
METHOD_DEFLATE = 0x08
OS_UNIX = 0x03

HEADER_SIZE = 10  # magic + method/flags + mtime + xfl/OS
TRAILER_SIZE = 8  # CRC-32 + ISIZE
#: Exact container bytes around the deflate body (no optional fields:
#: this writer never emits FEXTRA/FNAME/FCOMMENT).  The size-oracle
#: accounting in :mod:`repro.oracle` adds this to body sizes instead of
#: re-deriving the framing.
CONTAINER_OVERHEAD = HEADER_SIZE + TRAILER_SIZE


class GzipFormatError(ValueError):
    """Malformed container or failed integrity check."""


def gzip_header(mtime: int = 0) -> bytes:
    """The fixed-size RFC 1952 header this writer emits."""
    return (
        GZIP_MAGIC
        + bytes([METHOD_DEFLATE, 0])  # method, flags
        + struct.pack("<I", mtime)
        + bytes([0, OS_UNIX])  # extra flags, OS
    )


def gzip_trailer(data: bytes) -> bytes:
    """CRC-32 + modulo-2^32 length trailer over the *uncompressed* data."""
    return struct.pack("<II", crc32(data), len(data) & 0xFFFFFFFF)


def gzip_compress(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    mtime: int = 0,
) -> bytes:
    """Wrap :func:`deflate_compress` output in a gzip container."""
    return gzip_header(mtime) + deflate_compress(data, ctx) + gzip_trailer(data)


def compressed_size(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    body: Optional[bytes] = None,
) -> int:
    """Size in bytes of the gzip container for ``data`` — what a BREACH
    attacker reads off the Content-Length header.

    Exactly ``len(gzip_compress(data))``, with the container overhead
    accounted once here (:data:`CONTAINER_OVERHEAD`) so oracle size
    bookkeeping is never duplicated.  Pass ``body`` when the deflate
    body is already in hand (e.g. a guarded-compression variant) to
    skip recompressing.
    """
    if body is None:
        body = deflate_compress(data, ctx)
    return len(body) + CONTAINER_OVERHEAD


def gzip_decompress(blob: bytes) -> bytes:
    """Unwrap and verify a :func:`gzip_compress` container."""
    if len(blob) < 18:
        raise GzipFormatError("container too short")
    if blob[:2] != GZIP_MAGIC:
        raise GzipFormatError("bad gzip magic")
    if blob[2] != METHOD_DEFLATE:
        raise GzipFormatError(f"unsupported method {blob[2]}")
    if blob[3] != 0:
        raise GzipFormatError("flags not supported")

    body, trailer = blob[10:-8], blob[-8:]
    data = deflate_decompress(body)
    want_crc, want_len = struct.unpack("<II", trailer)
    if len(data) & 0xFFFFFFFF != want_len:
        raise GzipFormatError(
            f"length mismatch: {len(data)} != {want_len}"
        )
    got_crc = crc32(data)
    if got_crc != want_crc:
        raise GzipFormatError(
            f"crc mismatch: 0x{got_crc:08x} != 0x{want_crc:08x}"
        )
    return data


def gzip_mtime(blob: bytes) -> int:
    """Read the header's modification-time field."""
    if blob[:2] != GZIP_MAGIC or len(blob) < 10:
        raise GzipFormatError("bad gzip header")
    (mtime,) = struct.unpack("<I", blob[4:8])
    return mtime
