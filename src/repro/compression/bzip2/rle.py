"""RLE1: Bzip2's first-stage run-length encoding.

Runs of 4-259 identical bytes become four copies plus a count byte
(run - 4); longer runs are split.  "Because RLE does not affect most
inputs ... in the rest of this paper, we refer to the data compressed
with RLE as the input" (Section IV-D) — the same convention applies in
this reproduction: the BWT block content is RLE1 output.
"""

from __future__ import annotations

from repro.exec.context import ExecutionContext

MAX_RUN = 259  # 4 literal copies + count byte up to 255


def rle1_encode(values: list, ctx: ExecutionContext) -> list:
    """Encode a list of (possibly tainted) byte values."""
    out: list = []
    i = 0
    n = len(values)
    while i < n:
        run = 1
        while i + run < n and run < MAX_RUN and values[i + run] == values[i]:
            run += 1
        ctx.tick(run)
        if run < 4:
            out.extend(values[i : i + run])
        else:
            out.extend([values[i]] * 4)
            out.append(run - 4)
        i += run
    return out


def rle1_decode(data: list[int]) -> bytes:
    """Invert :func:`rle1_encode` (plain ints only)."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        b = data[i]
        run = 1
        while run < 4 and i + run < n and data[i + run] == b:
            run += 1
        if run == 4:
            if i + 4 >= n:
                raise ValueError("truncated RLE1 run")
            out.extend([b] * (4 + data[i + 4]))
            i += 5
        else:
            out.extend([b] * run)
            i += run
    return bytes(out)
