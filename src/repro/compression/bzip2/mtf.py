"""Move-to-front transform and zero-run-length (RLE2) coding.

Matches Bzip2's generateMTFValues: the BWT output is MTF-coded over the
alphabet of bytes actually used in the block; runs of MTF-zeroes are
encoded in the bijective base-2 RUNA/RUNB scheme; other MTF values ``v``
become symbol ``v + 1``; ``EOB = nUsed + 1`` terminates the block.
"""

from __future__ import annotations

RUNA = 0
RUNB = 1


def _encode_zero_run(run: int, out: list[int]) -> None:
    """Bijective base-2: run = sum of digit_k * 2**k, digit in {1, 2}
    (RUNA encodes digit 1, RUNB digit 2)."""
    while run > 0:
        if run & 1:
            out.append(RUNA)
            run = (run - 1) >> 1
        else:
            out.append(RUNB)
            run = (run - 2) >> 1


def _decode_zero_run(digits: list[int]) -> int:
    run = 0
    for k, d in enumerate(digits):
        run += (1 if d == RUNA else 2) << k
    return run


def mtf_rle2_encode(data: list[int]) -> tuple[list[int], list[bool]]:
    """MTF + RLE2 encode the BWT last column.

    Returns:
        ``(symbols, in_use)``: the symbol stream (terminated by EOB) and
        the 256-entry used-byte bitmap needed to invert the alphabet
        mapping.
    """
    in_use = [False] * 256
    for b in data:
        in_use[b] = True
    alphabet = [b for b in range(256) if in_use[b]]
    eob = len(alphabet) + 1

    mtf = list(alphabet)
    out: list[int] = []
    zero_run = 0
    for b in data:
        idx = mtf.index(b)
        if idx == 0:
            zero_run += 1
            continue
        _encode_zero_run(zero_run, out)
        zero_run = 0
        mtf.pop(idx)
        mtf.insert(0, b)
        out.append(idx + 1)
    _encode_zero_run(zero_run, out)
    out.append(eob)
    return out, in_use


def mtf_rle2_decode(symbols: list[int], in_use: list[bool]) -> list[int]:
    """Invert :func:`mtf_rle2_encode`; ``symbols`` must end with EOB."""
    alphabet = [b for b in range(256) if in_use[b]]
    eob = len(alphabet) + 1

    mtf = list(alphabet)
    out: list[int] = []
    run_digits: list[int] = []

    def flush_run() -> None:
        if run_digits:
            out.extend([mtf[0]] * _decode_zero_run(run_digits))
            run_digits.clear()

    for sym in symbols:
        # EOB is checked first: for an empty block the alphabet is empty
        # and EOB (= 1) would otherwise be mistaken for RUNB.
        if sym == eob:
            flush_run()
            return out
        if sym in (RUNA, RUNB):
            run_digits.append(sym)
            continue
        flush_run()
        idx = sym - 1
        b = mtf.pop(idx)
        mtf.insert(0, b)
        out.append(b)
    raise ValueError("symbol stream missing EOB")
