"""The full Bzip2-style pipeline and container framing.

``bzip2_compress`` splits the RLE1 output into blocks of
``BLOCK_SIZE`` = 10,000 bytes (the paper's Section VI block size) and
runs each through BWT -> MTF/RLE2 -> Huffman.  ``bzip2_decompress``
inverts every stage.  The per-block sorting *path* taken
(mainSort / mainSort+fallbackSort / fallbackSort) is what the
fingerprinting attack of Section VI classifies; it is returned by
:func:`bzip2_compress_with_paths` for ground truth in tests.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression.bzip2.blocksort import (
    DEFAULT_WORK_FACTOR,
    HistogramFn,
    block_sort,
)
from repro.compression.bzip2.huffman import HuffmanTable
from repro.compression.bzip2.multihuffman import decode_stream, encode_stream
from repro.compression.bzip2.mtf import mtf_rle2_decode, mtf_rle2_encode
from repro.compression.bzip2.rle import rle1_decode, rle1_encode
from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

MAGIC = b"RBZ1"
BLOCK_SIZE = 10_000  # the paper's block size (Section VI)
BLOCK_MARKER = 0x31
END_MARKER = 0x17


def _compress_block(
    ctx: ExecutionContext,
    chunk: list,
    block_index: int,
    work_factor: int,
    full_block_size: int,
    multi_huffman: bool,
    histogram_fn: Optional[HistogramFn] = None,
) -> tuple[bytes, str]:
    """BWT + MTF + Huffman for one block; returns (payload, sort path)."""
    n = len(chunk)
    block = ctx.array(f"block", n, elem_size=1)
    for i, v in enumerate(chunk):
        block.set(i, v)

    ptr, path = block_sort(
        ctx, block, n, full_block_size, work_factor, histogram_fn=histogram_fn
    )
    values = block.snapshot()
    last = [values[(p + n - 1) % n] for p in ptr]
    orig_ptr = ptr.index(0)
    ctx.tick(n)

    symbols, in_use = mtf_rle2_encode(last)
    ctx.tick(len(symbols))
    n_symbols = sum(in_use) + 2

    out = MSBBitWriter()
    out.write(orig_ptr, 24)
    for used in in_use:
        out.write(1 if used else 0, 1)
    out.write(1 if multi_huffman else 0, 1)  # coding-scheme flag
    if multi_huffman:
        encode_stream(out, symbols, n_symbols)
        ctx.tick(len(symbols))
    else:
        freqs = [0] * n_symbols
        for s in symbols:
            freqs[s] += 1
        table = HuffmanTable.from_freqs(freqs)
        table.write_lengths(out)
        for s in symbols:
            table.encode(out, s)
            ctx.tick(1)
    return out.getvalue(), path


def bzip2_compress_with_paths(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    work_factor: int = DEFAULT_WORK_FACTOR,
    block_size: int = BLOCK_SIZE,
    multi_huffman: bool = True,
    histogram_fn: Optional[HistogramFn] = None,
) -> tuple[bytes, list[str]]:
    """Compress and also report the per-block sorting path (Fig. 6).

    ``multi_huffman`` selects bzip2's six-table switched coding
    (default) vs the simpler single-table coder; both decode with
    :func:`bzip2_decompress`.  ``histogram_fn`` replaces the Listing 3
    histogram inside mainSort (the mitigation seam); the output is
    unchanged because the frequency table it builds is identical.
    """
    if ctx is None:
        ctx = NativeContext()

    paths: list[str] = []
    body = bytearray(MAGIC)
    with ctx.func("BZ2_bzCompress"):
        rle = rle1_encode(ctx.input_bytes(data), ctx)
        for block_index, start in enumerate(range(0, len(rle), block_size)):
            chunk = rle[start : start + block_size]
            payload, path = _compress_block(
                ctx,
                chunk,
                block_index,
                work_factor,
                block_size,
                multi_huffman,
                histogram_fn=histogram_fn,
            )
            paths.append(path)
            body.append(BLOCK_MARKER)
            body += struct.pack("<I", len(payload))
            body += payload
        body.append(END_MARKER)
    return bytes(body), paths


def bzip2_compress(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    work_factor: int = DEFAULT_WORK_FACTOR,
    block_size: int = BLOCK_SIZE,
    multi_huffman: bool = True,
    histogram_fn: Optional[HistogramFn] = None,
) -> bytes:
    """Compress ``data`` with the Bzip2-style pipeline."""
    blob, _ = bzip2_compress_with_paths(
        data, ctx, work_factor, block_size, multi_huffman, histogram_fn
    )
    return blob


def inverse_bwt(last: list[int], orig_ptr: int) -> list[int]:
    """Invert the Burrows-Wheeler transform via the LF mapping."""
    n = len(last)
    counts = [0] * 256
    for b in last:
        counts[b] += 1
    starts = [0] * 256
    total = 0
    for b in range(256):
        starts[b] = total
        total += counts[b]
    seen = [0] * 256
    lf = [0] * n
    for i, b in enumerate(last):
        lf[i] = starts[b] + seen[b]
        seen[b] += 1
    out = [0] * n
    p = orig_ptr
    for j in range(n - 1, -1, -1):
        out[j] = last[p]
        p = lf[p]
    return out


def _decompress_block(payload: bytes) -> list[int]:
    reader = MSBBitReader(payload)
    orig_ptr = reader.read(24)
    in_use = [bool(reader.read(1)) for _ in range(256)]
    n_symbols = sum(in_use) + 2
    eob = n_symbols - 1
    if reader.read(1):  # multi-table scheme
        symbols = decode_stream(reader, n_symbols, eob)
    else:
        table = HuffmanTable.read_lengths(reader, n_symbols)
        decoder = table.decoder()
        symbols = []
        while True:
            s = decoder.decode(reader)
            symbols.append(s)
            if s == eob:
                break
    last = mtf_rle2_decode(symbols, in_use)
    return inverse_bwt(last, orig_ptr)


def bzip2_decompress(blob: bytes) -> bytes:
    """Invert :func:`bzip2_compress`."""
    if blob[:4] != MAGIC:
        raise ValueError("bad bzip2 magic")
    pos = 4
    rle: list[int] = []
    while True:
        if pos >= len(blob):
            raise ValueError("truncated stream: no end marker")
        marker = blob[pos]
        pos += 1
        if marker == END_MARKER:
            break
        if marker != BLOCK_MARKER:
            raise ValueError(f"bad block marker 0x{marker:02x}")
        (length,) = struct.unpack("<I", blob[pos : pos + 4])
        pos += 4
        rle.extend(_decompress_block(blob[pos : pos + length]))
        pos += length
    return rle1_decode(rle)
