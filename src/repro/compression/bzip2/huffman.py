"""Canonical Huffman coding for the Bzip2 pipeline.

Bzip2 proper uses six switched tables with selectors; we use a single
canonical table per block (DESIGN.md), which is still genuine Huffman
coding with the standard length-limiting rescale trick
(``hbMakeCodeLengths``-style: halve frequencies and rebuild when the
deepest code exceeds the limit).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.compression.bitio import MSBBitReader, MSBBitWriter

MAX_CODE_LEN = 20
LENGTH_FIELD_BITS = 5  # enough for lengths 0..MAX_CODE_LEN


def build_code_lengths(freqs: list[int], max_len: int = MAX_CODE_LEN) -> list[int]:
    """Optimal prefix-code lengths for ``freqs`` (0 for unused symbols),
    rescaling until no code exceeds ``max_len``."""
    weights = [max(f, 0) for f in freqs]
    present = [i for i, f in enumerate(weights) if f > 0]
    if not present:
        return [0] * len(freqs)
    if len(present) == 1:
        lengths = [0] * len(freqs)
        lengths[present[0]] = 1
        return lengths

    while True:
        lengths = _huffman_lengths(weights, present)
        if max(lengths[i] for i in present) <= max_len:
            return lengths
        # Too deep: flatten the distribution and retry (bzip2's trick).
        weights = [(w // 2) + 1 if w > 0 else 0 for w in weights]


def _huffman_lengths(weights: list[int], present: list[int]) -> list[int]:
    heap: list[tuple[int, int, tuple]] = []
    counter = 0
    for i in present:
        heap.append((weights[i], counter, (i,)))
        counter += 1
    heapq.heapify(heap)
    depth: dict[int, int] = {i: 0 for i in present}
    while len(heap) > 1:
        wa, _, syms_a = heapq.heappop(heap)
        wb, _, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        for s in merged:
            depth[s] += 1
        counter += 1
        heapq.heappush(heap, (wa + wb, counter, merged))
    lengths = [0] * len(weights)
    for i in present:
        lengths[i] = depth[i]
    return lengths


def canonical_codes(lengths: list[int]) -> list[int]:
    """Assign canonical codes: symbols ordered by (length, index)."""
    codes = [0] * len(lengths)
    order = sorted(
        (i for i in range(len(lengths)) if lengths[i] > 0),
        key=lambda i: (lengths[i], i),
    )
    code = 0
    prev_len = 0
    for i in order:
        code <<= lengths[i] - prev_len
        codes[i] = code
        code += 1
        prev_len = lengths[i]
    return codes


@dataclass
class HuffmanTable:
    """Canonical table usable for both encoding and decoding."""

    lengths: list[int]
    codes: list[int]

    @classmethod
    def from_freqs(cls, freqs: list[int]) -> "HuffmanTable":
        lengths = build_code_lengths(freqs)
        return cls(lengths, canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: list[int]) -> "HuffmanTable":
        return cls(lengths, canonical_codes(lengths))

    def write_lengths(self, out: MSBBitWriter) -> None:
        for length in self.lengths:
            out.write(length, LENGTH_FIELD_BITS)

    @classmethod
    def read_lengths(cls, reader: MSBBitReader, n_symbols: int) -> "HuffmanTable":
        lengths = [reader.read(LENGTH_FIELD_BITS) for _ in range(n_symbols)]
        return cls.from_lengths(lengths)

    def encode(self, out: MSBBitWriter, symbol: int) -> None:
        length = self.lengths[symbol]
        if length == 0:
            raise ValueError(f"symbol {symbol} has no code")
        out.write(self.codes[symbol], length)

    def decoder(self) -> "HuffmanDecoder":
        return HuffmanDecoder(self)


class HuffmanDecoder:
    """Limit/base canonical decoding (as bzip2's GET_MTF_VAL does)."""

    def __init__(self, table: HuffmanTable) -> None:
        self._by_length: dict[int, dict[int, int]] = {}
        for sym, length in enumerate(table.lengths):
            if length > 0:
                self._by_length.setdefault(length, {})[table.codes[sym]] = sym
        if not self._by_length:
            raise ValueError("empty Huffman table")
        self._max_len = max(self._by_length)

    def decode(self, reader: MSBBitReader) -> int:
        code = 0
        for length in range(1, self._max_len + 1):
            code = (code << 1) | reader.read_bit()
            row = self._by_length.get(length)
            if row is not None and code in row:
                return row[code]
        raise ValueError("invalid Huffman code in stream")
