"""Multi-table Huffman coding with selectors (bzip2's sendMTFValues).

Real bzip2 does not use one Huffman table per block: it splits the
symbol stream into groups of 50, maintains up to six tables, and
iteratively refits each table to the groups that chose it; a selector
stream (MTF + unary coded) records which table each group used.  This
module implements that scheme faithfully:

* group count by alphabet size (2..6, bzip2's thresholds),
* ``N_ITERS`` refinement passes of assign-to-cheapest / refit,
* bzip2's delta serialisation of code lengths (5-bit start, then
  1+sign-bit steps per symbol),
* unary-coded, MTF-transformed selectors.

The block pipeline can use either this or the single-table coder; a
header bit records the choice so the decompressor is self-describing.
"""

from __future__ import annotations

from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression.bzip2.huffman import (
    HuffmanTable,
    build_code_lengths,
)

GROUP_SIZE = 50
N_ITERS = 4
MAX_GROUPS = 6


def choose_n_groups(n_symbols_in_stream: int) -> int:
    """bzip2's table-count heuristic (by stream length)."""
    if n_symbols_in_stream < 200:
        return 2
    if n_symbols_in_stream < 600:
        return 3
    if n_symbols_in_stream < 1200:
        return 4
    if n_symbols_in_stream < 2400:
        return 5
    return MAX_GROUPS


def _initial_lengths(
    freqs: list[int], n_groups: int, alpha_size: int
) -> list[list[int]]:
    """bzip2's initial partition: slice the alphabet into frequency
    bands and give each table short codes inside its band."""
    total = sum(freqs)
    lengths: list[list[int]] = []
    remaining_freq = total
    lo = 0
    for part in range(n_groups, 0, -1):
        target = remaining_freq // part
        hi = lo
        acc = 0
        while hi < alpha_size and (acc < target or hi == lo):
            acc += freqs[hi]
            hi += 1
        table = [15] * alpha_size
        for s in range(lo, hi):
            table[s] = 0
        lengths.append(table)
        remaining_freq -= acc
        lo = hi
    return lengths


def _group_cost(lengths: list[int], group: list[int]) -> int:
    return sum(map(lengths.__getitem__, group))


def fit_tables(
    symbols: list[int], alpha_size: int, n_groups: int
) -> tuple[list[list[int]], list[int]]:
    """Iteratively fit ``n_groups`` code-length tables to the stream.

    Returns ``(tables_lengths, selectors)`` where ``selectors[g]`` is
    the table used by the g-th group of 50 symbols.
    """
    groups = [
        symbols[i : i + GROUP_SIZE] for i in range(0, len(symbols), GROUP_SIZE)
    ]
    freqs = [0] * alpha_size
    for s in symbols:
        freqs[s] += 1
    tables = _initial_lengths(freqs, n_groups, alpha_size)

    selectors: list[int] = [0] * len(groups)
    for _ in range(N_ITERS):
        table_freqs = [[0] * alpha_size for _ in range(n_groups)]
        for g, group in enumerate(groups):
            best = min(
                range(n_groups), key=lambda t: _group_cost(tables[t], group)
            )
            selectors[g] = best
            for s in group:
                table_freqs[best][s] += 1
        for t in range(n_groups):
            # Keep every symbol encodable by every table (freq >= 1), as
            # bzip2 does via its +1 fudge.
            adjusted = [f + 1 for f in table_freqs[t]]
            tables[t] = build_code_lengths(adjusted)
    return tables, selectors


# -- serialisation (bzip2's format) ---------------------------------------


def write_lengths_delta(out: MSBBitWriter, lengths: list[int]) -> None:
    """5-bit starting length, then per symbol a sequence of
    ``1 + direction`` steps terminated by ``0`` (bzip2's scheme)."""
    curr = lengths[0]
    out.write(curr, 5)
    for length in lengths:
        while curr < length:
            out.write(0b10, 2)
            curr += 1
        while curr > length:
            out.write(0b11, 2)
            curr -= 1
        out.write(0, 1)


def read_lengths_delta(reader: MSBBitReader, alpha_size: int) -> list[int]:
    """Invert :func:`write_lengths_delta`."""
    curr = reader.read(5)
    lengths = []
    for _ in range(alpha_size):
        while reader.read_bit():
            if reader.read_bit():
                curr -= 1
            else:
                curr += 1
        lengths.append(curr)
    return lengths


def _mtf_encode_selectors(selectors: list[int], n_groups: int) -> list[int]:
    order = list(range(n_groups))
    out = []
    for sel in selectors:
        idx = order.index(sel)
        out.append(idx)
        order.pop(idx)
        order.insert(0, sel)
    return out


def _mtf_decode_selectors(coded: list[int], n_groups: int) -> list[int]:
    order = list(range(n_groups))
    out = []
    for idx in coded:
        sel = order.pop(idx)
        order.insert(0, sel)
        out.append(sel)
    return out


def encode_stream(
    out: MSBBitWriter, symbols: list[int], alpha_size: int
) -> None:
    """Write the full multi-table coded stream (tables, selectors,
    symbols).  ``symbols`` must end with EOB."""
    n_groups = choose_n_groups(len(symbols))
    tables_lengths, selectors = fit_tables(symbols, alpha_size, n_groups)
    tables = [HuffmanTable.from_lengths(l) for l in tables_lengths]

    out.write(n_groups, 3)
    out.write(len(selectors), 15)
    for idx in _mtf_encode_selectors(selectors, n_groups):
        out.write((1 << idx) - 1, idx)  # unary: idx ones...
        out.write(0, 1)  # ...then a zero
    for lengths in tables_lengths:
        write_lengths_delta(out, lengths)

    for g, start in enumerate(range(0, len(symbols), GROUP_SIZE)):
        table = tables[selectors[g]]
        for s in symbols[start : start + GROUP_SIZE]:
            table.encode(out, s)


def decode_stream(
    reader: MSBBitReader, alpha_size: int, eob: int
) -> list[int]:
    """Invert :func:`encode_stream`; stops at (and includes) EOB."""
    n_groups = reader.read(3)
    n_selectors = reader.read(15)
    coded = []
    for _ in range(n_selectors):
        idx = 0
        while reader.read_bit():
            idx += 1
            if idx >= n_groups:
                raise ValueError("selector index out of range")
        coded.append(idx)
    selectors = _mtf_decode_selectors(coded, n_groups)
    decoders = [
        HuffmanTable.from_lengths(
            read_lengths_delta(reader, alpha_size)
        ).decoder()
        for _ in range(n_groups)
    ]

    symbols: list[int] = []
    group = 0
    while True:
        if group >= len(selectors):
            raise ValueError("symbol stream overran its selectors")
        decoder = decoders[selectors[group]]
        for _ in range(GROUP_SIZE):
            s = decoder.decode(reader)
            symbols.append(s)
            if s == eob:
                return symbols
        group += 1
