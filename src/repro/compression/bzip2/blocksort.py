"""Burrows-Wheeler block sorting with Bzip2's structures.

``histogram`` is the paper's Listing 3 verbatim (modulo Python): the
reverse loop that zeroes ``quadrant[i]``, slides the two-byte window
``j``, and increments ``ftab[j]`` — the data-flow gadget behind the SGX
attack of Section V.  ``main_sort`` buckets rotations by their two-byte
prefix using the cumulative ``ftab`` and finishes each bucket with a
budget-limited comparison sort; exhausting the budget (too-repetitive
input) raises :class:`BudgetExhausted` and the caller retreats to
``fallback_sort``, reproducing the control-flow divergence of Fig. 6.

``fallback_sort`` is a prefix-doubling rotation sort: simpler than
Bzip2's bucket-bitmap version but with the same role (always terminates,
slower on typical input) and the same observable property the
fingerprinting attack uses — time spent in it grows with repetitiveness.
"""

from __future__ import annotations

from functools import cmp_to_key
from itertools import accumulate
from typing import Callable, Optional

from repro.exec.arrays import TArray
from repro.exec.context import ExecutionContext
from repro.taint.value import value_of

#: Signature shared by :func:`histogram` and its hardened replacements.
HistogramFn = Callable[..., TArray]

FTAB_LEN = 65537
# Work budget per input byte.  Bzip2 uses workFactor=30 on top of its
# quadrant acceleration; without that acceleration the equivalent
# calibration is ~300: English-like text costs 30-90 units/byte here,
# strongly repetitive input costs thousands and retreats to fallbackSort.
DEFAULT_WORK_FACTOR = 300
FTAB_MISALIGN = 48  # ftab is not cache-line aligned (Section IV-D)

SITE_FTAB = "mainSort/ftab[j]++"
SITE_QUADRANT = "mainSort/quadrant[i]=0"
SITE_BLOCK = "mainSort/block[i]"


class BudgetExhausted(Exception):
    """mainSort's work budget ran out: input is too repetitive."""


def histogram(
    ctx: ExecutionContext,
    block: TArray,
    nblock: int,
    ftab: Optional[TArray] = None,
    quadrant: Optional[TArray] = None,
) -> TArray:
    """Listing 3: build the two-byte frequency table.

    Iterates the block in reverse; at each ``i`` the index ``j`` holds
    ``(block[i] << 8) | block[i+1]`` (wrapping at the ends), and
    ``ftab[j]`` is incremented — an input-dependent memory access that
    leaks both bytes at cache-line granularity.

    Returns the (cumulative-ready) frequency table.
    """
    if ftab is None:
        ftab = ctx.array("ftab", FTAB_LEN, elem_size=4, misalign=FTAB_MISALIGN)
    if quadrant is None:
        quadrant = ctx.array("quadrant", max(nblock, 1), elem_size=2)
    ftab.fill(0)

    tick = ctx.tick
    quadrant_set = quadrant.set
    block_get = block.get
    ftab_add = ftab.add
    j = block_get(0, site=SITE_BLOCK) << 8
    for i in range(nblock - 1, -1, -1):
        tick(3)
        quadrant_set(i, 0, site=SITE_QUADRANT)  # line 8
        j = (j >> 8) | ((block_get(i, site=SITE_BLOCK) & 0xFF) << 8)  # line 9
        ftab_add(j, 1, site=SITE_FTAB)  # line 10 -- THE GADGET
    return ftab


def main_sort(
    ctx: ExecutionContext,
    block: TArray,
    nblock: int,
    budget: int,
    ftab: Optional[TArray] = None,
    quadrant: Optional[TArray] = None,
    histogram_fn: Optional[HistogramFn] = None,
) -> list[int]:
    """Sort all rotations of ``block`` (mainSort).

    ``ftab``/``quadrant`` may be supplied by the caller (the SGX attack
    pre-allocates them so it can revoke their page permissions before
    the victim runs).  ``histogram_fn`` swaps the Listing 3 histogram for
    a signature-compatible replacement (e.g.
    :func:`repro.mitigations.oblivious.oblivious_histogram`), the seam
    the mitigation apply layer patches.

    Raises:
        BudgetExhausted: the comparison budget ran out; the caller must
            retry with :func:`fallback_sort`.
    """
    build_histogram = histogram if histogram_fn is None else histogram_fn
    with ctx.func("mainSort"):
        ftab = build_histogram(ctx, block, nblock, ftab=ftab, quadrant=quadrant)

        # Cumulative counts: ftab[j] = first ptr slot after bucket j.
        values = block.snapshot()
        counts = list(accumulate(ftab.snapshot()))
        ctx.tick(FTAB_LEN // 16)

        # Rotation offsets reach index (nblock-1) + 2 + nblock, so a
        # tripled (quadrupled for degenerate tiny blocks) flat byte
        # buffer replaces every ``% nblock`` with plain indexing.
        buf = bytes(values) * (3 if nblock >= 2 else 4)

        # Bucket rotations by their 2-byte prefix (stable fill).
        ptr = [0] * nblock
        next_slot = [0] + counts[: FTAB_LEN - 2]
        for i in range(nblock):
            j = (buf[i] << 8) | buf[i + 1]
            ptr[next_slot[j]] = i
            next_slot[j] += 1
        ctx.tick(nblock)

        # Sort within each bucket, comparing rotations from offset 2 on.
        # The match length ``m`` is exact (identical to the byte-at-a-
        # time walk it replaces) because the budget drain and the tick
        # stream — the side channel itself — are derived from it.
        state = {"budget": budget}
        tick = ctx.tick

        def compare(a: int, b: int) -> int:
            pa, pb = a + 2, b + 2
            n = nblock
            m = 0
            # Short common prefixes dominate typical text: scan a few
            # bytes directly before paying for slice comparisons.
            while m < n and m < 12:
                if buf[pa + m] != buf[pb + m]:
                    break
                m += 1
            else:
                # Long match: leap by chunk equality, then pin down the
                # mismatch inside the failing chunk.
                while m < n:
                    step = n - m
                    if step > 256:
                        step = 256
                    ca = buf[pa + m : pa + m + step]
                    if ca == buf[pb + m : pb + m + step]:
                        m += step
                        continue
                    cb = buf[pb + m : pb + m + step]
                    lo = 0
                    while ca[lo] == cb[lo]:
                        lo += 1
                    m += lo
                    break
            state["budget"] -= m + 1
            tick((m >> 2) + 1)
            if state["budget"] < 0:
                raise BudgetExhausted(
                    f"too repetitive; used more than {budget} work units"
                )
            if m >= n:
                return 0
            return -1 if buf[pa + m] < buf[pb + m] else 1

        start = 0
        for j in range(FTAB_LEN - 1):
            end = counts[j]
            if end - start > 1:
                ptr[start:end] = sorted(ptr[start:end], key=cmp_to_key(compare))
            start = end
        return ptr


def fallback_sort(ctx: ExecutionContext, block: TArray, nblock: int) -> list[int]:
    """Sort all rotations by prefix doubling (fallbackSort).

    Always terminates, even on fully periodic blocks (where distinct
    rotations compare equal and any tie order yields the same BWT).
    """
    with ctx.func("fallbackSort"):
        values = block.snapshot()
        n = nblock
        rank = list(values)
        order = sorted(range(n), key=rank.__getitem__)
        ctx.tick(n)

        h = 1
        while h < n:
            key = list(zip(rank, rank[h:] + rank[:h]))
            order.sort(key=key.__getitem__)
            new_rank = [0] * n
            r = 0
            for pos in range(1, n):
                if key[order[pos]] != key[order[pos - 1]]:
                    r += 1
                new_rank[order[pos]] = r
            ctx.tick(3 * n)
            rank = new_rank
            if r == n - 1:
                break
            h *= 2
        return order


def block_sort(
    ctx: ExecutionContext,
    block: TArray,
    nblock: int,
    full_block_size: int,
    work_factor: int = DEFAULT_WORK_FACTOR,
    histogram_fn: Optional[HistogramFn] = None,
) -> tuple[list[int], str]:
    """Bzip2's sorting dispatch (Fig. 6).

    Full blocks start in ``mainSort`` and abandon to ``fallbackSort``
    when the work budget runs out; short blocks (the tail of a file) go
    straight to ``fallbackSort``.

    Returns:
        ``(ptr, path)`` where ``ptr`` is the sorted rotation order and
        ``path`` is ``"mainSort"``, ``"mainSort+fallbackSort"`` or
        ``"fallbackSort"`` — the control flow the fingerprinting attack
        observes.
    """
    if nblock < full_block_size:
        return fallback_sort(ctx, block, nblock), "fallbackSort"
    try:
        ptr = main_sort(
            ctx,
            block,
            nblock,
            budget=work_factor * nblock,
            histogram_fn=histogram_fn,
        )
        return ptr, "mainSort"
    except BudgetExhausted:
        return fallback_sort(ctx, block, nblock), "mainSort+fallbackSort"
