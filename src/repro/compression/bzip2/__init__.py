"""Bzip2-style BWT compression pipeline.

The stack mirrors Bzip2 1.0.6 (Section IV-D of the paper):

    RLE1 -> block sort (BWT) -> MTF -> RLE2 -> Huffman

with the two structures the paper's attacks exploit reproduced exactly:

* the two-byte frequency table ``ftab[j]++`` built by
  :func:`repro.compression.bzip2.blocksort.histogram` (Listing 3 /
  Fig. 4) together with the ``quadrant[i] = 0`` writes that pace the
  single-stepping state machine of Fig. 5, and
* the mainSort/fallbackSort control-flow divergence of Fig. 6: full
  10,000-byte blocks start in ``mainSort`` and abandon to
  ``fallbackSort`` when the sorting budget is exhausted (too-repetitive
  input); shorter blocks go straight to ``fallbackSort``.

The container format is our own framing (DESIGN.md); every stage has an
exact inverse so round-trip tests cover the full pipeline.
"""

from repro.compression.bzip2.pipeline import (
    BLOCK_SIZE,
    bzip2_compress,
    bzip2_decompress,
)
from repro.compression.bzip2.blocksort import (
    SITE_FTAB,
    SITE_QUADRANT,
    SITE_BLOCK,
    BudgetExhausted,
    block_sort,
    histogram,
)

__all__ = [
    "BLOCK_SIZE",
    "bzip2_compress",
    "bzip2_decompress",
    "block_sort",
    "histogram",
    "BudgetExhausted",
    "SITE_FTAB",
    "SITE_QUADRANT",
    "SITE_BLOCK",
]
