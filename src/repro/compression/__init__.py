"""From-scratch models of the three compression families the paper studies.

Each module mirrors the algorithmic structure — and in particular the exact
cache-leaking gadget — of the reference C implementation named in the paper:

* :mod:`repro.compression.lz77` — Zlib/Gzip-style DEFLATE compressor with
  the chained hash table recommended by RFC 1951 (``head[ins_h]``,
  Listing 1 / Fig. 2).
* :mod:`repro.compression.lzw` — Ncompress-style LZW with the open-hash
  code table probe ``htab[(c << 9) ^ ent]`` (Listing 2 / Fig. 3).
* :mod:`repro.compression.bzip2` — Bzip2-style BWT pipeline with the
  two-byte frequency table ``ftab[j]++`` and the ``quadrant`` zeroing
  (Listing 3 / Fig. 4), plus the mainSort/fallbackSort control-flow
  divergence of Section VI.

All compressors take an :class:`~repro.exec.ExecutionContext` so the same
kernel runs natively, under TaintChannel, or inside the simulated enclave,
and every compressor has a working decompressor for round-trip testing.
"""

from repro.compression.lz77 import deflate_compress, deflate_decompress
from repro.compression.lzw import lzw_compress, lzw_decompress
from repro.compression.bzip2 import bzip2_compress, bzip2_decompress

__all__ = [
    "deflate_compress",
    "deflate_decompress",
    "lzw_compress",
    "lzw_decompress",
    "bzip2_compress",
    "bzip2_decompress",
]
