"""Brotli-style LZ77 match finder (second LZ77 implementation surveyed).

Brotli — "the successor of Gzip for network traffic compression"
(Section II-A) — is the other mainstream LZ77 implementation the paper
names.  Where Zlib rolls a shift-xor hash over 3 bytes, Brotli's H5
hasher multiplies a 4-byte little-endian word by a constant and keeps
the top bits:

    ``h = ((LE32(w[s..s+4]) * 0x1e35a7bd) & 0xffffffff) >> (32 - 15)``

The bucket access ``head[h]`` is again an input-dependent dereference —
a data-flow gadget TaintChannel flags just like Zlib's — but the
multiplicative mix smears every input byte's taint across all index bits
(no clean per-byte bit ranges), which is why the paper's precise
bit-recovery analysis (Section IV-B) targets Zlib.  The survey benchmark
shows both facts: the gadget exists with full input coverage, and the
taint is smeared rather than positional.

Output uses the same token container as :mod:`repro.compression.lz77`,
so :func:`repro.compression.lz77.deflate_decompress` decodes it.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.lz77 import MAGIC, WMASK, _Deflater, _run_deflater
from repro.exec.context import ExecutionContext, NativeContext

HASH_MUL = 0x1E35A7BD
BUCKET_BITS = 15

SITE_BROTLI_HEAD = "brotli/HashBytes head[h]"
SITE_BROTLI_PREV = "brotli/prev[s & WMASK]"


class _BrotliLikeDeflater(_Deflater):
    """Deflate machinery with Brotli's multiplicative 4-byte hasher."""

    hash_bytes = 4

    def prime(self) -> None:
        """Brotli's hash is stateless per position: nothing to seed."""

    def hash_at(self, s: int):
        w = self.window
        word = (
            w.get(s)
            | (w.get(s + 1) << 8)
            | (w.get(s + 2) << 16)
            | (w.get(s + 3) << 24)
        )
        return ((word * HASH_MUL) & 0xFFFFFFFF) >> (32 - BUCKET_BITS)

    def insert_string(self, s: int) -> int:
        h = self.hash_at(s)
        hash_head = self.head.get(h, site=SITE_BROTLI_HEAD)
        self.prev.set(s & WMASK, hash_head, site=SITE_BROTLI_PREV)
        self.head.set(h, s, site=SITE_BROTLI_HEAD)
        return hash_head


def brotli_like_compress(
    data: bytes, ctx: Optional[ExecutionContext] = None
) -> bytes:
    """Compress with the Brotli-style match finder (same container as
    :func:`repro.compression.lz77.deflate_compress`)."""
    if ctx is None:
        ctx = NativeContext()
    header = MAGIC + struct.pack("<I", len(data))
    if not data:
        return header
    with ctx.func("brotli_like"):
        body = _run_deflater(_BrotliLikeDeflater(data, ctx), ctx)
    return header + body
