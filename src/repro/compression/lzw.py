"""Ncompress-style LZW (LZ78 family) with the paper's hash-probe gadget.

The compressor follows the structure of (N)compress 5.1 (Section IV-C of
the paper): a pre-initialised dictionary (codes 0-255 map to themselves,
256 is reserved), an open hash table ``htab`` probed at

    ``hp = (c << 9) ^ ent``            (Listing 2)

with the secondary displacement probe of the original, and variable-width
output codes growing from 9 to 16 bits.  The first-probe access
``htab[hp]`` is the cache side-channel gadget: ``hp``'s bits 9-16 carry
the current input byte ``c`` (Fig. 3), and ``ent`` is replayable by the
attacker, so the whole input leaks (see :mod:`repro.recovery.lzw_recover`).

Differences from the original, chosen for determinism and documented in
DESIGN.md: the hash table is sized ``1 << 17`` (a power of two covering
the full range of ``hp``) instead of the prime 69001, and block mode
clears the dictionary deterministically when the code table fills rather
than on ncompress's compression-ratio heuristic.  The default
(``block_mode=False``) freezes the full table instead, which is what the
recovery replay in :mod:`repro.recovery.lzw_recover` mirrors.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.bitio import LSBBitReader, LSBBitWriter
from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

MAGIC = b"\x1f\x9d"
INIT_BITS = 9
MAX_BITS = 16
MIN_MAX_BITS = 9
CLEAR_CODE = 256  # emitted only in block mode to reset the dictionary
FIRST_FREE = 257
MAX_MAX_CODE = 1 << MAX_BITS
BLOCK_MODE_FLAG = 0x80  # bit 7 of the header flag byte, as in compress
HSHIFT = 9  # the paper's gadget shift
HSIZE = 1 << 17  # covers (c << 9) ^ ent for ent < 2**16

SITE_PRIMARY = "compress/htab[hp]"
SITE_SECONDARY = "compress/htab[hp] (secondary probe)"
SITE_CODETAB = "compress/codetab[hp]"


def _maxcode(n_bits: int) -> int:
    return (1 << n_bits) - 1


def lzw_compress(
    data: bytes,
    ctx: Optional[ExecutionContext] = None,
    max_bits: int = MAX_BITS,
    block_mode: bool = False,
) -> bytes:
    """Compress ``data`` with ncompress-style LZW.

    Args:
        data: the plaintext.
        ctx: execution substrate; defaults to a fresh
            :class:`~repro.exec.NativeContext`.  Run under a
            :class:`~repro.exec.TracingContext` to expose the
            ``htab[hp]`` gadget to TaintChannel.
        max_bits: maximum code width, 9-16 (``compress -b``).
        block_mode: emit CLEAR and reset the dictionary when the code
            table fills (deterministic variant of ncompress's ratio
            heuristic); default freezes the table instead.

    Returns:
        the compressed stream (2 magic bytes, 1 flag byte, then variable
        width codes packed LSB-first).
    """
    if not MIN_MAX_BITS <= max_bits <= MAX_BITS:
        raise ValueError(f"max_bits must be in [9, 16], got {max_bits}")
    if ctx is None:
        ctx = NativeContext()
    max_max_code = 1 << max_bits
    flag = max_bits | (BLOCK_MODE_FLAG if block_mode else 0)

    out = LSBBitWriter()
    with ctx.func("compress"):
        htab = ctx.array("htab", HSIZE, elem_size=8, init=-1)
        codetab = ctx.array("codetab", HSIZE, elem_size=2, init=0)
        inp = ctx.input_bytes(data)

        if not data:
            return MAGIC + bytes([flag])

        n_bits = INIT_BITS
        maxcode = _maxcode(n_bits)
        free_ent = FIRST_FREE

        ent = inp[0]  # dictionary entry for the current match prefix
        for pos in range(1, len(data)):
            ctx.tick(4)
            c = inp[pos]
            fc = (ent << 8) | c  # fcode identifying the pair (ent, c)
            hp = (c << HSHIFT) ^ ent  # Listing 2, line 9 -- leaks c

            # Primary probe: the gadget access.
            found = False
            slot = htab.get(hp, site=SITE_PRIMARY)
            if slot == fc:
                found = True
            elif not (slot < 0):
                # Secondary probing, as in compress.c.  ``hp -= disp; if
                # (hp < 0) hp += HSIZE`` is expressed modularly because
                # our tainted ints are unsigned; HSIZE is a power of two
                # so the reduction is a taint-preserving mask.  The step
                # is forced odd: compress.c's prime table size makes any
                # displacement walk every slot, but with a power-of-two
                # table an even step cycles through a fraction of the
                # slots and can loop forever once the table freezes.
                disp = HSIZE - (value_of(hp) | 1)
                while True:
                    ctx.tick(2)
                    hp = (hp + (HSIZE - disp)) % HSIZE
                    slot = htab.get(hp, site=SITE_SECONDARY)
                    if slot == fc:
                        found = True
                        break
                    if slot < 0:
                        break

            if found:
                ent = codetab.get(hp, site=SITE_CODETAB)
                continue

            # Not in the table: emit the code for ent, insert (ent, c).
            out.write(ent, n_bits)
            if free_ent < max_max_code:
                codetab.set(hp, free_ent, site=SITE_CODETAB)
                htab.set(hp, fc, site=SITE_PRIMARY)
                free_ent += 1
                if free_ent > maxcode and n_bits < max_bits:
                    n_bits += 1
                    maxcode = _maxcode(n_bits)
            elif block_mode:
                # Table full: clear and start over (ncompress cl_block,
                # triggered deterministically instead of by ratio).
                out.write(CLEAR_CODE, n_bits)
                htab.fill(-1)
                codetab.fill(0)
                n_bits = INIT_BITS
                maxcode = _maxcode(n_bits)
                free_ent = FIRST_FREE
            ent = c

        out.write(ent, n_bits)

    return MAGIC + bytes([flag]) + out.getvalue()


def lzw_decompress(blob: bytes) -> bytes:
    """Invert :func:`lzw_compress`.

    The dictionary is reconstructed exactly as the compressor built it —
    the reversibility the paper's recovery attack relies on ("knowledge of
    all previous input bytes allows the attacker to compute all dictionary
    entries in the same manner as the compressor does").
    """
    if blob[:2] != MAGIC:
        raise ValueError("bad LZW magic")
    max_bits = blob[2] & 0x1F
    if not MIN_MAX_BITS <= max_bits <= MAX_BITS:
        raise ValueError(f"unsupported maxbits {max_bits}")
    block_mode = bool(blob[2] & BLOCK_MODE_FLAG)
    max_max_code = 1 << max_bits
    payload = blob[3:]
    if not payload:
        return b""

    reader = LSBBitReader(payload)
    n_bits = INIT_BITS
    maxcode = _maxcode(n_bits)
    free_ent = FIRST_FREE

    # code -> (prefix_code | None, last_byte)
    initial = {c: (None, c) for c in range(256)}
    prefix: dict[int, tuple[Optional[int], int]] = dict(initial)

    def expand(code: int) -> bytes:
        buf = bytearray()
        cur: Optional[int] = code
        while cur is not None:
            parent, byte = prefix[cur]
            buf.append(byte)
            cur = parent
        return bytes(reversed(buf))

    out = bytearray()
    old_code = reader.read(n_bits)
    out += expand(old_code)
    first_byte = out[0]

    while reader.bits_left() >= n_bits:
        # Width bump check is one entry ahead of our table (the encoder
        # inserts immediately after emitting; we insert one code later).
        if free_ent + 1 > maxcode and n_bits < max_bits:
            n_bits += 1
            maxcode = _maxcode(n_bits)
            if reader.bits_left() < n_bits:
                break
        code = reader.read(n_bits)
        if block_mode and code == CLEAR_CODE:
            # Dictionary reset: mirror the encoder, then re-read the
            # stream-start "first code" at 9 bits.
            prefix = dict(initial)
            n_bits = INIT_BITS
            maxcode = _maxcode(n_bits)
            free_ent = FIRST_FREE
            if reader.bits_left() < n_bits:
                break
            old_code = reader.read(n_bits)
            out += expand(old_code)
            first_byte = expand(old_code)[0]
            continue
        if code >= free_ent:  # the KwKwK special case
            if code != free_ent:
                raise ValueError(f"corrupt stream: code {code} > {free_ent}")
            entry = expand(old_code) + bytes([first_byte])
        else:
            entry = expand(code)
        out += entry
        first_byte = entry[0]
        if free_ent < max_max_code:
            prefix[free_ent] = (old_code, first_byte)
            free_ent += 1
        old_code = code

    return bytes(out)
