"""Bit-level I/O used by all three compressors.

Ncompress packs codes LSB-first (low bit of the byte filled first), Bzip2
MSB-first; both orders are provided.  Writers accept possibly-tainted
values and strip the wrapper at the byte boundary — the *compressed
output* is the program's nominal output and is outside the side-channel
model.
"""

from __future__ import annotations

from repro.taint.value import value_of


class LSBBitWriter:
    """Pack values least-significant-bit first (ncompress order)."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value, nbits: int) -> None:
        v = value_of(value) & ((1 << nbits) - 1)
        self._acc |= v << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def getvalue(self) -> bytes:
        out = bytearray(self._out)
        if self._nbits:
            out.append(self._acc & 0xFF)
        return bytes(out)


class LSBBitReader:
    """Unpack values least-significant-bit first."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read(self, nbits: int) -> int:
        out = 0
        for i in range(nbits):
            byte_i, bit_i = divmod(self._pos, 8)
            if byte_i >= len(self._data):
                raise EOFError("bit stream exhausted")
            out |= ((self._data[byte_i] >> bit_i) & 1) << i
            self._pos += 1
        return out

    def bits_left(self) -> int:
        return len(self._data) * 8 - self._pos


class MSBBitWriter:
    """Pack values most-significant-bit first (bzip2 order)."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value, nbits: int) -> None:
        v = value_of(value) & ((1 << nbits) - 1)
        self._acc = (self._acc << nbits) | v
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        out = bytearray(self._out)
        if self._nbits:
            out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class MSBBitReader:
    """Unpack values most-significant-bit first."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, nbits: int) -> int:
        out = 0
        for _ in range(nbits):
            byte_i, bit_i = divmod(self._pos, 8)
            if byte_i >= len(self._data):
                raise EOFError("bit stream exhausted")
            out = (out << 1) | ((self._data[byte_i] >> (7 - bit_i)) & 1)
            self._pos += 1
        return out

    def read_bit(self) -> int:
        return self.read(1)

    def bits_left(self) -> int:
        return len(self._data) * 8 - self._pos
