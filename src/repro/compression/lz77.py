"""Zlib-style DEFLATE (LZ77 family) with the paper's hash-chain gadget.

The compressor follows Zlib's ``deflate_slow`` (lazy matching over a
chained hash table), including the exact leaking computation of
Listing 1 / Fig. 2:

    ``UPDATE_HASH:  ins_h = ((ins_h << 5) ^ c) & 0x7fff``
    ``INSERT_STRING: prev[s & 0x7fff] = head[ins_h]; head[ins_h] = s``

Every input position is inserted exactly once, in order, so the sequence
of ``head[ins_h]`` accesses — observed at cache-line granularity — leaks
a sliding 3-byte xor of the input (25 % of the plaintext directly; all of
it for inputs with known high bits such as lowercase ASCII; see
:mod:`repro.recovery.zlib_recover`).

The emitted container is our own compact token format (literal /
length+distance), not byte-exact RFC 1951: the gadget lives in match
*finding*, which is structurally exact, while entropy coding is irrelevant
to the side channel (DESIGN.md).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.exec.context import ExecutionContext, NativeContext
from repro.taint.value import value_of

MAGIC = b"ZD"
WSIZE = 1 << 15
WMASK = WSIZE - 1
HASH_SIZE = 1 << 15
HASH_MASK = HASH_SIZE - 1
H_SHIFT = 5
MIN_MATCH = 3
MAX_MATCH = 258
MAX_DIST = WSIZE
NIL = -1

MAX_CHAIN = 128
MAX_LAZY = 32
NICE_LENGTH = 128

SITE_HEAD = "deflate_slow/head[ins_h]"
SITE_PREV = "deflate_slow/prev[s & WMASK]"
SITE_WINDOW = "longest_match/window"
SITE_FREQ = "_tr_tally/dyn_ltree[c].Freq++"

MATCH_MARKER = 256  # entropy-coded symbol introducing a match token
ALPHA_SIZE = 257


class _Deflater:
    """One deflate run: hash-chain state plus token emission."""

    hash_bytes = MIN_MATCH  # bytes consumed by one hash insertion

    def __init__(self, data: bytes, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.n = len(data)
        self.window = ctx.array("window", max(self.n, 1), elem_size=1)
        self.head = ctx.array("head", HASH_SIZE, elem_size=2, init=NIL)
        self.prev = ctx.array("prev", WSIZE, elem_size=2, init=NIL)
        for i, b in enumerate(ctx.input_bytes(data)):
            self.window.set(i, b)
        self.ins_h = 0
        # zlib counts symbol frequencies as it tallies tokens
        # (_tr_tally): dyn_ltree[c].Freq++ is itself an input-dependent
        # access -- a second gadget in the same compressor.
        self.freq = ctx.array("dyn_ltree", ALPHA_SIZE, elem_size=4)
        self.tokens: list[tuple] = []

    # -- the leaking computation ---------------------------------------
    def prime(self) -> None:
        """Seed the rolling hash with the first two bytes, as zlib does:
        after this, inserting position s consumes window[s+2]."""
        if self.n >= 2:
            self.update_hash(self.window.get(0))
            self.update_hash(self.window.get(1))

    def update_hash(self, c) -> None:
        self.ins_h = ((self.ins_h << H_SHIFT) ^ c) & HASH_MASK

    def insert_string(self, s: int) -> int:
        """Insert the 3-byte string at position ``s``; return the head of
        its hash chain.  This is Listing 1: the ``head[ins_h]`` accesses
        are the gadget."""
        self.update_hash(self.window.get(s + MIN_MATCH - 1))
        hash_head = self.head.get(self.ins_h, site=SITE_HEAD)
        self.prev.set(s & WMASK, hash_head, site=SITE_PREV)
        self.head.set(self.ins_h, s, site=SITE_HEAD)
        return hash_head

    # -- match search ----------------------------------------------------
    def longest_match(self, strstart: int, cur_match: int, prev_length: int):
        """Walk the hash chain from ``cur_match`` looking for the longest
        match at ``strstart`` (zlib's longest_match, simplified)."""
        window, n = self.window, self.n
        best_len = prev_length
        best_start = NIL
        limit = strstart - MAX_DIST if strstart > MAX_DIST else -1
        chain_length = MAX_CHAIN
        max_possible = min(MAX_MATCH, n - strstart)

        while cur_match > limit and chain_length > 0:
            chain_length -= 1
            self.ctx.tick(2)
            # Quick rejection on the byte that would extend best_len.
            if best_len >= 1 and (
                strstart + best_len >= n
                or window.get(cur_match + best_len, site=SITE_WINDOW)
                != window.get(strstart + best_len, site=SITE_WINDOW)
            ):
                cur_match = value_of(self.prev.get(cur_match & WMASK))
                continue
            length = 0
            while (
                length < max_possible
                and window.get(cur_match + length, site=SITE_WINDOW)
                == window.get(strstart + length, site=SITE_WINDOW)
            ):
                length += 1
                self.ctx.tick(1)
            if length > best_len:
                best_len = length
                best_start = cur_match
                if length >= NICE_LENGTH or length >= max_possible:
                    break
            cur_match = value_of(self.prev.get(cur_match & WMASK))

        if best_start == NIL:
            return prev_length, NIL
        return best_len, best_start

    # -- token emission (zlib's _tr_tally) -------------------------------
    def emit_literal(self, b) -> None:
        self.freq.add(b, 1, site=SITE_FREQ)
        self.tokens.append(("lit", b))

    def emit_match(self, length: int, distance: int) -> None:
        self.freq.add(MATCH_MARKER, 1, site=SITE_FREQ)
        self.tokens.append(("match", length, distance))

    # -- entropy coding (zlib's compress_block) ---------------------------
    def flush_block(self) -> bytes:
        """Encode the tallied tokens: a dynamic canonical Huffman code
        over literals + the match marker when it pays for its table,
        otherwise fixed 9-bit coding (zlib's dynamic/static choice)."""
        from repro.compression.bzip2.huffman import HuffmanTable

        out = MSBBitWriter()
        freqs = self.freq.snapshot()
        total = sum(freqs)
        table = HuffmanTable.from_freqs(freqs)
        dynamic_bits = ALPHA_SIZE * 5 + sum(
            freqs[s] * table.lengths[s] for s in range(ALPHA_SIZE) if freqs[s]
        )
        fixed_bits = total * 9
        use_dynamic = dynamic_bits < fixed_bits

        out.write(1 if use_dynamic else 0, 1)
        if use_dynamic:
            table.write_lengths(out)

        def put_symbol(sym: int) -> None:
            if use_dynamic:
                table.encode(out, value_of(sym))
            else:
                out.write(sym, 9)

        for token in self.tokens:
            if token[0] == "lit":
                put_symbol(token[1])
            else:
                put_symbol(MATCH_MARKER)
                out.write(token[1] - MIN_MATCH, 8)
                out.write(token[2] - 1, 15)
        return out.getvalue()


def _run_deflater(d: "_Deflater", ctx: ExecutionContext) -> bytes:
    """The deflate_slow lazy-matching loop, shared by the zlib-style and
    Brotli-like match finders."""
    n = d.n
    d.prime()

    strstart = 0
    match_available = False
    match_length = MIN_MATCH - 1  # best match found at this position
    match_start = NIL

    while strstart < n:
        ctx.tick(2)
        hash_head = NIL
        if strstart + d.hash_bytes <= n:
            hash_head = value_of(d.insert_string(strstart))

        # Lazy evaluation: the previous position's match competes
        # with the one we are about to find here.
        prev_length, prev_match = match_length, match_start
        match_length, match_start = MIN_MATCH - 1, NIL
        if (
            hash_head != NIL
            and prev_length < MAX_LAZY
            and strstart - hash_head <= MAX_DIST
        ):
            match_length, match_start = d.longest_match(
                strstart, hash_head, MIN_MATCH - 1
            )
            if match_length < MIN_MATCH or match_start == NIL:
                match_length, match_start = MIN_MATCH - 1, NIL

        if prev_length >= MIN_MATCH and match_length <= prev_length:
            # The previous position's match wins: emit it and insert
            # all the positions it covers.
            d.emit_match(prev_length, (strstart - 1) - prev_match)
            for _ in range(prev_length - 2):  # strstart already done
                strstart += 1
                if strstart + d.hash_bytes <= n:
                    d.insert_string(strstart)
            strstart += 1
            match_available = False
            match_length, match_start = MIN_MATCH - 1, NIL
        elif match_available:
            d.emit_literal(d.window.get(strstart - 1))
            strstart += 1
        else:
            match_available = True
            strstart += 1

    if match_available:
        d.emit_literal(d.window.get(n - 1))

    return d.flush_block()


def deflate_compress(data: bytes, ctx: Optional[ExecutionContext] = None) -> bytes:
    """Compress ``data`` with the zlib-style lazy-matching deflate."""
    if ctx is None:
        ctx = NativeContext()
    header = MAGIC + struct.pack("<I", len(data))
    if not data:
        return header
    with ctx.func("deflate_slow"):
        body = _run_deflater(_Deflater(data, ctx), ctx)
    return header + body


def deflate_decompress(blob: bytes) -> bytes:
    """Invert :func:`deflate_compress` (and the Brotli-like variant)."""
    from repro.compression.bzip2.huffman import HuffmanTable

    if blob[:2] != MAGIC:
        raise ValueError("bad deflate magic")
    (n,) = struct.unpack("<I", blob[2:6])
    if n == 0:
        return b""
    reader = MSBBitReader(blob[6:])
    decoder = None
    if reader.read(1):  # dynamic-code block
        decoder = HuffmanTable.read_lengths(reader, ALPHA_SIZE).decoder()

    def get_symbol() -> int:
        if decoder is not None:
            return decoder.decode(reader)
        return reader.read(9)

    out = bytearray()
    while len(out) < n:
        sym = get_symbol()
        if sym == MATCH_MARKER:
            length = reader.read(8) + MIN_MATCH
            distance = reader.read(15) + 1
            if distance > len(out):
                raise ValueError("distance past start of output")
            start = len(out) - distance
            for k in range(length):  # byte-wise: matches may overlap
                out.append(out[start + k])
        elif sym > 255:
            raise ValueError(f"invalid literal symbol {sym}")
        else:
            out.append(sym)
    return bytes(out)
