"""repro — a reproduction of ZipChannel (Minkin & Kasikci, DSN 2024).

Cache side-channel vulnerabilities in compression algorithms: the
TaintChannel detection tool, from-scratch models of the leaking
compression implementations (Zlib-style LZ77, Ncompress-style LZW,
Bzip2-style BWT), a simulated cache/memory/SGX substrate, and the two
end-to-end ZipChannel attacks.

Start with :mod:`repro.core.taintchannel` (the tool) and
:mod:`repro.core.zipchannel` (the attacks); see DESIGN.md for the map.
"""

__version__ = "1.0.0"
