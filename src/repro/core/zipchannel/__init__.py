"""ZipChannel: the two end-to-end attacks on Bzip2.

* :mod:`repro.core.zipchannel.sgx_attack` — Prime+Probe extraction of a
  buffer being compressed inside an SGX enclave (Section V): mprotect
  single-stepping, CAT partitioning, frame selection, and the Section
  IV-D/V-D recovery with redundancy error correction.
* :mod:`repro.core.zipchannel.fingerprint` — Flush+Reload fingerprinting
  of which file Bzip2 is compressing (Section VI): trace capture on the
  mainSort/fallbackSort entry lines and a neural-network classifier.
"""

from repro.core.zipchannel.sgx_attack import (
    AttackConfig,
    AttackOutcome,
    SgxBzip2Attack,
    run_extraction_experiment,
)
from repro.core.zipchannel.fingerprint import (
    FingerprintChannel,
    capture_raw_trace,
    capture_trace,
    derive_capture_seed,
    pool_trace,
    run_fingerprint_experiment,
    victim_timeline,
)

__all__ = [
    "SgxBzip2Attack",
    "AttackConfig",
    "AttackOutcome",
    "run_extraction_experiment",
    "FingerprintChannel",
    "capture_raw_trace",
    "capture_trace",
    "derive_capture_seed",
    "pool_trace",
    "run_fingerprint_experiment",
    "victim_timeline",
]
