"""Flush+Reload fingerprinting of Bzip2's input file (Section VI).

The attacker monitors two cache lines of the shared ``libbz2``: the hot
code of ``mainSort()`` and of ``fallbackSort()``.  Which function runs,
for how long, and in what per-block pattern depends on the input's
repetitiveness and length (Fig. 6), so the resulting hit/miss traces
fingerprint the file.

The pipeline here matches the paper's:

1. the victim compresses a file; its mainSort/fallbackSort *timeline*
   (virtual-time intervals) comes from the profiled native run;
2. the attacker's Flush+Reload loop samples the two lines at a fixed
   period over 10,000 rounds, with measurement noise and a random
   starting phase — each capture of the same file differs, which is why
   a classifier is trained on many traces;
3. traces are max-pooled to the paper's 2 x 1,000 tensor and fed to the
   classifier in :mod:`repro.classify`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.compression.bzip2.pipeline import bzip2_compress_with_paths
from repro.exec.context import NativeContext, Profiler

MONITORED_FUNCTIONS = ("mainSort", "fallbackSort")
N_SAMPLES = 10_000  # Flush+Reload rounds (paper)
TENSOR_WIDTH = 1_000  # classifier input width per line (paper)


@dataclass
class VictimTimeline:
    """When the victim executed each monitored function."""

    intervals: dict[str, list[tuple[int, int]]]
    duration: int
    paths: list[str]  # per-block sorting path, ground truth


def victim_timeline(data: bytes, work_factor: Optional[int] = None) -> VictimTimeline:
    """Compress ``data`` once and extract the monitored-function
    timeline.  The victim run is deterministic per file; capture noise is
    added per-trace by :func:`capture_trace`."""
    profiler = Profiler()
    ctx = NativeContext(profiler=profiler)
    kwargs = {} if work_factor is None else {"work_factor": work_factor}
    _, paths = bzip2_compress_with_paths(data, ctx=ctx, **kwargs)
    return VictimTimeline(
        intervals={
            name: profiler.intervals(name) for name in MONITORED_FUNCTIONS
        },
        duration=profiler.now,
        paths=paths,
    )


@dataclass
class FingerprintChannel:
    """The attacker's Flush+Reload sampling loop.

    Args:
        period: victim virtual-time units per Flush+Reload round.
        p_false_negative: probability a real hit reads as a miss (the
            victim's access raced the flush).
        p_false_positive: probability a miss reads as a hit (prefetch /
            timing noise).
        speed_jitter: per-capture execution speed variation (frequency
            scaling, co-tenant contention): interval boundaries are
            scaled by a factor uniform in ``1 +- speed_jitter``.
    """

    period: int = 250
    p_false_negative: float = 0.08
    p_false_positive: float = 0.01
    speed_jitter: float = 0.10

    def capture(
        self, timeline: VictimTimeline, rng: random.Random
    ) -> np.ndarray:
        """One noisy 2 x N_SAMPLES boolean trace of the victim run."""
        trace = np.zeros((len(MONITORED_FUNCTIONS), N_SAMPLES), dtype=np.int8)
        phase = rng.randrange(self.period)
        speed = 1.0 + rng.uniform(-self.speed_jitter, self.speed_jitter)
        for row, name in enumerate(MONITORED_FUNCTIONS):
            for start, end in timeline.intervals[name]:
                start, end = int(start * speed), int(end * speed)
                first = max(0, (start + phase) // self.period)
                last = min(N_SAMPLES - 1, (end + phase) // self.period)
                trace[row, first : last + 1] = 1
        noise = np.random.default_rng(rng.getrandbits(32))
        flips_fn = noise.random(trace.shape) < self.p_false_negative
        flips_fp = noise.random(trace.shape) < self.p_false_positive
        trace = np.where(trace == 1, ~flips_fn, flips_fp).astype(np.int8)
        return trace


def pool_trace(trace: np.ndarray, width: int = TENSOR_WIDTH) -> np.ndarray:
    """Max-pool a 2 x N_SAMPLES trace down to the 2 x ``width`` tensor
    the classifier consumes."""
    rows, n = trace.shape
    stride = n // width
    return trace[:, : stride * width].reshape(rows, width, stride).max(axis=2)


def derive_capture_seed(base_seed: int, label: int, trace_index: int) -> int:
    """Deterministic 63-bit seed for one capture of one file.

    Each capture owns its randomness: reordering files, changing
    ``traces_per_file``, or capturing a single trace in isolation (e.g.
    replaying one stored-trace record from its metadata) all reproduce
    the exact same sample stream.  This is the fingerprint analogue of
    :func:`repro.campaign.spec.derive_seed`.
    """
    payload = f"fingerprint-capture:{base_seed}:{label}:{trace_index}"
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def _as_rng(rng: Union[int, random.Random]) -> random.Random:
    """Accept either a seed or a ready RNG (seed preferred: it is
    recordable in stored-trace metadata)."""
    return random.Random(rng) if isinstance(rng, int) else rng


def capture_raw_trace(
    timeline: VictimTimeline,
    rng: Union[int, random.Random],
    channel: Optional[FingerprintChannel] = None,
) -> np.ndarray:
    """One unpooled 2 x N_SAMPLES hit/miss trace — the unit
    :mod:`repro.traces` stores; :func:`pool_trace` turns it into the
    classifier tensor."""
    channel = channel or FingerprintChannel()
    return channel.capture(timeline, _as_rng(rng))


def capture_trace(
    timeline: VictimTimeline,
    rng: Union[int, random.Random],
    channel: Optional[FingerprintChannel] = None,
) -> np.ndarray:
    """One pooled, flattened feature vector for the classifier."""
    return pool_trace(capture_raw_trace(timeline, rng, channel)).reshape(-1)


def duration_only_feature(
    timeline: VictimTimeline,
    rng: Union[int, random.Random],
    channel: Optional[FingerprintChannel] = None,
) -> np.ndarray:
    """The prior-work baseline feature: total execution time only.

    Schwarzl et al. (the paper's reference [7]) fingerprint via overall
    compression timing; the paper's Section I argument is that the cache
    channel "provides additional information".  This produces the
    one-dimensional timing observation under the same noise model
    (speed jitter) as the trace channel, for head-to-head comparison.
    """
    channel = channel or FingerprintChannel()
    speed = 1.0 + _as_rng(rng).uniform(-channel.speed_jitter, channel.speed_jitter)
    return np.array([timeline.duration * speed], dtype=np.float32)


def run_fingerprint_experiment(
    corpus: str = "lipsum",
    traces: int = 10,
    epochs: int = 20,
    seed: int = 0,
    hidden: int = 96,
) -> dict:
    """One campaign-runnable Section VI attack: capture traces of each
    corpus file, train the classifier, return picklable metrics."""
    from repro.classify import MLPClassifier, split_dataset
    from repro.workloads import brotli_like_corpus, repetitiveness_series

    if corpus == "brotli":
        files = list(brotli_like_corpus().values())
    elif corpus == "lipsum":
        files = repetitiveness_series()
    else:
        raise ValueError(f"unknown corpus {corpus!r}")

    x, y, _ = build_dataset(files, traces_per_file=traces, seed=seed)
    train, val, test = split_dataset(x, y, seed=seed + 1)
    clf = MLPClassifier(x.shape[1], len(files), hidden=hidden, seed=seed + 2)
    clf.fit(*train, epochs=epochs, x_val=val[0], y_val=val[1])
    return {
        "test_accuracy": float(clf.accuracy(*test)),
        "train_accuracy": float(clf.accuracy(*train)),
        "n_files": len(files),
        "chance": 1.0 / len(files),
        "n_traces": int(x.shape[0]),
    }


def build_dataset(
    files: Sequence[bytes],
    traces_per_file: int,
    seed: int = 0,
    channel: Optional[FingerprintChannel] = None,
    work_factor: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, list[VictimTimeline]]:
    """Capture ``traces_per_file`` noisy traces of each file.

    Returns ``(X, y, timelines)`` with X of shape
    ``(len(files) * traces_per_file, 2 * TENSOR_WIDTH)``.

    Every capture gets its own :func:`derive_capture_seed` seed rather
    than sharing one threaded RNG, so capture ``(label, i)`` is
    reproducible in isolation — which is what lets
    :mod:`repro.traces` record the seed per stored trace and replay any
    single capture bit-exactly.
    """
    with obs.span(
        "fingerprint.build_dataset",
        files=len(files),
        traces_per_file=traces_per_file,
    ):
        timelines = [victim_timeline(f, work_factor) for f in files]
        xs, ys = [], []
        for label, timeline in enumerate(timelines):
            for i in range(traces_per_file):
                capture_seed = derive_capture_seed(seed, label, i)
                xs.append(capture_trace(timeline, capture_seed, channel))
                ys.append(label)
    obs.counter_add("fingerprint.captures", len(xs))
    return np.array(xs, dtype=np.float32), np.array(ys), timelines
