"""End-to-end Prime+Probe extraction from Bzip2 inside SGX (Section V).

The victim runs the histogram loop of Listing 3 over a secret buffer
inside a simulated enclave.  The attacker — playing the OS, as the SGX
threat model allows — combines:

1. mprotect single-stepping over quadrant/block/ftab (Fig. 5),
2. the architectural page leak from ftab write faults (Section V-B),
3. Prime+Probe over the faulting page's 64 cache lines, sharpened by
   Intel CAT way partitioning (Section V-C1) and frame selection
   (Section V-C2), and
4. the Section IV-D / V-D algebraic recovery with the
   consecutive-iteration redundancy as error correction,

to reconstruct the buffer.  The paper reports > 99 % of bits recovered
for 10 KB of random data in under 30 s; the benchmark
``benchmarks/test_bench_sec5e_sgx_attack.py`` reproduces that row, and
the ablation benches re-run this attack with CAT or frame selection
disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.cache.model import Cache, CacheConfig
from repro.cache.cat import CatController
from repro.cache.noise import BackgroundNoise, OsPollution
from repro.compression.bzip2.blocksort import FTAB_LEN, FTAB_MISALIGN, histogram
from repro.memsys.paging import PAGE_SIZE, AddressSpace, PageFault
from repro.recovery.bzip2_recover import (
    Observation,
    RecoveredBlock,
    recover_bzip2_block,
)
from repro.sgx.enclave import Enclave
from repro.sidechannel.frame_selection import FrameSelector
from repro.sidechannel.prime_probe import AttackerMemory, PrimeProbe
from repro.sidechannel.single_step import SingleStepper

LINES_PER_PAGE = PAGE_SIZE // 64


@dataclass
class AttackConfig:
    """Attack and environment knobs (ablation points in bold in the
    paper: CAT, frame selection)."""

    use_cat: bool = True
    use_frame_selection: bool = True
    background_noise_rate: int = 2
    os_pollution_lines: int = 48
    max_frame_remaps: int = 32
    cache: CacheConfig = field(default_factory=CacheConfig)
    attacker_pool_lines: int = 1 << 17


@dataclass
class AttackOutcome:
    """What the attack recovered, and at what cost."""

    recovered: RecoveredBlock
    bit_accuracy: float
    byte_accuracy: float
    elapsed_seconds: float
    faults: int
    victim_accesses: int
    frame_remaps: int
    observations_empty: int
    observations_ambiguous: int

    def summary(self) -> str:
        return (
            f"SGX ZipChannel attack: bit accuracy {self.bit_accuracy * 100:.2f}%, "
            f"byte accuracy {self.byte_accuracy * 100:.2f}%, "
            f"{self.elapsed_seconds:.2f}s, {self.faults} faults, "
            f"{self.frame_remaps} frame remaps"
        )

    def to_dict(self) -> dict:
        """Picklable/JSON-ready metrics (drops the recovered buffer
        itself — campaigns aggregate accuracies, not plaintexts)."""
        return {
            "bit_accuracy": self.bit_accuracy,
            "byte_accuracy": self.byte_accuracy,
            "elapsed_seconds": self.elapsed_seconds,
            "faults": self.faults,
            "victim_accesses": self.victim_accesses,
            "frame_remaps": self.frame_remaps,
            "observations_empty": self.observations_empty,
            "observations_ambiguous": self.observations_ambiguous,
        }


class SgxBzip2Attack:
    """One attack instance over one secret buffer."""

    def __init__(
        self,
        secret: bytes,
        config: Optional[AttackConfig] = None,
        victim_histogram=histogram,
    ) -> None:
        """``victim_histogram`` selects the victim kernel: the default is
        the vulnerable Listing 3 loop; pass
        :func:`repro.mitigations.oblivious_histogram` to evaluate the
        Section VIII mitigation under the same attack."""
        if not secret:
            raise ValueError("need a non-empty secret buffer")
        self.secret = secret
        self.config = config or AttackConfig()
        self.victim_histogram = victim_histogram
        cfg = self.config

        self.cache = Cache(cfg.cache)
        self.cat = CatController(self.cache)
        if cfg.use_cat:
            self.cat.partition_for_attack(attack_cos=0, other_cos=1)
            self.prime_ways = 1
        else:
            self.cat.reset()
            self.cache.cos_masks[1] = tuple(range(cfg.cache.ways))
            self.prime_ways = cfg.cache.ways

        self.noise = BackgroundNoise(
            self.cache, rate=cfg.background_noise_rate, cos=1
        )
        self.pollution = OsPollution(
            self.cache, n_lines=cfg.os_pollution_lines, cos=0
        )

        self.space = AddressSpace()
        self.enclave = Enclave(
            self.space,
            self.cache,
            cos=0,
            env_hook=lambda paddr, kind: self.noise.step(),
        )

        n = len(secret)
        self.block = self.enclave.array("block", n, elem_size=1)
        self.block.load(list(secret))
        self.quadrant = self.enclave.array("quadrant", n, elem_size=2)
        self.ftab = self.enclave.array(
            "ftab", FTAB_LEN, elem_size=4, misalign=FTAB_MISALIGN
        )

        self.attacker_memory = AttackerMemory(
            self.cache, n_lines=cfg.attacker_pool_lines
        )
        self.pp = PrimeProbe(
            self.cache, self.attacker_memory, cos=0, ways=self.prime_ways
        )
        self.frames = FrameSelector(
            self.space,
            self.cache,
            self.pp,
            transition=self.pollution.fault_entry,
            max_remaps=cfg.max_frame_remaps,
            enabled=cfg.use_frame_selection,
        )

        self.stepper = SingleStepper(
            self.space,
            self.quadrant,
            self.block,
            self.ftab,
            before_ftab_access=self._on_ftab_fault,
            probe_point=self._probe_point,
        )

        self._current_page: Optional[int] = None
        self._observations: list[list[int]] = []  # per ftab access, in step order

    # -- attacker callbacks ----------------------------------------------
    def _on_ftab_fault(self, page_vaddr: int) -> None:
        """S2: know the page; vet its frame; prime its 64 locations."""
        vetted = self.frames.vet(page_vaddr)
        self.pp.prime(vetted.locations)
        self._current_page = page_vaddr

    def _probe_point(self) -> None:
        """S4->S0 of the next iteration: measure the previous access."""
        if self._current_page is None:
            return
        vetted = self.frames.vet(self._current_page)
        missed = self.pp.probe(vetted.locations) - vetted.noisy
        lines = [
            (self._current_page + k * 64) >> 6
            for k, loc in enumerate(vetted.locations)
            if loc in missed
        ]
        self._observations.append(lines)
        self._current_page = None

    def _handle_fault(self, fault: PageFault) -> None:
        """Fault delivery: the OS/SGX transition cost lands first."""
        self.pollution.fault_entry()
        self.stepper.handle_fault(fault)

    # -- the attack --------------------------------------------------------
    def run(self) -> AttackOutcome:
        start = time.perf_counter()
        n = len(self.secret)

        with obs.span(
            "attack.sgx",
            secret_bytes=n,
            use_cat=self.config.use_cat,
            use_frame_selection=self.config.use_frame_selection,
        ):
            self.enclave.fault_handler = self._handle_fault
            self.stepper.arm()
            self.victim_histogram(
                self.enclave, self.block, n,
                ftab=self.ftab, quadrant=self.quadrant,
            )
            self._probe_point()  # the last iteration's access
            self.stepper.disarm()
            self.enclave.fault_handler = None

        # Map step order (i = n-1 .. 0) onto per-index observations.
        per_index: list[Observation] = [None] * n
        for step, lines in enumerate(self._observations):
            i = n - 1 - step
            if 0 <= i < n:
                per_index[i] = lines

        recovered = recover_bzip2_block(per_index, self.ftab.base, n)
        elapsed = time.perf_counter() - start

        self.cache.publish_stats()
        obs.counter_add("attack.sgx.faults", self.space.fault_count)
        obs.counter_add("attack.sgx.victim_accesses", self.enclave.access_count)

        remaps = sum(v.remaps for v in self.frames._vetted.values())
        return AttackOutcome(
            recovered=recovered,
            bit_accuracy=recovered.bit_accuracy(self.secret),
            byte_accuracy=recovered.byte_accuracy(self.secret),
            elapsed_seconds=elapsed,
            faults=self.space.fault_count,
            victim_accesses=self.enclave.access_count,
            frame_remaps=remaps,
            observations_empty=sum(1 for o in per_index if not o),
            observations_ambiguous=sum(
                1 for o in per_index if o and len(o) > 1
            ),
        )


def run_extraction_experiment(
    size: int,
    seed: int,
    noise: int = 2,
    use_cat: bool = True,
    use_frame_selection: bool = True,
    mitigated: bool = False,
    secret_seed: int | None = None,
) -> dict:
    """One campaign-runnable Section V attack: build a random secret,
    run the extraction, return picklable metrics.

    ``seed`` seeds the secret unless ``secret_seed`` pins it (ablation
    grids attack the *same* buffer across cells so the only variable is
    the technique under test).
    """
    from repro.workloads import random_bytes

    secret = random_bytes(size, seed=secret_seed if secret_seed is not None else seed)
    config = AttackConfig(
        use_cat=use_cat,
        use_frame_selection=use_frame_selection,
        background_noise_rate=noise,
    )
    if mitigated:
        from repro.mitigations import oblivious_histogram

        outcome = SgxBzip2Attack(
            secret, config, victim_histogram=oblivious_histogram
        ).run()
    else:
        outcome = SgxBzip2Attack(secret, config).run()
    return outcome.to_dict()
