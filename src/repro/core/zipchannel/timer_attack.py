"""The timer-interrupt stepping baseline attack (Section V-A's reject).

Same victim, same cache, same recovery as
:class:`repro.core.zipchannel.sgx_attack.SgxBzip2Attack`, but instead of
the mprotect controlled channel the attacker preempts the enclave with a
jittered timer (SGX-Step style) and measures at interrupt granularity:

* no architectural page leak — the whole 65-page ftab must be monitored
  on every window;
* no exact iteration boundary — windows drift against iterations, so
  observations are misassigned, merged or lost.

The ABL-STEP benchmark quantifies the accuracy gap that justifies the
paper's contribution 4d (user-space mprotect single-stepping).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.cache.cat import CatController
from repro.cache.model import Cache, CacheConfig
from repro.cache.noise import BackgroundNoise, OsPollution
from repro.compression.bzip2.blocksort import FTAB_LEN, FTAB_MISALIGN, histogram
from repro.memsys.paging import PAGE_SIZE, AddressSpace
from repro.recovery.bzip2_recover import (
    Observation,
    RecoveredBlock,
    recover_bzip2_block,
)
from repro.sgx.enclave import Enclave
from repro.sidechannel.prime_probe import AttackerMemory, PrimeProbe
from repro.sidechannel.timer_step import TimerStepper

ACCESSES_PER_ITERATION = 3  # quadrant write + block read + ftab update


@dataclass
class TimerAttackOutcome:
    recovered: RecoveredBlock
    bit_accuracy: float
    byte_accuracy: float
    elapsed_seconds: float
    interrupts: int
    observations_empty: int
    observations_ambiguous: int

    def summary(self) -> str:
        return (
            f"timer-stepping attack: bit accuracy {self.bit_accuracy * 100:.2f}%, "
            f"byte accuracy {self.byte_accuracy * 100:.2f}%, "
            f"{self.interrupts} interrupts, "
            f"{self.observations_empty} empty / "
            f"{self.observations_ambiguous} ambiguous observations"
        )


class TimerSgxBzip2Attack:
    """The baseline: Prime+Probe paced by a jittered timer interrupt."""

    def __init__(
        self,
        secret: bytes,
        period: int = ACCESSES_PER_ITERATION,
        jitter: int = 1,
        background_noise_rate: int = 2,
        cache: Optional[CacheConfig] = None,
    ) -> None:
        if not secret:
            raise ValueError("need a non-empty secret buffer")
        self.secret = secret

        self.cache = Cache(cache or CacheConfig())
        CatController(self.cache).partition_for_attack(attack_cos=0, other_cos=1)
        self.noise = BackgroundNoise(self.cache, rate=background_noise_rate, cos=1)
        self.pollution = OsPollution(self.cache, cos=0)

        self.space = AddressSpace()
        self.timer = TimerStepper(
            period=period, jitter=jitter, on_interrupt=self._on_interrupt
        )

        def env_hook(paddr: int, kind: str) -> None:
            self.noise.step()
            self.timer.on_victim_access(paddr, kind)

        self.enclave = Enclave(self.space, self.cache, cos=0, env_hook=env_hook)

        n = len(secret)
        self.block = self.enclave.array("block", n, elem_size=1)
        self.block.load(list(secret))
        self.quadrant = self.enclave.array("quadrant", n, elem_size=2)
        self.ftab = self.enclave.array(
            "ftab", FTAB_LEN, elem_size=4, misalign=FTAB_MISALIGN
        )

        self.pp = PrimeProbe(
            self.cache, AttackerMemory(self.cache), cos=0, ways=1
        )

        # All (location, line vaddr) pairs covering ftab — no page leak
        # to narrow this down.
        self._monitored: list[tuple[tuple[int, int], int]] = []
        first_line = self.ftab.base & ~63
        last_line = (self.ftab.base + FTAB_LEN * 4 - 1) & ~63
        for line_vaddr in range(first_line, last_line + 1, 64):
            page = line_vaddr & ~(PAGE_SIZE - 1)
            frame = self.space.frame_of(page)
            paddr = frame * PAGE_SIZE + (line_vaddr & (PAGE_SIZE - 1))
            self._monitored.append((self.cache.location(paddr), line_vaddr))
        self._locations = [loc for loc, _ in self._monitored]
        self._known_noisy: set[tuple[int, int]] = set()
        self._windows: list[list[int]] = []

    def _profile_pollution(self) -> None:
        """Dry interrupt to learn persistently noisy locations."""
        self.pp.prime(self._locations)
        self.pollution.fault_entry()
        self._known_noisy = self.pp.probe(self._locations)

    def _on_interrupt(self) -> None:
        self.pollution.fault_entry()  # interrupt delivery cost
        missed = self.pp.probe(self._locations) - self._known_noisy
        lines = [
            vaddr >> 6 for loc, vaddr in self._monitored if loc in missed
        ]
        self._windows.append(lines)
        self.pp.prime(self._locations)

    def run(self) -> TimerAttackOutcome:
        start = time.perf_counter()
        n = len(self.secret)

        with obs.span(
            "attack.timer",
            secret_bytes=n,
            period=self.timer.period,
            jitter=self.timer.jitter,
        ):
            self._profile_pollution()
            self.pp.prime(self._locations)
            histogram(
                self.enclave, self.block, n,
                ftab=self.ftab, quadrant=self.quadrant,
            )
            self._on_interrupt()  # drain the final window
        self.cache.publish_stats()
        obs.counter_add("attack.timer.interrupts", self.timer.interrupts)

        # Best-effort alignment: window w ends after ~ (w+1) * period
        # victim accesses ~= (w+1) * period / 3 iterations.
        per_index: list[Observation] = [None] * n
        for w, lines in enumerate(self._windows):
            if not lines:
                continue
            iterations_done = ((w + 1) * self.timer.period) // ACCESSES_PER_ITERATION
            i = n - 1 - min(iterations_done - 1, n - 1)
            existing = list(per_index[i] or [])
            per_index[i] = existing + lines

        recovered = recover_bzip2_block(per_index, self.ftab.base, n)
        elapsed = time.perf_counter() - start
        return TimerAttackOutcome(
            recovered=recovered,
            bit_accuracy=recovered.bit_accuracy(self.secret),
            byte_accuracy=recovered.byte_accuracy(self.secret),
            elapsed_seconds=elapsed,
            interrupts=self.timer.interrupts,
            observations_empty=sum(1 for o in per_index if not o),
            observations_ambiguous=sum(
                1 for o in per_index if o and len(o) > 1
            ),
        )
