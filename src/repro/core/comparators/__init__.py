"""Detection-approach comparators (the paper's Section VII argument).

TaintChannel's two claimed advantages over prior tools are scalability
(vs symbolic execution) and exactness (vs trace-correlation tools).
This package makes both arguments *measurable*:

* :mod:`repro.core.comparators.trace_based` — a Microwalk/DATA-style
  detector that runs the target with many inputs and flags program sites
  whose address traces vary.  It finds the same leaky sites but
  "inherently cannot determine the exact relation between the input and
  the pointer" — its output has no computation chain.
* :mod:`repro.core.comparators.symbolic_cost` — an estimator of the
  state count a KLEE-style symbolic executor would need, which "forks
  the memory state for each possible value in each possible index": for
  Bzip2 "that would mean 65,536 forks of the memory for each pair of
  input bytes, which is infeasible".
"""

from repro.core.comparators.trace_based import TraceCorrelator, SiteReport
from repro.core.comparators.symbolic_cost import (
    SymbolicCostEstimate,
    estimate_symbolic_cost,
)

__all__ = [
    "TraceCorrelator",
    "SiteReport",
    "SymbolicCostEstimate",
    "estimate_symbolic_cost",
]
