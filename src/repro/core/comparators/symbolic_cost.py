"""Symbolic-execution cost model for secret-indexed memory writes.

The paper's scalability argument (Sections III and VII-A1): a KLEE-style
symbolic executor duplicates the memory state for every feasible value
of a symbolic array index, so *writes* through secret-dependent indices
multiply the state count by the index's domain size — "in the case of
Bzip2, that would mean 65,536 forks of the memory for each pair of input
bytes, which is infeasible".

This estimator walks a TaintChannel trace and computes exactly that
product (in log2, since the true number overflows anything): each
tainted-address *write* contributes ``#tainted index bits`` doublings.
It is a model, not an engine — the point being measured is the growth
rate that makes the engine pointless to build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exec.context import TracingContext
from repro.exec.events import MemoryAccess


@dataclass
class SymbolicCostEstimate:
    """Estimated state-space growth for one traced execution."""

    symbolic_writes: int
    log2_states: float  # sum over writes of tainted index-bit counts
    log2_states_per_input_byte: float

    def describe(self) -> str:
        if self.log2_states > 512:
            magnitude = f"2^{self.log2_states:.0f}"
        else:
            magnitude = f"{math.pow(2, min(self.log2_states, 512)):.3g}"
        return (
            f"{self.symbolic_writes} symbolic-index writes -> "
            f"~{magnitude} forked states "
            f"(2^{self.log2_states_per_input_byte:.1f} per input byte)"
        )


def estimate_symbolic_cost(ctx: TracingContext) -> SymbolicCostEstimate:
    """Estimate the fork count a symbolic executor would pay for the
    execution recorded in ``ctx``.

    Only *writes* (and read-modify-writes) through tainted addresses
    fork the memory state; tainted reads merely produce symbolic values.
    The per-write fork factor is the domain size of the symbolic index,
    i.e. ``2 ** (#tainted address bits above the element offset)``.
    """
    input_len = sum(
        1
        for tag in range(len(ctx.tags))
        if ctx.tags.info(tag).source == "input"
    )
    symbolic_writes = 0
    log2_states = 0.0
    for event in ctx.events:
        if not isinstance(event, MemoryAccess):
            continue
        if event.kind not in ("write", "update") or not event.addr_taint:
            continue
        elem_bits = max(0, event.elem_size.bit_length() - 1)
        index_bits = sum(
            1 for bit in event.addr_taint.tainted_bits() if bit >= elem_bits
        )
        if index_bits == 0:
            continue
        symbolic_writes += 1
        log2_states += index_bits
    per_byte = log2_states / input_len if input_len else 0.0
    return SymbolicCostEstimate(
        symbolic_writes=symbolic_writes,
        log2_states=log2_states,
        log2_states_per_input_byte=per_byte,
    )
