"""A trace-correlation ("Microwalk-style") leakage detector.

Runs the target with several random inputs, collects the *full*
cache-line trace per program site, and flags sites whose traces vary
with the input — the methodology of the paper's references [11-16].

What it can do: find the leaky sites, with no taint machinery at all.
What it cannot do (the paper's point, Section VII-A2): say *how* the
input maps to the addresses.  :class:`SiteReport` therefore carries a
variability score and nothing else — no provenance, no bit map — and
the comparison benchmark contrasts that with TaintChannel's output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.exec.context import TracingContext


@dataclass
class SiteReport:
    """One program site's verdict from the correlation analysis."""

    site: str
    array: str
    distinct_traces: int
    runs: int
    leaky: bool

    @property
    def variability(self) -> float:
        return self.distinct_traces / self.runs

    def describe(self) -> str:
        verdict = "LEAKY" if self.leaky else "constant"
        return (
            f"site {self.site!r} ({self.array}): {self.distinct_traces}/"
            f"{self.runs} distinct traces -> {verdict}"
        )


class TraceCorrelator:
    """Differential address-trace analysis over random inputs.

    Args:
        runs: how many random inputs to execute.
        input_len: length of each generated input.
        seed: RNG seed for input generation.
        max_events: per-run trace budget.
    """

    def __init__(
        self,
        runs: int = 8,
        input_len: int = 256,
        seed: int = 0,
        max_events: int = 4_000_000,
    ) -> None:
        self.runs = runs
        self.input_len = input_len
        self.seed = seed
        self.max_events = max_events

    def analyze(
        self, make_target: Callable[[bytes], Callable[[TracingContext], object]]
    ) -> list[SiteReport]:
        """Run ``make_target(input)(ctx)`` for each random input and
        correlate per-site line traces.

        Returns one report per site, most variable first.
        """
        rng = random.Random(self.seed)
        # site -> set of observed trace fingerprints; site -> array name
        fingerprints: dict[str, set] = {}
        arrays: dict[str, str] = {}
        for _ in range(self.runs):
            data = bytes(rng.randrange(256) for _ in range(self.input_len))
            ctx = TracingContext(
                max_events=self.max_events, record_untainted_accesses=True
            )
            make_target(data)(ctx)
            per_site: dict[str, list[int]] = {}
            for access in ctx.memory_accesses():
                key = access.site or f"<anon {access.array}>"
                arrays.setdefault(key, access.array)
                per_site.setdefault(key, []).append(access.cache_line)
            for site, lines in per_site.items():
                fingerprints.setdefault(site, set()).add(hash(tuple(lines)))
            # Sites absent in this run count as a distinct (empty) trace.
            for site in fingerprints:
                if site not in per_site:
                    fingerprints[site].add(hash(()))

        reports = [
            SiteReport(
                site=site,
                array=arrays[site],
                distinct_traces=len(traces),
                runs=self.runs,
                leaky=len(traces) > 1,
            )
            for site, traces in fingerprints.items()
        ]
        reports.sort(key=lambda r: (-r.distinct_traces, r.site))
        return reports

    @staticmethod
    def leaky_sites(reports: list[SiteReport]) -> list[str]:
        return [r.site for r in reports if r.leaky]
