"""Human-readable gadget reports in the style of the paper's Figs. 2-4.

For the taint-dependent dereference TaintChannel "additionally outputs
ASCII art that illustrates which operand bits are tainted with what tag"
(Section III-B).  :func:`render_access` reproduces that bit table; rows
are input-byte indices, columns are address bits (most significant on the
left), and an ``x`` marks taint.
"""

from __future__ import annotations

from repro.core.taintchannel.gadgets import Gadget
from repro.core.taintchannel.provenance import backward_slice
from repro.exec.events import MemoryAccess
from repro.taint.tags import TagRegistry

_CELL = 3  # "|15" / "| x" column width


def _bit_table(access: MemoryAccess, registry: TagRegistry) -> list[str]:
    rows = access.addr_taint.rows()
    if not rows:
        return ["    (address untainted)"]
    hi_bit = max(max(bits) for bits in rows.values())
    hi_bit = max(hi_bit, 15)
    labels = {tag: registry.label(tag) for tag in rows}
    width = max(len(s) for s in labels.values())

    lines = []
    for tag in sorted(rows, key=lambda t: registry.info(t).index):
        cells = []
        for bit in range(hi_bit, -1, -1):
            cells.append(" x" if bit in rows[tag] else "  ")
        lines.append(f"  {labels[tag]:>{width}}: |" + "|".join(cells) + "|")
    ruler = "|".join(f"{bit:>2}" for bit in range(hi_bit, -1, -1))
    lines.append("  " + " " * width + "  |" + ruler + "|")
    return lines


def render_access(
    access: MemoryAccess,
    registry: TagRegistry,
    with_slice: bool = True,
    max_slice: int = 30,
) -> str:
    """Fig. 2-style report for one taint-dependent memory access."""
    lines = [
        "Taint-dependent memory access",
        f"  0x{access.address:016x}  {access.site or access.array}",
        f"  {access.kind} {access.array}[{access.index}] "
        f"[{access.elem_size}byte]   (tainted)",
    ]
    lines += _bit_table(access, registry)
    if with_slice:
        chain = backward_slice(access.addr_origin)
        if chain:
            lines.append("  computation (input -> pointer):")
            shown = chain[-max_slice:]
            if len(chain) > len(shown):
                lines.append(f"    ... {len(chain) - len(shown)} earlier ops ...")
            for record in shown:
                lines.append("    " + record.describe())
    return "\n".join(lines)


def render_gadget(
    gadget: Gadget,
    registry: TagRegistry,
    sample_index: int = 0,
    with_slice: bool = True,
) -> str:
    """Report for a gadget: summary line plus one sample access."""
    header = gadget.describe()
    if not gadget.accesses:
        return header
    sample = gadget.accesses[max(0, min(sample_index, len(gadget.accesses) - 1))]
    return header + "\n" + render_access(sample, registry, with_slice)
