"""TaintChannel: automatic cache side-channel gadget detection.

The tool runs a target program (a kernel written against
:class:`repro.exec.ExecutionContext`) under taint tracing, finds memory
accesses whose *address* depends on the input, groups them into leakage
gadgets, and renders for each gadget the exact input-to-pointer
computation plus the bit-level ASCII art of the paper's Figs. 2-4.

It also performs the paper's control-flow discovery (Section III-B /
Section VI): running the target with different inputs and diffing the
reduced traces to find input-dependent control flow such as Bzip2's
mainSort/fallbackSort divergence and memcpy's AVX-tail split.
"""

from repro.core.taintchannel.gadgets import Gadget, AnalysisResult
from repro.core.taintchannel.tool import TaintChannel, run_gadget_scan, target_for
from repro.core.taintchannel.controlflow import (
    ControlFlowDivergence,
    diff_function_traces,
    avx_memcpy,
)
from repro.core.taintchannel.report import render_access, render_gadget

__all__ = [
    "TaintChannel",
    "run_gadget_scan",
    "target_for",
    "Gadget",
    "AnalysisResult",
    "ControlFlowDivergence",
    "diff_function_traces",
    "avx_memcpy",
    "render_access",
    "render_gadget",
]
