"""The TaintChannel tool entry point.

Usage mirrors the paper's interface ("the user has to provide a command
line to invoke the application"): here the target is any callable taking
an :class:`~repro.exec.TracingContext`, typically a closure over the
input file::

    tc = TaintChannel()
    result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
    print(result.summary())
    print(tc.render(result, result.gadgets[0]))
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.taintchannel.controlflow import (
    ControlFlowDivergence,
    diff_function_traces,
)
from repro.core.taintchannel.gadgets import AnalysisResult, group_gadgets
from repro.core.taintchannel.report import render_gadget
from repro.exec.context import TracingContext

Target = Callable[[TracingContext], object]


class TaintChannel:
    """Automatic cache side-channel gadget detector (Section III).

    Args:
        carry_aware_add: use the conservative carry-propagating rule for
            additions instead of the positional one (see
            :mod:`repro.taint.bittaint`).
        max_events: per-run trace budget; protects against unbounded
            loops in the target.
    """

    def __init__(
        self, carry_aware_add: bool = False, max_events: int = 2_000_000
    ) -> None:
        self.carry_aware_add = carry_aware_add
        self.max_events = max_events

    def _make_context(self) -> TracingContext:
        return TracingContext(
            carry_aware_add=self.carry_aware_add, max_events=self.max_events
        )

    def trace(self, target: Target) -> TracingContext:
        """Run the target under tracing and return the raw context."""
        ctx = self._make_context()
        target(ctx)
        return ctx

    def analyze(
        self,
        name: str,
        target: Target,
        ctx: Optional[TracingContext] = None,
    ) -> AnalysisResult:
        """Run the target (or reuse a finished trace) and detect gadgets."""
        if ctx is None:
            ctx = self.trace(target)
        input_len = sum(
            1
            for tag in range(len(ctx.tags))
            if ctx.tags.info(tag).source == "input"
        )
        return AnalysisResult(
            target=name,
            input_len=input_len,
            gadgets=group_gadgets(ctx.tainted_accesses()),
            tags=ctx.tags,
            n_events=len(ctx.events),
            n_compares=len(ctx.compares()),
            n_plain_accesses=ctx.plain_accesses,
        )

    def render(self, result: AnalysisResult, gadget, **kwargs) -> str:
        """Fig. 2-style report for one gadget of a result."""
        return render_gadget(gadget, result.tags, **kwargs)

    def diff(
        self, target_a: Target, target_b: Target, functions_only: bool = True
    ) -> Optional[ControlFlowDivergence]:
        """Control-flow discovery: run two inputs, diff reduced traces.

        Returns the first divergence, or None when the control flow is
        input-independent at the chosen granularity.
        """
        return diff_function_traces(
            self.trace(target_a), self.trace(target_b), functions_only
        )
