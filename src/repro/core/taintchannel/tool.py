"""The TaintChannel tool entry point.

Usage mirrors the paper's interface ("the user has to provide a command
line to invoke the application"): here the target is any callable taking
an :class:`~repro.exec.TracingContext`, typically a closure over the
input file::

    tc = TaintChannel()
    result = tc.analyze("zlib", lambda ctx: deflate_compress(data, ctx))
    report = tc.render(result, result.gadgets[0])  # a string; print it
                                                   # only if *you* are a CLI

Programmatic callers get no stdout noise from this module: everything
returns strings/objects, and the quick demo prints only when the module
itself is executed (``python -m repro.core.taintchannel.tool``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs
from repro.core.taintchannel.controlflow import (
    ControlFlowDivergence,
    diff_function_traces,
)
from repro.core.taintchannel.gadgets import AnalysisResult, group_gadgets
from repro.core.taintchannel.report import render_gadget
from repro.exec.context import TracingContext

Target = Callable[[TracingContext], object]

KNOWN_TARGETS = ("zlib", "lzw", "bzip2", "aes")


def target_for(name: str, data: bytes) -> Target:
    """Build the standard analysis target for a named algorithm.

    This is the CLI's and the campaign engine's shared notion of "point
    the tool at zlib/lzw/bzip2/aes with this input".  The ``aes`` target
    derives its key and plaintext block from ``data`` and therefore
    refuses an empty input instead of silently analysing an all-zero
    key/block pair (which would make the key-recovery validation
    meaningless).
    """
    from repro.compression import bzip2_compress, deflate_compress, lzw_compress

    if not data and name in KNOWN_TARGETS:
        raise ValueError(
            f"target {name!r} needs a non-empty input "
            f"(got 0 bytes; pass --random N with N > 0, --file, "
            f"--lowercase or --text)"
        )
    if name == "zlib":
        return lambda ctx: deflate_compress(data, ctx)
    if name == "lzw":
        return lambda ctx: lzw_compress(data, ctx)
    if name == "bzip2":
        return lambda ctx: bzip2_compress(data, ctx, block_size=len(data))
    if name == "aes":
        from repro.crypto.aes import aes128_encrypt_block

        key = (data * 16)[:16]
        block = (data[16:] + b"\x00" * 16)[:16]
        return lambda ctx: aes128_encrypt_block(key, block, ctx)
    raise ValueError(f"unknown target {name!r}")


def run_gadget_scan(
    target: str,
    data: bytes,
    carry_aware_add: bool = False,
    max_events: int = 2_000_000,
) -> dict:
    """Analyse a named target and return a picklable metrics dict.

    The campaign-runnable face of :class:`TaintChannel`: everything in
    the return value is JSON-serialisable, so results survive a process
    boundary and a JSONL store.
    """
    tc = TaintChannel(carry_aware_add=carry_aware_add, max_events=max_events)
    result = tc.analyze(target, target_for(target, data))
    return {
        "target": result.target,
        "input_len": result.input_len,
        "n_gadgets": len(result.gadgets),
        "n_events": result.n_events,
        "n_compares": result.n_compares,
        "input_coverage": result.input_coverage(),
        "gadgets": [
            {
                "site": g.site,
                "array": g.array,
                "accesses": g.count,
                "leaked_input_bytes": sum(
                    1
                    for t in g.leaked_tags()
                    if result.tags.info(t).source == "input"
                ),
            }
            for g in sorted(result.gadgets, key=lambda g: -g.count)
        ],
    }


class TaintChannel:
    """Automatic cache side-channel gadget detector (Section III).

    Args:
        carry_aware_add: use the conservative carry-propagating rule for
            additions instead of the positional one (see
            :mod:`repro.taint.bittaint`).
        max_events: per-run trace budget; protects against unbounded
            loops in the target.
    """

    def __init__(
        self, carry_aware_add: bool = False, max_events: int = 2_000_000
    ) -> None:
        self.carry_aware_add = carry_aware_add
        self.max_events = max_events

    def _make_context(self) -> TracingContext:
        return TracingContext(
            carry_aware_add=self.carry_aware_add, max_events=self.max_events
        )

    def trace(self, target: Target) -> TracingContext:
        """Run the target under tracing and return the raw context."""
        ctx = self._make_context()
        target(ctx)
        return ctx

    def analyze(
        self,
        name: str,
        target: Target,
        ctx: Optional[TracingContext] = None,
    ) -> AnalysisResult:
        """Run the target (or reuse a finished trace) and detect gadgets."""
        with obs.span("taintchannel.analyze", target=name):
            if ctx is None:
                ctx = self.trace(target)
            input_len = sum(
                1
                for tag in range(len(ctx.tags))
                if ctx.tags.info(tag).source == "input"
            )
            result = AnalysisResult(
                target=name,
                input_len=input_len,
                gadgets=group_gadgets(ctx.tainted_accesses()),
                tags=ctx.tags,
                n_events=len(ctx.events),
                n_compares=len(ctx.compares()),
                n_plain_accesses=ctx.plain_accesses,
                geometry={
                    name: (arr.length, arr.elem_size, arr.base)
                    for name, arr in ctx.arrays.items()
                },
            )
        ctx.publish_stats()
        obs.counter_add("taintchannel.gadgets", len(result.gadgets))
        return result

    def render(self, result: AnalysisResult, gadget, **kwargs) -> str:
        """Fig. 2-style report for one gadget of a result."""
        return render_gadget(gadget, result.tags, **kwargs)

    def diff(
        self, target_a: Target, target_b: Target, functions_only: bool = True
    ) -> Optional[ControlFlowDivergence]:
        """Control-flow discovery: run two inputs, diff reduced traces.

        Returns the first divergence, or None when the control flow is
        input-independent at the chosen granularity.
        """
        return diff_function_traces(
            self.trace(target_a), self.trace(target_b), functions_only
        )


def demo(data: bytes = b"the quick brown fox jumps over the lazy dog" * 4,
         target: str = "zlib") -> str:
    """Run TaintChannel on a small input and *return* the rendered
    report — the module's quick demo, side-effect free so programmatic
    callers (and imports) get no stdout noise.  Printing is the
    ``__main__`` guard's job."""
    tc = TaintChannel()
    result = tc.analyze(target, target_for(target, data))
    lines = [result.summary()]
    if result.gadgets:
        lines.append("")
        lines.append(tc.render(result, result.gadgets[0]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(demo())  # noqa: T201 — CLI entry point
