"""Control-flow vulnerability discovery.

"TaintChannel effectively reduces a complex application to a small trace
of input-dependent instructions.  These traces simplify the comparison of
the application execution across different inputs.  This is how we
discover control flow vulnerabilities." (Section III-B.)

Here the reduced trace is the sequence of function enter/exit events plus
the outcomes of tainted comparisons; :func:`diff_function_traces` finds
the first divergence between two inputs, which is how the
mainSort/fallbackSort split of Section VI — and the memcpy AVX-tail
split modelled by :func:`avx_memcpy` — are discovered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exec.context import TracingContext

AVX_REGISTER_BYTES = 32


@dataclass
class ControlFlowDivergence:
    """The first point where two reduced traces disagree."""

    position: int
    left: Optional[str]
    right: Optional[str]

    def describe(self) -> str:
        return (
            f"traces diverge at reduced-trace position {self.position}: "
            f"{self.left!r} vs {self.right!r}"
        )


def reduced_trace(ctx: TracingContext) -> list[str]:
    """Function markers and tainted-compare outcomes, in order."""
    out: list[str] = []
    for ev in ctx.events:
        kind = type(ev).__name__
        if kind == "FunctionEvent":
            out.append(f"{ev.kind}:{ev.name}")
        elif kind == "CompareRecord":
            out.append(f"cmp.{ev.op}={int(ev.outcome)}")
    return out


def diff_function_traces(
    ctx_a: TracingContext, ctx_b: TracingContext, functions_only: bool = True
) -> Optional[ControlFlowDivergence]:
    """First divergence between two traced runs, or None if equal.

    Args:
        functions_only: compare only function enter/exit markers (the
            granularity Flush+Reload on shared-library code observes);
            set False to include tainted-compare outcomes.
    """
    ta, tb = reduced_trace(ctx_a), reduced_trace(ctx_b)
    if functions_only:
        ta = [e for e in ta if not e.startswith("cmp.")]
        tb = [e for e in tb if not e.startswith("cmp.")]
    for i, (a, b) in enumerate(zip(ta, tb)):
        if a != b:
            return ControlFlowDivergence(i, a, b)
    if len(ta) != len(tb):
        i = min(len(ta), len(tb))
        return ControlFlowDivergence(
            i,
            ta[i] if i < len(ta) else None,
            tb[i] if i < len(tb) else None,
        )
    return None


def avx_memcpy(ctx, dst, src, size: int) -> None:
    """The paper's memcpy control-flow gadget (Section III-B).

    glibc memcpy copies with AVX registers when it can and falls back to
    a byte tail otherwise; *which* path runs — visible to Flush+Reload on
    the code lines — reveals ``size mod 32``.  The model bracketes the
    two paths in ``ctx.func`` so trace diffing exposes the divergence.
    """
    with ctx.func("memcpy"):
        chunks, tail = divmod(size, AVX_REGISTER_BYTES)
        with ctx.func("memcpy/avx_loop"):
            for c in range(chunks):
                base = c * AVX_REGISTER_BYTES
                for k in range(AVX_REGISTER_BYTES):
                    dst.set(base + k, src.get(base + k))
                ctx.tick(1)
        if tail:
            with ctx.func("memcpy/byte_tail"):
                base = chunks * AVX_REGISTER_BYTES
                for k in range(tail):
                    dst.set(base + k, src.get(base + k))
                    ctx.tick(1)
