"""Gadget grouping and leakage quantification.

A *gadget* is a program location (site) whose memory-access addresses are
tainted by input.  The cache channel hides the low
``CACHE_LINE_BITS`` = 6 address bits (Section IV-A), so a gadget only
*leaks* the taint sitting on higher bits; :meth:`Gadget.leaked_tags`
quantifies which input bytes are exposed, and
:meth:`AnalysisResult.input_coverage` gives the headline number of the
survey (Section IV-E): the fraction of the input that some gadget leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec.events import MemoryAccess
from repro.taint.tags import TagRegistry

CACHE_LINE_BITS = 6  # log2(64-byte lines): invisible to the attacker


@dataclass
class Gadget:
    """All tainted accesses sharing one program site."""

    site: str
    array: str
    kinds: set[str] = field(default_factory=set)
    accesses: list[MemoryAccess] = field(default_factory=list)

    def add(self, access: MemoryAccess) -> None:
        self.accesses.append(access)
        self.kinds.add(access.kind)

    @property
    def count(self) -> int:
        return len(self.accesses)

    def tainted_tags(self) -> frozenset[int]:
        """Every input byte whose taint reaches an address here."""
        tags: set[int] = set()
        for acc in self.accesses:
            tags |= acc.addr_taint.tags()
        return frozenset(tags)

    def leaked_tags(self) -> frozenset[int]:
        """Input bytes with taint on address bits the channel exposes
        (bit >= 6, i.e. above the line offset)."""
        tags: set[int] = set()
        for acc in self.accesses:
            for bit, bit_tags in acc.addr_taint:
                if bit >= CACHE_LINE_BITS:
                    tags |= bit_tags
        return frozenset(tags)

    def is_data_flow(self) -> bool:
        """True when addresses are *computed from* input data.

        A data-flow gadget's address provenance reaches back to at least
        one :class:`~repro.taint.value.InputRecord` through arithmetic
        (``OpRecord`` operands).  A control-flow gadget carries taint on
        its address bits but the backward slice never reaches an input
        root — e.g. the index was picked by a tainted branch, so the
        chain dead-ends in a :class:`~repro.taint.value.CompareRecord`.
        Traces captured without provenance (``TraceTier.ADDRESS_ONLY``
        leaves ``addr_origin`` empty) cannot distinguish the two; they
        keep the historical data-flow default.
        """
        from repro.core.taintchannel.provenance import input_roots

        saw_provenance = False
        for acc in self.accesses:
            if acc.addr_origin is None:
                continue
            saw_provenance = True
            if input_roots(acc.addr_origin):
                return True
        return not saw_provenance

    def describe(self) -> str:
        return (
            f"gadget {self.site!r}: {self.count} accesses to {self.array!r} "
            f"({'/'.join(sorted(self.kinds))}), "
            f"{len(self.leaked_tags())} input bytes leak above the line offset"
        )


@dataclass
class AnalysisResult:
    """One TaintChannel run over one target/input pair."""

    target: str
    input_len: int
    gadgets: list[Gadget]
    tags: TagRegistry
    n_events: int
    n_compares: int
    n_plain_accesses: int
    #: array name -> (length, elem_size, base address); lets downstream
    #: consumers (the mitigation planner) reason about table geometry
    #: without re-running the trace.
    geometry: dict[str, tuple[int, int, int]] = field(default_factory=dict)

    def gadget(self, site: str) -> Gadget:
        """Look up a gadget by its site label; KeyError if absent."""
        for g in self.gadgets:
            if g.site == site:
                return g
        raise KeyError(f"no gadget at site {site!r}")

    def leaked_input_bytes(self) -> frozenset[int]:
        tags: set[int] = set()
        for g in self.gadgets:
            tags |= g.leaked_tags()
        return frozenset(tags)

    def input_coverage(self) -> float:
        """Fraction of input bytes leaked by at least one gadget — the
        survey's headline metric ("memory accesses that depend on the
        entire compressed file")."""
        if self.input_len == 0:
            return 0.0
        indices = {
            self.tags.info(t).index
            for t in self.leaked_input_bytes()
            if self.tags.info(t).source == "input"
        }
        return len(indices) / self.input_len

    def summary(self) -> str:
        lines = [
            f"TaintChannel analysis of {self.target}",
            f"  input bytes: {self.input_len}",
            f"  trace events: {self.n_events} "
            f"(+{self.n_plain_accesses} untainted accesses)",
            f"  tainted compares (control-flow uses): {self.n_compares}",
            f"  data-flow gadgets: {len(self.gadgets)}",
        ]
        for g in sorted(self.gadgets, key=lambda g: -g.count):
            lines.append(f"    - {g.describe()}")
        lines.append(
            f"  input coverage via cache channel: "
            f"{self.input_coverage() * 100:.1f}%"
        )
        return "\n".join(lines)


def group_gadgets(accesses: list[MemoryAccess]) -> list[Gadget]:
    """Group taint-addressed accesses into per-site gadgets."""
    by_site: dict[tuple[str, str], Gadget] = {}
    for acc in accesses:
        if not acc.addr_taint:
            continue
        key = (acc.site or f"<anon {acc.array}>", acc.array)
        gadget = by_site.get(key)
        if gadget is None:
            gadget = Gadget(site=key[0], array=acc.array)
            by_site[key] = gadget
        gadget.add(acc)
    return list(by_site.values())
