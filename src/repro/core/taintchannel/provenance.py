"""Provenance walking: from a dereferenced pointer back to input bytes.

"TaintChannel outputs all instructions accessing the secret.  Therefore,
users can directly see how the accessed address was computed based on the
input" (Section III-A).  The data-flow DAG is materialised by
:class:`~repro.taint.value.OpRecord` links; this module linearises the
slice that feeds one memory access.
"""

from __future__ import annotations

from repro.taint.value import InputRecord, OpRecord, Origin


def backward_slice(origin: Origin | None, max_nodes: int = 10_000) -> list[Origin]:
    """All records reachable backwards from ``origin``, in execution
    (sequence-number) order — the exact computation chain.

    Args:
        origin: the provenance node of the dereferenced address.
        max_nodes: safety cap for pathological chains.

    Returns:
        records sorted by ``seq`` (inputs first), ending at ``origin``.
    """
    if origin is None:
        return []
    seen: dict[int, Origin] = {}
    stack = [origin]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        if len(seen) > max_nodes:
            break
        if isinstance(node, OpRecord):
            for operand in node.operands:
                if operand.origin is not None:
                    stack.append(operand.origin)
    return sorted(seen.values(), key=lambda r: r.seq)


def input_roots(origin: Origin | None) -> list[InputRecord]:
    """The input-byte reads at the roots of the slice."""
    return [r for r in backward_slice(origin) if isinstance(r, InputRecord)]


def opcode_chain(origin: Origin | None) -> list[str]:
    """Just the opcodes along the slice, e.g. ``['shl', 'xor', 'and']`` —
    handy for asserting the shape of a leaking computation."""
    return [r.op for r in backward_slice(origin) if isinstance(r, OpRecord)]
