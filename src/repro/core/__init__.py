"""The paper's primary contributions.

* :mod:`repro.core.taintchannel` — the TaintChannel vulnerability
  detection tool (Section III).
* :mod:`repro.core.zipchannel` — the two end-to-end ZipChannel attacks
  on Bzip2 (Sections V and VI).
"""
