"""Live views over a growing observability sink.

Two pieces, shared by ``repro obs watch`` and ``repro obs tail
--follow``:

* :class:`SinkFollower` — incremental JSONL reader.  Remembers its file
  offset between polls, parses only *complete* lines (a worker killed
  mid-``write`` leaves a truncated tail; the partial line is buffered
  until its newline arrives or skipped if garbage), and tolerates the
  sink not existing yet (the campaign may not have opened it).
* :class:`WatchState` + :func:`render_watch` — an incrementally updated
  aggregate of the event stream and a pure text renderer for it: job
  progress (done/failed/retried against the announced total), rolling
  per-metric sparklines (bit accuracy, mutual information, job
  seconds), merged counters/histograms with tail quantiles, and the
  most recent deduplicated warnings.

The renderer is deliberately a pure function of the state so tests can
drive a poll loop against a live campaign subprocess with a deadline
instead of sleeps, and assert on the rendered text.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from typing import Optional

from repro.obs.core import Histogram

SPARK_CHARS = " ▁▂▃▄▅▆▇█"
ROLLING_WINDOW = 64


def sparkline(values: list[float], width: int = 24) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    if not values:
        return ""
    tail = [float(v) for v in values[-width:]]
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return SPARK_CHARS[4] * len(tail)
    span = hi - lo
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[1 + int((v - lo) / span * (top - 1))] for v in tail
    )


class SinkFollower:
    """Incrementally read complete JSONL events appended to a sink.

    Each :meth:`poll` reads from the remembered offset to EOF, splits
    on newlines, and keeps any trailing partial line in a buffer for
    the next poll — so a line that is mid-``write`` when we read is
    delivered once complete, and a line truncated forever (worker
    killed) is simply never delivered.  Complete-but-corrupt lines are
    counted in :attr:`corrupt` and skipped.  If the file shrinks (sink
    recreated), the follower restarts from the beginning; if it
    *rotates* (size-capped sinks rename ``sink`` → ``sink.1`` and start
    fresh — detected by the inode changing), the follower first drains
    the unread tail of the rotated generation, then restarts at the new
    file's beginning, so no event is lost or delivered twice.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.offset = 0
        self.corrupt = 0
        self._buffer = ""
        self._ino: Optional[int] = None

    def _decode(self, data: str) -> list[dict]:
        lines = data.split("\n")
        self._buffer = lines.pop()  # "" when data ended in a newline
        events: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                self.corrupt += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                self.corrupt += 1
        return events

    def _read_from(self, path: str) -> list[dict]:
        """Read ``path`` from the remembered offset to EOF and decode."""
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                fh.seek(self.offset)
                chunk = fh.read()
                self.offset = fh.tell()
        except OSError:
            return []
        return self._decode(self._buffer + chunk)

    def poll(self) -> list[dict]:
        """Newly appended complete events since the last poll."""
        try:
            st = os.stat(self.path)
        except OSError:
            return []
        events: list[dict] = []
        if self._ino is None and self.offset == 0:
            # First contact with the sink.  A generation that rotated
            # out *before* we attached still holds the campaign's
            # earlier events — deliver it first, oldest-first.
            rotated = self.path + ".1"
            if not self.path.endswith(".1") and os.path.exists(rotated):
                events.extend(self._read_from(rotated))
                self.offset = 0
                self._buffer = ""
        if self._ino is not None and st.st_ino != self._ino:
            # The sink rotated out from under us.  The file we were
            # reading should now be at <path>.1 — drain its unread
            # tail (rotation happens on whole-line boundaries) before
            # restarting on the fresh file.
            rotated = self.path + ".1"
            try:
                rotated_st = os.stat(rotated)
            except OSError:
                rotated_st = None
            if (
                rotated_st is not None
                and rotated_st.st_ino == self._ino
                and rotated_st.st_size > self.offset
            ):
                events.extend(self._read_from(rotated))
            self.offset = 0
            self._buffer = ""
        self._ino = st.st_ino
        if st.st_size < self.offset:  # truncated/recreated: start over
            self.offset = 0
            self._buffer = ""
        if st.st_size > self.offset:
            events.extend(self._read_from(self.path))
        return events


class MultiSinkFollower:
    """Follow many sinks (or a glob) as one merged event stream.

    Re-expands the glob on every poll, so shard sinks that appear
    mid-campaign (a worker registering late) are picked up live.  Each
    delivered event is tagged with its source path in ``"_src"``, which
    :class:`WatchState` uses to key counter snapshots per
    ``(sink, pid)`` — the shard-aware version of last-per-pid-then-sum.
    """

    def __init__(self, patterns) -> None:
        if isinstance(patterns, (str, bytes)):
            patterns = [patterns]
        self.patterns = [str(p) for p in patterns]
        self._followers: dict[str, SinkFollower] = {}

    @property
    def corrupt(self) -> int:
        return sum(f.corrupt for f in self._followers.values())

    def poll(self) -> list[dict]:
        """Newly appended complete events across every matching sink."""
        from repro.obs.report import expand_sinks, logical_sink

        expanded = set(expand_sinks(self.patterns))
        for path in expanded:
            # A rotated generation (<sink>.1) whose live sink is also
            # followed is the base follower's job — following both
            # would deliver its events twice.
            if path.endswith(".1") and logical_sink(path) in expanded:
                continue
            if path not in self._followers:
                self._followers[path] = SinkFollower(path)
        events: list[dict] = []
        for path in sorted(self._followers):
            src = logical_sink(path)
            for event in self._followers[path].poll():
                event["_src"] = src
                events.append(event)
        events.sort(key=lambda e: float(e.get("ts", 0.0)))
        return events


def make_follower(sink):
    """The right follower for one path, many paths, or a glob."""
    patterns = [sink] if isinstance(sink, (str, bytes)) else list(sink)
    if len(patterns) == 1 and not any(
        ch in str(patterns[0]) for ch in "*?["
    ):
        return SinkFollower(str(patterns[0]))
    return MultiSinkFollower(patterns)


class WatchState:
    """Incrementally aggregated view of a sink's event stream."""

    def __init__(self, rolling_window: int = ROLLING_WINDOW) -> None:
        self.n_events = 0
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.pids: set = set()
        # Campaign progress: counters are cumulative per pid, so keep
        # the last snapshot per pid and merge on demand.
        self._counters_per_pid: dict = {}
        self._histograms_per_pid: dict = {}
        self.total_jobs: Optional[int] = None
        self.campaign: Optional[str] = None
        # Rolling numeric series from "metrics" events.
        self.series: dict[str, deque] = {}
        self._rolling_window = rolling_window
        self.span_counts: dict[str, int] = {}
        self.warnings: dict[str, dict] = {}

    # -- ingestion -----------------------------------------------------
    def ingest(self, events: list[dict]) -> None:
        """Fold newly polled events in."""
        for event in events:
            self.n_events += 1
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                if self.first_ts is None:
                    self.first_ts = float(ts)
                self.last_ts = float(ts)
            pid = event.get("pid")
            if pid is not None:
                self.pids.add(pid)
            kind = event.get("kind")
            if kind == "counters":
                # Keyed (sink, pid): None-sink for single-sink watches
                # (the historical behavior), the shard path for merged
                # watches — same pid in two shard sinks must sum.
                key = (event.get("_src"), event.get("pid", 0))
                self._counters_per_pid[key] = event.get("counters", {})
                self._histograms_per_pid[key] = event.get("histograms", {})
            elif kind == "metrics":
                prefix = event.get("name", "?")
                for name, value in (event.get("values") or {}).items():
                    series = self.series.setdefault(
                        f"{prefix}.{name}",
                        deque(maxlen=self._rolling_window),
                    )
                    series.append(float(value))
            elif kind == "span":
                name = event.get("name", "?")
                self.span_counts[name] = self.span_counts.get(name, 0) + 1
            elif kind == "log":
                self._ingest_log(event)

    def _ingest_log(self, event: dict) -> None:
        fields = event.get("fields") or {}
        if event.get("msg") == "campaign started":
            if "jobs" in fields:
                self.total_jobs = int(fields["jobs"])
            if "campaign" in fields:
                self.campaign = str(fields["campaign"])
        if event.get("level") == "warning":
            key = str(fields.get("warn_key", event.get("msg", "?")))
            row = self.warnings.setdefault(
                key, {"msg": event.get("msg", ""), "count": 0, "pids": set()}
            )
            row["count"] += 1
            if event.get("pid") is not None:
                row["pids"].add(event["pid"])

    # -- derived views -------------------------------------------------
    def counters(self) -> dict[str, float]:
        """Merged counters (last snapshot per pid, summed)."""
        merged: dict[str, float] = {}
        for snapshot in self._counters_per_pid.values():
            for name, value in snapshot.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def histograms(self) -> dict[str, Histogram]:
        """Merged histograms (last snapshot per pid, folded)."""
        merged: dict[str, Histogram] = {}
        for snapshot in self._histograms_per_pid.values():
            for name, payload in snapshot.items():
                merged.setdefault(name, Histogram()).merge_dict(payload)
        return merged

    def job_progress(self) -> dict:
        """Done/failed/retried from the campaign counters."""
        counters = self.counters()
        done = int(counters.get("campaign.ok", 0))
        failed = int(counters.get("campaign.failed", 0))
        attempts = int(counters.get("campaign.attempts", 0))
        retried = max(0, attempts - done - failed)
        return {
            "done": done,
            "failed": failed,
            "retried": retried,
            "attempts": attempts,
            "total": self.total_jobs,
        }


def render_watch(state: WatchState, sink: str = "", width: int = 78) -> str:
    """The dashboard text for one watch tick (pure function)."""
    lines: list[str] = []
    elapsed = ""
    if state.first_ts is not None and state.last_ts is not None:
        elapsed = f"  span {state.last_ts - state.first_ts:.1f}s"
    title = f"repro obs watch — {sink}" if sink else "repro obs watch"
    lines.append(title[:width])
    lines.append(
        f"events {state.n_events}  pids {len(state.pids)}{elapsed}"
    )

    progress = state.job_progress()
    if progress["attempts"] or progress["total"] is not None:
        total = progress["total"]
        total_txt = f"/{total}" if total is not None else ""
        name = f" [{state.campaign}]" if state.campaign else ""
        lines.append(
            f"jobs{name}: {progress['done']}{total_txt} done  "
            f"{progress['failed']} failed  {progress['retried']} retried"
        )

    if state.series:
        lines.append("")
        lines.append("## rolling metrics")
        for name in sorted(state.series):
            values = list(state.series[name])
            lines.append(
                f"{name:<40} {values[-1]:>12.6f}  {sparkline(values)}"
            )

    counters = state.counters()
    if counters:
        lines.append("")
        lines.append("## counters")
        for name in sorted(counters):
            value = counters[name]
            rendered = (
                f"{value:.0f}" if float(value).is_integer() else f"{value:.4f}"
            )
            lines.append(f"{name:<44} {rendered:>14}")

    histograms = state.histograms()
    if histograms:
        lines.append("")
        lines.append("## histograms")
        for name in sorted(histograms):
            h = histograms[name]
            p50, p95 = h.quantile(0.5), h.quantile(0.95)
            quant = (
                f" p50 {p50:.4f} p95 {p95:.4f}"
                if p50 is not None and p95 is not None
                else ""
            )
            lines.append(
                f"{name:<38} n={h.count:<7} mean {h.mean:.4f}{quant}"
            )

    if state.warnings:
        lines.append("")
        lines.append("## recent warnings")
        rows = sorted(
            state.warnings.items(), key=lambda kv: -kv[1]["count"]
        )
        for _key, row in rows[:8]:
            pids = len(row["pids"])
            lines.append(
                f"[x{row['count']}, {pids} pid{'s' if pids != 1 else ''}] "
                f"{row['msg']}"[:width]
            )

    return "\n".join(lines)


def watch_loop(
    sink,
    interval: float = 0.5,
    duration: Optional[float] = None,
    clear: bool = True,
    emit=None,
    once: bool = False,
) -> WatchState:
    """Poll ``sink`` and re-render the dashboard until interrupted.

    ``sink`` may be one path, a list of paths, or a glob pattern (a
    sharded cluster campaign is watched with
    ``--obs 'runs/x/shard-*/obs.jsonl'``).  ``duration`` bounds the
    loop (None = until Ctrl-C); ``once`` renders a single frame and
    returns — both exist so CI and tests can drive the watch without
    killing a process.  Returns the final state.
    """
    if emit is None:  # pragma: no cover - exercised via CLI
        def emit(text: str) -> None:
            sys.stdout.write(text + "\n")
            sys.stdout.flush()
    follower = make_follower(sink)
    title = sink if isinstance(sink, str) else " ".join(str(s) for s in sink)
    state = WatchState()
    deadline = None if duration is None else time.monotonic() + duration
    try:
        while True:
            state.ingest(follower.poll())
            frame = render_watch(state, sink=title)
            if clear and not once:
                frame = "\x1b[2J\x1b[H" + frame
            emit(frame)
            if once:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return state
