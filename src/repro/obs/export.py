"""Chrome Trace Event export: obs sinks and Profiler runs → Perfetto.

Two converters, one output dialect — the Trace Event Format understood
by ``chrome://tracing`` and https://ui.perfetto.dev:

* :func:`chrome_trace_events` turns merged obs sink events (finished
  spans, log lines, per-job metrics) into complete-duration (``"X"``),
  instant (``"i"``) and counter (``"C"``) events.  Wall-clock
  timestamps become microseconds; the pid is recovered from the
  pid-prefixed span id (``"<pid>-<n>"``), so a multi-process campaign
  renders as one lane per worker.
* :func:`profiler_chrome_events` turns a
  :class:`repro.exec.context.Profiler`'s enter/exit function markers
  into begin/end (``"B"``/``"E"``) events on the profiler's *virtual*
  clock (one unit = one simulated access), letting the simulated
  kernel's phase structure be inspected in the same UI.

``chrome_trace_document`` wraps either list in the JSON-object form
(``{"traceEvents": [...]}``) — the CLI surface is
``repro obs export --format chrome-trace``.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = [
    "event_pid",
    "chrome_trace_events",
    "profiler_chrome_events",
    "chrome_trace_document",
    "render_chrome_trace",
]


def event_pid(event: dict) -> int:
    """Recover the originating pid of one obs event.

    Span events carry no explicit pid; their span id is pid-prefixed.
    Log/metrics/counters events carry ``pid`` directly.  Events from
    before either convention default to 0.
    """
    pid = event.get("pid")
    if isinstance(pid, int):
        return pid
    span_id = event.get("id")
    if isinstance(span_id, str):
        head, _, _ = span_id.partition("-")
        if head.isdigit():
            return int(head)
    return 0


def _span_to_chrome(event: dict) -> dict:
    args = dict(event.get("fields") or {})
    args["id"] = event.get("id")
    if event.get("parent") is not None:
        args["parent"] = event["parent"]
    if event.get("trace") is not None:
        args["trace"] = event["trace"]
    if event.get("status") == "error":
        args["status"] = "error"
    pid = event_pid(event)
    return {
        "ph": "X",
        "name": str(event.get("name", "span")),
        "cat": "span",
        "ts": float(event.get("ts", 0.0)) * 1e6,
        "dur": max(0.0, float(event.get("dur", 0.0))) * 1e6,
        "pid": pid,
        "tid": pid,
        "args": args,
    }


def _log_to_chrome(event: dict) -> dict:
    pid = event_pid(event)
    return {
        "ph": "i",
        "s": "p",  # process-scoped instant marker
        "name": str(event.get("msg", "log")),
        "cat": f"log.{event.get('level', 'info')}",
        "ts": float(event.get("ts", 0.0)) * 1e6,
        "pid": pid,
        "tid": pid,
        "args": dict(event.get("fields") or {}),
    }


def _metrics_to_chrome(event: dict) -> list[dict]:
    pid = event_pid(event)
    ts = float(event.get("ts", 0.0)) * 1e6
    name = str(event.get("name", "metrics"))
    out = []
    for key, value in (event.get("values") or {}).items():
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        out.append(
            {
                "ph": "C",
                "name": f"{name}.{key}",
                "cat": "metrics",
                "ts": ts,
                "pid": pid,
                "tid": pid,
                "args": {"value": value},
            }
        )
    return out


def chrome_trace_events(events: Iterable[dict]) -> list[dict]:
    """Convert obs sink events into Chrome Trace Event dicts.

    Spans become complete-duration events, logs become instants, and
    per-job metrics become counter tracks; counters snapshots are
    cumulative process totals, not points in time, so they are skipped.
    Output is sorted by timestamp, as the viewers prefer.
    """
    out: list[dict] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            out.append(_span_to_chrome(event))
        elif kind == "log":
            out.append(_log_to_chrome(event))
        elif kind == "metrics":
            out.extend(_metrics_to_chrome(event))
    out.sort(key=lambda e: e["ts"])
    return out


def profiler_chrome_events(profiler, pid: int = 0) -> list[dict]:
    """Convert a Profiler's enter/exit markers into ``B``/``E`` events.

    The timestamps are the profiler's *virtual* clock (simulated
    accesses), exported 1:1 as microseconds — relative phase widths
    are what matters, not wall time.  Unmatched enters are closed at
    the profiler's current time, mirroring
    :meth:`repro.exec.context.Profiler.intervals`.
    """
    out: list[dict] = []
    depth = 0
    for ev in profiler.events:
        if ev.kind == "enter":
            out.append(
                {
                    "ph": "B",
                    "name": ev.name,
                    "cat": "profiler",
                    "ts": float(ev.time),
                    "pid": pid,
                    "tid": pid,
                }
            )
            depth += 1
        elif ev.kind == "exit":
            if depth == 0:
                continue
            depth -= 1
            out.append(
                {
                    "ph": "E",
                    "name": ev.name,
                    "cat": "profiler",
                    "ts": float(ev.time),
                    "pid": pid,
                    "tid": pid,
                }
            )
    for _ in range(depth):
        out.append(
            {
                "ph": "E",
                "cat": "profiler",
                "ts": float(profiler.now),
                "pid": pid,
                "tid": pid,
            }
        )
    return out


def chrome_trace_document(
    trace_events: list[dict], origin: Optional[str] = None
) -> dict:
    """Wrap converted events in the Trace Event Format JSON object."""
    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if origin:
        doc["otherData"] = {"origin": origin}
    return doc


def render_chrome_trace(
    events: Iterable[dict], origin: Optional[str] = None
) -> str:
    """Obs sink events → Chrome Trace Event JSON text, in one call."""
    return json.dumps(
        chrome_trace_document(chrome_trace_events(events), origin=origin),
        sort_keys=True,
    )
