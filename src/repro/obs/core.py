"""The observability state machine: counters, histograms, spans, logs.

One module-level :class:`ObsState` singleton holds everything; the
public functions in :mod:`repro.obs` delegate to it.  Two properties
shape the whole design:

* **Zero overhead when off.**  Observability is *disabled by default*;
  every recording function starts with a single attribute test
  (``if not STATE.enabled: return``) and :func:`span` returns one
  shared no-op context manager.  Instrumented hot paths therefore cost
  one predictable branch, which is what lets the perf-smoke gate keep
  its pinned timings.
* **The measured channel is never perturbed.**  Nothing here draws from
  ``random`` or numpy RNGs, touches the simulated cache, or mutates an
  experiment's metrics dict — so every pinned metrics digest is
  byte-identical with observability on or off (asserted in
  ``tests/test_obs_integration.py``).

Events (finished spans, log lines, counter snapshots) land in a bounded
in-memory ring — always inspectable via :func:`recent` — and, when a
sink path is configured, as JSONL lines rendered back by
``python -m repro obs report|tail|export``.  Worker processes inherit
activation through the ``REPRO_OBS`` environment variable and append to
the same sink (one ``write`` call per line).

Two cross-process extensions ride the same machinery:

* **Trace context.**  A process may carry a ``trace_id`` and a *remote
  parent* span id (inherited via ``REPRO_OBS_TRACE`` or a cluster job
  message — see :mod:`repro.obs.tracectx`).  Root spans adopt the
  remote parent, and every span event is stamped with the trace id, so
  spans from a scheduler, its workers, and their shard stores merge
  into one causal tree.  Trace ids come from ``uuid4`` (OS entropy),
  never from ``random``/numpy — the non-perturbation contract holds.
* **Sink rotation.**  Long-running services (``cluster serve``) can cap
  the sink: when a write would push the file past ``max_sink_bytes``
  the current sink is renamed to ``<sink>.1`` and a fresh file starts.
  Rotation happens on whole-line boundaries, so followers and the
  report reader never see torn lines.
"""

from __future__ import annotations

import atexit
import itertools
import json
import math
import os
import threading
import time
from collections import deque
from typing import Iterator, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

ENV_SINK = "REPRO_OBS"
ENV_LEVEL = "REPRO_OBS_LEVEL"
ENV_TRACE = "REPRO_OBS_TRACE"
ENV_MAX_BYTES = "REPRO_OBS_MAX_BYTES"

DEFAULT_RING_SIZE = 4096


# Fixed log-spaced quantile bins: 8 bins per decade over 1e-9 .. 1e9,
# plus bin 0 for non-positive samples.  Sparse per-bin counts serialise
# as a small dict and merge across worker processes by addition, which
# is what lets p50/p95/p99 survive the last-snapshot-per-pid-then-sum
# report pipeline.
_BINS_PER_DECADE = 8
_QUANTILE_LO_EXP = -9
_QUANTILE_HI_EXP = 9
_N_QUANTILE_BINS = (_QUANTILE_HI_EXP - _QUANTILE_LO_EXP) * _BINS_PER_DECADE


def _quantile_bin(value: float) -> int:
    """Bin index for one sample (0 = non-positive, 1.._N clamped)."""
    if value <= 0.0:
        return 0
    idx = 1 + int((math.log10(value) - _QUANTILE_LO_EXP) * _BINS_PER_DECADE)
    if idx < 1:
        return 1
    if idx > _N_QUANTILE_BINS:
        return _N_QUANTILE_BINS
    return idx


def _quantile_bin_value(idx: int) -> float:
    """Representative (geometric-centre) value for a bin index."""
    if idx <= 0:
        return 0.0
    return 10.0 ** (_QUANTILE_LO_EXP + (idx - 0.5) / _BINS_PER_DECADE)


class Histogram:
    """Streaming summary of one named distribution.

    Tracks count/total/min/max plus a sparse fixed-bin (log-spaced)
    histogram good for p50/p95/p99 estimates.  The consumers here want
    "how many, how long, worst case, tail" — store write latencies, job
    durations, queue depths — and a handful of floats plus a sparse
    bin dict merge trivially across worker processes.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "bins")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.bins: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        idx = _quantile_bin(value)
        self.bins[idx] = self.bins.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples seen (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Fixed-bin estimate of the ``q``-quantile (None when empty).

        The estimate is each bin's geometric centre, clamped to the
        observed [min, max] so single-sample histograms report the
        sample itself.  Payloads merged from pre-quantile sinks may
        carry no bins; the estimate then covers only binned samples.
        """
        binned = sum(self.bins.values())
        if not binned:
            return None
        rank = q * (binned - 1)
        cumulative = 0
        estimate = _quantile_bin_value(max(self.bins))
        for idx in sorted(self.bins):
            cumulative += self.bins[idx]
            if cumulative > rank:
                estimate = _quantile_bin_value(idx)
                break
        if self.count:
            estimate = min(max(estimate, self.minimum), self.maximum)
        return estimate

    def to_dict(self) -> dict:
        """JSON-ready summary (quantiles are fixed-bin estimates)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "bins": {str(idx): n for idx, n in sorted(self.bins.items())},
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` payload (e.g. from another process)
        into this histogram.  Payloads written before quantile bins
        existed merge fine — they just contribute no bin counts."""
        count = int(data.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(data.get("total", 0.0))
        lo, hi = data.get("min"), data.get("max")
        if lo is not None and lo < self.minimum:
            self.minimum = float(lo)
        if hi is not None and hi > self.maximum:
            self.maximum = float(hi)
        for raw_idx, n in data.get("bins", {}).items():
            idx = int(raw_idx)
            self.bins[idx] = self.bins.get(idx, 0) + int(n)


class _NullSpan:
    """The shared do-nothing span handed out while observability is
    disabled — one module-level instance, so the disabled cost of
    ``with obs.span(...)`` is a function call and two no-op methods."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **fields) -> None:
        """Ignore annotations."""


NULL_SPAN = _NullSpan()


class Span:
    """One timed, named region of execution.

    Spans nest per thread: entering pushes onto a thread-local stack,
    so children record their parent id and depth and the report CLI can
    rebuild the tree.  The event is emitted at *exit* (duration known),
    tagged ``"error"`` when the body raised.
    """

    __slots__ = (
        "name", "fields", "span_id", "parent_id", "depth",
        "_state", "_wall", "_t0",
    )

    def __init__(self, state: "ObsState", name: str, fields: dict) -> None:
        self.name = name
        self.fields = fields
        self._state = state
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.depth = 0
        self._wall = 0.0
        self._t0 = 0.0

    def note(self, **fields) -> None:
        """Attach extra fields mid-span (recorded at exit)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        state = self._state
        self.span_id = state.next_span_id()
        stack = state.span_stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        elif state.remote_parent is not None:
            # Root span of this thread, but a parent span exists in
            # another process (scheduler → worker): stitch to it.
            self.parent_id = state.remote_parent
        stack.append(self)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._state.span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "kind": "span",
            "ts": self._wall,
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "dur": duration,
            "status": "error" if exc_type is not None else "ok",
            "fields": self.fields,
        }
        if self._state.trace_id is not None:
            event["trace"] = self._state.trace_id
        self._state.emit(event)
        return False


class ObsState:
    """All mutable observability state for one process.

    Counter and histogram updates take a lock (campaign runners emit
    from the scheduler thread while experiments emit from the job), and
    sink writes are one ``handle.write`` per line so concurrent worker
    processes appending to a shared sink interleave whole lines.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.level = LEVELS["info"]
        self.sink_path: Optional[str] = None
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.ring: deque = deque(maxlen=DEFAULT_RING_SIZE)
        self.trace_id: Optional[str] = None
        self.remote_parent: Optional[str] = None
        self.max_sink_bytes: Optional[int] = None
        self._sink_bytes = 0
        self._sink_handle = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._span_counter = itertools.count(1)
        self._warned: set[str] = set()
        self._atexit_registered = False

    # -- lifecycle -----------------------------------------------------
    def enable(
        self,
        sink_path: Optional[str] = None,
        level: str = "info",
        ring_size: int = DEFAULT_RING_SIZE,
        max_sink_bytes: Optional[int] = None,
    ) -> None:
        """Turn recording on (idempotent; re-enabling swaps the sink).

        ``max_sink_bytes``, when given, caps the sink file: a write
        that would exceed it rotates ``sink`` → ``sink.1`` first.
        Passing ``None`` leaves any previously-set cap in place.
        """
        with self._lock:
            self.level = LEVELS.get(level, LEVELS["info"])
            if ring_size != self.ring.maxlen:
                self.ring = deque(self.ring, maxlen=ring_size)
            if sink_path != self.sink_path and self._sink_handle is not None:
                self._sink_handle.close()
                self._sink_handle = None
            self.sink_path = sink_path
            if max_sink_bytes is not None:
                self.max_sink_bytes = max_sink_bytes
            self.enabled = True
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True

    def disable(self) -> None:
        """Stop recording; flushes counters to the sink first."""
        self.flush()
        with self._lock:
            self.enabled = False
            if self._sink_handle is not None:
                self._sink_handle.close()
                self._sink_handle = None
            self.sink_path = None

    def reset(self) -> None:
        """Drop all recorded state (tests; does not touch the sink file)."""
        self.disable()
        with self._lock:
            self.counters.clear()
            self.histograms.clear()
            self.ring.clear()
            self._warned.clear()
            self.trace_id = None
            self.remote_parent = None
            self.max_sink_bytes = None
            self._sink_bytes = 0

    def close(self) -> None:
        """atexit hook: persist the final counter snapshot."""
        if self.enabled:
            self.flush()
            with self._lock:
                if self._sink_handle is not None:
                    self._sink_handle.close()
                    self._sink_handle = None

    # -- span bookkeeping ----------------------------------------------
    def next_span_id(self) -> str:
        """Process-unique span id (pid-prefixed so ids from workers
        sharing a sink never collide)."""
        return f"{os.getpid()}-{next(self._span_counter)}"

    def span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- event emission ------------------------------------------------
    def _open_sink(self) -> None:
        """Open the sink for append and learn its current size (the
        cap must count bytes written by earlier runs of this sink)."""
        self._sink_handle = open(self.sink_path, "a", encoding="utf-8")
        try:
            self._sink_bytes = os.path.getsize(self.sink_path)
        except OSError:
            self._sink_bytes = 0

    def _rotate_sink(self) -> None:
        """Rename ``sink`` → ``sink.1`` and start a fresh file.

        Called between whole-line writes, so both the rotated file and
        the new one contain only complete JSONL lines.  One rotated
        generation is kept; an older ``.1`` is overwritten.
        """
        if self._sink_handle is not None:
            self._sink_handle.close()
            self._sink_handle = None
        try:
            os.replace(self.sink_path, self.sink_path + ".1")
        except OSError:
            pass
        self._sink_bytes = 0

    def emit(self, event: dict) -> None:
        """Append one event to the ring and, if configured, the sink."""
        with self._lock:
            self.ring.append(event)
            if self.sink_path is not None:
                line = json.dumps(event, sort_keys=True, default=str) + "\n"
                if self._sink_handle is None:
                    self._open_sink()
                if (
                    self.max_sink_bytes is not None
                    and self._sink_bytes > 0
                    and self._sink_bytes + len(line) > self.max_sink_bytes
                ):
                    self._rotate_sink()
                if self._sink_handle is None:
                    self._open_sink()
                self._sink_handle.write(line)
                self._sink_handle.flush()
                self._sink_bytes += len(line)

    def flush(self) -> None:
        """Emit a cumulative snapshot of counters and histograms.

        Snapshots are cumulative per process; the report renderer keeps
        the last snapshot per pid and sums across pids.
        """
        if not self.enabled:
            return
        with self._lock:
            has_data = bool(self.counters or self.histograms)
            snapshot = {
                "kind": "counters",
                "ts": time.time(),
                "pid": os.getpid(),
                "counters": dict(self.counters),
                "histograms": {
                    name: h.to_dict() for name, h in self.histograms.items()
                },
            }
        if has_data:
            self.emit(snapshot)


STATE = ObsState()


# -- module-level API (what instrumented code calls) -------------------
def enabled() -> bool:
    """Whether observability is currently recording."""
    return STATE.enabled


def enable(
    sink_path: Optional[str] = None,
    level: str = "info",
    ring_size: int = DEFAULT_RING_SIZE,
    max_sink_bytes: Optional[int] = None,
) -> None:
    """Turn observability on, optionally streaming events to a JSONL
    sink that ``python -m repro obs report`` renders later.

    ``max_sink_bytes`` bounds the sink for long-running services:
    when set, the sink rotates to ``<sink>.1`` instead of growing
    without limit (see :meth:`ObsState.enable`)."""
    STATE.enable(
        sink_path=sink_path,
        level=level,
        ring_size=ring_size,
        max_sink_bytes=max_sink_bytes,
    )


def disable() -> None:
    """Turn observability off (flushes pending counters first)."""
    STATE.disable()


def reset() -> None:
    """Disable and clear every counter, histogram, and ring event."""
    STATE.reset()


def span(name: str, **fields):
    """A timed, named, nestable region::

        with obs.span("campaign.job", job_id=job.job_id):
            ...

    Returns the shared no-op span while disabled, so the off cost is
    one branch."""
    if not STATE.enabled:
        return NULL_SPAN
    return Span(STATE, name, fields)


def new_span_id() -> str:
    """Reserve a process-unique span id without opening a span.

    For long-lived regions that cannot live on the thread-local span
    stack — e.g. the cluster scheduler's campaign span, which stays
    open across many event-loop callbacks while other campaigns
    interleave.  Hand the id to children (via trace context) now, then
    emit the span itself with :func:`emit_span_event` when the region
    ends.  Returns ``""`` while observability is off.
    """
    if not STATE.enabled:
        return ""
    return STATE.next_span_id()


def emit_span_event(
    name: str,
    ts: float,
    dur: float,
    span_id: Optional[str] = None,
    parent: Optional[str] = None,
    status: str = "ok",
    trace: Optional[str] = None,
    **fields,
) -> Optional[str]:
    """Emit one finished-span event directly (no stack interaction).

    The manual counterpart of :func:`span` for regions whose id was
    reserved earlier with :func:`new_span_id`.  ``ts`` is the wall-clock
    start, ``dur`` the duration in seconds.  Returns the span id used,
    or None while observability is off.
    """
    if not STATE.enabled:
        return None
    sid = span_id or STATE.next_span_id()
    event = {
        "kind": "span",
        "ts": ts,
        "name": name,
        "id": sid,
        "parent": parent,
        "depth": 0,
        "dur": dur,
        "status": status,
        "fields": fields,
    }
    trace_id = trace if trace is not None else STATE.trace_id
    if trace_id is not None:
        event["trace"] = trace_id
    STATE.emit(event)
    return sid


def counter_add(name: str, value: float = 1) -> None:
    """Add ``value`` to the named monotonic counter."""
    if not STATE.enabled:
        return
    with STATE._lock:
        STATE.counters[name] = STATE.counters.get(name, 0) + value


def observe(name: str, value: float) -> None:
    """Fold one sample into the named histogram."""
    if not STATE.enabled:
        return
    with STATE._lock:
        hist = STATE.histograms.get(name)
        if hist is None:
            hist = STATE.histograms[name] = Histogram()
        hist.observe(value)


def log(level: str, message: str, **fields) -> None:
    """Record one structured log line (ring + sink, never stdout)."""
    state = STATE
    if not state.enabled:
        return
    if LEVELS.get(level, 0) < state.level:
        return
    state.emit(
        {
            "kind": "log",
            "ts": time.time(),
            "pid": os.getpid(),
            "level": level,
            "msg": message,
            "fields": fields,
        }
    )


def warn_once(key: str, message: str, **fields) -> bool:
    """Emit a warning log at most once per ``key`` per process.

    The event carries ``warn_key`` so report rendering can deduplicate
    the same warning re-emitted by forked workers (each process has its
    own ``_warned`` set).  Returns True when this call actually emitted
    (callers can mirror the warning to their own progress stream
    exactly as often)."""
    if not STATE.enabled:
        # Still deduplicate, so callers mirroring the warning to their
        # own output don't repeat it when obs is off.
        with STATE._lock:
            if key in STATE._warned:
                return False
            STATE._warned.add(key)
        return True
    with STATE._lock:
        if key in STATE._warned:
            return False
        STATE._warned.add(key)
    log("warning", message, **{"warn_key": key, **fields})
    return True


def publish_metrics(name: str, values: dict, **fields) -> None:
    """Emit one ``"metrics"`` event carrying the numeric entries of
    ``values`` (non-numeric entries are dropped; the dict is read, never
    mutated).  This is how campaign workers stream per-job diagnostics
    — bit accuracy, mutual information, durations — into the sink for
    ``repro obs watch`` and the per-run ``diag.json`` timeseries."""
    if not STATE.enabled:
        return
    numeric = {
        key: (int(value) if isinstance(value, bool) else value)
        for key, value in values.items()
        if isinstance(value, (int, float))
    }
    if not numeric:
        return
    STATE.emit(
        {
            "kind": "metrics",
            "ts": time.time(),
            "pid": os.getpid(),
            "name": name,
            "fields": fields,
            "values": numeric,
        }
    )


def flush() -> None:
    """Persist the current counter/histogram snapshot to the sink."""
    STATE.flush()


def recent(n: Optional[int] = None) -> list[dict]:
    """The last ``n`` ring events (all of them when ``n`` is None)."""
    events = list(STATE.ring)
    return events if n is None else events[-n:]


def counters_snapshot() -> dict[str, float]:
    """A copy of the current counter values."""
    with STATE._lock:
        return dict(STATE.counters)


def histograms_snapshot() -> dict[str, dict]:
    """A copy of the current histogram summaries."""
    with STATE._lock:
        return {name: h.to_dict() for name, h in STATE.histograms.items()}


class Logger:
    """A named, leveled logger routing through the obs event stream.

    Replaces bare ``print()`` in library code: silent by default
    (observability off), structured when on, and never writes stdout —
    machine-parsed CLI output stays clean.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _log(self, level: str, message: str, fields: dict) -> None:
        if not STATE.enabled:
            return
        log(level, message, logger=self.name, **fields)

    def debug(self, message: str, **fields) -> None:
        """Log at debug level."""
        self._log("debug", message, fields)

    def info(self, message: str, **fields) -> None:
        """Log at info level."""
        self._log("info", message, fields)

    def warning(self, message: str, **fields) -> None:
        """Log at warning level."""
        self._log("warning", message, fields)

    def error(self, message: str, **fields) -> None:
        """Log at error level."""
        self._log("error", message, fields)


def get_logger(name: str) -> Logger:
    """The module-level way to get a :class:`Logger`."""
    return Logger(name)


def _activate_from_env() -> None:
    """Honour ``REPRO_OBS`` at import: unset/empty/``0`` leaves
    observability off; ``1``/``true`` enables ring-only recording; any
    other value is treated as a JSONL sink path.  This is how campaign
    worker processes inherit the parent's ``--obs`` flag.

    ``REPRO_OBS_TRACE`` (``"<trace_id>:<parent_span_id>"``) installs
    the inherited trace context even when no sink is configured, and
    ``REPRO_OBS_MAX_BYTES`` carries the sink rotation cap into worker
    processes.  Neither touches any RNG stream.
    """
    raw_trace = os.environ.get(ENV_TRACE, "").strip()
    if raw_trace:
        trace_id, _, parent = raw_trace.partition(":")
        STATE.trace_id = trace_id or None
        STATE.remote_parent = parent or None
    raw = os.environ.get(ENV_SINK, "").strip()
    if not raw or raw == "0" or raw.lower() == "false":
        return
    level = os.environ.get(ENV_LEVEL, "info").strip().lower() or "info"
    sink = None if raw == "1" or raw.lower() == "true" else raw
    raw_cap = os.environ.get(ENV_MAX_BYTES, "").strip()
    max_sink_bytes = None
    if raw_cap:
        try:
            max_sink_bytes = int(raw_cap) or None
        except ValueError:
            max_sink_bytes = None
    enable(sink_path=sink, level=level, max_sink_bytes=max_sink_bytes)


_activate_from_env()
