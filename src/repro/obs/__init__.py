"""repro.obs — zero-overhead-when-off structured observability.

The repo's logging/metrics/tracing substrate: span-based hierarchical
timing, named counters and histograms, and a verbosity-controlled
structured logger, all recording into a bounded in-memory ring and an
optional JSONL sink that ``python -m repro obs report|tail|export``
renders.

Disabled (the default) every entry point is a single attribute test, so
instrumentation in the hot layers — the cache model, the campaign
runner, trace capture, the end-to-end attacks — costs one predictable
branch and the perf-smoke pins hold.  Crucially, recording never
touches a simulated-cache or noise RNG stream, so enabling
observability leaves every pinned metrics digest byte-identical.

Enable programmatically::

    from repro import obs
    obs.enable(sink_path="run.jsonl")
    with obs.span("campaign.job", job_id="..."):
        obs.counter_add("campaign.attempts")

or from the environment (inherited by campaign worker processes)::

    REPRO_OBS=run.jsonl REPRO_OBS_LEVEL=debug python -m repro campaign run ...

Cross-process causal tracing lives in :mod:`repro.obs.tracectx`: a
campaign installs a ``trace_id`` and exports it (``REPRO_OBS_TRACE``,
or the ``trace`` field on cluster lease messages) so scheduler, worker,
and shard-store spans stitch into one tree — rendered by ``obs report
--trace`` and exportable to Perfetto via :mod:`repro.obs.export`
(``obs export --format chrome-trace``).
"""

from repro.obs.core import (
    ENV_LEVEL,
    ENV_MAX_BYTES,
    ENV_SINK,
    ENV_TRACE,
    Histogram,
    Logger,
    Span,
    counter_add,
    counters_snapshot,
    disable,
    emit_span_event,
    enable,
    enabled,
    flush,
    get_logger,
    histograms_snapshot,
    log,
    new_span_id,
    observe,
    publish_metrics,
    recent,
    reset,
    span,
    warn_once,
)
from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    profiler_chrome_events,
    render_chrome_trace,
)
from repro.obs.report import (
    expand_sinks,
    format_event,
    load_events,
    load_events_multi,
    logical_sink,
    merge_events,
    merge_warnings,
    render_report,
    render_span_tree,
    render_tail,
    render_trace,
    stitch_spans,
    trace_summary,
)
from repro.obs.watch import (
    MultiSinkFollower,
    SinkFollower,
    WatchState,
    make_follower,
    render_watch,
    sparkline,
)

__all__ = [
    "ENV_LEVEL",
    "ENV_MAX_BYTES",
    "ENV_SINK",
    "ENV_TRACE",
    "Histogram",
    "Logger",
    "Span",
    "chrome_trace_document",
    "chrome_trace_events",
    "counter_add",
    "counters_snapshot",
    "disable",
    "emit_span_event",
    "enable",
    "enabled",
    "expand_sinks",
    "flush",
    "format_event",
    "get_logger",
    "histograms_snapshot",
    "load_events",
    "load_events_multi",
    "log",
    "logical_sink",
    "make_follower",
    "MultiSinkFollower",
    "merge_events",
    "merge_warnings",
    "new_span_id",
    "observe",
    "profiler_chrome_events",
    "publish_metrics",
    "recent",
    "render_chrome_trace",
    "render_report",
    "render_span_tree",
    "render_tail",
    "render_trace",
    "render_watch",
    "reset",
    "span",
    "sparkline",
    "SinkFollower",
    "stitch_spans",
    "trace_summary",
    "warn_once",
    "WatchState",
]
